//! # neurocmp
//!
//! A Rust reproduction of **"Neuromorphic Accelerators: A Comparison
//! Between Neuroscience and Machine-Learning Approaches"** (Du,
//! Ben-Dayan Rubin, Chen, He, Chen, Zhang, Wu, Temam — MICRO-48, 2015).
//!
//! The paper asks which family of hardware neural-network accelerator an
//! embedded-system designer should build: a machine-learning-style MLP
//! trained with back-propagation, or a neuroscience-style spiking network
//! (LIF neurons) trained with STDP. This crate re-exports the whole
//! reproduction stack:
//!
//! * [`substrate`] — fixed-point arithmetic, hardware RNGs (LFSR-31 and
//!   the four-LFSR CLT Gaussian generator), piecewise-linear function
//!   tables.
//! * [`dataset`] — deterministic synthetic stand-ins for MNIST, MPEG-7
//!   and the Spoken Arabic Digits (see `DESIGN.md` §5 for the
//!   substitution rationale).
//! * [`mlp`] — the MLP + BP model and its 8-bit quantized hardware path.
//! * [`snn`] — the event-driven LIF + STDP network with homeostasis,
//!   self-labeling, four input coding schemes, the SNNwot simplified
//!   variant and the SNN+BP diagnostic hybrid.
//! * [`hw`] — the 65 nm cost model (expanded/folded designs, SRAM banks,
//!   online-learning overhead, TrueNorth-like core, GPU reference) and
//!   cycle-level datapath simulators.
//! * [`core`] — the experiment framework that regenerates every table
//!   and figure of the paper.
//! * [`serve`] — the in-process batched inference service: trained-model
//!   snapshots, a deterministic admission-queue coalescer, and a seeded
//!   closed-loop load generator.
//!
//! # Quick start
//!
//! ```
//! use neurocmp::dataset::{digits::DigitsSpec, Difficulty};
//! use neurocmp::mlp::{Activation, Mlp, TrainConfig, Trainer};
//! use neurocmp::hw::folded::FoldedMlp;
//!
//! // 1. Data: a small synthetic-digit task.
//! let (train, test) = DigitsSpec {
//!     train: 200, test: 50, seed: 1, difficulty: Difficulty::default(),
//! }.generate();
//!
//! // 2. Model: the paper's MLP, scaled down.
//! let mut mlp = Mlp::new(&[784, 16, 10], Activation::sigmoid(), 42).unwrap();
//! Trainer::new(TrainConfig { epochs: 5, ..Default::default() }).fit(&mut mlp, &train);
//! let accuracy = neurocmp::mlp::metrics::evaluate(&mlp, &test).accuracy();
//! assert!(accuracy > 0.2);
//!
//! // 3. Hardware: what would the folded accelerator cost?
//! let report = FoldedMlp::new(&[784, 16, 10], 8).report();
//! assert!(report.total_area_mm2 > 0.0);
//! ```
//!
//! See the `examples/` directory for full scenarios and `crates/bench`
//! for the per-table/per-figure regeneration binaries.

pub use nc_core as core;
pub use nc_dataset as dataset;
pub use nc_hw as hw;
pub use nc_mlp as mlp;
pub use nc_serve as serve;
pub use nc_snn as snn;
pub use nc_substrate as substrate;
