//! Parameter sweeps behind the figures: #neurons (Figure 8), sigmoid
//! slope (Figures 5–6), coding schemes (Figure 14).
//!
//! Each sweep is an [`Experiment`]: its grid points are independent
//! trainings, fanned out as engine jobs and collected in grid order.
//! The dataset-level free functions remain as sequential conveniences
//! for callers that already hold `(train, test)` in hand; both paths
//! drive every model through the unified [`Model`](nc_dataset::Model)
//! interface.

use crate::engine::{Engine, Experiment, Job, ModelSpec};
use crate::error::Error;
use crate::experiment::{ExperimentScale, Workload};
use nc_dataset::model::FitBudget;
use nc_dataset::Dataset;
use nc_mlp::Activation;
use nc_snn::coding::CodingScheme;
use nc_snn::SnnParams;
use std::sync::Arc;

/// One point of the Figure 8 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeuronSweepPoint {
    /// Neuron count (hidden neurons for the MLP, layer size for the SNN).
    pub neurons: usize,
    /// Test accuracy at that size.
    pub accuracy: f64,
}

/// One point of the Figure 6 bridging sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BridgePoint {
    /// Sigmoid slope `a` (`None` = the step function reference).
    pub slope: Option<f64>,
    /// Test error rate (1 − accuracy).
    pub error_rate: f64,
}

/// One point of the Figure 14 coding sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodingPoint {
    /// The input code under test.
    pub scheme: CodingScheme,
    /// Layer size.
    pub neurons: usize,
    /// Test accuracy.
    pub accuracy: f64,
}

fn mlp_point_job(
    train: &Dataset,
    hidden: usize,
    epochs: usize,
    seed: u64,
    label: String,
) -> Job<(ModelSpec, FitBudget)> {
    let spec = ModelSpec::Mlp {
        sizes: vec![train.input_dim(), hidden, train.num_classes()],
        activation: Activation::sigmoid(),
        seed,
    };
    let budget = FitBudget {
        epochs,
        ..FitBudget::default()
    };
    Job::new(label, (train.len() * epochs) as u64, (spec, budget))
}

fn snn_point_job(
    train: &Dataset,
    neurons: usize,
    coding: Option<CodingScheme>,
    scale: ExperimentScale,
    seed: u64,
    label: String,
) -> Job<(ModelSpec, FitBudget)> {
    let (inputs, classes) = (train.input_dim(), train.num_classes());
    let params = SnnParams::tuned(neurons);
    let spec = match coding {
        None => ModelSpec::Snn {
            inputs,
            classes,
            params,
            seed,
        },
        Some(coding) => ModelSpec::SnnWithCoding {
            inputs,
            classes,
            params,
            coding,
            seed,
        },
    };
    let budget = FitBudget {
        stdp_epochs: scale.stdp_epochs(),
        stdp_delta: scale.stdp_delta(),
        ..FitBudget::default()
    };
    Job::new(
        label,
        (train.len() * scale.stdp_epochs()) as u64,
        (spec, budget),
    )
}

fn collect(results: Vec<Result<f64, Error>>) -> Result<Vec<f64>, Error> {
    results.into_iter().collect()
}

/// Figure 8 (MLP side): accuracy vs hidden-layer width, sequentially on
/// datasets in hand. Prefer [`NeuronSweep`] on an [`Engine`] for
/// parallel runs.
pub fn mlp_neuron_sweep(
    train: &Dataset,
    test: &Dataset,
    widths: &[usize],
    epochs: usize,
    seed: u64,
) -> Vec<NeuronSweepPoint> {
    let engine = Engine::sequential(ExperimentScale::Tiny);
    let data = Arc::new((train.clone(), test.clone()));
    let jobs = widths
        .iter()
        .map(|&h| mlp_point_job(train, h, epochs, seed, format!("fig8/mlp/{h}")))
        .collect();
    // nc-lint: allow(R5, reason = "sweep grids use paper-constant topologies; validated by tier-1 tests")
    let accuracies = collect(engine.train_and_score(&data, jobs)).expect("valid sweep topology");
    widths
        .iter()
        .zip(accuracies)
        .map(|(&neurons, accuracy)| NeuronSweepPoint { neurons, accuracy })
        .collect()
}

/// Figure 8 (SNN side): accuracy vs layer size, STDP-trained,
/// sequentially on datasets in hand. Prefer [`NeuronSweep`] on an
/// [`Engine`] for parallel runs.
pub fn snn_neuron_sweep(
    train: &Dataset,
    test: &Dataset,
    sizes: &[usize],
    scale: ExperimentScale,
    seed: u64,
) -> Vec<NeuronSweepPoint> {
    let engine = Engine::sequential(scale);
    let data = Arc::new((train.clone(), test.clone()));
    let jobs = sizes
        .iter()
        .map(|&n| snn_point_job(train, n, None, scale, seed, format!("fig8/snn/{n}")))
        .collect();
    // nc-lint: allow(R5, reason = "sweep grids use paper-constant topologies; validated by tier-1 tests")
    let accuracies = collect(engine.train_and_score(&data, jobs)).expect("valid sweep topology");
    sizes
        .iter()
        .zip(accuracies)
        .map(|(&neurons, accuracy)| NeuronSweepPoint { neurons, accuracy })
        .collect()
}

/// Figures 5–6: train/test the MLP under `f_a` for each slope plus the
/// step function, returning error rates. Sequential convenience for
/// datasets in hand; prefer [`SigmoidBridge`] on an [`Engine`].
pub fn sigmoid_bridge_sweep(
    train: &Dataset,
    test: &Dataset,
    slopes: &[f64],
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Vec<BridgePoint> {
    let engine = Engine::sequential(ExperimentScale::Tiny);
    let data = Arc::new((train.clone(), test.clone()));
    let jobs = bridge_jobs(train, slopes, hidden, epochs, seed);
    // nc-lint: allow(R5, reason = "sweep grids use paper-constant topologies; validated by tier-1 tests")
    let accuracies = collect(engine.train_and_score(&data, jobs)).expect("valid sweep topology");
    bridge_points(slopes, accuracies)
}

fn bridge_jobs(
    train: &Dataset,
    slopes: &[f64],
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Vec<Job<(ModelSpec, FitBudget)>> {
    let sizes = vec![train.input_dim(), hidden, train.num_classes()];
    let samples = (train.len() * epochs) as u64;
    let mut jobs: Vec<Job<(ModelSpec, FitBudget)>> = slopes
        .iter()
        .map(|&a| {
            let spec = ModelSpec::Mlp {
                sizes: sizes.clone(),
                activation: Activation::sigmoid_slope(a),
                seed,
            };
            // The gradient carries a slope factor (capped, see
            // Activation::derivative_from_output); keep the effective
            // step size constant across the family.
            let budget = FitBudget {
                epochs,
                learning_rate: Some(0.3 / a.min(Activation::SURROGATE_SLOPE_CAP)),
                ..FitBudget::default()
            };
            Job::new(format!("fig6/slope/{a}"), samples, (spec, budget))
        })
        .collect();
    // The step-function reference: straight-through training (forward
    // and surrogate gradients through the steepest sigmoid of the
    // family), deployed with the true [0/1] step.
    jobs.push(Job::new(
        "fig6/step",
        samples,
        (
            ModelSpec::StepMlp {
                sizes,
                slope: 16.0,
                seed,
            },
            FitBudget {
                epochs,
                ..FitBudget::default()
            },
        ),
    ));
    jobs
}

fn bridge_points(slopes: &[f64], accuracies: Vec<f64>) -> Vec<BridgePoint> {
    slopes
        .iter()
        .map(|&a| Some(a))
        .chain(std::iter::once(None))
        .zip(accuracies)
        .map(|(slope, accuracy)| BridgePoint {
            slope,
            error_rate: 1.0 - accuracy,
        })
        .collect()
}

/// Figure 14: STDP accuracy per coding scheme per layer size.
/// Sequential convenience for datasets in hand; prefer [`CodingSweep`]
/// on an [`Engine`].
pub fn coding_sweep(
    train: &Dataset,
    test: &Dataset,
    schemes: &[CodingScheme],
    sizes: &[usize],
    scale: ExperimentScale,
    seed: u64,
) -> Vec<CodingPoint> {
    let engine = Engine::sequential(scale);
    let data = Arc::new((train.clone(), test.clone()));
    let grid: Vec<(CodingScheme, usize)> = schemes
        .iter()
        .flat_map(|&s| sizes.iter().map(move |&n| (s, n)))
        .collect();
    let jobs = grid
        .iter()
        .map(|&(scheme, n)| {
            snn_point_job(
                train,
                n,
                Some(scheme),
                scale,
                seed,
                format!("fig14/{scheme:?}/{n}"),
            )
        })
        .collect();
    // nc-lint: allow(R5, reason = "sweep grids use paper-constant topologies; validated by tier-1 tests")
    let accuracies = collect(engine.train_and_score(&data, jobs)).expect("valid sweep topology");
    grid.iter()
        .zip(accuracies)
        .map(|(&(scheme, neurons), accuracy)| CodingPoint {
            scheme,
            neurons,
            accuracy,
        })
        .collect()
}

/// The Figure 8 experiment: accuracy vs network size for both model
/// families, every grid point an independent engine job.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuronSweep {
    /// Workload under test.
    pub workload: Workload,
    /// Pinned scale; `None` defers to the engine's scale.
    pub scale: Option<ExperimentScale>,
    /// MLP hidden widths to sweep.
    pub mlp_widths: Vec<usize>,
    /// SNN layer sizes to sweep.
    pub snn_sizes: Vec<usize>,
    /// Shared initialization seed.
    pub seed: u64,
}

/// Output of [`NeuronSweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct NeuronSweepResults {
    /// MLP accuracy per hidden width.
    pub mlp: Vec<NeuronSweepPoint>,
    /// SNN accuracy per layer size.
    pub snn: Vec<NeuronSweepPoint>,
}

impl NeuronSweep {
    /// The paper's Figure 8 grids for a workload.
    pub fn fig8(workload: Workload) -> Self {
        NeuronSweep {
            workload,
            scale: None,
            mlp_widths: vec![10, 15, 20, 30, 50, 100, 200],
            snn_sizes: vec![10, 20, 50, 100, 200, 300],
            seed: 0xF168,
        }
    }
}

impl Experiment for NeuronSweep {
    type Output = NeuronSweepResults;

    fn run(&self, engine: &Engine) -> Result<NeuronSweepResults, Error> {
        if self.mlp_widths.is_empty() && self.snn_sizes.is_empty() {
            return Err(Error::BadConfig(String::from(
                "neuron sweep has an empty grid on both sides",
            )));
        }
        let scale = self.scale.unwrap_or_else(|| engine.scale());
        let data = engine.dataset_at(self.workload, scale);
        let train = &data.0;
        let mut jobs = Vec::new();
        for &h in &self.mlp_widths {
            jobs.push(mlp_point_job(
                train,
                h,
                scale.mlp_epochs(),
                self.seed,
                format!("fig8/mlp/{h}"),
            ));
        }
        for &n in &self.snn_sizes {
            jobs.push(snn_point_job(
                train,
                n,
                None,
                scale,
                self.seed,
                format!("fig8/snn/{n}"),
            ));
        }
        let accuracies = collect(engine.train_and_score(&data, jobs))?;
        let (mlp_acc, snn_acc) = accuracies.split_at(self.mlp_widths.len());
        Ok(NeuronSweepResults {
            mlp: self
                .mlp_widths
                .iter()
                .zip(mlp_acc)
                .map(|(&neurons, &accuracy)| NeuronSweepPoint { neurons, accuracy })
                .collect(),
            snn: self
                .snn_sizes
                .iter()
                .zip(snn_acc)
                .map(|(&neurons, &accuracy)| NeuronSweepPoint { neurons, accuracy })
                .collect(),
        })
    }
}

/// The Figures 5–6 experiment: the sigmoid→step bridge, every slope an
/// independent engine job plus the step-deployed reference.
#[derive(Debug, Clone, PartialEq)]
pub struct SigmoidBridge {
    /// Workload under test.
    pub workload: Workload,
    /// Pinned scale; `None` defers to the engine's scale.
    pub scale: Option<ExperimentScale>,
    /// Sigmoid slopes `a` to sweep.
    pub slopes: Vec<f64>,
    /// Hidden-layer width.
    pub hidden: usize,
    /// Initialization seed.
    pub seed: u64,
}

impl Experiment for SigmoidBridge {
    type Output = Vec<BridgePoint>;

    fn run(&self, engine: &Engine) -> Result<Vec<BridgePoint>, Error> {
        if self.slopes.is_empty() {
            return Err(Error::BadConfig(String::from("bridge sweep has no slopes")));
        }
        let scale = self.scale.unwrap_or_else(|| engine.scale());
        let data = engine.dataset_at(self.workload, scale);
        let jobs = bridge_jobs(
            &data.0,
            &self.slopes,
            self.hidden,
            scale.mlp_epochs(),
            self.seed,
        );
        let accuracies = collect(engine.train_and_score(&data, jobs))?;
        Ok(bridge_points(&self.slopes, accuracies))
    }
}

/// The Figure 14 experiment: STDP accuracy per coding scheme per layer
/// size, every grid cell an independent engine job.
#[derive(Debug, Clone, PartialEq)]
pub struct CodingSweep {
    /// Workload under test.
    pub workload: Workload,
    /// Pinned scale; `None` defers to the engine's scale.
    pub scale: Option<ExperimentScale>,
    /// Input spike codes to compare.
    pub schemes: Vec<CodingScheme>,
    /// SNN layer sizes per scheme.
    pub sizes: Vec<usize>,
    /// Initialization seed.
    pub seed: u64,
}

impl Experiment for CodingSweep {
    type Output = Vec<CodingPoint>;

    fn run(&self, engine: &Engine) -> Result<Vec<CodingPoint>, Error> {
        if self.schemes.is_empty() || self.sizes.is_empty() {
            return Err(Error::BadConfig(String::from(
                "coding sweep has an empty grid",
            )));
        }
        let scale = self.scale.unwrap_or_else(|| engine.scale());
        let data = engine.dataset_at(self.workload, scale);
        let train = &data.0;
        let grid: Vec<(CodingScheme, usize)> = self
            .schemes
            .iter()
            .flat_map(|&s| self.sizes.iter().map(move |&n| (s, n)))
            .collect();
        let jobs = grid
            .iter()
            .map(|&(scheme, n)| {
                snn_point_job(
                    train,
                    n,
                    Some(scheme),
                    scale,
                    self.seed,
                    format!("fig14/{scheme:?}/{n}"),
                )
            })
            .collect();
        let accuracies = collect(engine.train_and_score(&data, jobs))?;
        Ok(grid
            .iter()
            .zip(accuracies)
            .map(|(&(scheme, neurons), accuracy)| CodingPoint {
                scheme,
                neurons,
                accuracy,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dataset::{digits::DigitsSpec, Difficulty};

    fn tiny() -> (Dataset, Dataset) {
        DigitsSpec {
            train: 250,
            test: 80,
            seed: 13,
            difficulty: Difficulty::default(),
        }
        .generate()
    }

    #[test]
    fn mlp_sweep_improves_with_width() {
        let (train, test) = tiny();
        let pts = mlp_neuron_sweep(&train, &test, &[2, 24], 8, 1);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].accuracy > pts[0].accuracy,
            "wider net should win: {pts:?}"
        );
    }

    #[test]
    fn snn_sweep_improves_with_size() {
        let (train, test) = tiny();
        let pts = snn_neuron_sweep(&train, &test, &[5, 40], ExperimentScale::Quick, 1);
        assert!(
            pts[1].accuracy >= pts[0].accuracy,
            "larger layer should win: {pts:?}"
        );
    }

    #[test]
    fn bridge_sweep_includes_the_step_reference() {
        let (train, test) = tiny();
        let pts = sigmoid_bridge_sweep(&train, &test, &[1.0, 8.0], 12, 6, 1);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2].slope, None);
        assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.error_rate)));
    }

    #[test]
    fn coding_sweep_covers_the_grid() {
        let (train, test) = tiny();
        let train = train.take(120);
        let pts = coding_sweep(
            &train,
            &test,
            &[CodingScheme::PoissonRate, CodingScheme::TimeToFirstSpike],
            &[8],
            ExperimentScale::Quick,
            1,
        );
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn neuron_sweep_experiment_runs_on_the_engine() {
        let engine = Engine::builder()
            .threads(2)
            .scale(ExperimentScale::Tiny)
            .build();
        let sweep = NeuronSweep {
            workload: Workload::Shapes,
            scale: None,
            mlp_widths: vec![4],
            snn_sizes: vec![6],
            seed: 1,
        };
        let results = engine.run(&sweep).unwrap();
        assert_eq!(results.mlp.len(), 1);
        assert_eq!(results.snn.len(), 1);
        assert_eq!(results.mlp[0].neurons, 4);
        assert_eq!(results.snn[0].neurons, 6);
    }

    #[test]
    fn empty_grids_are_rejected() {
        let engine = Engine::sequential(ExperimentScale::Tiny);
        let sweep = NeuronSweep {
            workload: Workload::Shapes,
            scale: None,
            mlp_widths: vec![],
            snn_sizes: vec![],
            seed: 1,
        };
        assert!(matches!(engine.run(&sweep), Err(Error::BadConfig(_))));
        let bridge = SigmoidBridge {
            workload: Workload::Shapes,
            scale: None,
            slopes: vec![],
            hidden: 4,
            seed: 1,
        };
        assert!(matches!(engine.run(&bridge), Err(Error::BadConfig(_))));
        let coding = CodingSweep {
            workload: Workload::Shapes,
            scale: None,
            schemes: vec![],
            sizes: vec![],
            seed: 1,
        };
        assert!(matches!(engine.run(&coding), Err(Error::BadConfig(_))));
    }
}
