//! Parameter sweeps behind the figures: #neurons (Figure 8), sigmoid
//! slope (Figures 5–6), coding schemes (Figure 14).

use crate::experiment::{ExperimentScale, Workload};
use nc_dataset::Dataset;
use nc_mlp::{metrics, Activation, Mlp, TrainConfig, Trainer};
use nc_snn::coding::CodingScheme;
use nc_snn::{SnnNetwork, SnnParams};

/// One point of the Figure 8 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeuronSweepPoint {
    /// Neuron count (hidden neurons for the MLP, layer size for the SNN).
    pub neurons: usize,
    /// Test accuracy at that size.
    pub accuracy: f64,
}

/// Figure 8 (MLP side): accuracy vs hidden-layer width.
pub fn mlp_neuron_sweep(
    train: &Dataset,
    test: &Dataset,
    widths: &[usize],
    epochs: usize,
    seed: u64,
) -> Vec<NeuronSweepPoint> {
    widths
        .iter()
        .map(|&h| {
            let mut mlp = Mlp::new(
                &[train.input_dim(), h, train.num_classes()],
                Activation::sigmoid(),
                seed,
            )
            .expect("valid topology");
            Trainer::new(TrainConfig {
                epochs,
                ..TrainConfig::default()
            })
            .fit(&mut mlp, train);
            NeuronSweepPoint {
                neurons: h,
                accuracy: metrics::evaluate(&mlp, test).accuracy(),
            }
        })
        .collect()
}

/// Figure 8 (SNN side): accuracy vs layer size, STDP-trained.
pub fn snn_neuron_sweep(
    train: &Dataset,
    test: &Dataset,
    sizes: &[usize],
    scale: ExperimentScale,
    seed: u64,
) -> Vec<NeuronSweepPoint> {
    sizes
        .iter()
        .map(|&n| {
            let mut snn = SnnNetwork::new(
                train.input_dim(),
                train.num_classes(),
                SnnParams::tuned(n),
                seed,
            );
            snn.set_stdp_delta(scale.stdp_delta());
            snn.train_stdp(train, scale.stdp_epochs());
            snn.self_label(train);
            NeuronSweepPoint {
                neurons: n,
                accuracy: snn.evaluate(test).accuracy(),
            }
        })
        .collect()
}

/// One point of the Figure 6 bridging sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BridgePoint {
    /// Sigmoid slope `a` (`None` = the step function reference).
    pub slope: Option<f64>,
    /// Test error rate (1 − accuracy).
    pub error_rate: f64,
}

/// Figures 5–6: train/test the MLP under `f_a` for each slope plus the
/// step function, returning error rates.
pub fn sigmoid_bridge_sweep(
    train: &Dataset,
    test: &Dataset,
    slopes: &[f64],
    hidden: usize,
    epochs: usize,
    seed: u64,
) -> Vec<BridgePoint> {
    let mut points = Vec::new();
    for &a in slopes {
        let mut mlp = Mlp::new(
            &[train.input_dim(), hidden, train.num_classes()],
            Activation::sigmoid_slope(a),
            seed,
        )
        .expect("valid topology");
        Trainer::new(TrainConfig {
            epochs,
            // The gradient carries a slope factor (capped at 4, see
            // Activation::derivative_from_output); keep the effective
            // step size constant across the family.
            learning_rate: 0.3 / a.min(nc_mlp::Activation::SURROGATE_SLOPE_CAP),
            ..TrainConfig::default()
        })
        .fit(&mut mlp, train);
        points.push(BridgePoint {
            slope: Some(a),
            error_rate: 1.0 - metrics::evaluate(&mlp, test).accuracy(),
        });
    }
    // The step-function reference: straight-through training (forward
    // and surrogate gradients through the steepest sigmoid of the
    // family), deployed with the true [0/1] step — the standard recipe
    // for binary-activation networks, and the honest hardware scenario:
    // the silicon comparator cannot be trained through directly.
    let mut step_mlp = Mlp::new(
        &[train.input_dim(), hidden, train.num_classes()],
        Activation::sigmoid_slope(16.0),
        seed,
    )
    .expect("valid topology");
    Trainer::new(TrainConfig {
        epochs,
        learning_rate: 0.3 / nc_mlp::Activation::SURROGATE_SLOPE_CAP,
        ..TrainConfig::default()
    })
    .fit(&mut step_mlp, train);
    step_mlp.set_activation(Activation::Step);
    points.push(BridgePoint {
        slope: None,
        error_rate: 1.0 - metrics::evaluate(&step_mlp, test).accuracy(),
    });
    points
}

/// One point of the Figure 14 coding sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodingPoint {
    /// The input code under test.
    pub scheme: CodingScheme,
    /// Layer size.
    pub neurons: usize,
    /// Test accuracy.
    pub accuracy: f64,
}

/// Figure 14: STDP accuracy per coding scheme per layer size.
pub fn coding_sweep(
    train: &Dataset,
    test: &Dataset,
    schemes: &[CodingScheme],
    sizes: &[usize],
    scale: ExperimentScale,
    seed: u64,
) -> Vec<CodingPoint> {
    let mut points = Vec::new();
    for &scheme in schemes {
        for &n in sizes {
            let mut snn = SnnNetwork::with_coding(
                train.input_dim(),
                train.num_classes(),
                SnnParams::tuned(n),
                scheme,
                seed,
            );
            snn.set_stdp_delta(scale.stdp_delta());
            snn.train_stdp(train, scale.stdp_epochs());
            snn.self_label(train);
            points.push(CodingPoint {
                scheme,
                neurons: n,
                accuracy: snn.evaluate(test).accuracy(),
            });
        }
    }
    points
}

/// Convenience: generate a workload and run the MLP sweep in one call
/// (used by the `fig8` binary).
pub fn fig8_mlp(workload: Workload, scale: ExperimentScale, widths: &[usize]) -> Vec<NeuronSweepPoint> {
    let (train, test) = workload.generate(scale);
    mlp_neuron_sweep(&train, &test, widths, scale.mlp_epochs(), 0xF168)
}

/// Convenience: generate a workload and run the SNN sweep in one call.
pub fn fig8_snn(workload: Workload, scale: ExperimentScale, sizes: &[usize]) -> Vec<NeuronSweepPoint> {
    let (train, test) = workload.generate(scale);
    snn_neuron_sweep(&train, &test, sizes, scale, 0xF168)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dataset::{digits::DigitsSpec, Difficulty};

    fn tiny() -> (Dataset, Dataset) {
        DigitsSpec {
            train: 250,
            test: 80,
            seed: 13,
            difficulty: Difficulty::default(),
        }
        .generate()
    }

    #[test]
    fn mlp_sweep_improves_with_width() {
        let (train, test) = tiny();
        let pts = mlp_neuron_sweep(&train, &test, &[2, 24], 8, 1);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].accuracy > pts[0].accuracy,
            "wider net should win: {pts:?}"
        );
    }

    #[test]
    fn snn_sweep_improves_with_size() {
        let (train, test) = tiny();
        let pts = snn_neuron_sweep(&train, &test, &[5, 40], ExperimentScale::Quick, 1);
        assert!(
            pts[1].accuracy >= pts[0].accuracy,
            "larger layer should win: {pts:?}"
        );
    }

    #[test]
    fn bridge_sweep_includes_the_step_reference() {
        let (train, test) = tiny();
        let pts = sigmoid_bridge_sweep(&train, &test, &[1.0, 8.0], 12, 6, 1);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2].slope, None);
        assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.error_rate)));
    }

    #[test]
    fn coding_sweep_covers_the_grid() {
        let (train, test) = tiny();
        let train = train.take(120);
        let pts = coding_sweep(
            &train,
            &test,
            &[CodingScheme::PoissonRate, CodingScheme::TimeToFirstSpike],
            &[8],
            ExperimentScale::Quick,
            1,
        );
        assert_eq!(pts.len(), 2);
    }
}
