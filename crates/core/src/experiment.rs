//! Workloads, experiment scales, and the Table 3 accuracy comparison.

use crate::engine::{Engine, Experiment, Job, ModelSpec};
use crate::error::Error;
use nc_dataset::model::FitBudget;
use nc_dataset::{digits::DigitsSpec, shapes::ShapesSpec, spoken::SpokenSpec, Dataset, Difficulty};
use nc_mlp::Activation;
use nc_snn::SnnParams;

/// The three benchmark families of the paper (§3.1, §4.5), realized by
/// the synthetic generators of `nc-dataset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Workload {
    /// MNIST stand-in: 28×28 digits (the driving example).
    Digits,
    /// MPEG-7 stand-in: 28×28 silhouettes.
    Shapes,
    /// Spoken Arabic Digits stand-in: 13×13 cepstral patches.
    Spoken,
}

impl Workload {
    /// The paper's optimized topologies per workload (§3.1, §4.5):
    /// `(mlp_hidden, snn_neurons)`.
    pub fn paper_topology(&self) -> (usize, usize) {
        match self {
            Workload::Digits => (100, 300), // 28x28-100-10 / 28x28-300
            Workload::Shapes => (15, 90),   // 28x28-15-10 / 28x28-90
            Workload::Spoken => (60, 90),   // 13x13-60-10 / 13x13-90
        }
    }

    /// Generates `(train, test)` at the given scale.
    ///
    /// Each workload's difficulty is chosen so the MLP lands near the
    /// paper's operating point: digits use [`Difficulty::hard`] (MLP
    /// ≈97% vs the paper's 97.65% — the default jitter saturates at
    /// 100%), shapes use the default (paper MPEG-7 MLP: 99.7%), spoken
    /// uses hard (paper SAD MLP: 91.35%).
    pub fn generate(&self, scale: ExperimentScale) -> (Dataset, Dataset) {
        let (train, test) = scale.sizes();
        let difficulty = match self {
            Workload::Digits | Workload::Spoken => Difficulty::hard(),
            Workload::Shapes => Difficulty::default(),
        };
        match self {
            Workload::Digits => DigitsSpec {
                train,
                test,
                seed: 0xD161,
                difficulty,
            }
            .generate(),
            Workload::Shapes => ShapesSpec {
                train,
                test,
                seed: 0x5A7E,
                difficulty,
            }
            .generate(),
            Workload::Spoken => SpokenSpec {
                train,
                test,
                seed: 0x5AD1,
                difficulty,
            }
            .generate(),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Workload::Digits => write!(f, "digits (MNIST stand-in)"),
            Workload::Shapes => write!(f, "shapes (MPEG-7 stand-in)"),
            Workload::Spoken => write!(f, "spoken (SAD stand-in)"),
        }
    }
}

/// How much compute to spend. The paper trains on 60 000 MNIST images;
/// [`ExperimentScale::Full`] matches that volume, the smaller scales
/// trade a little accuracy for speed (the comparative structure is
/// stable across scales — asserted by the integration tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExperimentScale {
    /// Seconds, for tests and CI: 300 train / 100 test, few epochs.
    Tiny,
    /// ~1 minute on a laptop: 1 000 train / 300 test.
    Quick,
    /// Several minutes: 3 000 train / 800 test (the default for the
    /// regeneration binaries).
    Standard,
    /// Paper-volume: 10 000 train / 2 000 test with more epochs (the
    /// synthetic task saturates before MNIST's 60 000 images would).
    Full,
}

impl ExperimentScale {
    /// Stable lower-case name, as accepted by `--scale` and emitted in
    /// bench records.
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentScale::Tiny => "tiny",
            ExperimentScale::Quick => "quick",
            ExperimentScale::Standard => "standard",
            ExperimentScale::Full => "full",
        }
    }

    /// `(train, test)` sample counts.
    pub fn sizes(&self) -> (usize, usize) {
        match self {
            ExperimentScale::Tiny => (300, 100),
            ExperimentScale::Quick => (1_000, 300),
            ExperimentScale::Standard => (3_000, 800),
            ExperimentScale::Full => (10_000, 2_000),
        }
    }

    /// MLP training epochs.
    pub fn mlp_epochs(&self) -> usize {
        match self {
            ExperimentScale::Tiny => 8,
            ExperimentScale::Quick => 10,
            ExperimentScale::Standard => 25,
            ExperimentScale::Full => 50,
        }
    }

    /// STDP passes over the training set (chosen so `epochs × train`
    /// approximates the paper's 60 000-presentation volume).
    pub fn stdp_epochs(&self) -> usize {
        match self {
            ExperimentScale::Tiny => 4,
            ExperimentScale::Quick => 8,
            ExperimentScale::Standard => 15,
            ExperimentScale::Full => 20,
        }
    }

    /// STDP weight-update magnitude (the silicon uses ±1 at full
    /// presentation volume; smaller runs use proportionally larger steps,
    /// see `DESIGN.md` §6).
    pub fn stdp_delta(&self) -> i16 {
        match self {
            ExperimentScale::Tiny => 6,
            ExperimentScale::Quick => 4,
            ExperimentScale::Standard => 2,
            ExperimentScale::Full => 1,
        }
    }

    /// SNN+BP training epochs.
    pub fn bp_snn_epochs(&self) -> usize {
        match self {
            ExperimentScale::Tiny => 8,
            ExperimentScale::Quick => 10,
            ExperimentScale::Standard => 20,
            ExperimentScale::Full => 30,
        }
    }
}

/// The Table 3 measurement: accuracy of every model variant on one
/// workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyResults {
    /// Which workload was measured.
    pub workload: &'static str,
    /// SNN+STDP with the full LIF timing path (paper: 91.82%).
    pub snn_stdp_lif: f64,
    /// SNN+STDP evaluated through the simplified SNNwot path
    /// (paper: 90.85%).
    pub snn_stdp_wot: f64,
    /// SNN trained with back-propagation (paper: 95.40%).
    pub snn_bp: f64,
    /// Floating-point MLP+BP (paper: 97.65%).
    pub mlp_bp: f64,
    /// 8-bit fixed-point MLP (paper §4.2.1: 96.65%).
    pub mlp_bp_quantized: f64,
}

impl AccuracyResults {
    /// Formats the Table 3 block with the paper's values alongside.
    pub fn to_table(&self) -> String {
        let paper = crate::reference::PAPER_TABLE3;
        let mut s = String::new();
        s.push_str(&format!("Table 3 — accuracy on {}\n", self.workload));
        s.push_str("model                       measured   paper(MNIST)\n");
        let rows = [
            (
                "SNN+STDP - LIF (SNNwt)",
                self.snn_stdp_lif,
                paper.snn_stdp_lif,
            ),
            (
                "SNN+STDP - Simplified (SNNwot)",
                self.snn_stdp_wot,
                paper.snn_stdp_wot,
            ),
            ("SNN+BP", self.snn_bp, paper.snn_bp),
            ("MLP+BP", self.mlp_bp, paper.mlp_bp),
            (
                "MLP+BP (8-bit fixed point)",
                self.mlp_bp_quantized,
                paper.mlp_bp_quantized,
            ),
        ];
        for (name, got, reference) in rows {
            s.push_str(&format!(
                "{name:<30} {:>6.2}%   {:>6.2}%\n",
                got * 100.0,
                reference * 100.0
            ));
        }
        s
    }

    /// The paper's central ordering claim: MLP > SNN+BP > SNN+STDP, and
    /// SNNwot within ~2 points of SNNwt.
    pub fn ordering_holds(&self) -> bool {
        self.mlp_bp >= self.snn_bp
            && self.snn_bp >= self.snn_stdp_lif - 0.02
            && (self.snn_stdp_lif - self.snn_stdp_wot).abs() < 0.08
    }
}

/// Runs the Table 3 experiment: trains all model variants on one
/// workload. Each variant is an independent engine job — the quantized
/// MLP and SNNwot train their own masters from the same seed, which is
/// bit-identical to deriving them from the shared sequential master.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyComparison {
    workload: Workload,
    /// Pinned scale; `None` defers to the engine's scale.
    scale: Option<ExperimentScale>,
    /// Override the SNN neuron count (defaults to the paper topology).
    pub snn_neurons: Option<usize>,
    /// Override the MLP hidden width (defaults to the paper topology).
    pub mlp_hidden: Option<usize>,
    /// RNG seed for all model initializations.
    pub seed: u64,
}

impl AccuracyComparison {
    /// Creates the experiment with the paper's topology for the
    /// workload, pinned to an explicit scale.
    pub fn new(workload: Workload, scale: ExperimentScale) -> Self {
        AccuracyComparison {
            workload,
            scale: Some(scale),
            snn_neurons: None,
            mlp_hidden: None,
            seed: 0xC0FFEE,
        }
    }

    /// Creates the experiment at the engine's scale (the usual way to
    /// build one for [`Engine::run`]).
    pub fn on(workload: Workload) -> Self {
        AccuracyComparison {
            workload,
            scale: None,
            snn_neurons: None,
            mlp_hidden: None,
            seed: 0xC0FFEE,
        }
    }

    /// The workload under test.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The scale this experiment resolves to on a given engine.
    pub fn scale_on(&self, engine: &Engine) -> ExperimentScale {
        self.scale.unwrap_or_else(|| engine.scale())
    }

    /// The five Table 3 model variants as job specs, in result order:
    /// `[LIF, wot, SNN+BP, MLP, quantized MLP]`.
    fn model_specs(&self, inputs: usize, classes: usize) -> Vec<ModelSpec> {
        let (paper_hidden, paper_neurons) = self.workload.paper_topology();
        let hidden = self.mlp_hidden.unwrap_or(paper_hidden);
        let neurons = self.snn_neurons.unwrap_or(paper_neurons);
        let mlp_sizes = vec![inputs, hidden, classes];
        vec![
            ModelSpec::Snn {
                inputs,
                classes,
                params: SnnParams::tuned(neurons),
                seed: self.seed,
            },
            ModelSpec::Wot {
                inputs,
                classes,
                params: SnnParams::tuned(neurons),
                seed: self.seed,
            },
            ModelSpec::BpSnn {
                inputs,
                classes,
                params: SnnParams::tuned(neurons),
                seed: self.seed,
            },
            ModelSpec::Mlp {
                sizes: mlp_sizes.clone(),
                activation: Activation::sigmoid(),
                seed: self.seed,
            },
            ModelSpec::QuantizedMlp {
                sizes: mlp_sizes,
                activation: Activation::sigmoid(),
                seed: self.seed,
            },
        ]
    }
}

impl Experiment for AccuracyComparison {
    type Output = AccuracyResults;

    fn run(&self, engine: &Engine) -> Result<AccuracyResults, Error> {
        let scale = self.scale_on(engine);
        let data = engine.dataset_at(self.workload, scale);
        let (train, test) = (&data.0, &data.1);
        if train.is_empty() || test.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let workload_name = match self.workload {
            Workload::Digits => "digits",
            Workload::Shapes => "shapes",
            Workload::Spoken => "spoken",
        };

        let jobs: Vec<Job<(ModelSpec, FitBudget)>> = self
            .model_specs(train.input_dim(), train.num_classes())
            .into_iter()
            .map(|spec| {
                let budget = spec.budget(scale);
                let passes = match spec {
                    ModelSpec::Snn { .. } | ModelSpec::Wot { .. } => budget.stdp_epochs,
                    _ => budget.epochs,
                };
                Job::new(
                    format!("table3/{workload_name}/{}", spec.display_name()),
                    (train.len() * passes + test.len()) as u64,
                    (spec, budget),
                )
            })
            .collect();

        let accuracies = engine.train_and_score(&data, jobs);

        let mut it = accuracies.into_iter();
        // nc-lint: allow(R5, reason = "the batch above schedules exactly five jobs")
        let mut next = || it.next().expect("five jobs were scheduled");
        Ok(AccuracyResults {
            workload: workload_name,
            snn_stdp_lif: next()?,
            snn_stdp_wot: next()?,
            snn_bp: next()?,
            mlp_bp: next()?,
            mlp_bp_quantized: next()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topologies_match_section_4_5() {
        assert_eq!(Workload::Digits.paper_topology(), (100, 300));
        assert_eq!(Workload::Shapes.paper_topology(), (15, 90));
        assert_eq!(Workload::Spoken.paper_topology(), (60, 90));
    }

    #[test]
    fn workloads_generate_correct_geometry() {
        let (train, _) = Workload::Spoken.generate(ExperimentScale::Quick);
        assert_eq!(train.input_dim(), 169);
        let (train, _) = Workload::Shapes.generate(ExperimentScale::Quick);
        assert_eq!(train.input_dim(), 784);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(ExperimentScale::Tiny.sizes().0 < ExperimentScale::Quick.sizes().0);
        assert!(ExperimentScale::Quick.sizes().0 < ExperimentScale::Standard.sizes().0);
        assert!(ExperimentScale::Standard.sizes().0 < ExperimentScale::Full.sizes().0);
    }

    #[test]
    fn quick_comparison_preserves_the_ordering_on_a_small_config() {
        // A miniature end-to-end run (seconds in debug): small topology,
        // tiny data, but MLP > SNN must hold and the engine must drive
        // every variant through the unified Model interface.
        let engine = Engine::sequential(ExperimentScale::Tiny);
        let mut cmp = AccuracyComparison::on(Workload::Digits);
        cmp.snn_neurons = Some(30);
        cmp.mlp_hidden = Some(16);
        cmp.seed = 7;
        let results = engine.run(&cmp).unwrap();
        assert!(
            results.mlp_bp > results.snn_stdp_lif,
            "MLP {} must beat SNN {}",
            results.mlp_bp,
            results.snn_stdp_lif
        );
        assert!(
            results.snn_stdp_lif > 0.2,
            "SNN should be well above chance: {}",
            results.snn_stdp_lif
        );
        // One engine job per model variant, all labeled.
        let stats = engine.stats();
        assert_eq!(stats.len(), 5);
        assert!(stats.iter().all(|s| s.label.starts_with("table3/digits/")));
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let r = AccuracyResults {
            workload: "digits",
            snn_stdp_lif: 0.9,
            snn_stdp_wot: 0.89,
            snn_bp: 0.95,
            mlp_bp: 0.97,
            mlp_bp_quantized: 0.96,
        };
        let t = r.to_table();
        assert!(t.contains("SNN+STDP - LIF"));
        assert!(t.contains("MLP+BP"));
        assert!(r.ordering_holds());
    }
}
