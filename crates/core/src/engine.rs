//! The parallel experiment engine.
//!
//! Every experiment in this repository decomposes into *independent
//! trainings*: the five Table 3 model variants, the per-width points of
//! the Figure 8 sweep, the per-slope points of the Figure 6 bridge, the
//! per-scheme cells of Figure 14. The engine schedules those jobs across
//! a configurable thread pool with a hard determinism contract:
//!
//! 1. **Jobs own their randomness.** A job's payload carries every seed
//!    it needs; no job reads a shared RNG or any other mutable shared
//!    state. Training a model twice from the same payload is
//!    bit-identical.
//! 2. **Results are collected by job index**, not completion order, so
//!    the output `Vec` is the same whatever the interleaving.
//!
//! Together these make `threads = N` reproduce `threads = 1` bit for
//! bit — asserted by the integration tests.
//!
//! The engine also owns a [`DatasetCache`] so each `(workload, scale)`
//! pair is generated once and shared via [`Arc`] between jobs, and it
//! records per-job wall-clock and throughput ([`JobStat`]) for the
//! plain-text [`Engine::summary`].
//!
//! # Examples
//!
//! ```no_run
//! use nc_core::{AccuracyComparison, Engine, ExperimentScale, Workload};
//!
//! let engine = Engine::builder()
//!     .scale(ExperimentScale::Quick)
//!     .threads(4)
//!     .build();
//! let results = engine.run(&AccuracyComparison::on(Workload::Digits)).unwrap();
//! println!("{}", results.to_table());
//! println!("{}", engine.summary());
//! ```

use crate::error::Error;
use crate::experiment::{ExperimentScale, Workload};
use nc_dataset::model::{FitBudget, Model};
use nc_dataset::Dataset;
use nc_mlp::{metrics, Activation, Mlp, MlpError, QuantizedMlp, TrainConfig, Trainer};
use nc_obs::{NullRecorder, Recorder, Span};
use nc_snn::bp_hybrid::BpSnn;
use nc_snn::coding::CodingScheme;
use nc_snn::{SnnNetwork, SnnParams, WotSnn};
use nc_substrate::stats::Confusion;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
// nc-lint: allow(R3, reason = "per-job wall-clock is reported as observability metadata only; no result depends on it")
use std::time::{Duration, Instant};

/// A unit of schedulable work: a label and throughput hint for
/// observability, plus the payload the worker consumes.
#[derive(Debug)]
pub struct Job<I> {
    /// Display label for the job summary (e.g. `table3/digits/MLP+BP`).
    pub label: String,
    /// Samples the job will process (presentations + evaluations), used
    /// for throughput reporting; 0 = unknown.
    pub samples: u64,
    /// The worker's input. Must carry every seed the job needs — the
    /// determinism contract forbids reading shared mutable state.
    pub payload: I,
}

impl<I> Job<I> {
    /// Creates a job.
    pub fn new(label: impl Into<String>, samples: u64, payload: I) -> Self {
        Job {
            label: label.into(),
            samples,
            payload,
        }
    }
}

/// Wall-clock record of one completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStat {
    /// The job's label.
    pub label: String,
    /// Wall-clock time the job took.
    pub wall: Duration,
    /// Samples processed (0 = unknown).
    pub samples: u64,
}

impl JobStat {
    /// Throughput in samples per second, if the sample count is known
    /// and the job took measurable time.
    pub fn samples_per_sec(&self) -> Option<f64> {
        let secs = self.wall.as_secs_f64();
        if self.samples == 0 || secs <= 0.0 {
            None
        } else {
            Some(self.samples as f64 / secs)
        }
    }
}

/// Acquires a mutex, recovering the inner value if a previous holder
/// panicked. Every critical section in this module is a plain read or
/// write of an `Option`/collection (no multi-step invariants), so a
/// poisoned lock's contents are still consistent and recovery is
/// strictly better than propagating the panic.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a panic payload as a message: the common `&str` / `String`
/// payloads verbatim, anything else as a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// Per-job failure policy for [`Engine::run_jobs_supervised`].
///
/// Retries are *deterministic*: each attempt of each job gets a fresh
/// seed derived purely from `(retry_seed, job index, attempt index)`,
/// so a retried schedule is reproducible at any thread count and no
/// wall clock is consulted anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Supervision {
    /// Extra attempts after the first (0 = fail fast on first panic).
    pub max_retries: u32,
    /// Root seed the per-attempt seeds are derived from.
    pub retry_seed: u64,
    /// Maximum `Job::samples` a single job may declare; jobs over
    /// budget are refused *before running* — a deterministic stand-in
    /// for a wall-clock deadline, measured in work instead of time.
    pub sample_budget: Option<u64>,
}

impl Supervision {
    /// A policy with `max_retries` deterministic retries derived from
    /// `retry_seed`, and no sample budget.
    pub fn with_retries(max_retries: u32, retry_seed: u64) -> Self {
        Supervision {
            max_retries,
            retry_seed,
            sample_budget: None,
        }
    }

    /// The seed for one attempt of one job — a pure function of the
    /// policy and the `(job, attempt)` pair, so any schedule (and any
    /// thread count) derives the same seed for the same retry.
    pub fn attempt_seed(&self, job: usize, attempt: u32) -> u64 {
        let job = u64::try_from(job).unwrap_or(u64::MAX);
        let mut sm = nc_substrate::rng::SplitMix64::new(
            self.retry_seed
                .wrapping_add(job.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9)),
        );
        sm.next_u64()
    }

    /// The same policy with its `retry_seed` re-derived for one retry
    /// *round* — a pure function of `(policy, salt)`, used by layers
    /// that stack their own bounded retries on top of the engine's
    /// (nc-serve's batch retry rounds) so each round draws decorrelated
    /// attempt seeds without consulting a clock.
    #[must_use]
    pub fn jittered(&self, salt: u64) -> Supervision {
        let mut sm = nc_substrate::rng::SplitMix64::new(
            self.retry_seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // Burn one word so a salt equal to another policy's seed still
        // diverges immediately (the FaultPlan::stream idiom).
        let first = sm.next_u64();
        Supervision {
            max_retries: self.max_retries,
            retry_seed: first,
            sample_budget: self.sample_budget,
        }
    }
}

/// One attempt of a supervised job, passed to the worker closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// 0 for the first try, 1.. for retries.
    pub index: u32,
    /// The attempt's derived seed (see [`Supervision::attempt_seed`]).
    /// Workers that re-randomize per retry should mix this into their
    /// job-owned seeds; workers that don't can ignore it.
    pub seed: u64,
}

/// Caches generated datasets so each `(workload, scale)` pair is
/// produced once per engine and shared between jobs via [`Arc`].
///
/// Generation is deterministic (a pure function of the spec), so a
/// cache hit and a fresh generation are indistinguishable except in
/// time and memory.
#[derive(Debug, Default)]
pub struct DatasetCache {
    map: Mutex<BTreeMap<(Workload, ExperimentScale), SharedData>>,
}

/// A cached `(train, test)` pair, shared between jobs.
pub type SharedData = Arc<(Dataset, Dataset)>;

impl DatasetCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the `(train, test)` pair for the key, generating it on
    /// first use. Repeated calls return the same [`Arc`].
    pub fn get(&self, workload: Workload, scale: ExperimentScale) -> Arc<(Dataset, Dataset)> {
        let key = (workload, scale);
        if let Some(hit) = lock_or_recover(&self.map).get(&key) {
            return Arc::clone(hit);
        }
        // Generate outside the lock so unrelated keys do not serialize;
        // if two threads race on the same key the first insert wins and
        // the duplicate is dropped (generation is deterministic, so the
        // contents are identical either way).
        let fresh = Arc::new(workload.generate(scale));
        Arc::clone(lock_or_recover(&self.map).entry(key).or_insert(fresh))
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        lock_or_recover(&self.map).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Configures an [`Engine`].
#[derive(Clone)]
pub struct EngineBuilder {
    threads: Option<usize>,
    scale: ExperimentScale,
    recorder: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("threads", &self.threads)
            .field("scale", &self.scale)
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl EngineBuilder {
    /// Worker thread count. Defaults to the host's available
    /// parallelism. A value of 1 runs jobs inline, in order.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Default experiment scale for experiments that do not pin one.
    pub fn scale(mut self, scale: ExperimentScale) -> Self {
        self.scale = scale;
        self
    }

    /// The observability sink every job and trainer reports to. Defaults
    /// to the disabled [`NullRecorder`], which costs nothing.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Engine {
        let threads = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Engine {
            threads,
            scale: self.scale,
            cache: DatasetCache::new(),
            stats: Mutex::new(Vec::new()),
            recorder: self.recorder.unwrap_or_else(|| Arc::new(NullRecorder)),
        }
    }
}

/// The work-scheduling execution engine (see the module docs).
pub struct Engine {
    threads: usize,
    scale: ExperimentScale,
    cache: DatasetCache,
    stats: Mutex<Vec<JobStat>>,
    recorder: Arc<dyn Recorder>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("threads", &self.threads)
            .field("scale", &self.scale)
            .field("cache", &self.cache)
            .field("recorder_enabled", &self.recorder.enabled())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts configuring an engine. Defaults: host parallelism,
    /// [`ExperimentScale::Standard`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            threads: None,
            scale: ExperimentScale::Standard,
            recorder: None,
        }
    }

    /// A single-threaded engine at the given scale — the reference
    /// configuration every parallel run must reproduce bit for bit.
    pub fn sequential(scale: ExperimentScale) -> Engine {
        Engine::builder().threads(1).scale(scale).build()
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine's default experiment scale.
    pub fn scale(&self) -> ExperimentScale {
        self.scale
    }

    /// The engine's observability sink ([`NullRecorder`] by default).
    pub fn recorder(&self) -> &dyn Recorder {
        self.recorder.as_ref()
    }

    /// The engine's observability sink as a cloneable handle, for
    /// passing into jobs that outlive a borrow of `self`.
    pub fn recorder_handle(&self) -> Arc<dyn Recorder> {
        Arc::clone(&self.recorder)
    }

    /// The `(train, test)` datasets for a workload at the engine's
    /// scale, generated once and [`Arc`]-shared.
    pub fn dataset(&self, workload: Workload) -> Arc<(Dataset, Dataset)> {
        self.cache.get(workload, self.scale)
    }

    /// Like [`Engine::dataset`] with an explicit scale.
    pub fn dataset_at(
        &self,
        workload: Workload,
        scale: ExperimentScale,
    ) -> Arc<(Dataset, Dataset)> {
        self.cache.get(workload, scale)
    }

    /// Runs an experiment: `engine.run(&e)` ≡ `e.run(&engine)`.
    ///
    /// # Errors
    ///
    /// Propagates the experiment's [`Error`].
    pub fn run<E: Experiment + ?Sized>(&self, experiment: &E) -> Result<E::Output, Error> {
        experiment.run(self)
    }

    /// Executes independent jobs across the thread pool and returns
    /// their results **in job order**, whatever order they completed in.
    ///
    /// Work stealing is a single atomic claim counter: each worker
    /// repeatedly claims the next unclaimed index. With `threads = 1`
    /// the jobs run inline in order — the reference schedule that the
    /// determinism contract guarantees every other schedule matches.
    ///
    /// # Panics
    ///
    /// If a job panics the panic is propagated to the caller once all
    /// workers have stopped.
    pub fn run_jobs<I, O>(&self, jobs: Vec<Job<I>>, work: impl Fn(I) -> O + Sync) -> Vec<O>
    where
        I: Send,
        O: Send,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut labels = Vec::with_capacity(n);
        let mut sample_counts = Vec::with_capacity(n);
        let inputs: Vec<Mutex<Option<I>>> = jobs
            .into_iter()
            .map(|job| {
                labels.push(job.label);
                sample_counts.push(job.samples);
                Mutex::new(Some(job.payload))
            })
            .collect();
        let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let walls: Vec<Mutex<Option<Duration>>> = (0..n).map(|_| Mutex::new(None)).collect();

        let run_one = |index: usize| {
            let payload = lock_or_recover(&inputs[index])
                .take()
                // nc-lint: allow(R5, reason = "run_one is called exactly once per index; an absent payload is an engine bug worth halting on")
                .expect("job claimed twice");
            let _span = Span::enter(self.recorder.as_ref(), &labels[index]);
            self.recorder.add("engine.jobs", 1);
            // nc-lint: allow(R3, reason = "wall-clock span feeds JobStat reporting only")
            let started = Instant::now();
            let output = work(payload);
            *lock_or_recover(&walls[index]) = Some(started.elapsed());
            *lock_or_recover(&results[index]) = Some(output);
        };

        let workers = self.threads.min(n);
        if workers <= 1 {
            for index in 0..n {
                run_one(index);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        run_one(index);
                    });
                }
            });
        }

        // Record stats as one contiguous batch, in job order.
        let batch: Vec<JobStat> = labels
            .into_iter()
            .zip(&sample_counts)
            .zip(&walls)
            .map(|((label, &samples), wall)| JobStat {
                label,
                // nc-lint: allow(R5, reason = "every job writes its wall slot before the batch joins")
                wall: lock_or_recover(wall).expect("job completed"),
                samples,
            })
            .collect();
        lock_or_recover(&self.stats).extend(batch);

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    // nc-lint: allow(R5, reason = "every job writes its result slot before the batch joins")
                    .expect("job completed")
            })
            .collect()
    }

    /// Like [`Engine::run_jobs`], but *supervised*: each job runs under
    /// [`catch_unwind`], panics are contained to the job that raised
    /// them, and the per-job [`Supervision`] policy governs bounded
    /// deterministic retries and an optional sample budget. Returns one
    /// `Result` per job, in job order — sibling jobs always complete
    /// even when one fails every attempt.
    ///
    /// The worker takes the payload by reference (it may be consulted
    /// again on retry) plus the [`Attempt`] descriptor carrying the
    /// deterministically derived per-attempt seed. Panic and retry
    /// counts are reported to the recorder as `engine.panics` /
    /// `engine.retries`.
    ///
    /// [`catch_unwind`]: std::panic::catch_unwind
    pub fn run_jobs_supervised<I, O>(
        &self,
        jobs: Vec<Job<I>>,
        supervision: Supervision,
        work: impl Fn(&I, Attempt) -> O + Sync,
    ) -> Vec<Result<O, Error>>
    where
        I: Send + Sync,
        O: Send,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut labels = Vec::with_capacity(n);
        let mut sample_counts = Vec::with_capacity(n);
        let inputs: Vec<I> = jobs
            .into_iter()
            .map(|job| {
                labels.push(job.label);
                sample_counts.push(job.samples);
                job.payload
            })
            .collect();
        let results: Vec<Mutex<Option<Result<O, Error>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let walls: Vec<Mutex<Duration>> = (0..n).map(|_| Mutex::new(Duration::ZERO)).collect();

        let run_one = |index: usize| {
            let _span = Span::enter(self.recorder.as_ref(), &labels[index]);
            self.recorder.add("engine.jobs", 1);
            // Deterministic pre-flight: a job over the sample budget is
            // refused without running, at any thread count.
            if let Some(budget) = supervision.sample_budget {
                if sample_counts[index] > budget {
                    *lock_or_recover(&results[index]) = Some(Err(Error::BudgetExceeded {
                        job: labels[index].clone(),
                        samples: sample_counts[index],
                        budget,
                    }));
                    return;
                }
            }
            // nc-lint: allow(R3, reason = "wall-clock span feeds JobStat reporting only")
            let started = Instant::now();
            let mut outcome = None;
            for attempt in 0..=supervision.max_retries {
                if attempt > 0 {
                    self.recorder.add("engine.retries", 1);
                }
                let descriptor = Attempt {
                    index: attempt,
                    seed: supervision.attempt_seed(index, attempt),
                };
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    work(&inputs[index], descriptor)
                })) {
                    Ok(output) => {
                        outcome = Some(Ok(output));
                        break;
                    }
                    Err(payload) => {
                        self.recorder.add("engine.panics", 1);
                        outcome = Some(Err(Error::JobPanicked {
                            job: labels[index].clone(),
                            payload: panic_message(payload.as_ref()),
                        }));
                    }
                }
            }
            *lock_or_recover(&walls[index]) = started.elapsed();
            // nc-lint: allow(R5, reason = "the attempt loop always runs at least once and writes the outcome")
            *lock_or_recover(&results[index]) = Some(outcome.expect("at least one attempt ran"));
        };

        let workers = self.threads.min(n);
        if workers <= 1 {
            for index in 0..n {
                run_one(index);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        run_one(index);
                    });
                }
            });
        }

        let batch: Vec<JobStat> = labels
            .into_iter()
            .zip(&sample_counts)
            .zip(&walls)
            .map(|((label, &samples), wall)| JobStat {
                label,
                wall: *lock_or_recover(wall),
                samples,
            })
            .collect();
        lock_or_recover(&self.stats).extend(batch);

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    // nc-lint: allow(R5, reason = "every supervised job writes its result slot before the batch joins")
                    .expect("job completed")
            })
            .collect()
    }

    /// The standard experiment job: build one model per spec, fit it on
    /// the shared training set within its budget, and score it on the
    /// shared test set. Returns accuracies in job order.
    pub fn train_and_score(
        &self,
        data: &Arc<(Dataset, Dataset)>,
        jobs: Vec<Job<(ModelSpec, FitBudget)>>,
    ) -> Vec<Result<f64, Error>> {
        let data = Arc::clone(data);
        let recorder = Arc::clone(&self.recorder);
        // One contiguous evaluation slab shared by every job: the models
        // score through the batched kernel path, not per-sample dispatch.
        let slab = Arc::new(nc_dataset::PixelSlab::from_dataset(&data.1));
        self.run_jobs(jobs, move |(spec, budget): (ModelSpec, FitBudget)| {
            let mut model = spec.build()?;
            model.fit_observed(&data.0, &budget, recorder.as_ref())?;
            let accuracy = model.evaluate_batch(&slab.batch()).accuracy();
            if recorder.enabled() {
                recorder.observe("engine.accuracy", accuracy);
            }
            Ok(accuracy)
        })
    }

    /// A snapshot of every job stat recorded so far, in completion-batch
    /// order (job order within each batch).
    pub fn stats(&self) -> Vec<JobStat> {
        lock_or_recover(&self.stats).clone()
    }

    /// Renders the per-job wall-clock / throughput summary as a
    /// plain-text table.
    pub fn summary(&self) -> String {
        let stats = self.stats();
        if stats.is_empty() {
            return String::from("engine: no jobs recorded\n");
        }
        let mut table = crate::report::TextTable::new(&["job", "wall", "samples/s"]);
        let mut total = Duration::ZERO;
        for stat in &stats {
            total += stat.wall;
            table.row_owned(vec![
                stat.label.clone(),
                format_duration(stat.wall),
                stat.samples_per_sec()
                    .map_or_else(|| String::from("-"), |r| format!("{r:.0}")),
            ]);
        }
        table.row_owned(vec![
            format!("total ({} jobs, {} threads)", stats.len(), self.threads),
            format_duration(total),
            String::new(),
        ]);
        table.render()
    }
}

fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else {
        format!("{:.1}ms", secs * 1e3)
    }
}

/// An experiment that runs on an [`Engine`]: the unified entry point
/// for every table and figure reproduction.
pub trait Experiment {
    /// The experiment's result type.
    type Output;

    /// Runs the experiment, scheduling its independent trainings on the
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on invalid configuration or model failure.
    fn run(&self, engine: &Engine) -> Result<Self::Output, Error>;
}

/// A buildable description of one model variant — the payload format
/// experiment jobs use, so constructing a model happens inside the job
/// on the worker thread.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// Floating-point MLP+BP.
    Mlp {
        /// Layer widths, input first.
        sizes: Vec<usize>,
        /// Shared activation.
        activation: Activation,
        /// Initialization seed.
        seed: u64,
    },
    /// 8-bit fixed-point MLP (trains a float master, then quantizes).
    QuantizedMlp {
        /// Layer widths, input first.
        sizes: Vec<usize>,
        /// Shared activation of the float master.
        activation: Activation,
        /// Master initialization seed.
        seed: u64,
    },
    /// SNN+STDP with the full LIF readout (SNNwt).
    Snn {
        /// Input count.
        inputs: usize,
        /// Number of classes.
        classes: usize,
        /// LIF/STDP hyper-parameters (including neuron count).
        params: SnnParams,
        /// Initialization seed.
        seed: u64,
    },
    /// SNN+STDP with an explicit input coding scheme (Figure 14).
    SnnWithCoding {
        /// Input count.
        inputs: usize,
        /// Number of classes.
        classes: usize,
        /// LIF/STDP hyper-parameters (including neuron count).
        params: SnnParams,
        /// The input spike code.
        coding: CodingScheme,
        /// Initialization seed.
        seed: u64,
    },
    /// SNN+STDP deployed through the timing-free SNNwot readout.
    Wot {
        /// Input count.
        inputs: usize,
        /// Number of classes.
        classes: usize,
        /// LIF/STDP hyper-parameters of the temporal master.
        params: SnnParams,
        /// Master initialization seed.
        seed: u64,
    },
    /// The SNN+BP diagnostic hybrid.
    BpSnn {
        /// Input count.
        inputs: usize,
        /// Number of classes.
        classes: usize,
        /// Hyper-parameters (neuron count; spike-count normalization).
        params: SnnParams,
        /// Initialization seed.
        seed: u64,
    },
    /// MLP trained through a steep sigmoid surrogate and deployed with
    /// the true step activation (the Figure 6 step reference).
    StepMlp {
        /// Layer widths, input first.
        sizes: Vec<usize>,
        /// Surrogate sigmoid slope used during training.
        slope: f64,
        /// Initialization seed.
        seed: u64,
    },
}

impl ModelSpec {
    /// The variant's display name (matches [`Model::name`] of the built
    /// model) without constructing it.
    pub fn display_name(&self) -> &'static str {
        match self {
            ModelSpec::Mlp { .. } => "MLP+BP",
            ModelSpec::QuantizedMlp { .. } => "MLP+BP (8-bit fixed point)",
            ModelSpec::Snn { .. } | ModelSpec::SnnWithCoding { .. } => "SNN+STDP - LIF (SNNwt)",
            ModelSpec::Wot { .. } => "SNN+STDP - Simplified (SNNwot)",
            ModelSpec::BpSnn { .. } => "SNN+BP",
            ModelSpec::StepMlp { .. } => "MLP (step-deployed)",
        }
    }

    /// Builds the model behind the unified [`Model`] interface.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Topology`] for invalid MLP topologies.
    pub fn build(&self) -> Result<Box<dyn Model>, Error> {
        Ok(match self {
            ModelSpec::Mlp {
                sizes,
                activation,
                seed,
            } => Box::new(Mlp::new(sizes, *activation, *seed)?),
            ModelSpec::QuantizedMlp {
                sizes,
                activation,
                seed,
            } => Box::new(QuantizedMlp::untrained(sizes, *activation, *seed)?),
            ModelSpec::Snn {
                inputs,
                classes,
                params,
                seed,
            } => Box::new(SnnNetwork::new(*inputs, *classes, *params, *seed)),
            ModelSpec::SnnWithCoding {
                inputs,
                classes,
                params,
                coding,
                seed,
            } => Box::new(SnnNetwork::with_coding(
                *inputs, *classes, *params, *coding, *seed,
            )),
            ModelSpec::Wot {
                inputs,
                classes,
                params,
                seed,
            } => Box::new(WotSnn::untrained(*inputs, *classes, *params, *seed)),
            ModelSpec::BpSnn {
                inputs,
                classes,
                params,
                seed,
            } => Box::new(BpSnn::new(*inputs, *classes, *params, *seed)),
            ModelSpec::StepMlp { sizes, slope, seed } => {
                Box::new(StepDeployedMlp::new(sizes, *slope, *seed)?)
            }
        })
    }

    /// The input dimension the built model expects, without
    /// constructing it — what a serving layer validates request
    /// geometry against. Empty MLP topologies (rejected by
    /// [`ModelSpec::build`]) report 0.
    pub fn input_dim(&self) -> usize {
        match self {
            ModelSpec::Mlp { sizes, .. }
            | ModelSpec::QuantizedMlp { sizes, .. }
            | ModelSpec::StepMlp { sizes, .. } => sizes.first().copied().unwrap_or(0),
            ModelSpec::Snn { inputs, .. }
            | ModelSpec::SnnWithCoding { inputs, .. }
            | ModelSpec::Wot { inputs, .. }
            | ModelSpec::BpSnn { inputs, .. } => *inputs,
        }
    }

    /// The number of label classes the built model scores over, without
    /// constructing it. Empty MLP topologies report 0.
    pub fn num_classes(&self) -> usize {
        match self {
            ModelSpec::Mlp { sizes, .. }
            | ModelSpec::QuantizedMlp { sizes, .. }
            | ModelSpec::StepMlp { sizes, .. } => sizes.last().copied().unwrap_or(0),
            ModelSpec::Snn { classes, .. }
            | ModelSpec::SnnWithCoding { classes, .. }
            | ModelSpec::Wot { classes, .. }
            | ModelSpec::BpSnn { classes, .. } => *classes,
        }
    }

    /// The default training budget for this model family at a scale —
    /// the same epoch counts the sequential pipeline used, so engine
    /// runs are bit-identical to it.
    pub fn budget(&self, scale: ExperimentScale) -> FitBudget {
        let mut budget = FitBudget {
            epochs: scale.mlp_epochs(),
            stdp_epochs: scale.stdp_epochs(),
            stdp_delta: scale.stdp_delta(),
            learning_rate: None,
        };
        if let ModelSpec::BpSnn { .. } = self {
            budget.epochs = scale.bp_snn_epochs();
        }
        budget
    }
}

/// The Figure 6 step reference as a [`Model`]: trains through a steep
/// sigmoid surrogate (forward *and* backward), then swaps in the true
/// `[0/1]` step for deployment — the honest hardware scenario, since
/// the silicon comparator cannot be trained through directly.
#[derive(Debug, Clone, PartialEq)]
pub struct StepDeployedMlp {
    mlp: Mlp,
    slope: f64,
}

impl StepDeployedMlp {
    /// Creates the reference with the surrogate slope used in training.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError`] for an invalid topology.
    pub fn new(sizes: &[usize], slope: f64, seed: u64) -> Result<Self, MlpError> {
        Ok(StepDeployedMlp {
            mlp: Mlp::new(sizes, Activation::sigmoid_slope(slope), seed)?,
            slope,
        })
    }

    /// The deployed network (step activation after `fit`).
    pub fn network(&self) -> &Mlp {
        &self.mlp
    }
}

impl Model for StepDeployedMlp {
    fn name(&self) -> &'static str {
        "MLP (step-deployed)"
    }

    fn fit(
        &mut self,
        train: &Dataset,
        budget: &FitBudget,
    ) -> Result<(), nc_dataset::model::ModelError> {
        self.fit_observed(train, budget, nc_obs::null())
    }

    fn fit_observed(
        &mut self,
        train: &Dataset,
        budget: &FitBudget,
        recorder: &dyn Recorder,
    ) -> Result<(), nc_dataset::model::ModelError> {
        nc_dataset::model::check_fit_inputs(train, self.mlp.sizes()[0])?;
        // Keep the effective step size constant across the slope family
        // (the surrogate gradient carries a slope factor, capped).
        let learning_rate = budget
            .learning_rate
            .unwrap_or(0.3 / self.slope.min(Activation::SURROGATE_SLOPE_CAP));
        self.mlp
            .set_activation(Activation::sigmoid_slope(self.slope));
        Trainer::new(TrainConfig {
            epochs: budget.epochs,
            learning_rate,
            ..TrainConfig::default()
        })
        .fit_observed(&mut self.mlp, train, recorder);
        self.mlp.set_activation(Activation::Step);
        Ok(())
    }

    fn evaluate(&mut self, test: &Dataset) -> Confusion {
        metrics::evaluate(&self.mlp, test)
    }

    fn predict(&mut self, pixels: &[u8], _presentation_seed: u64) -> usize {
        let unit: Vec<f64> = pixels.iter().map(|&p| f64::from(p) / 255.0).collect();
        self.mlp.predict(&unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let engine = Engine::builder().build();
        assert!(engine.threads() >= 1);
        assert_eq!(engine.scale(), ExperimentScale::Standard);
        assert_eq!(Engine::sequential(ExperimentScale::Tiny).threads(), 1);
        assert_eq!(Engine::builder().threads(0).build().threads(), 1);
    }

    #[test]
    fn results_come_back_in_job_order() {
        let engine = Engine::builder()
            .threads(4)
            .scale(ExperimentScale::Tiny)
            .build();
        let jobs: Vec<Job<u64>> = (0..64)
            .map(|i| Job::new(format!("square/{i}"), 1, i))
            .collect();
        // Stagger the work so completion order differs from job order.
        let out = engine.run_jobs(jobs, |i| {
            if i % 7 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            i * i
        });
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(engine.stats().len(), 64);
    }

    #[test]
    fn sequential_and_parallel_schedules_agree() {
        let par = Engine::builder()
            .threads(4)
            .scale(ExperimentScale::Tiny)
            .build();
        let seq = Engine::sequential(ExperimentScale::Tiny);
        let jobs = || {
            (0..16u64)
                .map(|i| Job::new(format!("j{i}"), 0, i))
                .collect()
        };
        let f = |seed: u64| {
            let mut rng = nc_substrate::rng::SplitMix64::new(seed);
            (0..100)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        assert_eq!(par.run_jobs(jobs(), f), seq.run_jobs(jobs(), f));
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        let engine = Engine::sequential(ExperimentScale::Tiny);
        let out: Vec<u32> = engine.run_jobs(Vec::<Job<u32>>::new(), |_| 0);
        assert!(out.is_empty());
        assert!(engine.summary().contains("no jobs"));
    }

    #[test]
    fn dataset_cache_shares_one_arc_per_key() {
        let engine = Engine::sequential(ExperimentScale::Tiny);
        let a = engine.dataset(Workload::Shapes);
        let b = engine.dataset(Workload::Shapes);
        assert!(Arc::ptr_eq(&a, &b));
        let c = engine.dataset_at(Workload::Shapes, ExperimentScale::Tiny);
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn recorder_sees_spans_counters_and_epochs() {
        let recorder = Arc::new(nc_obs::MemoryRecorder::new());
        let engine = Engine::builder()
            .threads(2)
            .scale(ExperimentScale::Tiny)
            .recorder(recorder.clone())
            .build();
        assert!(engine.recorder().enabled());
        let data = engine.dataset(Workload::Digits);
        let spec = ModelSpec::Mlp {
            sizes: vec![784, 4, 10],
            activation: Activation::sigmoid(),
            seed: 3,
        };
        let budget = spec.budget(ExperimentScale::Tiny);
        let jobs = vec![
            Job::new("obs/a", 0, (spec.clone(), budget)),
            Job::new("obs/b", 0, (spec, budget)),
        ];
        let out = engine.train_and_score(&data, jobs);
        assert!(out.iter().all(Result::is_ok));
        let snap = recorder.snapshot();
        assert_eq!(snap.counters.get("engine.jobs"), Some(&2));
        assert!(snap.spans.contains_key("obs/a") && snap.spans.contains_key("obs/b"));
        assert_eq!(snap.series["engine.accuracy"].count(), 2);
        assert!(!snap.epochs.is_empty(), "trainer should emit epoch records");
    }

    #[test]
    fn null_recorder_is_the_default_and_disabled() {
        let engine = Engine::sequential(ExperimentScale::Tiny);
        assert!(!engine.recorder().enabled());
        let dbg = format!("{engine:?}");
        assert!(dbg.contains("recorder_enabled: false"), "{dbg}");
    }

    #[test]
    fn summary_lists_jobs_and_total() {
        let engine = Engine::sequential(ExperimentScale::Tiny);
        engine.run_jobs(vec![Job::new("alpha", 10, 1u32)], |x| x + 1);
        let s = engine.summary();
        assert!(s.contains("alpha"), "{s}");
        assert!(s.contains("total (1 jobs, 1 threads)"), "{s}");
    }

    #[test]
    fn model_spec_builds_every_variant() {
        let specs = [
            ModelSpec::Mlp {
                sizes: vec![16, 4, 2],
                activation: Activation::sigmoid(),
                seed: 1,
            },
            ModelSpec::QuantizedMlp {
                sizes: vec![16, 4, 2],
                activation: Activation::sigmoid(),
                seed: 1,
            },
            ModelSpec::Snn {
                inputs: 16,
                classes: 2,
                params: SnnParams::for_neurons(4),
                seed: 1,
            },
            ModelSpec::SnnWithCoding {
                inputs: 16,
                classes: 2,
                params: SnnParams::for_neurons(4),
                coding: CodingScheme::RankOrder,
                seed: 1,
            },
            ModelSpec::Wot {
                inputs: 16,
                classes: 2,
                params: SnnParams::for_neurons(4),
                seed: 1,
            },
            ModelSpec::BpSnn {
                inputs: 16,
                classes: 2,
                params: SnnParams::for_neurons(4),
                seed: 1,
            },
            ModelSpec::StepMlp {
                sizes: vec![16, 4, 2],
                slope: 16.0,
                seed: 1,
            },
        ];
        for spec in &specs {
            let model = spec.build().unwrap();
            assert!(!model.name().is_empty());
            let b = spec.budget(ExperimentScale::Tiny);
            assert!(b.epochs > 0 && b.stdp_epochs > 0);
            // Geometry is readable without building.
            assert_eq!(spec.input_dim(), 16, "{}", spec.display_name());
            assert_eq!(spec.num_classes(), 2, "{}", spec.display_name());
        }
        // The hybrid reads its own epoch knob.
        assert_eq!(
            specs[5].budget(ExperimentScale::Standard).epochs,
            ExperimentScale::Standard.bp_snn_epochs()
        );
        assert_eq!(
            specs[0].budget(ExperimentScale::Standard).epochs,
            ExperimentScale::Standard.mlp_epochs()
        );
    }

    #[test]
    fn bad_topology_surfaces_as_typed_error() {
        let spec = ModelSpec::Mlp {
            sizes: vec![16],
            activation: Activation::sigmoid(),
            seed: 1,
        };
        assert!(matches!(spec.build(), Err(Error::Topology(_))));
    }

    #[test]
    fn panicking_job_is_contained_and_siblings_complete() {
        let engine = Engine::builder()
            .threads(4)
            .scale(ExperimentScale::Tiny)
            .build();
        let jobs: Vec<Job<u64>> = (0..16).map(|i| Job::new(format!("s{i}"), 1, i)).collect();
        let out = engine.run_jobs_supervised(jobs, Supervision::default(), |&i, _| {
            assert_ne!(i, 5, "job five exploded");
            i * 2
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                assert!(
                    matches!(
                        r,
                        Err(Error::JobPanicked { job, payload })
                            if job == "s5" && payload.contains("exploded")
                    ),
                    "{r:?}"
                );
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64 * 2, "sibling {i}");
            }
        }
        // The engine is still fully usable afterwards: no mutex stayed
        // poisoned, stats were recorded, and new batches run fine.
        assert_eq!(engine.stats().len(), 16);
        let again = engine.run_jobs(vec![Job::new("after", 1, 7u64)], |x| x + 1);
        assert_eq!(again, vec![8]);
    }

    #[test]
    fn retry_seeds_are_deterministic_and_thread_count_invariant() {
        let supervision = Supervision::with_retries(3, 0xDECAF);
        let run = |threads| {
            let engine = Engine::builder()
                .threads(threads)
                .scale(ExperimentScale::Tiny)
                .build();
            let jobs: Vec<Job<u64>> = (0..8).map(|i| Job::new(format!("r{i}"), 1, i)).collect();
            engine.run_jobs_supervised(jobs, supervision, |_, attempt| {
                assert!(attempt.index >= 2, "deterministically flaky");
                attempt.seed
            })
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(sequential, parallel);
        // Each job succeeded on attempt 2 with the seed any schedule
        // derives from (retry_seed, job, attempt) alone.
        for (job, r) in sequential.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), supervision.attempt_seed(job, 2));
            assert_ne!(
                supervision.attempt_seed(job, 2),
                supervision.attempt_seed(job, 1),
                "retries must re-derive, not reuse"
            );
        }
    }

    #[test]
    fn jittered_policies_reseed_deterministically_and_keep_limits() {
        let base = Supervision {
            max_retries: 2,
            retry_seed: 0xDECAF,
            sample_budget: Some(64),
        };
        let round1 = base.jittered(1);
        assert_eq!(round1, base.jittered(1), "pure function of (policy, salt)");
        assert_ne!(round1.retry_seed, base.retry_seed);
        assert_ne!(round1.retry_seed, base.jittered(2).retry_seed);
        assert_eq!(round1.max_retries, base.max_retries);
        assert_eq!(round1.sample_budget, base.sample_budget);
        // Attempt seeds from distinct rounds decorrelate per job.
        for job in 0..8 {
            assert_ne!(round1.attempt_seed(job, 0), base.attempt_seed(job, 0));
        }
    }

    #[test]
    fn exhausted_retries_surface_the_last_panic_and_are_counted() {
        let recorder = Arc::new(nc_obs::MemoryRecorder::new());
        let engine = Engine::builder()
            .threads(1)
            .scale(ExperimentScale::Tiny)
            .recorder(recorder.clone())
            .build();
        let jobs = vec![Job::new("doomed", 1, ())];
        let out =
            engine.run_jobs_supervised(jobs, Supervision::with_retries(2, 9), |(), _| -> u32 {
                panic!("always fails")
            });
        assert!(matches!(
            &out[0],
            Err(Error::JobPanicked { job, payload }) if job == "doomed" && payload.contains("always fails")
        ));
        let snap = recorder.snapshot();
        assert_eq!(
            snap.counters.get("engine.panics"),
            Some(&3),
            "1 try + 2 retries"
        );
        assert_eq!(snap.counters.get("engine.retries"), Some(&2));
    }

    #[test]
    fn over_budget_jobs_are_refused_before_running() {
        let engine = Engine::sequential(ExperimentScale::Tiny);
        let ran = AtomicUsize::new(0);
        let supervision = Supervision {
            sample_budget: Some(10),
            ..Supervision::default()
        };
        let jobs = vec![Job::new("small", 5, 1u32), Job::new("huge", 50, 2u32)];
        let out = engine.run_jobs_supervised(jobs, supervision, |&x, _| {
            ran.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(
            out[1],
            Err(Error::BudgetExceeded {
                job: String::from("huge"),
                samples: 50,
                budget: 10,
            })
        );
        assert_eq!(ran.load(Ordering::Relaxed), 1, "refused job must not run");
    }

    #[test]
    fn poisoned_mutexes_recover_with_consistent_contents() {
        // Regression: a panic while a guard is held poisons the mutex;
        // every engine critical section is a single read/write, so
        // recovery must observe the pre-panic contents and keep working.
        let mutex = Mutex::new(vec![1, 2, 3]);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(mutex.is_poisoned());
        assert_eq!(*lock_or_recover(&mutex), vec![1, 2, 3]);
        lock_or_recover(&mutex).push(4);
        assert_eq!(*lock_or_recover(&mutex), vec![1, 2, 3, 4]);
    }

    #[test]
    fn supervised_empty_job_list_is_a_no_op() {
        let engine = Engine::sequential(ExperimentScale::Tiny);
        let out: Vec<Result<u32, Error>> =
            engine.run_jobs_supervised(Vec::<Job<u32>>::new(), Supervision::default(), |&x, _| x);
        assert!(out.is_empty());
    }
}
