//! The typed error surface of the experiment framework.

use nc_dataset::model::ModelError;
use nc_mlp::MlpError;

/// Anything that can go wrong configuring or running an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A model topology was invalid (zero-width layer, too few layers).
    Topology(MlpError),
    /// A model refused to train or evaluate (geometry mismatch, empty
    /// data, untrainable deployment artifact).
    Model(ModelError),
    /// A dataset required by the experiment has no samples.
    EmptyDataset,
    /// An experiment was configured inconsistently (empty sweep grid,
    /// zero threads, …). The message says what and why.
    BadConfig(String),
    /// A job panicked on every attempt a supervised run allowed it.
    /// `payload` is the panic message when it was a string, or a
    /// placeholder otherwise.
    JobPanicked {
        /// The failing job's label.
        job: String,
        /// The last attempt's panic message.
        payload: String,
    },
    /// A supervised job declared more samples than its budget allows;
    /// the job was refused deterministically, before running.
    BudgetExceeded {
        /// The refused job's label.
        job: String,
        /// Samples the job declared.
        samples: u64,
        /// The supervision policy's per-job sample budget.
        budget: u64,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Topology(e) => write!(f, "invalid topology: {e}"),
            Error::Model(e) => write!(f, "model error: {e}"),
            Error::EmptyDataset => write!(f, "dataset has no samples"),
            Error::BadConfig(msg) => write!(f, "bad experiment config: {msg}"),
            Error::JobPanicked { job, payload } => {
                write!(f, "job `{job}` panicked: {payload}")
            }
            Error::BudgetExceeded {
                job,
                samples,
                budget,
            } => write!(
                f,
                "job `{job}` declared {samples} samples, over the {budget}-sample budget"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Topology(e) => Some(e),
            Error::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MlpError> for Error {
    fn from(e: MlpError) -> Self {
        Error::Topology(e)
    }
}

impl From<ModelError> for Error {
    fn from(e: ModelError) -> Self {
        match e {
            ModelError::EmptyDataset => Error::EmptyDataset,
            other => Error::Model(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_the_cause() {
        assert_eq!(
            Error::from(MlpError::TooFewLayers),
            Error::Topology(MlpError::TooFewLayers)
        );
        assert_eq!(Error::from(ModelError::EmptyDataset), Error::EmptyDataset);
        assert!(matches!(
            Error::from(ModelError::GeometryMismatch {
                expected: 1,
                got: 2
            }),
            Error::Model(_)
        ));
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        for e in [
            Error::Topology(MlpError::TooFewLayers),
            Error::Model(ModelError::EmptyDataset),
            Error::EmptyDataset,
            Error::BadConfig("x".into()),
            Error::JobPanicked {
                job: "j".into(),
                payload: "boom".into(),
            },
            Error::BudgetExceeded {
                job: "j".into(),
                samples: 10,
                budget: 5,
            },
        ] {
            assert!(!e.to_string().is_empty());
            let _ = std::error::Error::source(&e);
        }
    }
}
