//! Hardware fault injection: accuracy-vs-fault-rate ladders (extension).
//!
//! The paper argues for accelerators as *deployed silicon*; deployed
//! silicon has defects. This experiment measures how gracefully each
//! accelerator family degrades when its quantized state is damaged:
//! stuck-at bits in the 8-bit weight SRAMs, dead neurons, transient
//! read upsets, and stuck LFSR taps in the spike-interval generators
//! (see `nc-faults` and DESIGN.md "Fault model").
//!
//! Each `(family, fault model, rate)` cell is one independent job:
//! build → fit → inject (with a seed derived from the sweep seed and
//! the cell's grid position) → evaluate. Jobs run under
//! [`Engine::run_jobs_supervised`], so a pathological cell that panics
//! is contained and reported as a typed error instead of taking the
//! whole sweep down. Unsupported combinations (e.g. a stuck generator
//! tap on the timing-free SNNwot) are skipped at grid construction.

use crate::engine::{Engine, Experiment, Job, ModelSpec, Supervision};
use crate::error::Error;
use crate::experiment::{ExperimentScale, Workload};
use nc_dataset::FitBudget;
use nc_faults::{FaultModel, FaultPlan};
use nc_mlp::Activation;
use nc_snn::SnnParams;
use nc_substrate::rng::SplitMix64;
use std::sync::Arc;

/// One cell of the fault sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPoint {
    /// The model family's display name.
    pub family: &'static str,
    /// The injected fault model.
    pub fault: FaultModel,
    /// The fault rate in `[0, 1]`.
    pub rate: f64,
    /// Test accuracy after injection.
    pub accuracy: f64,
}

/// The fault-injection sweep as an engine experiment (see the module
/// docs). The three deployed families — the 8-bit MLP, the temporal
/// SNN and the timing-free SNNwot — each walk the full
/// `(fault model, rate)` grid.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweep {
    /// Workload under test.
    pub workload: Workload,
    /// Pinned scale; `None` defers to the engine's scale.
    pub scale: Option<ExperimentScale>,
    /// Fault models to inject.
    pub models: Vec<FaultModel>,
    /// Fault rates, each in `[0, 1]`; include `0.0` for a baseline row.
    pub rates: Vec<f64>,
    /// MLP hidden-layer width.
    pub mlp_hidden: usize,
    /// SNN layer size.
    pub snn_neurons: usize,
    /// Root seed: initialization seeds and per-cell injection seeds are
    /// derived from it.
    pub seed: u64,
    /// Failure policy for the cell jobs.
    pub supervision: Supervision,
}

impl FaultSweep {
    /// The default grid: every fault model over a baseline-to-severe
    /// rate ladder.
    pub fn standard(workload: Workload) -> Self {
        FaultSweep {
            workload,
            scale: None,
            models: vec![
                FaultModel::StuckAt0,
                FaultModel::StuckAt1,
                FaultModel::DeadNeuron,
                FaultModel::TransientRead,
                FaultModel::StuckLfsrTap,
            ],
            rates: vec![0.0, 0.01, 0.05, 0.2],
            mlp_hidden: 20,
            snn_neurons: 50,
            seed: 0xFA_017,
            supervision: Supervision::default(),
        }
    }

    /// Whether a family (by [`ModelSpec`]) has a substrate for a fault
    /// model — unsupported cells are skipped rather than scheduled.
    fn supports(spec: &ModelSpec, fault: FaultModel) -> bool {
        match fault {
            FaultModel::StuckLfsrTap => {
                // Only the temporal SNN drives LFSR-based generators at
                // inference time.
                matches!(spec, ModelSpec::Snn { .. })
            }
            // Routing-fabric faults only bite on the nc-hw mesh
            // substrate; every single-core family here would report an
            // unperturbed baseline, which is noise, not signal.
            FaultModel::DeadLink | FaultModel::DeadRouter => false,
            _ => true,
        }
    }

    /// The injection seed for one grid cell: a pure function of the
    /// sweep seed and the cell's position, so the grid is reproducible
    /// at any thread count and any grid traversal order.
    fn cell_seed(&self, family: u64, model: u64, rate: u64) -> u64 {
        let mut sm = SplitMix64::new(
            self.seed
                .wrapping_add(family.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(model.wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add(rate.wrapping_mul(0x94D0_49BB_1331_11EB)),
        );
        sm.next_u64()
    }
}

impl Experiment for FaultSweep {
    type Output = Vec<FaultPoint>;

    fn run(&self, engine: &Engine) -> Result<Vec<FaultPoint>, Error> {
        if self.models.is_empty() {
            return Err(Error::BadConfig(String::from(
                "fault sweep has no fault models",
            )));
        }
        if self.rates.is_empty() {
            return Err(Error::BadConfig(String::from(
                "fault sweep has no fault rates",
            )));
        }
        let scale = self.scale.unwrap_or_else(|| engine.scale());
        let data = engine.dataset_at(self.workload, scale);
        let (train, test) = (&data.0, &data.1);
        if train.is_empty() || test.is_empty() {
            return Err(Error::EmptyDataset);
        }
        let (inputs, classes) = (train.input_dim(), train.num_classes());
        let params = SnnParams::tuned(self.snn_neurons);
        let families = [
            ModelSpec::QuantizedMlp {
                sizes: vec![inputs, self.mlp_hidden, classes],
                activation: Activation::sigmoid(),
                seed: self.seed,
            },
            ModelSpec::Snn {
                inputs,
                classes,
                params,
                seed: self.seed,
            },
            ModelSpec::Wot {
                inputs,
                classes,
                params,
                seed: self.seed,
            },
        ];

        let mut jobs: Vec<Job<(ModelSpec, FitBudget, FaultPlan)>> = Vec::new();
        let mut cells: Vec<(&'static str, FaultModel, f64)> = Vec::new();
        for (fi, spec) in (0u64..).zip(&families) {
            for (mi, &fault) in (0u64..).zip(&self.models) {
                if !Self::supports(spec, fault) {
                    continue;
                }
                for (ri, &rate) in (0u64..).zip(&self.rates) {
                    let plan = FaultPlan::new(fault, rate, self.cell_seed(fi, mi, ri))
                        .map_err(|e| Error::BadConfig(format!("fault sweep: {e}")))?;
                    let budget = spec.budget(scale);
                    let samples =
                        (train.len() * budget.epochs.max(budget.stdp_epochs) + test.len()) as u64;
                    jobs.push(Job::new(
                        format!(
                            "faults/{}/{}/{}/{rate}",
                            self.workload,
                            spec.display_name(),
                            fault
                        ),
                        samples,
                        (spec.clone(), budget, plan),
                    ));
                    cells.push((spec.display_name(), fault, rate));
                }
            }
        }

        let shared = Arc::clone(&data);
        let slab = Arc::new(nc_dataset::PixelSlab::from_dataset(&data.1));
        let recorder = engine.recorder_handle();
        let results = engine.run_jobs_supervised(
            jobs,
            self.supervision,
            move |(spec, budget, plan): &(ModelSpec, FitBudget, FaultPlan), _attempt| {
                let run = || -> Result<f64, Error> {
                    let mut model = spec.build()?;
                    model.fit(&shared.0, budget)?;
                    model.inject(plan)?;
                    recorder.add("engine.fault_injections", 1);
                    Ok(model.evaluate_batch(&slab.batch()).accuracy())
                };
                run()
            },
        );

        cells
            .into_iter()
            .zip(results)
            .map(|((family, fault, rate), outcome)| {
                let accuracy = outcome??;
                Ok(FaultPoint {
                    family,
                    fault,
                    rate,
                    accuracy,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> FaultSweep {
        FaultSweep {
            models: vec![FaultModel::StuckAt0, FaultModel::StuckLfsrTap],
            rates: vec![0.0, 1.0],
            mlp_hidden: 6,
            snn_neurons: 8,
            ..FaultSweep::standard(Workload::Shapes)
        }
    }

    #[test]
    fn grid_skips_unsupported_combos_and_keeps_the_rest() {
        let engine = Engine::sequential(ExperimentScale::Tiny);
        let points = engine.run(&tiny_sweep()).unwrap();
        // 3 families × 2 rates for StuckAt0, but only the temporal SNN
        // runs StuckLfsrTap.
        assert_eq!(points.len(), 3 * 2 + 2);
        assert!(points
            .iter()
            .filter(|p| p.fault == FaultModel::StuckLfsrTap)
            .all(|p| p.family == "SNN+STDP - LIF (SNNwt)"));
    }

    #[test]
    fn fault_sweep_is_thread_count_invariant() {
        let sweep = tiny_sweep();
        let sequential = Engine::sequential(ExperimentScale::Tiny)
            .run(&sweep)
            .unwrap();
        let parallel = Engine::builder()
            .threads(4)
            .scale(ExperimentScale::Tiny)
            .build()
            .run(&sweep)
            .unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn total_stuck_at_zero_destroys_every_family() {
        let engine = Engine::sequential(ExperimentScale::Tiny);
        let points = engine.run(&tiny_sweep()).unwrap();
        for p in points.iter().filter(|p| p.fault == FaultModel::StuckAt0) {
            if p.rate == 1.0 {
                let baseline = points
                    .iter()
                    .find(|q| q.family == p.family && q.fault == p.fault && q.rate == 0.0)
                    .unwrap();
                assert!(
                    p.accuracy <= baseline.accuracy + 1e-12,
                    "{}: {} vs {}",
                    p.family,
                    p.accuracy,
                    baseline.accuracy
                );
            }
        }
    }

    #[test]
    fn empty_grids_are_rejected() {
        let engine = Engine::sequential(ExperimentScale::Tiny);
        let no_models = FaultSweep {
            models: vec![],
            ..FaultSweep::standard(Workload::Shapes)
        };
        assert!(matches!(engine.run(&no_models), Err(Error::BadConfig(_))));
        let no_rates = FaultSweep {
            rates: vec![],
            ..FaultSweep::standard(Workload::Shapes)
        };
        assert!(matches!(engine.run(&no_rates), Err(Error::BadConfig(_))));
        let bad_rate = FaultSweep {
            rates: vec![1.5],
            ..FaultSweep::standard(Workload::Shapes)
        };
        assert!(matches!(engine.run(&bad_rate), Err(Error::BadConfig(_))));
    }

    #[test]
    fn injections_are_reported_to_the_recorder() {
        let recorder = Arc::new(nc_obs::MemoryRecorder::new());
        let engine = Engine::builder()
            .threads(1)
            .scale(ExperimentScale::Tiny)
            .recorder(recorder.clone())
            .build();
        let points = engine.run(&tiny_sweep()).unwrap();
        let snap = recorder.snapshot();
        assert_eq!(
            snap.counters.get("engine.fault_injections").copied(),
            Some(points.len() as u64)
        );
    }
}
