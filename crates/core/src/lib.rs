//! # nc-core
//!
//! The experiment framework reproducing the paper's methodology end to
//! end: it wires the models (`nc-mlp`, `nc-snn`), the synthetic
//! workloads (`nc-dataset`) and the hardware cost model (`nc-hw`) into
//! the concrete experiments behind every table and figure, and formats
//! the results next to the paper's published values.
//!
//! * [`engine`] — the parallel experiment engine: independent trainings
//!   scheduled across a thread pool with deterministic, order-independent
//!   results, a shared dataset cache, and per-job observability.
//! * [`error`] — the typed error surface ([`Error`]).
//! * [`experiment`] — workload selection, experiment scales and the
//!   accuracy-comparison runner (Table 3, §4.5).
//! * [`sweeps`] — the parameter sweeps: accuracy vs #neurons (Figure 8),
//!   the sigmoid→step bridging sweep (Figures 5–6), the coding-scheme
//!   comparison (Figure 14), and the folded-design `ni` sweep (Table 7).
//! * [`reference`] — the paper's published numbers (Tables 2 and 3,
//!   and the headline ratios) used for paper-vs-measured reporting.
//! * [`robustness`] — test-time input-noise robustness sweep (extension).
//! * [`fault_sweep`] — hardware fault injection: accuracy-vs-fault-rate
//!   ladders over the deployed families (extension).
//! * [`report`] — plain-text table and CSV formatting shared by the
//!   `nc-bench` regeneration binaries.
//!
//! # Examples
//!
//! ```no_run
//! use nc_core::{AccuracyComparison, Engine, ExperimentScale, Workload};
//!
//! // Regenerate Table 3 at the quick scale (minutes, not hours), with
//! // the five model trainings fanned out across four threads.
//! let engine = Engine::builder()
//!     .scale(ExperimentScale::Quick)
//!     .threads(4)
//!     .build();
//! let results = engine.run(&AccuracyComparison::on(Workload::Digits)).unwrap();
//! println!("{}", results.to_table());
//! println!("{}", engine.summary());
//! ```

pub mod engine;
pub mod error;
pub mod experiment;
pub mod fault_sweep;
pub mod reference;
pub mod report;
pub mod robustness;
pub mod sweeps;

pub use engine::{
    Attempt, DatasetCache, Engine, EngineBuilder, Experiment, Job, JobStat, ModelSpec,
    StepDeployedMlp, Supervision,
};
pub use error::Error;
pub use experiment::{AccuracyComparison, AccuracyResults, ExperimentScale, Workload};
pub use fault_sweep::{FaultPoint, FaultSweep};
pub use nc_dataset::{FitBudget, Model, ModelError};
pub use nc_faults::{ChaosPlan, FaultModel, FaultPlan};
pub use nc_obs::{
    BenchRecord, EpochMetrics, MemoryRecorder, NullRecorder, ObsSnapshot, Recorder, SectionRecord,
    Span,
};
pub use robustness::{RobustnessPoint, RobustnessSweep};
pub use sweeps::{
    BridgePoint, CodingPoint, CodingSweep, NeuronSweep, NeuronSweepPoint, NeuronSweepResults,
    SigmoidBridge,
};
