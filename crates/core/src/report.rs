//! Plain-text table and CSV formatting shared by the regeneration
//! binaries in `nc-bench`.

use std::fmt::Write as _;

/// A simple fixed-width text table builder.
///
/// # Examples
///
/// ```
/// use nc_core::report::TextTable;
/// let mut t = TextTable::new(&["design", "area (mm²)"]);
/// t.row(&["MLP", "6.36"]);
/// let s = t.render();
/// assert!(s.contains("design"));
/// assert!(s.contains("6.36"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render empty; extra cells are kept).
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:<width$}  ", width = w);
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Serializes `(x, series...)` rows as CSV with headers — the format the
/// figure binaries emit so results can be plotted externally.
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    fn table_tolerates_ragged_rows() {
        let mut t = TextTable::new(&["a"]);
        t.row(&["1", "2", "3"]);
        let s = t.render();
        assert!(s.contains('3'));
    }

    #[test]
    fn csv_round_trips_simple_rows() {
        let s = csv(
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(s, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn formatters_are_stable() {
        assert_eq!(pct(0.9182), "91.82%");
        assert_eq!(ratio(2.566), "2.57x");
    }
}
