//! The paper's published numbers, kept in one place so every
//! regeneration binary can print paper-vs-measured columns.

use crate::experiment::AccuracyResults;

/// Table 2: best accuracies reported on MNIST (no distortion) in the
/// literature the paper surveys.
pub const PAPER_TABLE2: [(&str, f64); 5] = [
    ("MLP+BP [Simard et al. 2003]", 0.9840),
    ("SNN+STDP [Querlioz et al. 2011]", 0.9350),
    ("SNN+STDP [Diehl & Cook 2014, 6400 neurons]", 0.9500),
    ("ImageNet CNN [Krizhevsky et al. 2012]", 0.9921),
    ("MCDNN [Ciresan et al. 2012]", 0.9977),
];

/// Table 3: the paper's measured MNIST accuracies.
pub const PAPER_TABLE3: AccuracyResults = AccuracyResults {
    workload: "MNIST (paper)",
    snn_stdp_lif: 0.9182,
    snn_stdp_wot: 0.9085,
    snn_bp: 0.9540,
    mlp_bp: 0.9765,
    mlp_bp_quantized: 0.9665,
};

/// §4.5: the paper's accuracies on the two validation workloads,
/// `(mlp_bp, snn_stdp)`.
pub const PAPER_SHAPES_ACCURACY: (f64, f64) = (0.997, 0.92);
/// §4.5: Spoken Arabic Digits accuracies, `(mlp_bp, snn_stdp)`.
pub const PAPER_SPOKEN_ACCURACY: (f64, f64) = (0.9135, 0.747);

/// §4.5: folded SNNwot vs folded MLP cost ratios on MPEG-7
/// (`(area_lo, area_hi, energy_lo, energy_hi)` over ni ∈ 1..=16).
pub const PAPER_SHAPES_RATIOS: (f64, f64, f64, f64) = (3.81, 5.57, 3.20, 5.08);
/// §4.5: the same ratios on Spoken Arabic Digits.
pub const PAPER_SPOKEN_RATIOS: (f64, f64, f64, f64) = (1.27, 1.31, 1.24, 1.26);

/// Figure 6: the paper's error-rate bridging series — `(slope a,
/// error %)` for the parameterized sigmoid, approaching the step
/// function's error (~2.9%) from the classical sigmoid's (~2.35%).
pub const PAPER_FIG6: [(f64, f64); 5] = [
    (1.0, 2.35),
    (2.0, 2.45),
    (4.0, 2.60),
    (8.0, 2.75),
    (16.0, 2.85),
];

/// Figure 14: coding-scheme accuracy at 300 neurons — rate (Gaussian)
/// 91.82% vs temporal (rank order / TTFS) 82.14%.
pub const PAPER_FIG14_RATE: f64 = 0.9182;
/// Figure 14 temporal-coding accuracy at 300 neurons.
pub const PAPER_FIG14_TEMPORAL: f64 = 0.8214;

/// Table 8 (paper): speedups over the K20M GPU.
/// Rows: (design, ni=1, ni=16, expanded).
pub const PAPER_TABLE8_SPEEDUP: [(&str, f64, f64, f64); 3] = [
    ("SNNwot", 59.10, 543.43, 6086.46),
    ("SNNwt", 0.12, 1.14, 44.60),
    ("MLP", 40.44, 626.03, 5409.63),
];

/// Table 8 (paper): energy benefits over the K20M GPU.
pub const PAPER_TABLE8_ENERGY: [(&str, f64, f64, f64); 3] = [
    ("SNNwot", 2799.72, 4132.53, 31542.31),
    ("SNNwt", 6.15, 8.90, 13.51),
    ("MLP", 12743.14, 16365.61, 79151.75),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table3_ordering_holds() {
        assert!(PAPER_TABLE3.ordering_holds());
    }

    #[test]
    fn reference_tables_are_complete() {
        assert_eq!(PAPER_TABLE2.len(), 5);
        assert_eq!(PAPER_FIG6.len(), 5);
        assert_eq!(PAPER_TABLE8_SPEEDUP.len(), 3);
    }

    #[test]
    fn figure6_series_is_monotone() {
        // The bridging claim: error grows toward the step function's as
        // the slope increases.
        for w in PAPER_FIG6.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }
}
