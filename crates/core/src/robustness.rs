//! Input-noise robustness: an extension experiment the paper's framing
//! invites. The introduction motivates accelerators with "processing of
//! real-world input data", and a recurring claim for spike codes is
//! robustness to input noise. This sweep trains both models once on
//! clean(er) data, then evaluates them under increasing test-time pixel
//! noise — measuring which accelerator's accuracy degrades faster when
//! the sensor gets worse, without retraining.

use nc_dataset::{Dataset, Sample};
use nc_mlp::{metrics, Mlp};
use nc_snn::{SnnNetwork, WotSnn};
use nc_substrate::rng::SplitMix64;
use nc_substrate::stats::Confusion;

/// One point of the robustness sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessPoint {
    /// Added uniform test-time noise amplitude, in luminance units [0,1].
    pub noise: f64,
    /// MLP accuracy under this noise.
    pub mlp_accuracy: f64,
    /// SNN (STDP, LIF readout) accuracy.
    pub snn_accuracy: f64,
    /// SNNwot accuracy.
    pub wot_accuracy: f64,
}

/// Applies test-time uniform noise to every pixel of a dataset, with
/// deterministic seeding.
pub fn corrupt(data: &Dataset, noise: f64, seed: u64) -> Dataset {
    let mut rng = SplitMix64::new(seed ^ 0x2015_CE50);
    let samples: Vec<Sample> = data
        .iter()
        .map(|s| Sample {
            pixels: s
                .pixels
                .iter()
                .map(|&p| {
                    let delta = rng.next_range(-noise, noise) * 255.0;
                    (f64::from(p) + delta).clamp(0.0, 255.0) as u8
                })
                .collect(),
            label: s.label,
        })
        .collect();
    Dataset::from_samples(data.width(), data.height(), data.num_classes(), samples)
        .expect("same geometry")
}

/// Evaluates pre-trained models under each noise level. The SNN is
/// evaluated through both its readouts (LIF first-to-fire and the
/// SNNwot max-potential path).
pub fn sweep(
    mlp: &Mlp,
    snn: &mut SnnNetwork,
    test: &Dataset,
    noise_levels: &[f64],
) -> Vec<RobustnessPoint> {
    let wot = WotSnn::from_network(snn);
    noise_levels
        .iter()
        .map(|&noise| {
            let noisy = corrupt(test, noise, (noise * 1e4) as u64);
            let mlp_accuracy = metrics::evaluate(mlp, &noisy).accuracy();
            let snn_accuracy = snn.evaluate(&noisy).accuracy();
            let wot_accuracy = wot.evaluate(&noisy).accuracy();
            RobustnessPoint {
                noise,
                mlp_accuracy,
                snn_accuracy,
                wot_accuracy,
            }
        })
        .collect()
}

/// Relative degradation of an accuracy series: `1 - acc(last)/acc(first)`
/// (0 = fully robust). Returns 0 for degenerate series.
pub fn degradation(points: &[RobustnessPoint], extract: impl Fn(&RobustnessPoint) -> f64) -> f64 {
    match (points.first(), points.last()) {
        (Some(first), Some(last)) if extract(first) > 0.0 => {
            1.0 - extract(last) / extract(first)
        }
        _ => 0.0,
    }
}

/// Evaluates a single confusion under noise, exposed for custom models.
pub fn evaluate_under_noise<F>(test: &Dataset, noise: f64, seed: u64, mut predict: F) -> Confusion
where
    F: FnMut(&[u8]) -> usize,
{
    let noisy = corrupt(test, noise, seed);
    let mut confusion = Confusion::new(test.num_classes());
    for s in noisy.iter() {
        confusion.record(s.label, predict(&s.pixels));
    }
    confusion
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dataset::{digits::DigitsSpec, Difficulty};
    use nc_mlp::{Activation, TrainConfig, Trainer};
    use nc_snn::SnnParams;

    fn task() -> (Dataset, Dataset) {
        DigitsSpec {
            train: 250,
            test: 80,
            seed: 55,
            difficulty: Difficulty::default(),
        }
        .generate()
    }

    #[test]
    fn corruption_is_deterministic_and_bounded() {
        let (_, test) = task();
        let a = corrupt(&test, 0.2, 7);
        let b = corrupt(&test, 0.2, 7);
        assert_eq!(a, b);
        let c = corrupt(&test, 0.2, 8);
        assert_ne!(a, c);
        // Zero noise is the identity.
        assert_eq!(corrupt(&test, 0.0, 7), test);
    }

    #[test]
    fn accuracy_degrades_with_noise() {
        let (train, test) = task();
        let mut mlp = Mlp::new(&[784, 16, 10], Activation::sigmoid(), 3).unwrap();
        Trainer::new(TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &train);
        let mut snn = SnnNetwork::new(784, 10, SnnParams::tuned(15), 3);
        snn.set_stdp_delta(8);
        snn.train_stdp(&train, 2);
        snn.self_label(&train);
        let points = sweep(&mlp, &mut snn, &test, &[0.0, 0.6]);
        assert_eq!(points.len(), 2);
        assert!(
            points[1].mlp_accuracy <= points[0].mlp_accuracy + 0.05,
            "{points:?}"
        );
        let deg = degradation(&points, |p| p.mlp_accuracy);
        assert!((-0.1..=1.0).contains(&deg));
    }

    #[test]
    fn custom_predictor_hook_works() {
        let (_, test) = task();
        let confusion = evaluate_under_noise(&test, 0.1, 1, |_| 0);
        assert_eq!(confusion.total(), test.len() as u64);
    }

    #[test]
    fn degradation_of_empty_series_is_zero() {
        assert_eq!(degradation(&[], |p| p.mlp_accuracy), 0.0);
    }
}
