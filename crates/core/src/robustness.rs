//! Input-noise robustness: an extension experiment the paper's framing
//! invites. The introduction motivates accelerators with "processing of
//! real-world input data", and a recurring claim for spike codes is
//! robustness to input noise. This sweep trains both models once on
//! clean(er) data, then evaluates them under increasing test-time pixel
//! noise — measuring which accelerator's accuracy degrades faster when
//! the sensor gets worse, without retraining.

use crate::engine::{Engine, Experiment, Job, ModelSpec};
use crate::error::Error;
use crate::experiment::{ExperimentScale, Workload};
use nc_dataset::Dataset;
use nc_mlp::{metrics, Activation, Mlp};
use nc_snn::{SnnNetwork, SnnParams, WotSnn};
use nc_substrate::fixed::sat_u8_trunc;
use nc_substrate::rng::{noise_seed, SplitMix64};
use nc_substrate::stats::Confusion;
use std::sync::Arc;

/// One point of the robustness sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessPoint {
    /// Added uniform test-time noise amplitude, in luminance units [0,1].
    pub noise: f64,
    /// MLP accuracy under this noise.
    pub mlp_accuracy: f64,
    /// SNN (STDP, LIF readout) accuracy.
    pub snn_accuracy: f64,
    /// SNNwot accuracy.
    pub wot_accuracy: f64,
}

/// Applies test-time uniform noise to every pixel of a dataset, with
/// deterministic seeding. Infallible: [`Dataset::map_pixels`] preserves
/// the source geometry by construction.
pub fn corrupt(data: &Dataset, noise: f64, seed: u64) -> Dataset {
    let mut rng = SplitMix64::new(seed ^ 0x2015_CE50);
    data.map_pixels(|_, pixels| {
        for p in pixels.iter_mut() {
            let delta = rng.next_range(-noise, noise) * 255.0;
            *p = sat_u8_trunc(f64::from(*p) + delta);
        }
    })
}

/// Evaluates pre-trained models under each noise level. The SNN is
/// evaluated through both its readouts (LIF first-to-fire and the
/// SNNwot max-potential path).
pub fn sweep(
    mlp: &Mlp,
    snn: &mut SnnNetwork,
    test: &Dataset,
    noise_levels: &[f64],
) -> Vec<RobustnessPoint> {
    let wot = WotSnn::from_network(snn);
    noise_levels
        .iter()
        .map(|&noise| {
            let noisy = corrupt(test, noise, noise_seed(noise));
            let mlp_accuracy = metrics::evaluate(mlp, &noisy).accuracy();
            let snn_accuracy = snn.evaluate(&noisy).accuracy();
            let wot_accuracy = wot.evaluate(&noisy).accuracy();
            RobustnessPoint {
                noise,
                mlp_accuracy,
                snn_accuracy,
                wot_accuracy,
            }
        })
        .collect()
}

/// The robustness sweep as an engine experiment: each model family is
/// one independent training job, and each trained model then walks the
/// noise ladder sequentially inside its own job (the SNN readout is
/// stateful across evaluations, so the ladder must not be split).
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessSweep {
    /// Workload under test.
    pub workload: Workload,
    /// Pinned scale; `None` defers to the engine's scale.
    pub scale: Option<ExperimentScale>,
    /// Test-time noise amplitudes, in luminance units [0,1].
    pub noise_levels: Vec<f64>,
    /// MLP hidden-layer width.
    pub mlp_hidden: usize,
    /// SNN layer size.
    pub snn_neurons: usize,
    /// Shared initialization seed.
    pub seed: u64,
}

impl RobustnessSweep {
    /// The default ladder: clean through heavily corrupted input.
    pub fn standard(workload: Workload) -> Self {
        RobustnessSweep {
            workload,
            scale: None,
            noise_levels: vec![0.0, 0.1, 0.2, 0.4, 0.6],
            mlp_hidden: 20,
            snn_neurons: 50,
            seed: 0x2015_CE50,
        }
    }
}

impl Experiment for RobustnessSweep {
    type Output = Vec<RobustnessPoint>;

    fn run(&self, engine: &Engine) -> Result<Vec<RobustnessPoint>, Error> {
        if self.noise_levels.is_empty() {
            return Err(Error::BadConfig(String::from(
                "robustness sweep has no noise levels",
            )));
        }
        let scale = self.scale.unwrap_or_else(|| engine.scale());
        let data = engine.dataset_at(self.workload, scale);
        let (train, test) = (&data.0, &data.1);
        if train.is_empty() || test.is_empty() {
            return Err(Error::EmptyDataset);
        }
        // Corrupt once into contiguous evaluation slabs, shared
        // read-only across the three jobs.
        let noisy: Vec<Arc<nc_dataset::PixelSlab>> = self
            .noise_levels
            .iter()
            .map(|&n| {
                Arc::new(nc_dataset::PixelSlab::from_dataset(&corrupt(
                    test,
                    n,
                    noise_seed(n),
                )))
            })
            .collect();
        let (inputs, classes) = (train.input_dim(), train.num_classes());
        let params = SnnParams::tuned(self.snn_neurons);
        let specs = [
            ModelSpec::Mlp {
                sizes: vec![inputs, self.mlp_hidden, classes],
                activation: Activation::sigmoid(),
                seed: self.seed,
            },
            ModelSpec::Snn {
                inputs,
                classes,
                params,
                seed: self.seed,
            },
            ModelSpec::Wot {
                inputs,
                classes,
                params,
                seed: self.seed,
            },
        ];
        let eval_samples = (test.len() * self.noise_levels.len()) as u64;
        let jobs: Vec<Job<(ModelSpec, nc_dataset::FitBudget)>> = specs
            .into_iter()
            .map(|spec| {
                let budget = spec.budget(scale);
                let samples =
                    (train.len() * budget.epochs.max(budget.stdp_epochs)) as u64 + eval_samples;
                Job::new(
                    format!("robustness/{}/{}", self.workload, spec.display_name()),
                    samples,
                    (spec, budget),
                )
            })
            .collect();
        let ladders: Vec<Result<Vec<f64>, Error>> = engine.run_jobs(jobs, |(spec, budget)| {
            let mut model = spec.build()?;
            model.fit(train, &budget)?;
            Ok(noisy
                .iter()
                .map(|d| model.evaluate_batch(&d.batch()).accuracy())
                .collect())
        });
        let mut ladders = ladders.into_iter();
        let (mlp, snn, wot) = match (ladders.next(), ladders.next(), ladders.next()) {
            (Some(mlp), Some(snn), Some(wot)) => (mlp?, snn?, wot?),
            _ => unreachable!("exactly three ladder jobs were scheduled above"),
        };
        Ok(self
            .noise_levels
            .iter()
            .enumerate()
            .map(|(i, &noise)| RobustnessPoint {
                noise,
                mlp_accuracy: mlp[i],
                snn_accuracy: snn[i],
                wot_accuracy: wot[i],
            })
            .collect())
    }
}

/// Relative degradation of an accuracy series: `1 - acc(last)/acc(first)`
/// (0 = fully robust). Returns `None` for degenerate series — an empty
/// ladder or a zero starting accuracy has no meaningful ratio, and the
/// old silent `0.0` made a model that never worked look fully robust.
pub fn degradation(
    points: &[RobustnessPoint],
    extract: impl Fn(&RobustnessPoint) -> f64,
) -> Option<f64> {
    match (points.first(), points.last()) {
        (Some(first), Some(last)) if extract(first) > 0.0 => {
            Some(1.0 - extract(last) / extract(first))
        }
        _ => None,
    }
}

/// Evaluates a single confusion under noise, exposed for custom models.
pub fn evaluate_under_noise<F>(test: &Dataset, noise: f64, seed: u64, mut predict: F) -> Confusion
where
    F: FnMut(&[u8]) -> usize,
{
    let noisy = corrupt(test, noise, seed);
    let mut confusion = Confusion::new(test.num_classes());
    for s in noisy.iter() {
        confusion.record(s.label, predict(&s.pixels));
    }
    confusion
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dataset::{digits::DigitsSpec, Difficulty};
    use nc_mlp::{Activation, TrainConfig, Trainer};
    use nc_snn::SnnParams;

    fn task() -> (Dataset, Dataset) {
        DigitsSpec {
            train: 250,
            test: 80,
            seed: 55,
            difficulty: Difficulty::default(),
        }
        .generate()
    }

    #[test]
    fn corruption_is_deterministic_and_bounded() {
        let (_, test) = task();
        let a = corrupt(&test, 0.2, 7);
        let b = corrupt(&test, 0.2, 7);
        assert_eq!(a, b);
        let c = corrupt(&test, 0.2, 8);
        assert_ne!(a, c);
        // Zero noise is the identity.
        assert_eq!(corrupt(&test, 0.0, 7), test);
    }

    #[test]
    fn accuracy_degrades_with_noise() {
        let (train, test) = task();
        let mut mlp = Mlp::new(&[784, 16, 10], Activation::sigmoid(), 3).unwrap();
        Trainer::new(TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &train);
        let mut snn = SnnNetwork::new(784, 10, SnnParams::tuned(15), 3);
        snn.set_stdp_delta(8);
        snn.train_stdp(&train, 2);
        snn.self_label(&train);
        let points = sweep(&mlp, &mut snn, &test, &[0.0, 0.6]);
        assert_eq!(points.len(), 2);
        assert!(
            points[1].mlp_accuracy <= points[0].mlp_accuracy + 0.05,
            "{points:?}"
        );
        let deg = degradation(&points, |p| p.mlp_accuracy).unwrap();
        assert!((-0.1..=1.0).contains(&deg));
    }

    #[test]
    fn custom_predictor_hook_works() {
        let (_, test) = task();
        let confusion = evaluate_under_noise(&test, 0.1, 1, |_| 0);
        assert_eq!(confusion.total(), test.len() as u64);
    }

    #[test]
    fn degradation_of_degenerate_series_is_none() {
        assert_eq!(degradation(&[], |p| p.mlp_accuracy), None);
        // A model that never worked is not "fully robust".
        let dead = [
            RobustnessPoint {
                noise: 0.0,
                mlp_accuracy: 0.0,
                snn_accuracy: 0.5,
                wot_accuracy: 0.5,
            },
            RobustnessPoint {
                noise: 0.5,
                mlp_accuracy: 0.0,
                snn_accuracy: 0.25,
                wot_accuracy: 0.25,
            },
        ];
        assert_eq!(degradation(&dead, |p| p.mlp_accuracy), None);
        assert_eq!(degradation(&dead, |p| p.snn_accuracy), Some(0.5));
    }

    #[test]
    fn robustness_experiment_is_thread_count_invariant() {
        use crate::engine::Engine;
        use crate::experiment::{ExperimentScale, Workload};
        let sweep = RobustnessSweep {
            noise_levels: vec![0.0, 0.5],
            mlp_hidden: 6,
            snn_neurons: 8,
            ..RobustnessSweep::standard(Workload::Shapes)
        };
        let sequential = Engine::sequential(ExperimentScale::Tiny)
            .run(&sweep)
            .unwrap();
        let parallel = Engine::builder()
            .threads(3)
            .scale(ExperimentScale::Tiny)
            .build()
            .run(&sweep)
            .unwrap();
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.len(), 2);
    }

    #[test]
    fn robustness_experiment_rejects_an_empty_ladder() {
        use crate::engine::Engine;
        use crate::experiment::{ExperimentScale, Workload};
        let sweep = RobustnessSweep {
            noise_levels: vec![],
            ..RobustnessSweep::standard(Workload::Shapes)
        };
        let engine = Engine::sequential(ExperimentScale::Tiny);
        assert!(matches!(engine.run(&sweep), Err(Error::BadConfig(_))));
    }
}
