//! Cross-family regression: for every model the experiment engine
//! schedules, the batched evaluation path (`evaluate_batch` over a
//! contiguous [`PixelSlab`] view) must be bit-identical to the serial
//! `predict` loop it replaced — same confusion matrix, same per-image
//! predictions, same seeds. The batched paths are allowed to reorder
//! arithmetic only where the result is provably bit-equal (integer
//! GEMM tiles, the streaming SNN winner path), so any drift here is a
//! correctness bug, not a tolerance issue.

use nc_dataset::model::{FitBudget, Model, EVAL_PRESENTATION_SEED_BASE};
use nc_dataset::{digits::DigitsSpec, Dataset, Difficulty, PixelSlab};
use nc_mlp::{Activation, Mlp, QuantizedMlp};
use nc_snn::bp_hybrid::BpSnn;
use nc_snn::{SnnNetwork, SnnParams, WotSnn};
use nc_substrate::stats::Confusion;

fn data() -> (Dataset, Dataset) {
    DigitsSpec {
        train: 60,
        test: 35,
        seed: 17,
        difficulty: Difficulty::default(),
    }
    .generate()
}

fn budget() -> FitBudget {
    FitBudget {
        epochs: 2,
        stdp_epochs: 1,
        stdp_delta: 8,
        learning_rate: None,
    }
}

/// All five model families behind the unified trait, freshly fitted.
fn fitted_models(train: &Dataset) -> Vec<Box<dyn Model>> {
    let mut models: Vec<Box<dyn Model>> = vec![
        Box::new(Mlp::new(&[784, 12, 10], Activation::sigmoid(), 3).unwrap()),
        Box::new(QuantizedMlp::untrained(&[784, 12, 10], Activation::sigmoid(), 3).unwrap()),
        Box::new(SnnNetwork::new(784, 10, SnnParams::for_neurons(10), 3)),
        Box::new(WotSnn::untrained(784, 10, SnnParams::for_neurons(10), 3)),
        Box::new(BpSnn::new(784, 10, SnnParams::for_neurons(10), 3)),
    ];
    for model in &mut models {
        model.fit(train, &budget()).unwrap();
    }
    models
}

#[test]
fn batched_evaluation_matches_the_serial_predict_loop() {
    let (train, test) = data();
    let slab = PixelSlab::from_dataset(&test);
    for model in &mut fitted_models(&train) {
        // The serial reference: exactly the pre-batch evaluate loop.
        let mut serial = Vec::with_capacity(test.len());
        for (i, s) in test.iter().enumerate() {
            serial.push(model.predict(&s.pixels, EVAL_PRESENTATION_SEED_BASE | i as u64));
        }

        let mut batched = Vec::new();
        model.predict_batch(&slab.batch(), &mut batched);
        assert_eq!(batched, serial, "{} predict_batch drifted", model.name());

        let mut expected = Confusion::new(test.num_classes());
        for (s, &p) in test.iter().zip(&serial) {
            expected.record(s.label, p);
        }
        let confusion = model.evaluate_batch(&slab.batch());
        assert_eq!(
            confusion,
            expected,
            "{} evaluate_batch drifted",
            model.name()
        );
    }
}

#[test]
fn tiled_batches_preserve_per_item_seeds() {
    // Splitting the slab into tiles must not change any prediction: the
    // per-item presentation seed rides with the item, not the tile.
    let (train, test) = data();
    let slab = PixelSlab::from_dataset(&test);
    for model in &mut fitted_models(&train) {
        let mut whole = Vec::new();
        model.predict_batch(&slab.batch(), &mut whole);
        let mut tiled = Vec::new();
        for tile in slab.batch().tiles(7) {
            let mut part = Vec::new();
            model.predict_batch(&tile, &mut part);
            tiled.extend(part);
        }
        assert_eq!(tiled, whole, "{} is tile-size sensitive", model.name());
    }
}
