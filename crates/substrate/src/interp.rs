//! Piecewise-linear function interpolation.
//!
//! The accelerators never compute transcendental functions directly.
//! Instead they store a small SRAM table of `(a_i, b_i)` coefficient pairs
//! and evaluate `f(x) = a_i · x + b_i` in the segment containing `x`:
//!
//! * the MLP's sigmoid uses "16-point piecewise linear interpolation,
//!   requiring only a small SRAM table … an adder and a multiplier"
//!   (paper §4.2.1);
//! * the online-learning SNN models the exponential leak
//!   `v(T2) = v(T1) · e^{-(T2-T1)/Tleak}` the same way (paper §4.4).
//!
//! [`PiecewiseLinear`] is that table in software, and it deliberately has
//! the same approximation error the silicon would have, so model-level
//! accuracy experiments already include the hardware's function error.

/// A piecewise-linear approximation of a scalar function on a closed
/// interval, with uniformly spaced segments.
///
/// Outside the domain the approximation is clamped to its boundary values
/// (a saturating table lookup, which is what the comparator ladder in the
/// hardware produces).
///
/// # Examples
///
/// ```
/// use nc_substrate::interp::PiecewiseLinear;
///
/// let sig = PiecewiseLinear::sigmoid(16, 1.0, (-8.0, 8.0));
/// assert!((sig.eval(0.0) - 0.5).abs() < 1e-2);
/// assert!(sig.eval(100.0) > 0.99);   // clamped to the right boundary
/// assert!(sig.eval(-100.0) < 0.01);  // clamped to the left boundary
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    lo: f64,
    hi: f64,
    /// Per-segment slope `a_i`.
    slopes: Vec<f64>,
    /// Per-segment intercept `b_i` (in `f(x) = a_i·x + b_i`, x absolute).
    intercepts: Vec<f64>,
}

impl PiecewiseLinear {
    /// Builds a table with `segments` uniform segments approximating `f`
    /// on `[lo, hi]` by interpolating between the exact endpoint values.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0` or if `lo >= hi` or either bound is not
    /// finite.
    pub fn from_fn<F: Fn(f64) -> f64>(segments: usize, (lo, hi): (f64, f64), f: F) -> Self {
        assert!(segments > 0, "need at least one segment");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad domain");
        let step = (hi - lo) / segments as f64;
        let mut slopes = Vec::with_capacity(segments);
        let mut intercepts = Vec::with_capacity(segments);
        for i in 0..segments {
            let x0 = lo + step * i as f64;
            let x1 = x0 + step;
            let y0 = f(x0);
            let y1 = f(x1);
            let a = (y1 - y0) / step;
            let b = y0 - a * x0;
            slopes.push(a);
            intercepts.push(b);
        }
        PiecewiseLinear {
            lo,
            hi,
            slopes,
            intercepts,
        }
    }

    /// The 16-point sigmoid table of the MLP accelerator, for the
    /// parameterized sigmoid `f_a(x) = 1 / (1 + e^{-a·x})` (paper §3.2).
    pub fn sigmoid(segments: usize, a: f64, domain: (f64, f64)) -> Self {
        Self::from_fn(segments, domain, |x| 1.0 / (1.0 + (-a * x).exp()))
    }

    /// The exponential-decay table used by the online-learning SNN for the
    /// leak factor `e^{-dt/tleak}` on `dt ∈ [0, max_dt]`.
    ///
    /// # Panics
    ///
    /// Panics if `tleak` is not strictly positive.
    pub fn exp_decay(segments: usize, tleak: f64, max_dt: f64) -> Self {
        assert!(tleak > 0.0, "tleak must be positive");
        Self::from_fn(segments, (0.0, max_dt), |dt| (-dt / tleak).exp())
    }

    /// Evaluates the approximation, clamping `x` into the domain first.
    pub fn eval(&self, x: f64) -> f64 {
        let x = x.clamp(self.lo, self.hi);
        let n = self.slopes.len();
        let step = (self.hi - self.lo) / n as f64;
        let idx = crate::fixed::sat_usize_trunc((x - self.lo) / step).min(n - 1);
        self.slopes[idx] * x + self.intercepts[idx]
    }

    /// The domain the table covers.
    pub fn domain(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Number of segments (table entries).
    pub fn segments(&self) -> usize {
        self.slopes.len()
    }

    /// The `(a_i, b_i)` coefficient pairs, i.e. the SRAM contents
    /// (two coefficients per interpolation point, paper §4.2.1).
    pub fn coefficients(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.slopes
            .iter()
            .copied()
            .zip(self.intercepts.iter().copied())
    }

    /// Maximum absolute error against `f` sampled at `samples` uniformly
    /// spaced points inside the domain (a test/validation helper).
    pub fn max_error<F: Fn(f64) -> f64>(&self, f: F, samples: usize) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..=samples {
            let x = self.lo + (self.hi - self.lo) * i as f64 / samples as f64;
            worst = worst.max((self.eval(x) - f(x)).abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigmoid(x: f64) -> f64 {
        1.0 / (1.0 + (-x).exp())
    }

    #[test]
    fn sigmoid_16pt_is_accurate_enough_for_8bit() {
        // Linear interpolation of the sigmoid over 1-unit segments has a
        // worst-case error of max|f''|·h²/8 ≈ 0.012 — a couple of 8-bit
        // quanta, which the paper found "on par" with floating point.
        let t = PiecewiseLinear::sigmoid(16, 1.0, (-8.0, 8.0));
        assert!(t.max_error(sigmoid, 10_000) < 0.015);
    }

    #[test]
    fn eval_clamps_outside_domain() {
        let t = PiecewiseLinear::sigmoid(16, 1.0, (-8.0, 8.0));
        assert_eq!(t.eval(1e6), t.eval(8.0));
        assert_eq!(t.eval(-1e6), t.eval(-8.0));
    }

    #[test]
    fn exact_at_segment_endpoints() {
        let t = PiecewiseLinear::from_fn(8, (0.0, 4.0), |x| x * x);
        for i in 0..=8 {
            let x = 0.5 * i as f64;
            assert!((t.eval(x) - x * x).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn linear_functions_are_reproduced_exactly() {
        let t = PiecewiseLinear::from_fn(4, (-1.0, 3.0), |x| 2.5 * x - 1.0);
        for i in 0..100 {
            let x = -1.0 + 4.0 * i as f64 / 99.0;
            assert!((t.eval(x) - (2.5 * x - 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn exp_decay_is_monotone_decreasing() {
        let t = PiecewiseLinear::exp_decay(16, 500.0, 500.0);
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let v = t.eval(5.0 * i as f64);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
        assert!((t.eval(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coefficients_expose_sram_contents() {
        let t = PiecewiseLinear::sigmoid(16, 1.0, (-8.0, 8.0));
        assert_eq!(t.coefficients().count(), 16);
        assert_eq!(t.segments(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        let _ = PiecewiseLinear::from_fn(0, (0.0, 1.0), |x| x);
    }

    #[test]
    #[should_panic(expected = "bad domain")]
    fn inverted_domain_panics() {
        let _ = PiecewiseLinear::from_fn(4, (1.0, 0.0), |x| x);
    }
}
