//! Saturating fixed-point arithmetic.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
// ^ This is the one module where bare narrowing casts are the
// implementation technique (R2's exemption); Rust's float->int `as`
// saturates, which is exactly the semantics the `sat_*` helpers audit.
//!
//! The paper's accelerators use narrow fixed-point datapaths throughout:
//! 8-bit synaptic weights and activations for the MLP (§4.2.1), 8-bit
//! weights for SNNwt and 12-bit weighted spike-count products for SNNwot
//! (§4.2.3). This module provides two layers:
//!
//! * [`Q8`] — an unsigned 8-bit quantity with saturating update semantics,
//!   modeling a synaptic weight register (STDP increments/decrements of ±1
//!   must clip at the rails, paper §4.4).
//! * [`QFixed`] — a signed fixed-point value with a compile-time fractional
//!   bit count, used by the quantized MLP inference path to model the
//!   multiplier/adder-tree datapath at arbitrary widths.

use std::fmt;

/// An unsigned 8-bit saturating quantity: the hardware synaptic weight.
///
/// All mutation saturates at `0` and `255` instead of wrapping, matching
/// the behaviour of the weight-update datapath in the STDP circuit
/// (paper §4.4: "it applies constant increments/decrements of 1").
///
/// # Examples
///
/// ```
/// use nc_substrate::fixed::Q8;
///
/// let w = Q8::from_raw(254);
/// assert_eq!(w.saturating_add(Q8::from_raw(5)).raw(), 255);
/// assert_eq!(Q8::from_raw(1).saturating_sub(Q8::from_raw(3)).raw(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q8(u8);

impl Q8 {
    /// The additive identity (fully depressed synapse).
    pub const ZERO: Q8 = Q8(0);
    /// The saturation rail (fully potentiated synapse), `w_max` in the paper.
    pub const MAX: Q8 = Q8(u8::MAX);

    /// Creates a weight from its raw 8-bit register value.
    #[inline]
    pub const fn from_raw(raw: u8) -> Self {
        Q8(raw)
    }

    /// Quantizes a real value in `[0, 1]` onto the 8-bit grid, clamping
    /// values outside that range to the rails.
    ///
    /// # Examples
    ///
    /// ```
    /// use nc_substrate::fixed::Q8;
    /// assert_eq!(Q8::from_unit(1.0).raw(), 255);
    /// assert_eq!(Q8::from_unit(-2.0).raw(), 0);
    /// ```
    pub fn from_unit(x: f64) -> Self {
        let clamped = x.clamp(0.0, 1.0);
        Q8((clamped * 255.0).round() as u8)
    }

    /// Returns the raw 8-bit register value.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Reinterprets the weight as a real value in `[0, 1]`.
    #[inline]
    pub fn to_unit(self) -> f64 {
        f64::from(self.0) / 255.0
    }

    /// Saturating addition: clips at [`Q8::MAX`].
    #[inline]
    #[must_use]
    pub fn saturating_add(self, rhs: Q8) -> Q8 {
        Q8(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction: clips at [`Q8::ZERO`].
    #[inline]
    #[must_use]
    pub fn saturating_sub(self, rhs: Q8) -> Q8 {
        Q8(self.0.saturating_sub(rhs.0))
    }

    /// Applies a signed delta with saturation, the primitive used by the
    /// LTP (`+1`) / LTD (`-1`) weight updates.
    #[inline]
    #[must_use]
    pub fn saturating_offset(self, delta: i16) -> Q8 {
        let v = i32::from(self.0) + i32::from(delta);
        Q8(v.clamp(0, 255) as u8)
    }
}

impl fmt::Display for Q8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u8> for Q8 {
    fn from(raw: u8) -> Self {
        Q8(raw)
    }
}

impl From<Q8> for u8 {
    fn from(q: Q8) -> Self {
        q.0
    }
}

/// A signed fixed-point value with `FRAC` fractional bits stored in `i64`.
///
/// This models the wider internal accumulators of the hardware datapaths
/// (e.g. the adder tree that sums 784 products of 8-bit operands). The
/// representation is exact for addition; multiplication rounds to nearest
/// as a hardware multiplier followed by a truncating shift would.
///
/// `FRAC` must be less than 63.
///
/// # Examples
///
/// ```
/// use nc_substrate::fixed::QFixed;
///
/// type Acc = QFixed<16>;
/// let a = Acc::from_f64(1.5);
/// let b = Acc::from_f64(-0.25);
/// assert!(((a * b).to_f64() - -0.375).abs() < 1e-4);
/// assert_eq!((a + b).to_f64(), 1.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QFixed<const FRAC: u32>(i64);

impl<const FRAC: u32> QFixed<FRAC> {
    /// The additive identity.
    pub const ZERO: Self = QFixed(0);
    /// The multiplicative identity (`1.0`).
    pub const ONE: Self = QFixed(1 << FRAC);

    /// Creates a value from its raw two's-complement register contents.
    #[inline]
    pub const fn from_raw(raw: i64) -> Self {
        QFixed(raw)
    }

    /// Returns the raw register contents.
    #[inline]
    pub const fn raw(self) -> i64 {
        self.0
    }

    /// Quantizes a real value, rounding to the nearest representable grid
    /// point and saturating at the `i64` rails.
    pub fn from_f64(x: f64) -> Self {
        let scaled = x * f64::from(1u32 << FRAC);
        if scaled >= i64::MAX as f64 {
            QFixed(i64::MAX)
        } else if scaled <= i64::MIN as f64 {
            QFixed(i64::MIN)
        } else {
            QFixed(scaled.round() as i64)
        }
    }

    /// Converts back to a real value (exact: `i64` mantissas up to 2^53
    /// round-trip through `f64`; accumulators in this crate stay far
    /// below that).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / f64::from(1u32 << FRAC)
    }

    /// Saturating addition.
    #[inline]
    #[must_use]
    pub fn saturating_add(self, rhs: Self) -> Self {
        QFixed(self.0.saturating_add(rhs.0))
    }

    /// Fixed-point multiplication with round-to-nearest on the dropped
    /// fractional bits, computed in 128-bit to avoid intermediate overflow.
    #[inline]
    #[must_use]
    pub fn mul_round(self, rhs: Self) -> Self {
        let wide = i128::from(self.0) * i128::from(rhs.0);
        let half = 1i128 << (FRAC - 1);
        let rounded = (wide + half) >> FRAC;
        QFixed(rounded.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64)
    }
}

impl<const FRAC: u32> std::ops::Add for QFixed<FRAC> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        QFixed(self.0 + rhs.0)
    }
}

impl<const FRAC: u32> std::ops::Sub for QFixed<FRAC> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        QFixed(self.0 - rhs.0)
    }
}

impl<const FRAC: u32> std::ops::Mul for QFixed<FRAC> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        self.mul_round(rhs)
    }
}

impl<const FRAC: u32> std::ops::Neg for QFixed<FRAC> {
    type Output = Self;
    fn neg(self) -> Self {
        QFixed(-self.0)
    }
}

impl<const FRAC: u32> fmt::Display for QFixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

/// Quantizes an `f64` onto a signed `bits`-wide grid with `frac` fractional
/// bits, returning the de-quantized value. This is the "would the hardware
/// see the same number?" helper used by the quantized MLP path.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 32, or if `frac >= bits`.
///
/// # Examples
///
/// ```
/// use nc_substrate::fixed::quantize_to_grid;
/// // 8-bit, 6 fractional bits: resolution 1/64, range [-2, 2).
/// let q = quantize_to_grid(0.7, 8, 6);
/// assert!((q - 0.703125).abs() < 1e-9);
/// ```
pub fn quantize_to_grid(x: f64, bits: u32, frac: u32) -> f64 {
    assert!(bits > 0 && bits <= 32, "bits must be in 1..=32");
    assert!(frac < bits, "frac must be < bits");
    let scale = f64::from(1u32 << frac);
    let max_raw = (1i64 << (bits - 1)) - 1;
    let min_raw = -(1i64 << (bits - 1));
    let raw = (x * scale).round().clamp(min_raw as f64, max_raw as f64);
    raw / scale
}

// ---------------------------------------------------------------------------
// Audited saturating narrowing conversions.
//
// These free functions are the *only* sanctioned way to narrow a value onto
// a hardware register width outside this module (workspace invariant R2,
// see DESIGN.md "Static invariants"). Rust's float-to-int `as` casts have
// saturated since 1.45, so each helper is exactly the underlying cast —
// the point is to concentrate every narrowing in one audited file and make
// the rounding mode (truncate vs round-to-nearest) explicit at call sites.
// ---------------------------------------------------------------------------

/// Saturating `f64 → u8` with truncation toward zero (`as` semantics:
/// negatives and NaN map to 0, values ≥ 255 map to 255).
#[inline]
pub fn sat_u8_trunc(x: f64) -> u8 {
    x as u8
}

/// Saturating `f64 → u8` with round-to-nearest (ties away from zero),
/// the hardware quantizer used for 8-bit weight and activation grids.
#[inline]
pub fn sat_u8_round(x: f64) -> u8 {
    x.round() as u8
}

/// Saturating `i32 → u8`: clamps to the `[0, 255]` register rails, the
/// same semantics as [`Q8::saturating_offset`] for raw values.
#[inline]
pub fn sat_u8_from_i32(x: i32) -> u8 {
    x.clamp(0, 255) as u8
}

/// Saturating `f64 → i8` with round-to-nearest, for signed 8-bit weight
/// grids.
#[inline]
pub fn sat_i8_round(x: f64) -> i8 {
    x.round() as i8
}

/// Saturating `f64 → i32` with truncation toward zero.
#[inline]
pub fn sat_i32_trunc(x: f64) -> i32 {
    x as i32
}

/// Saturating `f64 → u32` with truncation toward zero.
#[inline]
pub fn sat_u32_trunc(x: f64) -> u32 {
    x as u32
}

/// Saturating `f64 → usize` with truncation toward zero (negatives and
/// NaN map to 0), for table indices derived from scaled reals.
#[inline]
pub fn sat_usize_trunc(x: f64) -> usize {
    x as usize
}

/// Saturating `f64 → u64` with truncation toward zero (negatives and
/// NaN map to 0), for seeds derived from scaled reals.
#[inline]
pub fn sat_u64_trunc(x: f64) -> u64 {
    x as u64
}

/// Saturating `f64 → i64` with round-to-nearest (ties away from zero),
/// the quantizer for wide fixed-point coefficients such as the
/// [`crate::kernel::FixedActLut`] slope/intercept words.
#[inline]
pub fn sat_i64_round(x: f64) -> i64 {
    x.round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q8_saturates_at_rails() {
        assert_eq!(Q8::MAX.saturating_add(Q8::from_raw(1)), Q8::MAX);
        assert_eq!(Q8::ZERO.saturating_sub(Q8::from_raw(1)), Q8::ZERO);
    }

    #[test]
    fn q8_offset_models_ltp_ltd() {
        let w = Q8::from_raw(128);
        assert_eq!(w.saturating_offset(1).raw(), 129);
        assert_eq!(w.saturating_offset(-1).raw(), 127);
        assert_eq!(Q8::MAX.saturating_offset(1), Q8::MAX);
        assert_eq!(Q8::ZERO.saturating_offset(-1), Q8::ZERO);
        assert_eq!(Q8::from_raw(3).saturating_offset(-10), Q8::ZERO);
        // Extreme deltas must saturate, not overflow the intermediate.
        assert_eq!(Q8::MAX.saturating_offset(i16::MAX), Q8::MAX);
        assert_eq!(Q8::ZERO.saturating_offset(i16::MIN), Q8::ZERO);
    }

    #[test]
    fn q8_unit_round_trip() {
        for raw in 0..=255u8 {
            let q = Q8::from_raw(raw);
            assert_eq!(Q8::from_unit(q.to_unit()), q);
        }
    }

    #[test]
    fn qfixed_add_is_exact() {
        type F = QFixed<12>;
        let a = F::from_f64(3.25);
        let b = F::from_f64(-1.125);
        assert_eq!((a + b).to_f64(), 2.125);
        assert_eq!((a - b).to_f64(), 4.375);
    }

    #[test]
    fn qfixed_mul_rounds_to_nearest() {
        type F = QFixed<8>;
        // 0.00390625 * 0.5 = 0.001953125, which rounds to 1/256 with
        // round-half-up at 8 fractional bits.
        let tiny = F::from_raw(1);
        let half = F::from_f64(0.5);
        assert_eq!((tiny * half).raw(), 1);
    }

    #[test]
    fn qfixed_one_is_identity() {
        type F = QFixed<16>;
        let x = F::from_f64(123.456);
        assert_eq!((x * F::ONE).raw(), x.raw());
    }

    #[test]
    fn qfixed_neg_and_ordering() {
        type F = QFixed<16>;
        let x = F::from_f64(1.5);
        assert!(-x < F::ZERO);
        assert!(x > F::ZERO);
        assert_eq!((-x).to_f64(), -1.5);
    }

    #[test]
    fn grid_quantization_clamps() {
        // 8-bit, frac 6 → max representable ~ 1.984375
        let q = quantize_to_grid(100.0, 8, 6);
        assert!((q - 1.984375).abs() < 1e-12);
        let q = quantize_to_grid(-100.0, 8, 6);
        assert!((q - -2.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_conversions_hold_at_the_rails() {
        assert_eq!(sat_u8_trunc(-3.7), 0);
        assert_eq!(sat_u8_trunc(254.9), 254);
        assert_eq!(sat_u8_trunc(1e9), 255);
        assert_eq!(sat_u8_trunc(f64::NAN), 0);
        assert_eq!(sat_u8_round(254.5), 255);
        assert_eq!(sat_u8_round(-0.4), 0);
        assert_eq!(sat_u8_round(1e9), 255);
        assert_eq!(sat_u8_from_i32(-1), 0);
        assert_eq!(sat_u8_from_i32(128), 128);
        assert_eq!(sat_u8_from_i32(300), 255);
        assert_eq!(sat_i8_round(-200.0), -128);
        assert_eq!(sat_i8_round(4.5), 5);
        assert_eq!(sat_i32_trunc(1e18), i32::MAX);
        assert_eq!(sat_i32_trunc(-1.9), -1);
        assert_eq!(sat_u32_trunc(-5.0), 0);
        assert_eq!(sat_u32_trunc(7.99), 7);
        assert_eq!(sat_usize_trunc(-0.1), 0);
        assert_eq!(sat_usize_trunc(41.9), 41);
        assert_eq!(sat_u64_trunc(-2.0), 0);
        assert_eq!(sat_u64_trunc(1234.9), 1234);
        assert_eq!(sat_u64_trunc(f64::NAN), 0);
        assert_eq!(sat_u64_trunc(1e300), u64::MAX);
        assert_eq!(sat_i64_round(2.5), 3);
        assert_eq!(sat_i64_round(-2.5), -3);
        assert_eq!(sat_i64_round(1e300), i64::MAX);
        assert_eq!(sat_i64_round(-1e300), i64::MIN);
        assert_eq!(sat_i64_round(f64::NAN), 0);
    }

    #[test]
    fn grid_quantization_is_idempotent() {
        for &x in &[0.1, -0.7, 1.3, 0.0, -1.99] {
            let q = quantize_to_grid(x, 8, 6);
            assert_eq!(quantize_to_grid(q, 8, 6), q);
        }
    }
}
