//! A seeded-loop property-test harness (std-only, no external deps).
//!
//! [`check_cases`] drives a closure through a fixed number of
//! pseudo-random cases, each with its own [`SplitMix64`] derived from a
//! master seed. When a case's assertions panic, the harness prints the
//! case index and its RNG seed before propagating, so the failure
//! reproduces standalone:
//!
//! ```
//! use nc_substrate::check::check_cases;
//!
//! check_cases(0xABCD, 32, |case, rng| {
//!     let x = rng.next_range(0.0, 1.0);
//!     assert!((0.0..1.0).contains(&x), "case {case}");
//! });
//! ```
//!
//! Determinism is the point: the same `(seed, cases)` pair replays the
//! same inputs on every platform, so a red run in CI reproduces locally
//! with no shrinking or persistence machinery.

use crate::rng::SplitMix64;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default case count used by the substrate's invariant tests: enough
/// to sweep edge regions, small enough to keep `cargo test` instant.
pub const DEFAULT_CASES: u64 = 64;

/// Runs `f` for `cases` pseudo-random cases. Each case receives its
/// index and a fresh [`SplitMix64`] seeded from the master `seed`; a
/// panicking case is reported with enough context to replay it.
///
/// # Panics
///
/// Re-raises the first case failure after printing the case index and
/// per-case seed.
pub fn check_cases<F>(seed: u64, cases: u64, f: F)
where
    F: Fn(u64, &mut SplitMix64),
{
    let mut master = SplitMix64::new(seed);
    for case in 0..cases {
        let case_seed = master.next_u64();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = SplitMix64::new(case_seed);
            f(case, &mut rng);
        }));
        if let Err(panic) = outcome {
            eprintln!(
                "property failed at case {case}/{cases} \
                 (master seed {seed:#x}, case seed {case_seed:#x})"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_every_case_with_distinct_seeds() {
        let count = AtomicU64::new(0);
        let mut seeds = std::sync::Mutex::new(Vec::new());
        check_cases(7, 16, |_, rng| {
            count.fetch_add(1, Ordering::Relaxed);
            seeds.lock().unwrap().push(rng.next_u64());
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
        let seen = seeds.get_mut().unwrap();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 16, "per-case streams must differ");
    }

    #[test]
    fn same_seed_replays_identical_inputs() {
        let collect = |seed| {
            let out = std::sync::Mutex::new(Vec::new());
            check_cases(seed, 8, |_, rng| out.lock().unwrap().push(rng.next_u64()));
            out.into_inner().unwrap()
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }

    #[test]
    fn failing_case_propagates_the_panic() {
        let result = catch_unwind(|| {
            check_cases(1, 8, |case, _| assert!(case < 3, "boom at {case}"));
        });
        assert!(result.is_err());
    }
}
