//! Shared hot-path kernels for the narrow-integer datapaths.
//!
//! The paper's accelerators are fast because their inner loops are tiny
//! integer pipelines: 8-bit multiplies feeding a wide adder tree (§4.1,
//! §4.3) and a piecewise-interpolated activation evaluated straight from
//! an SRAM coefficient table (§4.2.1). This module is that inner loop in
//! software, shared by the quantized MLP, the `nc-hw` cycle simulators
//! and the benches:
//!
//! * [`gemv_i8xu8`] — the blocked integer matrix–vector product with
//!   i64 adder-tree semantics (bit-exact regardless of blocking, since
//!   integer addition is associative).
//! * [`gemm_i8xu8`] — the batched form: one weight pass over a
//!   contiguous slab of presentations, bit-identical to running the
//!   GEMV column by column.
//! * [`swar_spike_counts`] — the SNNwot luminance→spike-count ladder
//!   evaluated word-parallel, eight pixels per iteration.
//! * [`FixedActLut`] — the activation table lowered to fixed-point
//!   coefficients, so the whole layer evaluation `u8 → i64 → u8` never
//!   leaves the integer domain.
//! * [`Scratch`] — the reusable layer buffers a network owns, so the
//!   steady-state forward pass performs no heap allocation.
//!
//! # Integer rescale derivation
//!
//! The float reference computed `s = acc / (255·2^e)` and then
//! `y = a_i·s + b_i` from the interpolation table, quantizing `255·y`
//! back onto the u8 activation grid. Substituting:
//!
//! ```text
//! 255·y = 255·a_i·acc / (255·2^e) + 255·b_i = a_i·2^{-e}·acc + 255·b_i
//! ```
//!
//! The 255 cancels inside the slope term, so with `A_i = a_i·2^{F-e}`
//! and `B_i = 255·b_i·2^F` rounded to integers (`F` fractional bits),
//! the activation output is one multiply, one add and one rounding
//! shift: `(A_i·acc + B_i + 2^{F-1}) >> F`, clamped to the u8 rails —
//! exactly the multiplier + adder the paper describes, with no float
//! unit anywhere in the datapath.

use crate::fixed::sat_i64_round;
use crate::interp::PiecewiseLinear;

/// Rows per i32 partial-sum block in [`gemv_i8xu8`]. The worst-case
/// partial is `BLOCK · 127 · 255 < 2^23`, far inside the i32 range, so
/// blocking never overflows and — integer addition being associative —
/// the blocked sum is bit-identical to the naive i64 accumulation.
const BLOCK: usize = 256;

/// Presentation columns per cache tile in [`gemm_i8xu8`]: every weight
/// row fetched from memory is reused across this many batch columns
/// before the walk moves to the next row, so a large weight matrix
/// streams through cache once per tile instead of once per image.
const COL_TILE: usize = 8;

/// Fractional bits of the [`FixedActLut`] coefficients.
const FRAC: u32 = 32;

/// Blocked integer GEMV with i64 adder-tree semantics: for every output
/// row `j`, `out[j] = Σ_i w[j][i]·input[i] + w[j][n]·255` where `n =
/// input.len()` and each weight row is `n + 1` wide with the bias word
/// last (the bias input is the constant 1.0 ≡ 255 on the u8 grid).
///
/// Inner blocks accumulate in `i32` (provably overflow-free, see
/// [`BLOCK`]) so the compiler can vectorize the 8-bit multiplies; block
/// results are summed into the wide `i64` accumulator, matching the
/// hardware's narrow-multiplier / wide-adder-tree split.
///
/// # Panics
///
/// Panics if `weights.len() != out.len() · (input.len() + 1)`.
pub fn gemv_i8xu8(weights: &[i8], input: &[u8], out: &mut [i64]) {
    let row_w = input.len() + 1;
    assert_eq!(
        weights.len(),
        out.len() * row_w,
        "weight matrix does not match input/output geometry"
    );
    for (j, acc_out) in out.iter_mut().enumerate() {
        let row = &weights[j * row_w..(j + 1) * row_w];
        let mut acc = i64::from(row[input.len()]) * 255; // bias input = 1.0 ≡ 255
        for (wb, ib) in row[..input.len()].chunks(BLOCK).zip(input.chunks(BLOCK)) {
            let mut partial = 0i32;
            for (&w, &x) in wb.iter().zip(ib) {
                partial += i32::from(w) * i32::from(x);
            }
            acc += i64::from(partial);
        }
        *acc_out = acc;
    }
}

/// Blocked integer GEMM over a batch of presentations: the batched form
/// of [`gemv_i8xu8`]. `inputs` holds `cols` images back to back, each
/// `inputs.len() / cols` pixels wide; `weights` is the same
/// `rows × (in_dim + 1)` bias-last matrix the GEMV takes, and `out` is
/// column-major — `out[c·rows + j]` is row `j` of presentation `c`,
/// so each presentation's accumulators are one contiguous stripe.
///
/// Every `(j, c)` cell runs the identical bias-first, `BLOCK`-chunked
/// i32-partial accumulation as [`gemv_i8xu8`], so the result is
/// bit-identical to calling the GEMV column by column (integer addition
/// is exact and associative; the property test below pins this). The
/// tiling only reorders *which* cell is computed when: columns are
/// processed [`COL_TILE`] at a time with the weight row held hot.
///
/// # Panics
///
/// Panics if `cols == 0`, if `inputs.len()` is not a multiple of
/// `cols`, or if `weights`/`out` do not match the implied geometry.
pub fn gemm_i8xu8(weights: &[i8], rows: usize, inputs: &[u8], cols: usize, out: &mut [i64]) {
    assert!(cols > 0, "batched GEMM needs at least one column");
    assert_eq!(
        inputs.len() % cols,
        0,
        "input slab is not a whole number of presentations"
    );
    let in_dim = inputs.len() / cols;
    let row_w = in_dim + 1;
    assert_eq!(
        weights.len(),
        rows * row_w,
        "weight matrix does not match input/output geometry"
    );
    assert_eq!(
        out.len(),
        rows * cols,
        "output slab does not match rows × cols"
    );
    if in_dim == 0 {
        for c in 0..cols {
            for j in 0..rows {
                out[c * rows + j] = i64::from(weights[j * row_w + in_dim]) * 255;
            }
        }
        return;
    }
    let tiles = inputs
        .chunks(in_dim * COL_TILE)
        .zip(out.chunks_mut(rows * COL_TILE));
    for (in_tile, out_tile) in tiles {
        let tile_cols = in_tile.len() / in_dim;
        for j in 0..rows {
            let row = &weights[j * row_w..(j + 1) * row_w];
            let bias = i64::from(row[in_dim]) * 255; // bias input = 1.0 ≡ 255
            for c in 0..tile_cols {
                let image = &in_tile[c * in_dim..(c + 1) * in_dim];
                let mut acc = bias;
                for (wb, ib) in row[..in_dim].chunks(BLOCK).zip(image.chunks(BLOCK)) {
                    let mut partial = 0i32;
                    for (&w, &x) in wb.iter().zip(ib) {
                        partial += i32::from(w) * i32::from(x);
                    }
                    acc += i64::from(partial);
                }
                out_tile[c * rows + j] = acc;
            }
        }
    }
}

/// SWAR luminance→spike-count conversion: the SNNwot comparator-ladder
/// staircase `(p·max_spikes + 127) / 255` evaluated eight pixels per
/// iteration in 16-bit lanes of two u64 words — the same
/// word-parallel-over-serial trade [`crate::rng::Lfsr31::next_u31`]
/// makes for the LFSR.
///
/// Lane math: a byte is at most 255, so `255·max_spikes + 127 ≤ 4207`
/// for `max_spikes ≤ 16` — comfortably inside a 16-bit lane, and the
/// division by 255 reduces to `(x + 1 + ⌊x/256⌋) >> 8`, which is exact
/// for all `x = 255·a + b` with `a ≤ 16` (when `b ≥ a` the numerator is
/// `256·a + b + 1` with `b + 1 < 256`; when `b < a` it is `256·a + b`;
/// either way the shift yields `a`). The exhaustive test below checks
/// every luminance against the scalar staircase.
///
/// Above `max_spikes = 16` the lane product would carry into the next
/// pixel's lane and a release build (no debug overflow checks) would
/// return silently corrupted counts, so the word-parallel path is
/// gated: oversized ladders take the scalar staircase instead, with
/// each count saturating at `u8::MAX` (the widest ladder a `u8` count
/// can express). The paper's ladder tops out at 10 spikes (§4.2.2), so
/// nothing on the hot path ever pays for the fallback.
///
/// # Panics
///
/// Panics if `out.len() != pixels.len()`.
pub fn swar_spike_counts(pixels: &[u8], max_spikes: u32, out: &mut [u8]) {
    assert_eq!(out.len(), pixels.len(), "output must match pixel count");
    if max_spikes > 16 {
        // Scalar rail: bit-exact staircase at any ladder height, no
        // cross-lane carry to corrupt. `u64` arithmetic cannot overflow
        // (`255·u32::MAX + 127 < 2^40`) and the count saturates at the
        // `u8` rail the SWAR path's output type already imposes.
        for (&p, o) in pixels.iter().zip(out.iter_mut()) {
            let count = (u64::from(p) * u64::from(max_spikes) + 127) / 255;
            *o = u8::try_from(count).unwrap_or(u8::MAX);
        }
        return;
    }
    const LANES: u64 = 0x00FF_00FF_00FF_00FF;
    const ONES: u64 = 0x0001_0001_0001_0001;
    let staircase = |x: u64| -> u64 {
        // Per-lane (x·max + 127) / 255; the numerator tops out at 4207
        // per lane so neither the multiply, the rounding add, nor the
        // division fix-up ever carries across a lane boundary.
        let num = x * u64::from(max_spikes) + 127 * ONES;
        ((num + ONES + ((num >> 8) & LANES)) >> 8) & LANES
    };
    let mut chunks = pixels.chunks_exact(8);
    let mut out_chunks = out.chunks_exact_mut(8);
    for (chunk, out_chunk) in chunks.by_ref().zip(out_chunks.by_ref()) {
        let w = chunk
            .iter()
            .rev()
            .fold(0u64, |acc, &b| (acc << 8) | u64::from(b));
        let lo = staircase(w & LANES);
        let hi = staircase((w >> 8) & LANES);
        out_chunk.copy_from_slice(&(lo | (hi << 8)).to_le_bytes());
    }
    for (&p, o) in chunks.remainder().iter().zip(out_chunks.into_remainder()) {
        *o = u8::try_from((u32::from(p) * max_spikes + 127) / 255).unwrap_or(u8::MAX);
    }
}

/// Reusable hot-path buffers owned by a network: double-buffered u8
/// activations plus the i64 adder-tree accumulators. Sized lazily by
/// [`Scratch::ensure`], so after the first presentation the steady
/// state performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Current-layer activations (the layer input).
    pub front: Vec<u8>,
    /// Next-layer activations (the layer output); swapped with `front`
    /// after each layer.
    pub back: Vec<u8>,
    /// Adder-tree accumulators, one per output row.
    pub acc: Vec<i64>,
}

impl Scratch {
    /// Grows the buffers to hold `max_width` activations and
    /// accumulators without reallocating on subsequent calls with the
    /// same or smaller width.
    pub fn ensure(&mut self, max_width: usize) {
        if self.front.len() < max_width {
            self.front.resize(max_width, 0);
            self.back.resize(max_width, 0);
            self.acc.resize(max_width, 0);
        }
    }
}

/// An activation interpolation table lowered to fixed-point, evaluated
/// directly on the i64 adder-tree accumulator of a layer with scale
/// exponent `e` (weights stored as `w·2^e`): the integer replacement
/// for `table.eval(acc / (255·2^e))·255` (see the module docs for the
/// derivation).
#[derive(Debug, Clone, PartialEq)]
pub struct FixedActLut {
    /// Accumulator rails: the smallest/largest accumulator whose rescaled
    /// value `acc/K` lies inside the table domain (`K = 255·2^e`).
    acc_lo: i64,
    acc_hi: i64,
    /// Saturated outputs for accumulators outside the rails — the float
    /// path clamps `acc/K` to exactly `lo`/`hi`, so the out-of-domain
    /// outputs are the boundary evaluations, precomputed once (the
    /// hardware comparator ladder's saturating lookup).
    sat_lo: u8,
    sat_hi: u8,
    /// Interior segment boundaries in accumulator units: entry `m` is
    /// `ceil((lo + (m+1)·step)·K)`, so the segment index is the count
    /// of boundaries `≤ acc`.
    boundaries: Vec<i64>,
    /// Per-segment slope `A_i = round(a_i·2^{F-e})`.
    a: Vec<i64>,
    /// Per-segment intercept `B_i = round(255·b_i·2^F)`.
    b: Vec<i64>,
}

impl FixedActLut {
    /// Lowers `table` for a layer whose weights carry the power-of-two
    /// scale exponent `scale_exp`.
    ///
    /// # Panics
    ///
    /// Panics if the table has no segments (cannot happen for tables
    /// built through [`PiecewiseLinear`] constructors).
    pub fn new(table: &PiecewiseLinear, scale_exp: i32) -> Self {
        let (lo, hi) = table.domain();
        let n = table.segments();
        assert!(n > 0, "activation table must have segments");
        let k = 255.0 * 2f64.powi(scale_exp);
        let step = (hi - lo) / n as f64;
        let coeff_scale = 2f64.powi(i32::try_from(FRAC).unwrap_or(i32::MAX) - scale_exp);
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        for (slope, intercept) in table.coefficients() {
            a.push(sat_i64_round(slope * coeff_scale));
            b.push(sat_i64_round(
                intercept * 255.0 * 2f64.powi(i32::try_from(FRAC).unwrap_or(i32::MAX)),
            ));
        }
        let boundaries = (1..n)
            .map(|m| sat_i64_round(((lo + step * m as f64) * k).ceil()))
            .collect();
        FixedActLut {
            acc_lo: sat_i64_round((lo * k).ceil()),
            acc_hi: sat_i64_round((hi * k).floor()),
            sat_lo: crate::fixed::sat_u8_round((table.eval(lo) * 255.0).clamp(0.0, 255.0)),
            sat_hi: crate::fixed::sat_u8_round((table.eval(hi) * 255.0).clamp(0.0, 255.0)),
            boundaries,
            a,
            b,
        }
    }

    /// Evaluates the activation on a raw adder-tree accumulator,
    /// returning the u8 neuron-output register value.
    pub fn eval(&self, acc: i64) -> u8 {
        if acc < self.acc_lo {
            return self.sat_lo;
        }
        if acc > self.acc_hi {
            return self.sat_hi;
        }
        let idx = self.boundaries.partition_point(|&bound| bound <= acc);
        let y = (i128::from(self.a[idx]) * i128::from(acc)
            + i128::from(self.b[idx])
            + (1i128 << (FRAC - 1)))
            >> FRAC;
        u8::try_from(y.clamp(0, 255)).unwrap_or(u8::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_cases, DEFAULT_CASES};
    use crate::fixed::sat_u8_round;

    /// The widened scalar reference: one i128 accumulator per row, no
    /// blocking, the order-of-operations-free ground truth.
    fn gemv_reference(weights: &[i8], input: &[u8], rows: usize) -> Vec<i64> {
        let row_w = input.len() + 1;
        (0..rows)
            .map(|j| {
                let row = &weights[j * row_w..(j + 1) * row_w];
                let mut acc = i128::from(row[input.len()]) * 255;
                for (&w, &x) in row[..input.len()].iter().zip(input) {
                    acc += i128::from(w) * i128::from(x);
                }
                i64::try_from(acc).unwrap_or(i64::MAX)
            })
            .collect()
    }

    #[test]
    fn gemv_matches_widened_reference_on_random_matrices() {
        check_cases(0x6E3B, DEFAULT_CASES, |case, rng| {
            // Sizes straddle the blocking boundary (BLOCK = 256).
            let n = 1 + rng.next_index(700);
            let rows = 1 + rng.next_index(12);
            let weights: Vec<i8> = (0..rows * (n + 1))
                .map(|_| {
                    let v = i64::try_from(rng.next_index(255)).unwrap_or(0) - 127;
                    i8::try_from(v).unwrap_or(0) // always in -127..=127
                })
                .collect();
            let input: Vec<u8> = (0..n)
                .map(|_| u8::try_from(rng.next_index(256)).unwrap_or(0))
                .collect();
            let mut out = vec![0i64; rows];
            gemv_i8xu8(&weights, &input, &mut out);
            assert_eq!(out, gemv_reference(&weights, &input, rows), "case {case}");
        });
    }

    #[test]
    fn gemm_matches_column_by_column_gemv() {
        check_cases(0x9EAA, DEFAULT_CASES, |case, rng| {
            // Sizes straddle both blocking boundaries (BLOCK = 256 on
            // the depth axis, COL_TILE = 8 on the batch axis).
            let n = 1 + rng.next_index(520);
            let rows = 1 + rng.next_index(12);
            let cols = 1 + rng.next_index(20);
            let weights: Vec<i8> = (0..rows * (n + 1))
                .map(|_| {
                    let v = i64::try_from(rng.next_index(255)).unwrap_or(0) - 127;
                    i8::try_from(v).unwrap_or(0)
                })
                .collect();
            let inputs: Vec<u8> = (0..n * cols)
                .map(|_| u8::try_from(rng.next_index(256)).unwrap_or(0))
                .collect();
            let mut batched = vec![0i64; rows * cols];
            gemm_i8xu8(&weights, rows, &inputs, cols, &mut batched);
            let mut serial = vec![0i64; rows];
            for c in 0..cols {
                gemv_i8xu8(&weights, &inputs[c * n..(c + 1) * n], &mut serial);
                assert_eq!(
                    &batched[c * rows..(c + 1) * rows],
                    &serial[..],
                    "case {case} col {c} (n={n} rows={rows} cols={cols})"
                );
            }
        });
    }

    #[test]
    fn gemm_handles_zero_width_images() {
        // Bias-only network: every presentation reduces to the bias row.
        let weights = [3i8, -2];
        let mut out = vec![0i64; 6];
        gemm_i8xu8(&weights, 2, &[], 3, &mut out);
        assert_eq!(out, vec![765, -510, 765, -510, 765, -510]);
    }

    #[test]
    #[should_panic(expected = "whole number of presentations")]
    fn gemm_rejects_ragged_batches() {
        let mut out = vec![0i64; 2];
        gemm_i8xu8(&[0i8; 8], 1, &[0u8; 13], 2, &mut out);
    }

    #[test]
    fn swar_counts_match_the_scalar_staircase_for_every_luminance() {
        // Every (luminance, max_spikes) pair, including buffers whose
        // length is not a multiple of the 8-pixel SWAR word.
        let pixels: Vec<u8> = (0..=255u8).collect();
        for max_spikes in 0..=16u32 {
            for len in [256usize, 255, 7, 8, 9, 1, 0] {
                let mut got = vec![0u8; len];
                swar_spike_counts(&pixels[..len], max_spikes, &mut got);
                for (&p, &c) in pixels[..len].iter().zip(&got) {
                    assert_eq!(
                        u32::from(c),
                        (u32::from(p) * max_spikes + 127) / 255,
                        "p={p} max={max_spikes}"
                    );
                }
            }
        }
    }

    #[test]
    fn swar_counts_are_exact_at_the_sixteen_spike_boundary() {
        // max_spikes = 16 is the last ladder the 16-bit lanes can hold:
        // the word-parallel path must still match the scalar staircase
        // for every luminance, including the 255·16 + 127 = 4207 peak.
        let pixels: Vec<u8> = (0..=255u8).collect();
        let mut got = vec![0u8; 256];
        swar_spike_counts(&pixels, 16, &mut got);
        for (&p, &c) in pixels.iter().zip(&got) {
            assert_eq!(u32::from(c), (u32::from(p) * 16 + 127) / 255, "p={p}");
        }
        assert_eq!(got[255], 16);
    }

    #[test]
    fn swar_counts_take_the_scalar_rail_above_sixteen_spikes() {
        // One past the boundary: a lane product of 255·17 + 127 = 4462
        // would carry into the neighbouring pixel's lane, so the call
        // must route to the scalar staircase — exact counts, neighbours
        // untouched, on buffers longer and shorter than the SWAR word.
        let pixels: Vec<u8> = (0..=255u8).collect();
        for len in [256usize, 9, 8, 7, 1] {
            let mut got = vec![0u8; len];
            swar_spike_counts(&pixels[..len], 17, &mut got);
            for (&p, &c) in pixels[..len].iter().zip(&got) {
                assert_eq!(
                    u32::from(c),
                    (u32::from(p) * 17 + 127) / 255,
                    "p={p} len={len}"
                );
            }
        }
        // Ladders beyond the u8 count range saturate at the rail
        // instead of wrapping: (255·1000 + 127)/255 = 1000 → 255.
        let mut out = [0u8; 2];
        swar_spike_counts(&[255, 0], 1_000, &mut out);
        assert_eq!(out, [255, 0]);
    }

    #[test]
    fn gemv_handles_extreme_weights_and_saturated_input() {
        let n = 784;
        let weights: Vec<i8> = (0..2 * (n + 1))
            .map(|i| if i % 2 == 0 { i8::MIN } else { i8::MAX })
            .collect();
        let input = vec![255u8; n];
        let mut out = vec![0i64; 2];
        gemv_i8xu8(&weights, &input, &mut out);
        assert_eq!(out, gemv_reference(&weights, &input, 2));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn gemv_rejects_mismatched_geometry() {
        let mut out = vec![0i64; 2];
        gemv_i8xu8(&[0i8; 9], &[0u8; 3], &mut out);
    }

    #[test]
    fn scratch_ensure_is_idempotent_and_never_shrinks() {
        let mut s = Scratch::default();
        s.ensure(100);
        assert_eq!(s.front.len(), 100);
        let front_ptr = s.front.as_ptr();
        let acc_ptr = s.acc.as_ptr();
        s.ensure(40);
        s.ensure(100);
        // Same allocations: ensure() with a width already covered must
        // not touch the buffers (the zero-allocation steady state).
        assert_eq!(s.front.as_ptr(), front_ptr);
        assert_eq!(s.acc.as_ptr(), acc_ptr);
        assert_eq!(s.front.len(), 100);
    }

    #[test]
    fn fixed_lut_tracks_the_float_reference_within_one_quantum() {
        // Sweep sigmoid steepness, domain and scale exponents, checking
        // the integer evaluation against the float reference on random
        // accumulators (including far outside the clamp rails).
        check_cases(0xAC7, DEFAULT_CASES, |case, rng| {
            let steepness = [0.25, 1.0, 4.0, 64.0][rng.next_index(4)];
            let e = i32::try_from(rng.next_index(16)).unwrap_or(0) - 4;
            let half_dom = 8.0 / steepness;
            let table = PiecewiseLinear::sigmoid(16, steepness, (-half_dom, half_dom));
            let lut = FixedActLut::new(&table, e);
            let k = 255.0 * 2f64.powi(e);
            let span = sat_i64_round((half_dom * k).abs().ceil()).max(1);
            for _ in 0..64 {
                let acc =
                    i64::try_from(rng.next_below(u64::try_from(6 * span).unwrap_or(u64::MAX)))
                        .unwrap_or(0)
                        - 3 * span;
                let float_y = sat_u8_round((table.eval(acc as f64 / k) * 255.0).clamp(0.0, 255.0));
                let got = lut.eval(acc);
                assert!(
                    i16::from(got).abs_diff(i16::from(float_y)) <= 1,
                    "case {case}: acc={acc} e={e} a={steepness}: fixed {got} vs float {float_y}"
                );
            }
        });
    }

    #[test]
    fn fixed_lut_is_monotone_for_the_sigmoid() {
        let table = PiecewiseLinear::sigmoid(16, 1.0, (-8.0, 8.0));
        let lut = FixedActLut::new(&table, 5);
        let mut prev = 0u8;
        for acc in (-80_000..80_000).step_by(64) {
            let y = lut.eval(acc);
            assert!(y >= prev, "acc {acc}: {y} < {prev}");
            prev = y;
        }
        assert_eq!(lut.eval(i64::MIN), lut.eval(-1_000_000));
        assert_eq!(lut.eval(i64::MAX), lut.eval(1_000_000));
    }
}
