//! Hardware and software random number generation.
//!
//! The paper's SNNwt accelerator generates spike timings on-chip: "a
//! Gaussian pseudo-random number generator can be efficiently implemented
//! using the central limit theorem. The principle is to sum random uniform
//! numbers generated from four Linear Feedback Shift Registers (LFSRs).
//! Using 31-bit as the length and x^31 + x^3 + 1 as the primitive
//! polynomial avoids obtaining cycling over numbers" (§4.2.2). This module
//! implements those exact circuits — [`Lfsr31`] and [`GaussianClt`] —
//! plus the Poisson-interval sampler the *software* model uses for the
//! bio-realistic rate code (§3.1), and a [`SplitMix64`] seeder so that
//! experiments are deterministic end to end.

/// A 31-bit Fibonacci linear feedback shift register with primitive
/// polynomial `x^31 + x^3 + 1`, the uniform source of the SNNwt hardware.
///
/// The period is `2^31 - 1`; the all-zero state is a fixed point and is
/// remapped to `1` at construction.
///
/// # Examples
///
/// ```
/// use nc_substrate::rng::Lfsr31;
/// let mut a = Lfsr31::new(42);
/// let mut b = Lfsr31::new(42);
/// assert_eq!(a.next_u31(), b.next_u31()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lfsr31 {
    state: u32,
    stuck_tap: Option<bool>,
}

impl Lfsr31 {
    /// Number of state bits.
    pub const BITS: u32 = 31;
    /// Period of the sequence (`2^31 - 1`).
    pub const PERIOD: u64 = (1u64 << 31) - 1;

    /// Creates a generator from a seed. A seed congruent to the all-zero
    /// state (which would lock the register) is remapped to `1`.
    pub fn new(seed: u32) -> Self {
        let state = seed & 0x7FFF_FFFF;
        Lfsr31 {
            state: if state == 0 { 1 } else { state },
            stuck_tap: None,
        }
    }

    /// Creates a generator whose `x^3` feedback tap is stuck at a
    /// constant level — the silicon defect model for the spike-interval
    /// generators. With the tap stuck the polynomial degenerates and the
    /// register becomes a (near-)rotation, so the output is strongly
    /// autocorrelated; the register still never locks at the all-zero
    /// state (stuck-at-0 makes it a pure rotation of a nonzero word,
    /// stuck-at-1 escapes zero on the next step).
    pub fn with_stuck_tap(seed: u32, stuck_high: bool) -> Self {
        let mut lfsr = Lfsr31::new(seed);
        lfsr.stuck_tap = Some(stuck_high);
        lfsr
    }

    /// Advances the register one bit: feedback taps at positions 31 and 3
    /// (1-indexed), i.e. `x^31 + x^3 + 1`. A stuck tap replaces the `x^3`
    /// contribution with its constant level.
    #[inline]
    pub fn step(&mut self) -> u32 {
        let tap = match self.stuck_tap {
            Some(stuck) => u32::from(stuck),
            None => (self.state >> 2) & 1,
        };
        let bit = ((self.state >> 30) ^ tap) & 1;
        self.state = ((self.state << 1) | bit) & 0x7FFF_FFFF;
        bit
    }

    /// Returns the next full 31-bit word (31 register steps, as the
    /// hardware would shift out a word serially).
    ///
    /// A healthy register advances word-parallel: stepping is linear over
    /// GF(2), so the 31 serial steps collapse to a closed form. With the
    /// inserted bit at step `s` written `b_s` and `r_s` = old bit
    /// `30 − s`, the recurrence is `b_s = r_s ^ old[2 − s]` for `s < 3`
    /// and `b_s = r_s ^ b_{s−3}` after (an inserted bit reaches the `x^3`
    /// tap three steps later). Expanding gives a stride-3 prefix XOR over
    /// the bit-reversed state plus one constant correction per residue
    /// class — a dozen word ops instead of 31 dependent single-bit steps,
    /// bit-identical to the serial loop (the stuck-tap fault path keeps
    /// the serial reference implementation).
    pub fn next_u31(&mut self) -> u32 {
        if self.stuck_tap.is_some() {
            for _ in 0..Self::BITS {
                self.step();
            }
            return self.state;
        }
        // Work in the register's own bit order (step index `s` lives at
        // position `j = 30 − s`), so the stride-3 prefix XOR runs toward
        // the low bits and no `reverse_bits` is needed — the same word
        // ops as the reversed-domain formulation, minus two bit
        // reversals that cost ~a dozen instructions each on x86-64.
        let mut b = self.state;
        b ^= b >> 3;
        b ^= b >> 6;
        b ^= b >> 12;
        b ^= b >> 24;
        // The `old[2 − (s mod 3)]` tail term folds into every bit of the
        // matching residue class; with `j = 30 − s` and 30 ≡ 0 (mod 3)
        // the class of `old[2]` keeps its mask while `old[1]`/`old[0]`
        // swap relative to the reversed-domain masks.
        b ^= 0x4924_9249 & ((self.state >> 2) & 1).wrapping_neg();
        b ^= 0x2492_4924 & ((self.state >> 1) & 1).wrapping_neg();
        b ^= 0x1249_2492 & (self.state & 1).wrapping_neg();
        self.state = b & 0x7FFF_FFFF;
        self.state
    }

    /// Returns a uniform value in `[0, 1)` with 31 bits of resolution.
    pub fn next_unit(&mut self) -> f64 {
        f64::from(self.next_u31()) / f64::from(1u32 << 31)
    }

    /// Returns the current register contents (useful for tests).
    pub fn state(&self) -> u32 {
        self.state
    }
}

/// Central-limit-theorem Gaussian generator: the sum of four independent
/// [`Lfsr31`] uniforms, shifted and scaled to the requested mean and
/// standard deviation. This is the paper's hardware RNG (cost: 1749 µm²
/// at 65 nm, one instance per input pixel, §4.2.2).
///
/// The sum of four `U(0,1)` variables has mean 2 and variance 4/12 = 1/3,
/// so the raw sum is normalized by `(sum - 2) * sqrt(3)` to a unit normal
/// approximation before scaling. Four terms is what the silicon uses; the
/// tails are truncated at ±2·sqrt(3) σ, which the paper found does not
/// measurably change SNN accuracy versus a true Poisson/Gaussian source.
///
/// # Examples
///
/// ```
/// use nc_substrate::rng::GaussianClt;
/// let mut g = GaussianClt::new(7);
/// let x = g.sample(50.0, 10.0);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct GaussianClt {
    lfsrs: [Lfsr31; 4],
}

impl GaussianClt {
    /// Creates the four-LFSR generator. The seed is expanded with
    /// [`SplitMix64`] so the four registers start decorrelated.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        GaussianClt {
            lfsrs: [
                Lfsr31::new(sm.next_seed32()),
                Lfsr31::new(sm.next_seed32()),
                Lfsr31::new(sm.next_seed32()),
                Lfsr31::new(sm.next_seed32()),
            ],
        }
    }

    /// Creates the generator with the `x^3` tap of the first register
    /// stuck at a constant level ([`Lfsr31::with_stuck_tap`]): one of the
    /// four uniform sources degrades while the other three stay healthy,
    /// which skews and correlates the CLT sum.
    pub fn with_stuck_tap(seed: u64, stuck_high: bool) -> Self {
        let mut g = GaussianClt::new(seed);
        let seed0 = g.lfsrs[0].state();
        g.lfsrs[0] = Lfsr31::with_stuck_tap(seed0, stuck_high);
        g
    }

    /// Draws one approximately-normal variate with unit variance and zero
    /// mean (range limited to ±2·sqrt(3) by construction).
    pub fn sample_unit(&mut self) -> f64 {
        let sum: f64 = self.lfsrs.iter_mut().map(Lfsr31::next_unit).sum();
        (sum - 2.0) * 3f64.sqrt()
    }

    /// Draws one approximately-normal variate with the given `mean` and
    /// `std`.
    pub fn sample(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.sample_unit()
    }

    /// Draws a positive integer spike interval in milliseconds with the
    /// given mean and standard deviation, clamped below at 1 ms — exactly
    /// what the per-pixel interval counters of SNNwt consume.
    pub fn sample_interval_ms(&mut self, mean: f64, std: f64) -> u32 {
        let raw = self.sample(mean, std).round();
        crate::fixed::sat_u32_trunc(raw.max(1.0))
    }
}

/// Exponential-interval sampler for a Poisson spike process, used by the
/// *software* SNN model (§3.1): pixel luminance `p ∈ [0,255]` maps to a
/// Poisson train whose rate is proportional to `p`.
///
/// Inter-spike intervals of a Poisson process with rate λ are
/// `Exp(λ)`-distributed; we sample them by inversion from an [`Lfsr31`]
/// uniform source so that software and hardware models share the same
/// entropy primitive.
#[derive(Debug, Clone)]
pub struct PoissonInterval {
    lfsr: Lfsr31,
}

impl PoissonInterval {
    /// Creates a sampler with the given seed.
    pub fn new(seed: u32) -> Self {
        PoissonInterval {
            lfsr: Lfsr31::new(seed),
        }
    }

    /// Creates a sampler whose uniform source has a stuck `x^3` feedback
    /// tap ([`Lfsr31::with_stuck_tap`]), the defective-generator model
    /// for the software rate code.
    pub fn with_stuck_tap(seed: u32, stuck_high: bool) -> Self {
        PoissonInterval {
            lfsr: Lfsr31::with_stuck_tap(seed, stuck_high),
        }
    }

    /// Samples one inter-spike interval (in the same time unit as
    /// `1/rate`). Returns `f64::INFINITY` if `rate` is zero or negative
    /// (a dark pixel never spikes).
    pub fn sample_interval(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        // Inversion: -ln(1 - U) / λ. `1 - U` is in (0, 1] so ln is finite.
        let u = self.lfsr.next_unit();
        -(1.0 - u).ln() / rate
    }

    /// Samples an integer interval in milliseconds, clamped below at 1 ms.
    /// Returns `None` when the rate is zero (no spike in this presentation).
    pub fn sample_interval_ms(&mut self, rate_per_ms: f64) -> Option<u32> {
        let dt = self.sample_interval(rate_per_ms);
        if dt.is_finite() {
            Some(crate::fixed::sat_u32_trunc(dt.round()).max(1))
        } else {
            None
        }
    }
}

/// SplitMix64: a tiny, high-quality 64-bit seeder/stream generator used to
/// derive decorrelated seeds for the per-pixel hardware generators and for
/// dataset synthesis. (Sebastiano Vigna's public-domain constants.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / f64::from(1u32 << 26) / f64::from(1u32 << 27)
    }

    /// Returns a uniform value in `[lo, hi)`.
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_unit()
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below requires n > 0");
        // Multiply-shift bounded sampling; bias < 2^-64, negligible here.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Returns the low 32 bits of the next word: the sanctioned way to
    /// derive a 32-bit seed (e.g. for [`Lfsr31`]) from a SplitMix stream.
    #[allow(clippy::cast_possible_truncation)]
    pub fn next_seed32(&mut self) -> u32 {
        // nc-lint: allow(R2, reason = "intentional truncation: folding a 64-bit stream word into the 32-bit LFSR seed space")
        self.next_u64() as u32
    }

    /// Returns a uniform index in `[0, n)` for slice/loop indexing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[allow(clippy::cast_possible_truncation)]
    pub fn next_index(&mut self, n: usize) -> usize {
        // nc-lint: allow(R2, reason = "next_below(n) < n, and n originated as a usize, so the cast is lossless")
        self.next_below(n as u64) as usize
    }

    /// Returns a uniform `u32` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[allow(clippy::cast_possible_truncation)]
    pub fn next_below_u32(&mut self, n: u32) -> u32 {
        // nc-lint: allow(R2, reason = "next_below(n) < n <= u32::MAX, so the cast is lossless")
        self.next_below(u64::from(n)) as u32
    }
}

/// Derives the deterministic RNG seed for a noise or fault level: the
/// level is scaled by `1e4` (four decimal digits of resolution, enough to
/// tell any two sweep points apart) and truncated onto `u64` via
/// [`crate::fixed::sat_u64_trunc`]. Every sweep that seeds per-level
/// corruption must use this helper so identical levels corrupt
/// identically across experiments.
pub fn noise_seed(noise: f64) -> u64 {
    crate::fixed::sat_u64_trunc(noise * 1e4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_never_reaches_zero() {
        let mut l = Lfsr31::new(0); // remapped to 1
        for _ in 0..10_000 {
            l.step();
            assert_ne!(l.state(), 0);
        }
    }

    #[test]
    fn lfsr_stays_within_31_bits() {
        let mut l = Lfsr31::new(0x7FFF_FFFF);
        for _ in 0..1000 {
            assert!(l.next_u31() <= 0x7FFF_FFFF);
        }
    }

    #[test]
    fn lfsr_uniform_mean_is_near_half() {
        let mut l = Lfsr31::new(12345);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| l.next_unit()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn word_advance_matches_serial_stepping() {
        // The closed-form `next_u31` must be bit-identical to 31 serial
        // `step` calls, for arbitrary states and across whole streams.
        let mut sm = SplitMix64::new(0x001F_5B31);
        for _ in 0..500 {
            #[allow(clippy::cast_possible_truncation)]
            let seed = sm.next_u64() as u32;
            let mut fast = Lfsr31::new(seed);
            let mut serial = Lfsr31::new(seed);
            for round in 0..8 {
                let w = fast.next_u31();
                for _ in 0..Lfsr31::BITS {
                    serial.step();
                }
                assert_eq!(w, serial.state(), "seed {seed:#x} round {round}");
            }
        }
    }

    #[test]
    fn lfsr_sequence_is_primitive_locally() {
        // A primitive polynomial never revisits a state within a short
        // window (full period is 2^31 - 1).
        let mut l = Lfsr31::new(99);
        let start = l.state();
        for _ in 0..100_000 {
            l.step();
            assert_ne!(l.state(), start, "premature cycle");
        }
    }

    #[test]
    fn gaussian_clt_moments() {
        let mut g = GaussianClt::new(2024);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample_unit()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn gaussian_clt_is_bounded() {
        // CLT of 4 uniforms is hard-bounded at ±2*sqrt(3) ≈ 3.464.
        let mut g = GaussianClt::new(1);
        for _ in 0..10_000 {
            let x = g.sample_unit();
            assert!(x.abs() <= 2.0 * 3f64.sqrt() + 1e-9);
        }
    }

    #[test]
    fn gaussian_interval_is_at_least_one_ms() {
        let mut g = GaussianClt::new(5);
        for _ in 0..1000 {
            assert!(g.sample_interval_ms(2.0, 5.0) >= 1);
        }
    }

    #[test]
    fn poisson_interval_mean_matches_rate() {
        let mut p = PoissonInterval::new(7);
        let rate = 0.02; // per ms → mean interval 50 ms
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.sample_interval(rate)).sum::<f64>() / f64::from(n);
        assert!((mean - 50.0).abs() < 2.0, "mean = {mean}");
    }

    #[test]
    fn poisson_zero_rate_never_spikes() {
        let mut p = PoissonInterval::new(3);
        assert_eq!(p.sample_interval_ms(0.0), None);
        assert!(p.sample_interval(0.0).is_infinite());
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(11);
        let mut b = SplitMix64::new(11);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SplitMix64::new(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(c.next_u64()));
        }
    }

    #[test]
    fn splitmix_next_below_is_in_range() {
        let mut s = SplitMix64::new(42);
        for _ in 0..10_000 {
            assert!(s.next_below(10) < 10);
        }
    }

    #[test]
    fn noise_seed_is_deterministic_and_resolves_sweep_points() {
        assert_eq!(noise_seed(0.0), 0);
        assert_eq!(noise_seed(0.05), 500);
        assert_eq!(noise_seed(0.1), noise_seed(0.1));
        assert_ne!(noise_seed(0.1), noise_seed(0.1001));
        assert_eq!(noise_seed(-1.0), 0); // degenerate inputs saturate
    }

    #[test]
    fn stuck_tap_changes_the_sequence_but_never_locks() {
        let mut healthy = Lfsr31::new(42);
        let mut stuck0 = Lfsr31::with_stuck_tap(42, false);
        let mut stuck1 = Lfsr31::with_stuck_tap(42, true);
        let a: Vec<u32> = (0..64).map(|_| healthy.next_u31()).collect();
        let b: Vec<u32> = (0..64).map(|_| stuck0.next_u31()).collect();
        let c: Vec<u32> = (0..64).map(|_| stuck1.next_u31()).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        for _ in 0..10_000 {
            stuck0.step();
            stuck1.step();
            assert_ne!(stuck0.state(), 0);
            assert_ne!(stuck1.state(), 0);
        }
    }

    #[test]
    fn stuck_tap_is_deterministic() {
        let mut a = Lfsr31::with_stuck_tap(7, true);
        let mut b = Lfsr31::with_stuck_tap(7, true);
        for _ in 0..1000 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn stuck_tap_gaussian_skews_but_stays_finite() {
        let mut g = GaussianClt::with_stuck_tap(2024, true);
        for _ in 0..1000 {
            assert!(g.sample_unit().is_finite());
            assert!(g.sample_interval_ms(10.0, 3.0) >= 1);
        }
        // The degraded source must actually diverge from the healthy one.
        let mut healthy = GaussianClt::new(2024);
        let mut stuck = GaussianClt::with_stuck_tap(2024, true);
        let h: Vec<u32> = (0..64)
            .map(|_| healthy.sample_interval_ms(50.0, 10.0))
            .collect();
        let s: Vec<u32> = (0..64)
            .map(|_| stuck.sample_interval_ms(50.0, 10.0))
            .collect();
        assert_ne!(h, s);
    }

    #[test]
    fn stuck_tap_poisson_stays_usable() {
        let mut p = PoissonInterval::with_stuck_tap(9, false);
        for _ in 0..1000 {
            assert!(p.sample_interval(0.02).is_finite());
        }
        assert_eq!(p.sample_interval_ms(0.0), None);
    }
}
