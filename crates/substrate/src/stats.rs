//! Small statistics helpers used by tests, the experiment harness and the
//! report generators (mean/variance, confusion matrices, histograms).

/// Running mean/variance accumulator (Welford's algorithm), used to
/// summarize accuracy sweeps and spike statistics without storing samples.
///
/// # Examples
///
/// ```
/// use nc_substrate::stats::Running;
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0] { r.push(x); }
/// assert_eq!(r.mean(), 2.0);
/// assert_eq!(r.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for Running {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut r = Running::new();
        r.extend(iter);
        r
    }
}

/// A square confusion matrix over `classes` labels.
///
/// Rows are true labels, columns predicted labels. Used by both models'
/// evaluation code so accuracy numbers are computed one way everywhere.
///
/// # Examples
///
/// ```
/// use nc_substrate::stats::Confusion;
/// let mut c = Confusion::new(3);
/// c.record(0, 0);
/// c.record(1, 2);
/// assert_eq!(c.total(), 2);
/// assert!((c.accuracy() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Confusion {
    classes: usize,
    counts: Vec<u64>,
}

impl Confusion {
    /// Creates an empty matrix for `classes` labels.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Confusion {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(
            truth < self.classes && predicted < self.classes,
            "label out of range"
        );
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Count at `(truth, predicted)`.
    pub fn get(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.classes + predicted]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of observations on the diagonal (0 if empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|i| self.get(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall: `diag / row_sum`, `None` for classes never seen.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|j| self.get(class, j)).sum();
        if row == 0 {
            None
        } else {
            Some(self.get(class, class) as f64 / row as f64)
        }
    }
}

/// Fixed-bin histogram on `[lo, hi)` with out-of-range clamping, used for
/// spike-interval and weight-distribution diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(bins: usize, lo: f64, hi: f64) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "lo must be < hi");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
        }
    }

    /// Records a sample; values outside the range land in the edge bins.
    pub fn push(&mut self, x: f64) {
        let n = self.bins.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = crate::fixed::sat_usize_trunc(t * n as f64).min(n - 1);
        self.bins[idx] += 1;
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let r: Running = xs.iter().copied().collect();
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
    }

    #[test]
    fn running_empty_is_safe() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn confusion_accuracy_and_recall() {
        let mut c = Confusion::new(2);
        c.record(0, 0);
        c.record(0, 0);
        c.record(0, 1);
        c.record(1, 1);
        assert!((c.accuracy() - 0.75).abs() < 1e-12);
        assert!((c.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.recall(1), Some(1.0));
    }

    #[test]
    fn confusion_unseen_class_has_no_recall() {
        let mut c = Confusion::new(3);
        c.record(0, 0);
        assert_eq!(c.recall(2), None);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn confusion_rejects_bad_labels() {
        let mut c = Confusion::new(2);
        c.record(0, 2);
    }

    #[test]
    fn histogram_clamps_to_edges() {
        let mut h = Histogram::new(4, 0.0, 4.0);
        h.push(-10.0);
        h.push(10.0);
        h.push(1.5);
        assert_eq!(h.bins(), &[1, 1, 0, 1]);
        assert_eq!(h.total(), 3);
    }
}
