//! # nc-substrate
//!
//! Numeric substrate shared by every other `neurocmp` crate. It mirrors,
//! in software, the low-level hardware building blocks that the paper's
//! accelerators are made of:
//!
//! * [`fixed`] — saturating fixed-point arithmetic in the Q-formats used by
//!   the 8-bit datapaths (weights, activations, potentials).
//! * [`rng`] — the hardware random number generators: a 31-bit LFSR with
//!   primitive polynomial `x^31 + x^3 + 1` and the central-limit-theorem
//!   Gaussian generator built from four LFSRs (paper §4.2.2), plus a
//!   Poisson-interval sampler used by the software model (paper §3.1).
//! * [`interp`] — 16-point piecewise-linear interpolation, the mechanism
//!   the hardware uses for both the sigmoid (`f(x) = a_i·x + b_i`, paper
//!   §4.2.1) and the exponential leak of the LIF neuron (paper §4.4).
//! * [`kernel`] — the shared hot-path kernels: blocked integer GEMV with
//!   i64 adder-tree semantics, the fixed-point activation table, and the
//!   reusable scratch buffers that make steady-state inference
//!   allocation-free.
//! * [`stats`] — small statistics helpers used by tests and the experiment
//!   harness (mean, variance, histogram).
//! * [`check`] — the seeded-loop property-test harness the invariant
//!   tests are written against (std-only, deterministic replay).
//!
//! # Examples
//!
//! ```
//! use nc_substrate::fixed::Q8;
//! use nc_substrate::rng::Lfsr31;
//! use nc_substrate::interp::PiecewiseLinear;
//!
//! // Saturating 8-bit weight arithmetic as in the STDP datapath.
//! let w = Q8::from_raw(250);
//! assert_eq!(w.saturating_add(Q8::from_raw(10)).raw(), 255);
//!
//! // Hardware uniform random source.
//! let mut lfsr = Lfsr31::new(0x1234_5678);
//! let _bits = lfsr.next_u31();
//!
//! // 16-segment sigmoid, exactly what the MLP accelerator stores in SRAM.
//! let sigmoid = PiecewiseLinear::sigmoid(16, 1.0, (-8.0, 8.0));
//! let y = sigmoid.eval(0.0);
//! assert!((y - 0.5).abs() < 1e-2);
//! ```

pub mod check;
pub mod fixed;
pub mod interp;
pub mod kernel;
pub mod rng;
pub mod stats;

pub use fixed::{QFixed, Q8};
pub use interp::PiecewiseLinear;
pub use kernel::{gemv_i8xu8, FixedActLut, Scratch};
pub use rng::{noise_seed, GaussianClt, Lfsr31, PoissonInterval, SplitMix64};
