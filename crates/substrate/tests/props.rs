//! Randomized invariant tests for the numeric substrate, written
//! against the in-repo seeded-loop harness
//! ([`nc_substrate::check::check_cases`]): std-only, deterministic, and
//! replayable — a failing case prints its case index and per-case seed.
//!
//! Beyond the per-operation properties, this file carries two proofs
//! about the hardware primitives:
//!
//! * the LFSR-31 state-transition matrix has multiplicative order
//!   exactly `2^31 - 1` and no nonzero fixed point, so **every** nonzero
//!   seed walks the full period (`2^31 - 1` is a Mersenne prime, so the
//!   orbit size — which divides the order — is 1 or everything);
//! * the 16-segment sigmoid LUT obeys the chord-interpolation error
//!   bound `max|f''| · h² / 8` and is monotone, which is what lets the
//!   MLP accelerator replace the transcendental with SRAM coefficients.

use nc_substrate::check::{check_cases, DEFAULT_CASES};
use nc_substrate::fixed::{quantize_to_grid, QFixed, Q8};
use nc_substrate::interp::PiecewiseLinear;
use nc_substrate::rng::{GaussianClt, Lfsr31, PoissonInterval, SplitMix64};
use nc_substrate::stats::Running;

// ---------------------------------------------------------------------
// Fixed point: saturation means "clamp the wide result", never wrap.
// ---------------------------------------------------------------------

#[test]
fn q8_saturating_ops_equal_clamped_wide_arithmetic() {
    check_cases(0x51, DEFAULT_CASES, |case, rng| {
        let a = rng.next_u64() as u8;
        let b = rng.next_u64() as u8;
        let (qa, qb) = (Q8::from_raw(a), Q8::from_raw(b));
        let add = (i32::from(a) + i32::from(b)).clamp(0, 255) as u8;
        let sub = (i32::from(a) - i32::from(b)).clamp(0, 255) as u8;
        assert_eq!(qa.saturating_add(qb).raw(), add, "case {case}: {a}+{b}");
        assert_eq!(qa.saturating_sub(qb).raw(), sub, "case {case}: {a}-{b}");
    });
}

#[test]
fn q8_offset_stays_in_range() {
    check_cases(0x52, DEFAULT_CASES, |case, rng| {
        let raw = rng.next_u64() as u8;
        let delta = (rng.next_below(1025) as i16) - 512;
        let w = Q8::from_raw(raw).saturating_offset(delta);
        let expected = (i32::from(raw) + i32::from(delta)).clamp(0, 255) as u8;
        assert_eq!(w.raw(), expected, "case {case}: raw {raw} delta {delta}");
    });
}

#[test]
fn q8_unit_round_trip_is_lossless() {
    for raw in 0..=255u8 {
        let q = Q8::from_raw(raw);
        assert_eq!(Q8::from_unit(q.to_unit()), q, "raw {raw}");
    }
}

#[test]
fn qfixed_saturating_add_equals_clamped_i128_sum() {
    type F = QFixed<16>;
    check_cases(0x53, DEFAULT_CASES, |case, rng| {
        // Bias half the cases toward the rails, where wrapping would show.
        let extreme = case % 2 == 0;
        let pick = |rng: &mut SplitMix64| {
            if extreme {
                let off = rng.next_u64() as i64 & 0xFFFF;
                if rng.next_below(2) == 0 {
                    i64::MAX - off
                } else {
                    i64::MIN + off
                }
            } else {
                rng.next_u64() as i64
            }
        };
        let (a, b) = (pick(rng), pick(rng));
        let clamped = (i128::from(a) + i128::from(b))
            .clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
        let got = F::from_raw(a).saturating_add(F::from_raw(b)).raw();
        assert_eq!(got, clamped, "case {case}: {a} + {b}");
    });
}

#[test]
fn qfixed_mul_round_never_wraps_and_rounds_to_nearest() {
    type F = QFixed<16>;
    check_cases(0x54, DEFAULT_CASES, |case, rng| {
        let a = rng.next_range(-1e3, 1e3);
        let b = rng.next_range(-1e3, 1e3);
        let (fa, fb) = (F::from_f64(a), F::from_f64(b));
        // Reference: exact wide product, rounded on the dropped bits,
        // clamped at the rails — what the hardware shifter produces.
        let wide = i128::from(fa.raw()) * i128::from(fb.raw());
        let reference =
            ((wide + (1i128 << 15)) >> 16).clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
        assert_eq!((fa * fb).raw(), reference, "case {case}: {a} * {b}");
        let exact = fa.to_f64() * fb.to_f64();
        assert!(
            ((fa * fb).to_f64() - exact).abs() <= 0.5 / 65536.0 + 1e-12,
            "case {case}: more than half an ulp off"
        );
    });
}

#[test]
fn qfixed_addition_is_exact_and_commutative() {
    type F = QFixed<16>;
    check_cases(0x55, DEFAULT_CASES, |case, rng| {
        let a = rng.next_range(-1e6, 1e6);
        let b = rng.next_range(-1e6, 1e6);
        let (fa, fb) = (F::from_f64(a), F::from_f64(b));
        assert_eq!((fa + fb).raw(), (fb + fa).raw(), "case {case}");
        assert_eq!((fa + fb).raw(), fa.raw() + fb.raw(), "case {case}");
    });
}

#[test]
fn grid_quantization_is_idempotent() {
    check_cases(0x56, DEFAULT_CASES, |case, rng| {
        let x = rng.next_range(-1e4, 1e4);
        let bits = 2 + rng.next_below(14) as u32;
        let frac_off = 1 + rng.next_below(7) as u32;
        let frac = (bits - 1).min(frac_off);
        let q = quantize_to_grid(x, bits, frac);
        assert_eq!(quantize_to_grid(q, bits, frac), q, "case {case}: x {x}");
    });
}

// ---------------------------------------------------------------------
// LFSR-31: the full-period proof and the statistical sanity checks.
// ---------------------------------------------------------------------

/// The LFSR step as a GF(2) matrix, column `i` = step applied to the
/// basis state `1 << i`, built from the actual implementation so the
/// proof is about the shipped code, not a transcription of it.
fn lfsr_transition_matrix() -> [u32; 31] {
    let mut cols = [0u32; 31];
    for (i, col) in cols.iter_mut().enumerate() {
        let mut l = Lfsr31::new(1 << i);
        l.step();
        *col = l.state();
    }
    cols
}

fn mat_vec(m: &[u32; 31], v: u32) -> u32 {
    (0..31).fold(0, |acc, i| if v & (1 << i) != 0 { acc ^ m[i] } else { acc })
}

fn mat_mul(a: &[u32; 31], b: &[u32; 31]) -> [u32; 31] {
    let mut out = [0u32; 31];
    for i in 0..31 {
        out[i] = mat_vec(a, b[i]);
    }
    out
}

fn identity() -> [u32; 31] {
    let mut id = [0u32; 31];
    for (i, col) in id.iter_mut().enumerate() {
        *col = 1 << i;
    }
    id
}

/// Rank of a GF(2) matrix given as column vectors.
fn rank(mut cols: Vec<u32>) -> usize {
    let mut rank = 0;
    let mut basis: Vec<u32> = Vec::new();
    for col in cols.iter_mut() {
        let mut v = *col;
        for &b in &basis {
            let lead = 31 - b.leading_zeros();
            if v & (1 << lead) != 0 {
                v ^= b;
            }
        }
        if v != 0 {
            basis.push(v);
            basis.sort_unstable_by(|a, b| b.cmp(a));
            rank += 1;
        }
    }
    rank
}

#[test]
fn lfsr_step_is_linear_over_gf2() {
    // The matrix proof below only applies if the step really is linear
    // in the state bits: step(a ^ b) = step(a) ^ step(b) columnwise.
    let m = lfsr_transition_matrix();
    check_cases(0x57, DEFAULT_CASES, |case, rng| {
        let s = (rng.next_u64() as u32) & 0x7FFF_FFFF;
        if s == 0 {
            return; // the all-zero state is remapped by `new`, not stepped
        }
        let mut l = Lfsr31::new(s);
        l.step();
        assert_eq!(l.state(), mat_vec(&m, s), "case {case}: state {s:#x}");
    });
}

#[test]
fn lfsr_has_exact_period_two_to_31_minus_one() {
    // M^(2^31 - 1) = I says every orbit size divides 2^31 - 1; that
    // number is a Mersenne prime, so orbits are size 1 or full-period.
    let m = lfsr_transition_matrix();
    let mut acc = identity();
    let mut pow = m;
    let mut exp = Lfsr31::PERIOD;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mat_mul(&acc, &pow);
        }
        pow = mat_mul(&pow, &pow);
        exp >>= 1;
    }
    assert_eq!(acc, identity(), "M^(2^31-1) must be the identity");

    // Size-1 orbits are fixed points: M·s = s, i.e. (M ^ I)·s = 0. Full
    // rank of (M ^ I) means s = 0 is the only one — and the zero state
    // is unreachable (Lfsr31::new remaps it). Hence: exact full period
    // for every admissible seed.
    let m_xor_i: Vec<u32> = (0..31).map(|i| m[i] ^ (1 << i)).collect();
    assert_eq!(rank(m_xor_i), 31, "M - I must be nonsingular");

    // And the order is not a proper divisor: 2^31 - 1 being prime, the
    // only proper divisor is 1, which would need M = I.
    assert_ne!(m, identity());
}

#[test]
fn lfsr_stays_nonzero_and_in_31_bits() {
    check_cases(0x58, DEFAULT_CASES, |case, rng| {
        let seed = rng.next_u64() as u32;
        let steps = 1 + rng.next_below(199) as usize;
        let mut l = Lfsr31::new(seed);
        for _ in 0..steps {
            l.step();
            assert!(l.state() != 0, "case {case}: seed {seed}");
            assert!(l.state() <= 0x7FFF_FFFF, "case {case}: seed {seed}");
        }
    });
}

#[test]
fn lfsr_unit_samples_are_uniform_enough() {
    // In-range always; and per-seed, the sample mean of a few thousand
    // draws sits near 1/2 (a maximal-length LFSR is equidistributed; the
    // tolerance covers the short horizon, not generator defects).
    check_cases(0x59, 16, |case, rng| {
        let mut l = Lfsr31::new(rng.next_u64() as u32);
        let n = 4096;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = l.next_unit();
            assert!((0.0..1.0).contains(&u), "case {case}: {u}");
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!(
            (mean - 0.5).abs() < 0.03,
            "case {case}: sample mean {mean} too far from 1/2"
        );
    });
}

// ---------------------------------------------------------------------
// Software RNG helpers.
// ---------------------------------------------------------------------

#[test]
fn splitmix_next_below_is_bounded() {
    check_cases(0x5A, DEFAULT_CASES, |case, rng| {
        let mut s = SplitMix64::new(rng.next_u64());
        let n = 1 + rng.next_below(9_999);
        for _ in 0..64 {
            assert!(s.next_below(n) < n, "case {case}: n {n}");
        }
    });
}

#[test]
fn splitmix_range_is_respected() {
    check_cases(0x5B, DEFAULT_CASES, |case, rng| {
        let mut s = SplitMix64::new(rng.next_u64());
        let lo = rng.next_range(-100.0, 0.0);
        let hi = lo + rng.next_range(0.001, 100.0);
        for _ in 0..32 {
            let x = s.next_range(lo, hi);
            assert!(x >= lo && x < hi, "case {case}: {x} not in [{lo}, {hi})");
        }
    });
}

#[test]
fn gaussian_clt_is_hard_bounded() {
    let bound = 2.0 * 3f64.sqrt() + 1e-9;
    check_cases(0x5C, DEFAULT_CASES, |case, rng| {
        let mut g = GaussianClt::new(rng.next_u64());
        for _ in 0..64 {
            assert!(g.sample_unit().abs() <= bound, "case {case}");
        }
    });
}

#[test]
fn gaussian_intervals_are_positive() {
    check_cases(0x5D, DEFAULT_CASES, |case, rng| {
        let mut g = GaussianClt::new(rng.next_u64());
        let mean = rng.next_range(1.0, 500.0);
        for _ in 0..32 {
            assert!(g.sample_interval_ms(mean, mean / 3.0) >= 1, "case {case}");
        }
    });
}

#[test]
fn poisson_intervals_are_positive_and_finite() {
    check_cases(0x5E, DEFAULT_CASES, |case, rng| {
        let mut p = PoissonInterval::new(rng.next_u64() as u32);
        let rate = rng.next_range(0.0001, 1.0);
        for _ in 0..32 {
            let dt = p.sample_interval(rate);
            assert!(
                dt > 0.0 && dt.is_finite(),
                "case {case}: rate {rate} dt {dt}"
            );
        }
    });
}

// ---------------------------------------------------------------------
// The interpolation LUTs.
// ---------------------------------------------------------------------

#[test]
fn sigmoid_lut_is_monotone_nondecreasing() {
    // Chord interpolation of a monotone function is monotone; the
    // accelerator relies on this (a non-monotone activation would make
    // training diverge in ways the float model never shows).
    check_cases(0x5F, DEFAULT_CASES, |case, rng| {
        let a = [1.0, 2.0, 4.0, 8.0, 16.0][rng.next_below(5) as usize];
        let lut = PiecewiseLinear::sigmoid(16, a, (-8.0, 8.0));
        let mut x1 = rng.next_range(-10.0, 10.0);
        let mut x2 = rng.next_range(-10.0, 10.0);
        if x1 > x2 {
            std::mem::swap(&mut x1, &mut x2);
        }
        assert!(
            lut.eval(x1) <= lut.eval(x2) + 1e-12,
            "case {case}: a {a}, f({x1}) > f({x2})"
        );
    });
}

#[test]
fn sigmoid_lut_error_is_within_the_chord_bound() {
    // Linear interpolation on a segment of width h errs by at most
    // max|f''|·h²/8. For f_a(x) = σ(ax): f'' = a²·σ(1-σ)(1-2σ), and
    // |σ(1-σ)(1-2σ)| peaks at 1/(6√3) ≈ 0.0962.
    let curvature = 1.0 / (6.0 * 3f64.sqrt());
    for a in [1.0, 2.0, 4.0] {
        let lut = PiecewiseLinear::sigmoid(16, a, (-8.0, 8.0));
        let h = 16.0 / 16.0;
        let bound = a * a * curvature * h * h / 8.0;
        let err = lut.max_error(|x| 1.0 / (1.0 + (-a * x).exp()), 4000);
        assert!(
            err <= bound * 1.0001,
            "a {a}: max error {err} exceeds chord bound {bound}"
        );
    }
}

#[test]
fn interpolation_of_monotone_function_stays_in_range() {
    check_cases(0x60, DEFAULT_CASES, |case, rng| {
        let segments = 1 + rng.next_below(63) as usize;
        let lo = rng.next_range(-10.0, 0.0);
        let hi = lo + rng.next_range(0.1, 20.0);
        let x = rng.next_range(-30.0, 30.0);
        let t = PiecewiseLinear::from_fn(segments, (lo, hi), f64::tanh);
        let y = t.eval(x);
        assert!(
            y >= lo.tanh() - 1e-12 && y <= hi.tanh() + 1e-12,
            "case {case}: x {x} y {y}"
        );
    });
}

// ---------------------------------------------------------------------
// Statistics helpers.
// ---------------------------------------------------------------------

#[test]
fn running_mean_is_bracketed() {
    check_cases(0x61, DEFAULT_CASES, |case, rng| {
        let n = 1 + rng.next_below(99) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_range(-1e6, 1e6)).collect();
        let r: Running = xs.iter().copied().collect();
        assert!(r.mean() >= r.min() - 1e-9, "case {case}");
        assert!(r.mean() <= r.max() + 1e-9, "case {case}");
        assert_eq!(r.count(), xs.len() as u64, "case {case}");
        assert!(r.variance() >= 0.0, "case {case}");
    });
}
