//! Property-based tests for the numeric substrate.

use nc_substrate::fixed::{quantize_to_grid, Q8, QFixed};
use nc_substrate::interp::PiecewiseLinear;
use nc_substrate::rng::{GaussianClt, Lfsr31, PoissonInterval, SplitMix64};
use nc_substrate::stats::Running;
use proptest::prelude::*;

proptest! {
    #[test]
    fn q8_offset_stays_in_range(raw in any::<u8>(), delta in -512i16..=512) {
        let w = Q8::from_raw(raw).saturating_offset(delta);
        // The result is a valid u8 by construction; check semantics:
        let expected = (i32::from(raw) + i32::from(delta)).clamp(0, 255) as u8;
        prop_assert_eq!(w.raw(), expected);
    }

    #[test]
    fn q8_unit_round_trip_is_lossless(raw in any::<u8>()) {
        let q = Q8::from_raw(raw);
        prop_assert_eq!(Q8::from_unit(q.to_unit()), q);
    }

    #[test]
    fn qfixed_addition_is_exact_and_commutative(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        type F = QFixed<16>;
        let (fa, fb) = (F::from_f64(a), F::from_f64(b));
        prop_assert_eq!((fa + fb).raw(), (fb + fa).raw());
        prop_assert_eq!((fa + fb).raw(), fa.raw() + fb.raw());
    }

    #[test]
    fn qfixed_mul_error_is_within_half_ulp(a in -1e3f64..1e3, b in -1e3f64..1e3) {
        type F = QFixed<16>;
        let (fa, fb) = (F::from_f64(a), F::from_f64(b));
        let exact = fa.to_f64() * fb.to_f64();
        let got = (fa * fb).to_f64();
        // Rounding the product to the grid loses at most half an ulp.
        prop_assert!((got - exact).abs() <= 0.5 / 65536.0 + 1e-12, "{got} vs {exact}");
    }

    #[test]
    fn grid_quantization_is_idempotent(x in -1e4f64..1e4, bits in 2u32..16, frac_off in 1u32..8) {
        let frac = (bits - 1).min(frac_off);
        let q = quantize_to_grid(x, bits, frac);
        prop_assert_eq!(quantize_to_grid(q, bits, frac), q);
    }

    #[test]
    fn lfsr_stays_nonzero_and_in_31_bits(seed in any::<u32>(), steps in 1usize..200) {
        let mut l = Lfsr31::new(seed);
        for _ in 0..steps {
            l.step();
            prop_assert!(l.state() != 0);
            prop_assert!(l.state() <= 0x7FFF_FFFF);
        }
    }

    #[test]
    fn lfsr_unit_samples_are_in_unit_interval(seed in any::<u32>()) {
        let mut l = Lfsr31::new(seed);
        for _ in 0..32 {
            let u = l.next_unit();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn splitmix_next_below_is_bounded(seed in any::<u64>(), n in 1u64..10_000) {
        let mut s = SplitMix64::new(seed);
        for _ in 0..64 {
            prop_assert!(s.next_below(n) < n);
        }
    }

    #[test]
    fn splitmix_range_is_respected(seed in any::<u64>(), lo in -100.0f64..0.0, span in 0.001f64..100.0) {
        let mut s = SplitMix64::new(seed);
        let hi = lo + span;
        for _ in 0..32 {
            let x = s.next_range(lo, hi);
            prop_assert!(x >= lo && x < hi);
        }
    }

    #[test]
    fn gaussian_clt_is_hard_bounded(seed in any::<u64>()) {
        let mut g = GaussianClt::new(seed);
        let bound = 2.0 * 3f64.sqrt() + 1e-9;
        for _ in 0..64 {
            prop_assert!(g.sample_unit().abs() <= bound);
        }
    }

    #[test]
    fn gaussian_intervals_are_positive(seed in any::<u64>(), mean in 1.0f64..500.0) {
        let mut g = GaussianClt::new(seed);
        for _ in 0..32 {
            prop_assert!(g.sample_interval_ms(mean, mean / 3.0) >= 1);
        }
    }

    #[test]
    fn poisson_intervals_are_positive_and_finite(seed in any::<u32>(), rate in 0.0001f64..1.0) {
        let mut p = PoissonInterval::new(seed);
        for _ in 0..32 {
            let dt = p.sample_interval(rate);
            prop_assert!(dt > 0.0 && dt.is_finite());
        }
    }

    #[test]
    fn interpolation_of_monotone_function_stays_in_range(
        segments in 1usize..64,
        lo in -10.0f64..0.0,
        span in 0.1f64..20.0,
        x in -30.0f64..30.0,
    ) {
        let hi = lo + span;
        let t = PiecewiseLinear::from_fn(segments, (lo, hi), f64::tanh);
        let y = t.eval(x);
        // tanh is monotone: a piecewise-linear interpolant through exact
        // endpoint samples stays within the endpoint values.
        prop_assert!(y >= lo.tanh() - 1e-12 && y <= hi.tanh() + 1e-12);
    }

    #[test]
    fn running_mean_is_bracketed(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let r: Running = xs.iter().copied().collect();
        prop_assert!(r.mean() >= r.min() - 1e-9);
        prop_assert!(r.mean() <= r.max() + 1e-9);
        prop_assert_eq!(r.count(), xs.len() as u64);
        prop_assert!(r.variance() >= 0.0);
    }
}
