//! Randomized invariant tests for the numeric substrate.
//!
//! Formerly proptest-based; converted to a deterministic std-only harness
//! (seeded [`SplitMix64`] case generation) so the workspace builds and
//! tests fully offline. Each test sweeps a fixed number of pseudo-random
//! cases and reports the failing case inline.

use nc_substrate::fixed::{quantize_to_grid, QFixed, Q8};
use nc_substrate::interp::PiecewiseLinear;
use nc_substrate::rng::{GaussianClt, Lfsr31, PoissonInterval, SplitMix64};
use nc_substrate::stats::Running;

const CASES: u64 = 64;

#[test]
fn q8_offset_stays_in_range() {
    let mut rng = SplitMix64::new(0x51);
    for case in 0..CASES {
        let raw = rng.next_u64() as u8;
        let delta = (rng.next_below(1025) as i16) - 512;
        let w = Q8::from_raw(raw).saturating_offset(delta);
        let expected = (i32::from(raw) + i32::from(delta)).clamp(0, 255) as u8;
        assert_eq!(w.raw(), expected, "case {case}: raw {raw} delta {delta}");
    }
}

#[test]
fn q8_unit_round_trip_is_lossless() {
    for raw in 0..=255u8 {
        let q = Q8::from_raw(raw);
        assert_eq!(Q8::from_unit(q.to_unit()), q, "raw {raw}");
    }
}

#[test]
fn qfixed_addition_is_exact_and_commutative() {
    type F = QFixed<16>;
    let mut rng = SplitMix64::new(0x52);
    for case in 0..CASES {
        let a = rng.next_range(-1e6, 1e6);
        let b = rng.next_range(-1e6, 1e6);
        let (fa, fb) = (F::from_f64(a), F::from_f64(b));
        assert_eq!((fa + fb).raw(), (fb + fa).raw(), "case {case}");
        assert_eq!((fa + fb).raw(), fa.raw() + fb.raw(), "case {case}");
    }
}

#[test]
fn qfixed_mul_error_is_within_half_ulp() {
    type F = QFixed<16>;
    let mut rng = SplitMix64::new(0x53);
    for case in 0..CASES {
        let a = rng.next_range(-1e3, 1e3);
        let b = rng.next_range(-1e3, 1e3);
        let (fa, fb) = (F::from_f64(a), F::from_f64(b));
        let exact = fa.to_f64() * fb.to_f64();
        let got = (fa * fb).to_f64();
        // Rounding the product to the grid loses at most half an ulp.
        assert!(
            (got - exact).abs() <= 0.5 / 65536.0 + 1e-12,
            "case {case}: {got} vs {exact}"
        );
    }
}

#[test]
fn grid_quantization_is_idempotent() {
    let mut rng = SplitMix64::new(0x54);
    for case in 0..CASES {
        let x = rng.next_range(-1e4, 1e4);
        let bits = 2 + rng.next_below(14) as u32;
        let frac_off = 1 + rng.next_below(7) as u32;
        let frac = (bits - 1).min(frac_off);
        let q = quantize_to_grid(x, bits, frac);
        assert_eq!(quantize_to_grid(q, bits, frac), q, "case {case}: x {x}");
    }
}

#[test]
fn lfsr_stays_nonzero_and_in_31_bits() {
    let mut rng = SplitMix64::new(0x55);
    for case in 0..CASES {
        let seed = rng.next_u64() as u32;
        let steps = 1 + rng.next_below(199) as usize;
        let mut l = Lfsr31::new(seed);
        for _ in 0..steps {
            l.step();
            assert!(l.state() != 0, "case {case}: seed {seed}");
            assert!(l.state() <= 0x7FFF_FFFF, "case {case}: seed {seed}");
        }
    }
}

#[test]
fn lfsr_unit_samples_are_in_unit_interval() {
    let mut rng = SplitMix64::new(0x56);
    for case in 0..CASES {
        let mut l = Lfsr31::new(rng.next_u64() as u32);
        for _ in 0..32 {
            let u = l.next_unit();
            assert!((0.0..1.0).contains(&u), "case {case}: {u}");
        }
    }
}

#[test]
fn splitmix_next_below_is_bounded() {
    let mut rng = SplitMix64::new(0x57);
    for case in 0..CASES {
        let mut s = SplitMix64::new(rng.next_u64());
        let n = 1 + rng.next_below(9_999);
        for _ in 0..64 {
            assert!(s.next_below(n) < n, "case {case}: n {n}");
        }
    }
}

#[test]
fn splitmix_range_is_respected() {
    let mut rng = SplitMix64::new(0x58);
    for case in 0..CASES {
        let mut s = SplitMix64::new(rng.next_u64());
        let lo = rng.next_range(-100.0, 0.0);
        let hi = lo + rng.next_range(0.001, 100.0);
        for _ in 0..32 {
            let x = s.next_range(lo, hi);
            assert!(x >= lo && x < hi, "case {case}: {x} not in [{lo}, {hi})");
        }
    }
}

#[test]
fn gaussian_clt_is_hard_bounded() {
    let mut rng = SplitMix64::new(0x59);
    let bound = 2.0 * 3f64.sqrt() + 1e-9;
    for case in 0..CASES {
        let mut g = GaussianClt::new(rng.next_u64());
        for _ in 0..64 {
            assert!(g.sample_unit().abs() <= bound, "case {case}");
        }
    }
}

#[test]
fn gaussian_intervals_are_positive() {
    let mut rng = SplitMix64::new(0x5A);
    for case in 0..CASES {
        let mut g = GaussianClt::new(rng.next_u64());
        let mean = rng.next_range(1.0, 500.0);
        for _ in 0..32 {
            assert!(g.sample_interval_ms(mean, mean / 3.0) >= 1, "case {case}");
        }
    }
}

#[test]
fn poisson_intervals_are_positive_and_finite() {
    let mut rng = SplitMix64::new(0x5B);
    for case in 0..CASES {
        let mut p = PoissonInterval::new(rng.next_u64() as u32);
        let rate = rng.next_range(0.0001, 1.0);
        for _ in 0..32 {
            let dt = p.sample_interval(rate);
            assert!(
                dt > 0.0 && dt.is_finite(),
                "case {case}: rate {rate} dt {dt}"
            );
        }
    }
}

#[test]
fn interpolation_of_monotone_function_stays_in_range() {
    let mut rng = SplitMix64::new(0x5C);
    for case in 0..CASES {
        let segments = 1 + rng.next_below(63) as usize;
        let lo = rng.next_range(-10.0, 0.0);
        let hi = lo + rng.next_range(0.1, 20.0);
        let x = rng.next_range(-30.0, 30.0);
        let t = PiecewiseLinear::from_fn(segments, (lo, hi), f64::tanh);
        let y = t.eval(x);
        // tanh is monotone: a piecewise-linear interpolant through exact
        // endpoint samples stays within the endpoint values.
        assert!(
            y >= lo.tanh() - 1e-12 && y <= hi.tanh() + 1e-12,
            "case {case}: x {x} y {y}"
        );
    }
}

#[test]
fn running_mean_is_bracketed() {
    let mut rng = SplitMix64::new(0x5D);
    for case in 0..CASES {
        let n = 1 + rng.next_below(99) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_range(-1e6, 1e6)).collect();
        let r: Running = xs.iter().copied().collect();
        assert!(r.mean() >= r.min() - 1e-9, "case {case}");
        assert!(r.mean() <= r.max() + 1e-9, "case {case}");
        assert_eq!(r.count(), xs.len() as u64, "case {case}");
        assert!(r.variance() >= 0.0, "case {case}");
    }
}
