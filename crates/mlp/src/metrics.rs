//! Shared evaluation helpers producing confusion matrices, so every model
//! in the comparison is scored identically (paper §3: "the full 10,000
//! testing images").

use crate::network::Mlp;
use crate::quant::QuantizedMlp;
use nc_dataset::Dataset;
use nc_substrate::stats::Confusion;

/// Evaluates a floating-point MLP on a dataset.
///
/// # Panics
///
/// Panics if the dataset geometry does not match the network.
///
/// # Examples
///
/// ```
/// use nc_dataset::{digits::DigitsSpec, Difficulty};
/// use nc_mlp::{Activation, Mlp, metrics};
///
/// let (_, test) = DigitsSpec { train: 0, test: 20, seed: 1,
///     difficulty: Difficulty::default() }.generate();
/// let mlp = Mlp::new(&[784, 8, 10], Activation::sigmoid(), 0).unwrap();
/// let confusion = metrics::evaluate(&mlp, &test);
/// assert_eq!(confusion.total(), 20);
/// ```
pub fn evaluate(mlp: &Mlp, data: &Dataset) -> Confusion {
    assert_eq!(data.input_dim(), mlp.sizes()[0], "geometry mismatch");
    let mut confusion = Confusion::new(data.num_classes());
    for s in data.iter() {
        confusion.record(s.label, mlp.predict(&s.pixels_unit()));
    }
    confusion
}

/// Evaluates the quantized (hardware-datapath) MLP on a dataset. The
/// network is `&mut` because inference reuses its scratch buffers (the
/// zero-allocation steady state); stored weights are untouched.
///
/// # Panics
///
/// Panics if the dataset geometry does not match the network.
pub fn evaluate_quantized(q: &mut QuantizedMlp, data: &Dataset) -> Confusion {
    assert_eq!(data.input_dim(), q.sizes()[0], "geometry mismatch");
    let mut confusion = Confusion::new(data.num_classes());
    for s in data.iter() {
        confusion.record(s.label, q.predict_u8(&s.pixels));
    }
    confusion
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::trainer::{TrainConfig, Trainer};
    use nc_dataset::{digits::DigitsSpec, Difficulty};

    #[test]
    fn trained_network_beats_chance_on_digits() {
        let (train, test) = DigitsSpec {
            train: 400,
            test: 100,
            seed: 2,
            difficulty: Difficulty::default(),
        }
        .generate();
        let mut mlp = Mlp::new(&[784, 16, 10], Activation::sigmoid(), 3).unwrap();
        Trainer::new(TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &train);
        let acc = evaluate(&mlp, &test).accuracy();
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn quantized_evaluation_counts_everything() {
        let (_, test) = DigitsSpec {
            train: 0,
            test: 30,
            seed: 2,
            difficulty: Difficulty::default(),
        }
        .generate();
        let mlp = Mlp::new(&[784, 8, 10], Activation::sigmoid(), 3).unwrap();
        let mut q = QuantizedMlp::from_mlp(&mlp);
        assert_eq!(evaluate_quantized(&mut q, &test).total(), 30);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn rejects_mismatched_geometry() {
        let (_, test) = DigitsSpec {
            train: 0,
            test: 5,
            seed: 2,
            difficulty: Difficulty::default(),
        }
        .generate();
        let mlp = Mlp::new(&[100, 8, 10], Activation::sigmoid(), 3).unwrap();
        let _ = evaluate(&mlp, &test);
    }
}
