//! Back-Propagation training (paper §2.1).
//!
//! "The weights are updated as follows: `w_ji(t+1) = w_ji(t) +
//! η·δ_j(t)·y_i(t)` … At the output layer `δ_j = f'(s_j)·e_j` …, in the
//! hidden layer `δ_j = f'(s_j)·Σ_k δ_k·w_kj`."
//!
//! Training is plain per-sample stochastic gradient descent with an
//! epoch-wise Fisher–Yates shuffle, matching the paper's iterative
//! protocol ("this process is repeated multiple times until the target
//! error is achieved or the allocated learning time has elapsed").

use crate::network::Mlp;
use nc_dataset::Dataset;
use nc_obs::{EpochMetrics, Recorder};
use nc_substrate::rng::SplitMix64;

/// Back-propagation hyper-parameters (paper Table 1: η = 0.3, 50 epochs
/// for the MNIST MLP).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Learning rate η.
    pub learning_rate: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Shuffle seed (sample order is the only stochastic element).
    pub seed: u64,
    /// Target values for the one-hot encoding: `(off, on)`. The classic
    /// `(0.1, 0.9)` keeps sigmoid gradients alive; `(0.0, 1.0)` matches
    /// the raw step targets.
    pub targets: (f64, f64),
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.3,
            epochs: 50,
            seed: 0xBEEF,
            targets: (0.1, 0.9),
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index, from 0.
    pub epoch: usize,
    /// Mean squared error over the epoch.
    pub mse: f64,
    /// Training-set accuracy measured during the epoch (on-line, i.e.
    /// before each sample's update).
    pub train_accuracy: f64,
}

/// A back-propagation trainer.
///
/// # Examples
///
/// ```
/// use nc_dataset::{digits::DigitsSpec, Difficulty};
/// use nc_mlp::{Activation, Mlp, TrainConfig, Trainer};
///
/// let (train, _) = DigitsSpec {
///     train: 100, test: 0, seed: 3, difficulty: Difficulty::default(),
/// }.generate();
/// let mut mlp = Mlp::new(&[784, 10, 10], Activation::sigmoid(), 1).unwrap();
/// let stats = Trainer::new(TrainConfig { epochs: 2, ..Default::default() })
///     .fit(&mut mlp, &train);
/// assert_eq!(stats.len(), 2);
/// assert!(stats[1].mse <= stats[0].mse * 1.5); // error roughly decreasing
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `mlp` in place on `data`, returning per-epoch statistics.
    ///
    /// # Panics
    ///
    /// Panics if the dataset geometry does not match the network (input
    /// width or class count).
    pub fn fit(&self, mlp: &mut Mlp, data: &Dataset) -> Vec<EpochStats> {
        self.fit_observed(mlp, data, nc_obs::null())
    }

    /// Like [`Trainer::fit`], reporting each epoch's loss, on-line
    /// accuracy and weight-update count to `recorder` under the `"mlp"`
    /// context. With a disabled recorder this is exactly `fit`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset geometry does not match the network (input
    /// width or class count).
    pub fn fit_observed(
        &self,
        mlp: &mut Mlp,
        data: &Dataset,
        recorder: &dyn Recorder,
    ) -> Vec<EpochStats> {
        let sizes = mlp.sizes().to_vec();
        assert_eq!(
            data.input_dim(),
            sizes[0],
            "dataset input dim does not match network"
        );
        assert_eq!(
            data.num_classes(),
            // nc-lint: allow(R5, reason = "Mlp::new rejects empty topologies")
            *sizes.last().expect("nonempty topology"),
            "dataset classes do not match output layer"
        );
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = SplitMix64::new(self.config.seed);
        let mut stats = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            shuffle(&mut order, &mut rng);
            let mut sq_err = 0.0;
            let mut correct = 0usize;
            for &idx in &order {
                let sample = &data.samples()[idx];
                let input = sample.pixels_unit();
                let (err, hit) = self.step(mlp, &input, sample.label);
                sq_err += err;
                correct += usize::from(hit);
            }
            let n = data.len().max(1) as f64;
            let epoch_stats = EpochStats {
                epoch,
                mse: sq_err / n,
                train_accuracy: correct as f64 / n,
            };
            if recorder.enabled() {
                // Per-sample SGD touches every weight once per sample.
                let updates = (mlp.num_weights() * data.len()) as u64;
                recorder.record_epoch(
                    "mlp",
                    &EpochMetrics {
                        epoch,
                        samples: data.len() as u64,
                        loss: Some(epoch_stats.mse),
                        train_accuracy: Some(epoch_stats.train_accuracy),
                        weight_updates: updates,
                        spikes: 0,
                    },
                );
            }
            stats.push(epoch_stats);
        }
        stats
    }

    /// One BP step on a single sample; returns `(squared error, correct)`.
    /// Exposed so the SNN+BP hybrid can reuse the identical update rule.
    pub fn step(&self, mlp: &mut Mlp, input: &[f64], label: usize) -> (f64, bool) {
        let activation = mlp.activation();
        let sizes = mlp.sizes().to_vec();
        let trace = mlp.forward_trace(input);
        // nc-lint: allow(R5, reason = "Mlp::new rejects empty topologies, so the trace is nonempty")
        let output = trace.last().expect("at least one layer");
        let (off, on) = self.config.targets;

        // Output error e_j and squared-error telemetry.
        let mut sq_err = 0.0;
        let correct_label;
        let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); trace.len()];
        {
            let last = trace.len() - 1;
            let mut d = Vec::with_capacity(output.len());
            let predicted = crate::network::argmax(output);
            correct_label = predicted == label;
            for (j, &y) in output.iter().enumerate() {
                let target = if j == label { on } else { off };
                let e = target - y;
                sq_err += e * e;
                d.push(activation.derivative_from_output(y) * e);
            }
            deltas[last] = d;
        }

        // Hidden-layer gradients, back to front:
        // δ_j = f'(s_j) · Σ_k δ_k · w_kj.
        for l in (0..trace.len() - 1).rev() {
            let fan_in_next = sizes[l + 1];
            let next_weights = mlp.layer_weights(l + 1);
            let next_deltas = deltas[l + 1].clone();
            let mut d = Vec::with_capacity(trace[l].len());
            for (j, &y) in trace[l].iter().enumerate() {
                let mut sum = 0.0;
                for (k, &dk) in next_deltas.iter().enumerate() {
                    sum += dk * next_weights[k * (fan_in_next + 1) + j];
                }
                d.push(activation.derivative_from_output(y) * sum);
            }
            deltas[l] = d;
        }

        // Weight updates: w += η · δ_j · y_i (bias input is 1).
        let eta = self.config.learning_rate;
        for l in 0..trace.len() {
            let fan_in = sizes[l];
            // Split borrows: the previous layer's activations vs weights.
            let prev_owned;
            let prev: &[f64] = if l == 0 {
                input
            } else {
                prev_owned = trace[l - 1].clone();
                &prev_owned
            };
            let weights = mlp.layer_weights_mut(l);
            for (j, &dj) in deltas[l].iter().enumerate() {
                let row = &mut weights[j * (fan_in + 1)..(j + 1) * (fan_in + 1)];
                let step = eta * dj;
                for i in 0..fan_in {
                    row[i] += step * prev[i];
                }
                row[fan_in] += step; // bias
            }
        }
        (sq_err, correct_label)
    }
}

fn shuffle(order: &mut [usize], rng: &mut SplitMix64) {
    for i in (1..order.len()).rev() {
        let j = rng.next_index(i + 1);
        order.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use nc_dataset::{Dataset, Sample};

    /// A two-class toy problem: bright-left vs bright-right 2x1 images.
    fn toy() -> Dataset {
        let mut samples = Vec::new();
        for i in 0..40 {
            let bright = 200 + (i % 40) as u8;
            if i % 2 == 0 {
                samples.push(Sample {
                    pixels: vec![bright, 10],
                    label: 0,
                });
            } else {
                samples.push(Sample {
                    pixels: vec![10, bright],
                    label: 1,
                });
            }
        }
        Dataset::from_samples(2, 1, 2, samples).unwrap()
    }

    #[test]
    fn learns_a_separable_toy_problem() {
        let data = toy();
        let mut mlp = Mlp::new(&[2, 4, 2], Activation::sigmoid(), 3).unwrap();
        let cfg = TrainConfig {
            epochs: 60,
            learning_rate: 0.5,
            ..TrainConfig::default()
        };
        let stats = Trainer::new(cfg).fit(&mut mlp, &data);
        assert!(stats.last().unwrap().train_accuracy > 0.95);
        assert!(mlp.predict(&[0.9, 0.0]) == 0);
        assert!(mlp.predict(&[0.0, 0.9]) == 1);
    }

    #[test]
    fn error_decreases_over_training() {
        let data = toy();
        let mut mlp = Mlp::new(&[2, 4, 2], Activation::sigmoid(), 5).unwrap();
        let stats = Trainer::new(TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &data);
        assert!(stats.last().unwrap().mse < stats[0].mse);
    }

    #[test]
    fn training_is_deterministic() {
        let data = toy();
        let run = || {
            let mut mlp = Mlp::new(&[2, 3, 2], Activation::sigmoid(), 1).unwrap();
            Trainer::new(TrainConfig::default()).fit(&mut mlp, &data);
            mlp
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn step_activation_trains_with_surrogate() {
        let data = toy();
        let mut mlp = Mlp::new(&[2, 6, 2], Activation::Step, 8).unwrap();
        let stats = Trainer::new(TrainConfig {
            epochs: 80,
            learning_rate: 0.1,
            targets: (0.0, 1.0),
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &data);
        assert!(
            stats.last().unwrap().train_accuracy > 0.9,
            "step-MLP accuracy {}",
            stats.last().unwrap().train_accuracy
        );
    }

    #[test]
    #[should_panic(expected = "does not match network")]
    fn rejects_mismatched_dataset() {
        let data = toy();
        let mut mlp = Mlp::new(&[3, 2, 2], Activation::sigmoid(), 0).unwrap();
        Trainer::new(TrainConfig::default()).fit(&mut mlp, &data);
    }
}
