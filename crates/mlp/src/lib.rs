//! # nc-mlp
//!
//! The machine-learning side of the paper's comparison: a Multi-Layer
//! Perceptron trained with Back-Propagation (paper §2.1), together with
//! the hardware-faithful 8-bit quantized inference path used by the
//! accelerator cost study (paper §4.2.1).
//!
//! The crate provides:
//!
//! * [`activation`] — the parameterized sigmoid family `f_a(x) =
//!   1/(1+e^{-a·x})` and the `[0/1]` step function used by the
//!   sigmoid→step bridging experiment (paper §3.2, Figures 5–6), plus the
//!   16-point piecewise-linear sigmoid the silicon evaluates.
//! * [`network`] — the MLP itself: dense layers, feed-forward inference.
//! * [`trainer`] — stochastic back-propagation exactly as the paper
//!   states it: `w(t+1) = w(t) + η·δ(t)·y(t)` with the output/hidden
//!   gradient expressions of §2.1.
//! * [`quant`] — fixed-point inference (configurable-width weights,
//!   8-bit activations and the LUT sigmoid), the datapath that the
//!   `nc-hw` cost model prices.
//! * [`explore`] — the §3.1 hyper-parameter random search and the §4.2.3
//!   weight-precision sweep.
//! * [`metrics`] — shared evaluation producing a confusion matrix.
//!
//! # Examples
//!
//! ```
//! use nc_dataset::{digits::DigitsSpec, Difficulty};
//! use nc_mlp::activation::Activation;
//! use nc_mlp::network::Mlp;
//! use nc_mlp::trainer::{Trainer, TrainConfig};
//!
//! let (train, test) = DigitsSpec {
//!     train: 200, test: 50, seed: 1, difficulty: Difficulty::default(),
//! }.generate();
//!
//! let mut mlp = Mlp::new(&[28 * 28, 20, 10], Activation::sigmoid(), 42).unwrap();
//! let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
//! Trainer::new(cfg).fit(&mut mlp, &train);
//! let acc = nc_mlp::metrics::evaluate(&mlp, &test).accuracy();
//! assert!(acc > 0.15); // well above 10% chance even with 3 epochs
//! ```

pub mod activation;
pub mod explore;
pub mod metrics;
pub mod model;
pub mod network;
pub mod quant;
pub mod trainer;

pub use activation::Activation;
pub use network::{Mlp, MlpError};
pub use quant::QuantizedMlp;
pub use trainer::{TrainConfig, Trainer};
