//! Activation functions: the parameterized sigmoid family and the step
//! function of the paper's bridging experiment (§3.2, Figures 5–6).
//!
//! "By parameterizing the sigmoid function `f_a(x) = 1/(1+e^{-a·x})` …
//! it is possible to gradually alter the profile of the sigmoid in order
//! to bring it closer to the profile of a step function; `a` is a slope
//! parameter, and the higher `a`, the closer to a step function."

use nc_substrate::interp::PiecewiseLinear;

/// An MLP activation function.
///
/// # Examples
///
/// ```
/// use nc_mlp::activation::Activation;
///
/// let f = Activation::sigmoid();
/// assert!((f.eval(0.0) - 0.5).abs() < 1e-12);
///
/// let steep = Activation::sigmoid_slope(16.0);
/// assert!(steep.eval(1.0) > 0.999); // approaching the step profile
///
/// let step = Activation::Step;
/// assert_eq!(step.eval(-0.1), 0.0);
/// assert_eq!(step.eval(0.1), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// `f_a(x) = 1 / (1 + e^{-a·x})`; `a = 1` is the classical sigmoid.
    Sigmoid {
        /// Slope parameter `a` (must be positive).
        a: f64,
    },
    /// The `[0/1]` step function ("no spike / spike"): the limit of
    /// `Sigmoid` as `a → ∞` and the activation SNN hardware effectively
    /// uses.
    Step,
}

impl Activation {
    /// Slope cap of the back-propagation surrogate derivative (see
    /// [`Activation::derivative_from_output`]).
    pub const SURROGATE_SLOPE_CAP: f64 = 4.0;

    /// The classical sigmoid (`a = 1`).
    pub const fn sigmoid() -> Self {
        Activation::Sigmoid { a: 1.0 }
    }

    /// A sigmoid with slope parameter `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not strictly positive and finite.
    pub fn sigmoid_slope(a: f64) -> Self {
        assert!(a.is_finite() && a > 0.0, "slope must be positive");
        Activation::Sigmoid { a }
    }

    /// Evaluates the activation.
    pub fn eval(&self, x: f64) -> f64 {
        match *self {
            Activation::Sigmoid { a } => 1.0 / (1.0 + (-a * x).exp()),
            Activation::Step => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The derivative used by back-propagation, expressed in terms of the
    /// *output* `y = f(x)` (the standard trick: `f' = a·y·(1−y)`).
    ///
    /// This is a *surrogate* derivative for steep activations: the slope
    /// factor is capped at [`Activation::SURROGATE_SLOPE_CAP`] and the
    /// curvature term floored, because the true derivative of a steep
    /// sigmoid vanishes almost everywhere (units saturate after the first
    /// updates and learning stalls — exactly why the paper's Figure 6
    /// error rises with `a`). For `a ≤ 4` the derivative is exact. For
    /// [`Activation::Step`] — zero derivative everywhere — the same
    /// surrogate is used, so the step function realizes the paper's
    /// bridging reference point while inference stays a true comparator.
    pub fn derivative_from_output(&self, y: f64) -> f64 {
        match *self {
            Activation::Sigmoid { a } if a <= Self::SURROGATE_SLOPE_CAP => a * y * (1.0 - y),
            Activation::Sigmoid { .. } | Activation::Step => {
                Self::SURROGATE_SLOPE_CAP * (y * (1.0 - y)).max(0.025)
            }
        }
    }

    /// The slope parameter (`a`), or `None` for the step function.
    pub fn slope(&self) -> Option<f64> {
        match *self {
            Activation::Sigmoid { a } => Some(a),
            Activation::Step => None,
        }
    }

    /// Builds the 16-point piecewise-linear SRAM table the hardware uses
    /// for this activation (paper §4.2.1). The step function needs no
    /// table (it is a comparator), so it returns a 1-segment table of the
    /// steep sigmoid for uniformity.
    pub fn hardware_table(&self) -> PiecewiseLinear {
        match *self {
            Activation::Sigmoid { a } => {
                // Cover the region where the function is non-saturated:
                // |a·x| <= 8 ⇒ |x| <= 8/a.
                let half = 8.0 / a;
                PiecewiseLinear::sigmoid(16, a, (-half, half))
            }
            Activation::Step => PiecewiseLinear::sigmoid(16, 64.0, (-0.125, 0.125)),
        }
    }
}

impl Default for Activation {
    fn default() -> Self {
        Activation::sigmoid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_basic_values() {
        let f = Activation::sigmoid();
        assert!((f.eval(0.0) - 0.5).abs() < 1e-12);
        assert!(f.eval(10.0) > 0.9999);
        assert!(f.eval(-10.0) < 0.0001);
    }

    #[test]
    fn slope_steepens_profile() {
        // Figure 5: higher `a` pushes f_a(1) toward 1.
        let mut prev = 0.0;
        for a in [1.0, 2.0, 4.0, 8.0, 16.0] {
            let y = Activation::sigmoid_slope(a).eval(0.5);
            assert!(y > prev, "f_{a}(0.5) not increasing");
            prev = y;
        }
        assert!(prev > 0.999);
    }

    #[test]
    fn step_is_the_sigmoid_limit() {
        let step = Activation::Step;
        let steep = Activation::sigmoid_slope(1e6);
        for x in [-2.0, -0.5, 0.5, 2.0] {
            assert!((step.eval(x) - steep.eval(x)).abs() < 1e-6);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        // Exact below the surrogate cap.
        let f = Activation::sigmoid_slope(3.0);
        for x in [-2.0, -0.3, 0.0, 0.7, 1.9] {
            let y = f.eval(x);
            let h = 1e-6;
            let fd = (f.eval(x + h) - f.eval(x - h)) / (2.0 * h);
            assert!((f.derivative_from_output(y) - fd).abs() < 1e-5, "x = {x}");
        }
    }

    #[test]
    fn step_surrogate_gradient_is_nonzero() {
        let f = Activation::Step;
        assert!(f.derivative_from_output(0.0) > 0.0);
        assert!(f.derivative_from_output(1.0) > 0.0);
        assert!(f.derivative_from_output(0.5) > 0.0);
    }

    #[test]
    fn steep_sigmoid_gradient_never_vanishes() {
        let f = Activation::sigmoid_slope(16.0);
        for y in [0.0, 0.001, 0.5, 0.999, 1.0] {
            assert!(f.derivative_from_output(y) >= 0.025 * 4.0 - 1e-12, "y={y}");
        }
    }

    #[test]
    fn hardware_table_tracks_the_function() {
        let f = Activation::sigmoid_slope(2.0);
        let t = f.hardware_table();
        let err = t.max_error(|x| f.eval(x), 1000);
        assert!(err < 0.02, "table error {err}");
    }

    #[test]
    #[should_panic(expected = "slope must be positive")]
    fn rejects_nonpositive_slope() {
        let _ = Activation::sigmoid_slope(0.0);
    }
}
