//! [`Model`] implementations for the machine-learning side of the
//! comparison: the floating-point MLP+BP and its 8-bit fixed-point
//! deployment, scheduled as independent jobs by the experiment engine.

use crate::metrics;
use crate::network::Mlp;
use crate::quant::QuantizedMlp;
use crate::trainer::{TrainConfig, Trainer};
use nc_dataset::model::{check_fit_inputs, EvalBatch, FitBudget, Model, ModelError};
use nc_dataset::Dataset;
use nc_faults::{dead_unit_mask, FaultModel, FaultPlan};
use nc_obs::Recorder;
use nc_substrate::stats::Confusion;

fn train_config(budget: &FitBudget) -> TrainConfig {
    let mut config = TrainConfig {
        epochs: budget.epochs,
        ..TrainConfig::default()
    };
    if let Some(lr) = budget.learning_rate {
        config.learning_rate = lr;
    }
    config
}

impl Model for Mlp {
    fn name(&self) -> &'static str {
        "MLP+BP"
    }

    fn fit(&mut self, train: &Dataset, budget: &FitBudget) -> Result<(), ModelError> {
        self.fit_observed(train, budget, nc_obs::null())
    }

    fn fit_observed(
        &mut self,
        train: &Dataset,
        budget: &FitBudget,
        recorder: &dyn Recorder,
    ) -> Result<(), ModelError> {
        check_fit_inputs(train, self.sizes()[0])?;
        Trainer::new(train_config(budget)).fit_observed(self, train, recorder);
        Ok(())
    }

    fn evaluate(&mut self, test: &Dataset) -> Confusion {
        metrics::evaluate(self, test)
    }

    fn predict(&mut self, pixels: &[u8], _presentation_seed: u64) -> usize {
        let unit: Vec<f64> = pixels.iter().map(|&p| f64::from(p) / 255.0).collect();
        Mlp::predict(self, &unit)
    }

    /// The float reference has no 8-bit SRAM, read port, or spike
    /// generators, so only `DeadNeuron` (zeroed hidden units) applies.
    /// The dead-unit selection matches [`QuantizedMlp`]'s for the same
    /// plan and topology, so float-vs-quantized fault ladders compare
    /// identical defect patterns.
    fn inject(&mut self, plan: &FaultPlan) -> Result<(), ModelError> {
        plan.validate()?;
        match plan.model {
            FaultModel::DeadNeuron => {
                let sizes = self.sizes().to_vec();
                for l in 1..sizes.len() - 1 {
                    let salt = u64::try_from(l).unwrap_or(u64::MAX);
                    let dead = dead_unit_mask(sizes[l], &plan.for_site(salt));
                    let (fan_in, fan_out) = (sizes[l], sizes[l + 1]);
                    let next = self.layer_weights_mut(l);
                    for (unit, &is_dead) in dead.iter().enumerate() {
                        if is_dead {
                            for j in 0..fan_out {
                                next[j * (fan_in + 1) + unit] = 0.0;
                            }
                        }
                    }
                }
                Ok(())
            }
            // Routing-fabric faults live in the mesh substrate (nc-hw);
            // a single-core reference has no links or routers to break.
            FaultModel::DeadLink | FaultModel::DeadRouter => Ok(()),
            _ => Err(ModelError::FaultUnsupported {
                model: "MLP+BP",
                fault: plan.model.name(),
            }),
        }
    }
}

impl Model for QuantizedMlp {
    fn name(&self) -> &'static str {
        "MLP+BP (8-bit fixed point)"
    }

    /// Trains the float master (same seed → same weights as training a
    /// standalone [`Mlp`]) and re-quantizes, reproducing the paper's
    /// train-then-quantize pipeline bit for bit.
    fn fit(&mut self, train: &Dataset, budget: &FitBudget) -> Result<(), ModelError> {
        self.fit_observed(train, budget, nc_obs::null())
    }

    fn fit_observed(
        &mut self,
        train: &Dataset,
        budget: &FitBudget,
        recorder: &dyn Recorder,
    ) -> Result<(), ModelError> {
        check_fit_inputs(train, self.sizes()[0])?;
        let seed = self.master_seed().ok_or(ModelError::NotTrainable {
            model: "MLP+BP (8-bit fixed point)",
            reason: "built with from_mlp; use QuantizedMlp::untrained for a trainable instance",
        })?;
        let mut master = Mlp::new(self.sizes(), self.activation(), seed)
            // nc-lint: allow(R5, reason = "QuantizedMlp::untrained already validated this topology")
            .expect("topology was validated by QuantizedMlp::untrained");
        Trainer::new(train_config(budget)).fit_observed(&mut master, train, recorder);
        self.requantize_from(&master);
        recorder.add("mlp.requantizations", 1);
        Ok(())
    }

    fn evaluate(&mut self, test: &Dataset) -> Confusion {
        metrics::evaluate_quantized(self, test)
    }

    fn predict(&mut self, pixels: &[u8], _presentation_seed: u64) -> usize {
        self.predict_u8(pixels)
    }

    /// Batched inference through the GEMM kernel: the slab is consumed
    /// in kernel-sized tiles, bit-identical to the serial default (the
    /// GEMM is bit-identical to the column-wise GEMV). With a
    /// transient-read fault armed the serial path is kept — its
    /// per-read RNG stream makes read order part of the semantics.
    fn predict_batch(&mut self, batch: &EvalBatch<'_>, out: &mut Vec<usize>) {
        out.clear();
        if self.has_transient_faults() {
            for i in 0..batch.len() {
                out.push(self.predict_u8(batch.item(i)));
            }
            return;
        }
        out.reserve(batch.len());
        for tile in batch.tiles(BATCH_TILE) {
            self.predict_batch_u8(tile.pixels(), tile.len(), out);
        }
    }

    fn inject(&mut self, plan: &FaultPlan) -> Result<(), ModelError> {
        self.apply_fault(plan)
    }
}

/// Images per evaluation tile on the batched paths: large enough that a
/// weight pass amortizes over many presentations, small enough that the
/// activation scratch slab stays cache-resident.
const BATCH_TILE: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use nc_dataset::{digits::DigitsSpec, Difficulty};

    fn data() -> (Dataset, Dataset) {
        DigitsSpec {
            train: 80,
            test: 30,
            seed: 9,
            difficulty: Difficulty::default(),
        }
        .generate()
    }

    fn budget() -> FitBudget {
        FitBudget {
            epochs: 2,
            ..FitBudget::default()
        }
    }

    #[test]
    fn mlp_fits_and_evaluates_through_the_trait() {
        let (train, test) = data();
        let mut mlp = Mlp::new(&[784, 8, 10], Activation::sigmoid(), 1).unwrap();
        let model: &mut dyn Model = &mut mlp;
        assert_eq!(model.name(), "MLP+BP");
        model.fit(&train, &budget()).unwrap();
        assert_eq!(model.evaluate(&test).total(), 30);
    }

    #[test]
    fn trait_fit_matches_manual_train_then_quantize() {
        let (train, test) = data();

        // The old sequential pipeline: train a float MLP, quantize it.
        let mut master = Mlp::new(&[784, 8, 10], Activation::sigmoid(), 5).unwrap();
        Trainer::new(TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        })
        .fit(&mut master, &train);
        let mut reference = QuantizedMlp::from_mlp(&master);

        // The unified-API pipeline with the same seed and budget.
        let mut q = QuantizedMlp::untrained(&[784, 8, 10], Activation::sigmoid(), 5).unwrap();
        Model::fit(&mut q, &train, &budget()).unwrap();

        assert_eq!(
            Model::evaluate(&mut q, &test).accuracy(),
            metrics::evaluate_quantized(&mut reference, &test).accuracy()
        );
        for l in 0..2 {
            assert_eq!(q.layer_weights(l), reference.layer_weights(l), "layer {l}");
        }
    }

    #[test]
    fn deployment_artifact_refuses_fit() {
        let (train, _) = data();
        let master = Mlp::new(&[784, 8, 10], Activation::sigmoid(), 5).unwrap();
        let mut q = QuantizedMlp::from_mlp(&master);
        assert!(matches!(
            Model::fit(&mut q, &train, &budget()),
            Err(ModelError::NotTrainable { .. })
        ));
    }

    #[test]
    fn float_and_quantized_dead_neurons_match() {
        let (train, test) = data();
        let mut mlp = Mlp::new(&[784, 8, 10], Activation::sigmoid(), 3).unwrap();
        Model::fit(&mut mlp, &train, &budget()).unwrap();
        let mut q = QuantizedMlp::from_mlp(&mlp);
        let plan = FaultPlan::new(FaultModel::DeadNeuron, 0.5, 11).unwrap();
        Model::inject(&mut mlp, &plan).unwrap();
        Model::inject(&mut q, &plan).unwrap();
        // Same plan kills the same hidden units in both deployments:
        // a unit whose float outgoing column is zero must also have a
        // zero quantized outgoing column.
        let fan_in = 8;
        for unit in 0..fan_in {
            let float_dead = (0..10).all(|j| mlp.layer_weights(1)[j * (fan_in + 1) + unit] == 0.0);
            let quant_dead = (0..10).all(|j| q.layer_weights(1)[j * (fan_in + 1) + unit] == 0);
            assert_eq!(float_dead, quant_dead, "unit {unit}");
        }
        // Both still evaluate end to end.
        assert_eq!(Model::evaluate(&mut mlp, &test).total(), 30);
        assert_eq!(Model::evaluate(&mut q, &test).total(), 30);
    }

    #[test]
    fn float_mlp_rejects_bit_level_faults() {
        let mut mlp = Mlp::new(&[784, 8, 10], Activation::sigmoid(), 3).unwrap();
        for fault in [
            FaultModel::StuckAt0,
            FaultModel::StuckAt1,
            FaultModel::TransientRead,
            FaultModel::StuckLfsrTap,
        ] {
            let plan = FaultPlan::new(fault, 0.1, 0).unwrap();
            assert!(
                matches!(
                    Model::inject(&mut mlp, &plan),
                    Err(ModelError::FaultUnsupported {
                        model: "MLP+BP",
                        ..
                    })
                ),
                "{fault}"
            );
        }
    }

    #[test]
    fn geometry_mismatch_is_reported() {
        let (train, _) = data();
        let mut mlp = Mlp::new(&[100, 8, 10], Activation::sigmoid(), 1).unwrap();
        assert!(matches!(
            Model::fit(&mut mlp, &train, &budget()),
            Err(ModelError::GeometryMismatch {
                expected: 100,
                got: 784
            })
        ));
    }
}
