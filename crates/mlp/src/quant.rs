//! 8-bit fixed-point inference: the hardware MLP datapath.
//!
//! The paper found that "the results achieved with 8-bit fixed-point
//! operators (multipliers, adders, SRAM width) were on par with the ones
//! obtained with floating-point operators: respectively 96.65% vs.
//! 97.65%" (§4.2.1). This module quantizes a trained [`Mlp`] onto that
//! datapath: 8-bit weights, 8-bit activations, integer multiply-
//! accumulate into a wide adder-tree register, and the 16-point
//! piecewise-linear sigmoid.
//!
//! The quantized network is the *functional reference* for the `nc-hw`
//! datapath simulator: both must produce identical predictions.

use crate::activation::Activation;
use crate::network::{Mlp, MlpError};
use nc_dataset::ModelError;
use nc_faults::{dead_unit_mask, stuck_bits_i8, FaultModel, FaultPlan, TransientReads};
use nc_substrate::fixed::{sat_i32_trunc, sat_i8_round};
use nc_substrate::interp::PiecewiseLinear;
use nc_substrate::kernel::{gemm_i8xu8, gemv_i8xu8, FixedActLut, Scratch};

/// Bit width of weights and activations in the hardware datapath.
pub const DATA_BITS: u32 = 8;

/// An [`Mlp`] lowered to the 8-bit hardware datapath.
///
/// Weights are stored as `i8` with a per-layer power-of-two scale
/// (hardware reinterprets the same integers; only the implicit binary
/// point differs). Activations are `u8` in `[0, 255]`, matching the input
/// pixel format, so hidden-layer outputs can feed the next layer with no
/// conversion — exactly what the folded design's neuron-output registers
/// do (§4.3.1).
///
/// # Examples
///
/// ```
/// use nc_mlp::{Activation, Mlp, QuantizedMlp};
///
/// let mlp = Mlp::new(&[16, 8, 4], Activation::sigmoid(), 1).unwrap();
/// let mut q = QuantizedMlp::from_mlp(&mlp);
/// let out = q.forward_u8(&[128; 16]);
/// assert_eq!(out.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    sizes: Vec<usize>,
    /// Per layer: quantized weights, row-major `[out][in + 1]`, bias last.
    layers: Vec<Vec<i8>>,
    /// Per layer: the power-of-two exponent `e` such that
    /// `w_float ≈ w_int · 2^-e`.
    scales: Vec<i32>,
    table: PiecewiseLinear,
    /// Per layer: `table` lowered to fixed-point coefficients for that
    /// layer's scale exponent, so inference never leaves the integer
    /// domain (rebuilt alongside `scales`; derived state, not compared).
    act_luts: Vec<FixedActLut>,
    activation: Activation,
    /// Seed for re-initializing the float master when this network is
    /// trained through the unified `Model` interface; `None` for
    /// deployment artifacts built with [`QuantizedMlp::from_mlp`].
    master_seed: Option<u64>,
    /// Transient-read fault port over the weight SRAM; disabled unless a
    /// `TransientRead` plan was injected.
    faults: TransientReads,
    /// Reusable layer buffers (DESIGN.md "Hot paths"): after the first
    /// presentation, [`QuantizedMlp::forward_u8`] allocates nothing.
    scratch: Scratch,
}

/// Equality ignores the scratch buffers and the derived activation LUTs:
/// two networks are the same deployment artifact iff their stored state
/// (topology, weights, scales, table, seed, fault port) matches.
impl PartialEq for QuantizedMlp {
    fn eq(&self, other: &Self) -> bool {
        self.sizes == other.sizes
            && self.layers == other.layers
            && self.scales == other.scales
            && self.table == other.table
            && self.activation == other.activation
            && self.master_seed == other.master_seed
            && self.faults == other.faults
    }
}

impl QuantizedMlp {
    /// Quantizes a trained floating-point network.
    ///
    /// Each layer's scale is the largest power of two that keeps the
    /// biggest |weight| inside the `i8` range (symmetric per-tensor
    /// quantization — the scheme an 8-bit SRAM weight store implies).
    pub fn from_mlp(mlp: &Mlp) -> Self {
        Self::from_mlp_with_bits(mlp, DATA_BITS)
    }

    /// Quantizes with an explicit weight bit width — the precision
    /// exploration of §4.2.3 ("we also explored the neurons and synapses
    /// bit width, with the goal of finding the most compact size which is
    /// within 1% of the best accuracy").
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=8`.
    pub fn from_mlp_with_bits(mlp: &Mlp, bits: u32) -> Self {
        assert!((2..=8).contains(&bits), "weight bits must be in 2..=8");
        let max_raw = f64::from((1u32 << (bits - 1)) - 1); // e.g. 127 at 8 bits
        let sizes = mlp.sizes().to_vec();
        let mut layers = Vec::new();
        let mut scales = Vec::new();
        for l in 0..sizes.len() - 1 {
            let w = mlp.layer_weights(l);
            let max_abs = w.iter().fold(0.0f64, |m, &x| m.max(x.abs())).max(1e-12);
            // Choose e with max_raw · 2^-e >= max_abs, i.e. the finest
            // grid that still represents the largest weight.
            let e = sat_i32_trunc((max_raw / max_abs).log2().floor());
            let scale = 2f64.powi(e);
            layers.push(
                w.iter()
                    .map(|&x| sat_i8_round((x * scale).clamp(-max_raw, max_raw)))
                    .collect(),
            );
            scales.push(e);
        }
        let table = mlp.activation().hardware_table();
        let act_luts = scales
            .iter()
            .map(|&e| FixedActLut::new(&table, e))
            .collect();
        QuantizedMlp {
            sizes,
            layers,
            scales,
            table,
            act_luts,
            activation: mlp.activation(),
            master_seed: None,
            faults: TransientReads::disabled(),
            scratch: Scratch::default(),
        }
    }

    /// Builds an *untrained* quantized network that can later be trained
    /// through the unified `Model` interface: `fit` initializes a float
    /// master `Mlp` from `(sizes, activation, seed)`, trains it with
    /// back-propagation, and re-quantizes — the same train-then-quantize
    /// pipeline the paper uses (§4.2.1), packaged so experiment drivers
    /// can schedule this variant as an independent job.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError`] if the topology is invalid.
    pub fn untrained(sizes: &[usize], activation: Activation, seed: u64) -> Result<Self, MlpError> {
        let master = Mlp::new(sizes, activation, seed)?;
        let mut q = Self::from_mlp(&master);
        q.master_seed = Some(seed);
        Ok(q)
    }

    /// The master-initialization seed, if this network was built with
    /// [`QuantizedMlp::untrained`].
    pub fn master_seed(&self) -> Option<u64> {
        self.master_seed
    }

    /// Replaces this network's weights by re-quantizing a newly trained
    /// float master, preserving the stored master seed.
    pub fn requantize_from(&mut self, master: &Mlp) {
        let seed = self.master_seed;
        *self = QuantizedMlp::from_mlp(master);
        self.master_seed = seed;
    }

    /// Layer widths, input first.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The quantized weights of a layer (row-major, bias last).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_weights(&self, layer: usize) -> &[i8] {
        &self.layers[layer]
    }

    /// The power-of-two scale exponent of a layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_scale_exp(&self, layer: usize) -> i32 {
        self.scales[layer]
    }

    /// Runs 8-bit inference on raw pixel luminances, returning the
    /// output-layer activations as `u8` (the neuron-output register
    /// contents). The returned slice borrows the network's scratch
    /// buffers and is valid until the next presentation.
    ///
    /// The whole pass is integer: blocked i8×u8 MACs into the i64
    /// adder tree ([`gemv_i8xu8`]), then the activation evaluated in
    /// fixed point straight off the accumulator ([`FixedActLut`]). After
    /// the first call, no heap allocation occurs (scratch reuse).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input layer width.
    pub fn forward_u8(&mut self, input: &[u8]) -> &[u8] {
        assert_eq!(
            input.len(),
            self.sizes[0],
            "input width does not match topology"
        );
        let max_width = self.sizes.iter().copied().max().unwrap_or(0);
        self.scratch.ensure(max_width);
        self.scratch.front[..input.len()].copy_from_slice(input);
        for l in 0..self.layers.len() {
            let fan_in = self.sizes[l];
            let fan_out = self.sizes[l + 1];
            let weights = &self.layers[l][..fan_out * (fan_in + 1)];
            let lut = &self.act_luts[l];
            let scratch = &mut self.scratch;
            if self.faults.is_active() {
                // Every weight word passes through the faulty SRAM read
                // port, bias included — the per-read RNG stream makes
                // the read order part of the semantics, so this path
                // keeps the bias-first row order of the fault-free GEMV.
                for (j, acc) in scratch.acc[..fan_out].iter_mut().enumerate() {
                    let row = &weights[j * (fan_in + 1)..(j + 1) * (fan_in + 1)];
                    let mut a = i64::from(self.faults.read_i8(row[fan_in])) * 255;
                    for (&w, &x) in row[..fan_in].iter().zip(&scratch.front[..fan_in]) {
                        a += i64::from(self.faults.read_i8(w)) * i64::from(x);
                    }
                    *acc = a;
                }
            } else {
                gemv_i8xu8(
                    weights,
                    &scratch.front[..fan_in],
                    &mut scratch.acc[..fan_out],
                );
            }
            for (out, &acc) in scratch.back[..fan_out].iter_mut().zip(&scratch.acc) {
                *out = lut.eval(acc);
            }
            std::mem::swap(&mut scratch.front, &mut scratch.back);
        }
        &self.scratch.front[..self.sizes[self.sizes.len() - 1]]
    }

    /// Predicted class from raw pixels: argmax over output registers
    /// (first maximum wins, matching [`crate::network::argmax`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input layer width.
    pub fn predict_u8(&mut self, input: &[u8]) -> usize {
        let out = self.forward_u8(input);
        argmax_u8(out)
    }

    /// Runs 8-bit inference over a contiguous batch of `cols` images
    /// laid out back to back in `inputs`, returning the output
    /// activations image-major (`cols · output_width` bytes, image `c`'s
    /// registers contiguous). Each layer is one [`gemm_i8xu8`] pass over
    /// the whole slab, so the weight matrix streams through cache once
    /// per tile instead of once per image; the per-image results are
    /// bit-identical to calling [`QuantizedMlp::forward_u8`] image by
    /// image (the GEMM is bit-identical to the column-wise GEMV and the
    /// activation LUT is evaluated elementwise either way).
    ///
    /// This path bypasses the transient-read fault port — callers with
    /// an armed fault stream must keep the serial path, whose read
    /// order is part of the fault semantics.
    ///
    /// # Panics
    ///
    /// Panics if `cols == 0` or `inputs.len() != cols ·` input width.
    pub fn forward_batch_u8(&mut self, inputs: &[u8], cols: usize) -> &[u8] {
        assert!(cols > 0, "batch must hold at least one image");
        assert_eq!(
            inputs.len(),
            cols * self.sizes[0],
            "input slab does not match topology × batch size"
        );
        let max_width = self.sizes.iter().copied().max().unwrap_or(0);
        self.scratch.ensure(max_width * cols);
        self.scratch.front[..inputs.len()].copy_from_slice(inputs);
        for l in 0..self.layers.len() {
            let fan_in = self.sizes[l];
            let fan_out = self.sizes[l + 1];
            let weights = &self.layers[l][..fan_out * (fan_in + 1)];
            let lut = &self.act_luts[l];
            let scratch = &mut self.scratch;
            // Column-major GEMM output: image c's accumulators occupy
            // the contiguous stripe [c·fan_out, (c+1)·fan_out), which is
            // exactly the image-major layout the next layer's slab needs.
            gemm_i8xu8(
                weights,
                fan_out,
                &scratch.front[..fan_in * cols],
                cols,
                &mut scratch.acc[..fan_out * cols],
            );
            for (out, &acc) in scratch.back[..fan_out * cols].iter_mut().zip(&scratch.acc) {
                *out = lut.eval(acc);
            }
            std::mem::swap(&mut scratch.front, &mut scratch.back);
        }
        &self.scratch.front[..self.sizes[self.sizes.len() - 1] * cols]
    }

    /// Predicted classes for a contiguous batch of `cols` images,
    /// appended to `out` in batch order (first maximum wins per image,
    /// as in [`QuantizedMlp::predict_u8`]).
    ///
    /// # Panics
    ///
    /// Panics if `cols == 0` or `inputs.len() != cols ·` input width.
    pub fn predict_batch_u8(&mut self, inputs: &[u8], cols: usize, out: &mut Vec<usize>) {
        let width = self.sizes[self.sizes.len() - 1];
        let registers = self.forward_batch_u8(inputs, cols);
        out.extend(registers.chunks(width.max(1)).map(argmax_u8));
    }

    /// Whether a transient-read fault stream is armed on the weight
    /// SRAM port (in which case batch evaluation must stay serial: the
    /// per-read RNG makes read order part of the semantics).
    pub fn has_transient_faults(&self) -> bool {
        self.faults.is_active()
    }

    /// The fixed-point activation table of a layer (shared with the
    /// `nc-hw` cycle simulator so both datapaths stay bit-identical).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn act_lut(&self, layer: usize) -> &FixedActLut {
        &self.act_luts[layer]
    }

    /// The shared activation this datapath approximates.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Injects a hardware fault into the deployed 8-bit state (the
    /// [`nc_dataset::Model::inject`] substrate for this family):
    ///
    /// * stuck-at bits corrupt the weight SRAM words layer by layer;
    /// * dead neurons zero a hidden unit's *outgoing* weight column, so
    ///   its contribution reads as a stuck-at-reset output register;
    /// * transient reads arm the SRAM read-port fault stream used by
    ///   [`QuantizedMlp::forward_u8`];
    /// * stuck LFSR taps are rejected — this datapath has no spike
    ///   generators.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidFaultPlan`] for rates outside `[0, 1]`,
    /// [`ModelError::FaultUnsupported`] for `StuckLfsrTap`.
    pub fn apply_fault(&mut self, plan: &FaultPlan) -> Result<(), ModelError> {
        plan.validate()?;
        match plan.model {
            FaultModel::StuckAt0 | FaultModel::StuckAt1 => {
                for (salt, layer) in (0u64..).zip(self.layers.iter_mut()) {
                    stuck_bits_i8(layer, &plan.for_site(salt));
                }
                Ok(())
            }
            FaultModel::DeadNeuron => {
                // Hidden layers only: killing output units would change
                // the readout's class set rather than model a defect the
                // readout must survive.
                for l in 1..self.sizes.len() - 1 {
                    let salt = u64::try_from(l).unwrap_or(u64::MAX);
                    let dead = dead_unit_mask(self.sizes[l], &plan.for_site(salt));
                    let fan_in = self.sizes[l];
                    let next = &mut self.layers[l];
                    let fan_out = self.sizes[l + 1];
                    for (unit, &is_dead) in dead.iter().enumerate() {
                        if is_dead {
                            for j in 0..fan_out {
                                next[j * (fan_in + 1) + unit] = 0;
                            }
                        }
                    }
                }
                Ok(())
            }
            FaultModel::TransientRead => {
                self.faults = TransientReads::from_plan(plan);
                Ok(())
            }
            FaultModel::StuckLfsrTap => Err(ModelError::FaultUnsupported {
                model: "MLP+BP (8-bit fixed point)",
                fault: plan.model.name(),
            }),
            // Routing-fabric faults live in the mesh substrate (nc-hw);
            // a single-core datapath has no links or routers to break.
            FaultModel::DeadLink | FaultModel::DeadRouter => Ok(()),
        }
    }
}

/// First-maximum-wins argmax over u8 registers (matches
/// [`crate::network::argmax`] on the quantized grid).
fn argmax_u8(out: &[u8]) -> usize {
    let mut best = 0;
    for (i, &v) in out.iter().enumerate().skip(1) {
        if v > out[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{TrainConfig, Trainer};
    use nc_dataset::{digits::DigitsSpec, Difficulty};

    #[test]
    fn batched_forward_is_bit_identical_to_serial() {
        let (_, test) = DigitsSpec {
            train: 1,
            test: 23, // not a multiple of the GEMM column tile
            seed: 77,
            difficulty: Difficulty::default(),
        }
        .generate();
        let mlp = Mlp::new(&[784, 31, 10], Activation::sigmoid(), 5).unwrap();
        let mut serial = QuantizedMlp::from_mlp(&mlp);
        let mut batched = QuantizedMlp::from_mlp(&mlp);
        let slab: Vec<u8> = test.iter().flat_map(|s| s.pixels.iter().copied()).collect();
        let batch_out = batched.forward_batch_u8(&slab, test.len()).to_vec();
        for (c, s) in test.iter().enumerate() {
            assert_eq!(
                &batch_out[c * 10..(c + 1) * 10],
                serial.forward_u8(&s.pixels),
                "image {c}"
            );
        }
        let mut preds = Vec::new();
        batched.predict_batch_u8(&slab, test.len(), &mut preds);
        let serial_preds: Vec<usize> = test.iter().map(|s| serial.predict_u8(&s.pixels)).collect();
        assert_eq!(preds, serial_preds);
    }

    #[test]
    fn quantized_weights_are_close_to_float() {
        let mlp = Mlp::new(&[10, 6, 3], Activation::sigmoid(), 4).unwrap();
        let q = QuantizedMlp::from_mlp(&mlp);
        for l in 0..2 {
            let scale = 2f64.powi(q.layer_scale_exp(l));
            for (qw, fw) in q.layer_weights(l).iter().zip(mlp.layer_weights(l)) {
                let back = f64::from(*qw) / scale;
                assert!(
                    (back - fw).abs() <= 0.5 / scale + 1e-12,
                    "w={fw} back={back}"
                );
            }
        }
    }

    #[test]
    fn quantized_outputs_track_float_outputs() {
        let mlp = Mlp::new(&[8, 5, 3], Activation::sigmoid(), 6).unwrap();
        let mut q = QuantizedMlp::from_mlp(&mlp);
        let pixels: Vec<u8> = (0..8).map(|i| (i * 30) as u8).collect();
        let fin: Vec<f64> = pixels.iter().map(|&p| f64::from(p) / 255.0).collect();
        let f_out = mlp.forward(&fin);
        let q_out = q.forward_u8(&pixels);
        for (f, qv) in f_out.iter().zip(q_out) {
            assert!(
                (f - f64::from(*qv) / 255.0).abs() < 0.06,
                "float {f} vs quant {qv}"
            );
        }
    }

    #[test]
    fn quantized_accuracy_is_on_par_with_float() {
        // The §4.2.1 claim at small scale: quantization costs only a
        // little accuracy.
        let (train, test) = DigitsSpec {
            train: 300,
            test: 100,
            seed: 10,
            difficulty: Difficulty::default(),
        }
        .generate();
        let mut mlp = Mlp::new(&[784, 16, 10], Activation::sigmoid(), 2).unwrap();
        Trainer::new(TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &train);
        let mut q = QuantizedMlp::from_mlp(&mlp);
        let mut float_ok = 0;
        let mut quant_ok = 0;
        for s in test.iter() {
            if mlp.predict(&s.pixels_unit()) == s.label {
                float_ok += 1;
            }
            if q.predict_u8(&s.pixels) == s.label {
                quant_ok += 1;
            }
        }
        let f_acc = f64::from(float_ok) / test.len() as f64;
        let q_acc = f64::from(quant_ok) / test.len() as f64;
        assert!(q_acc >= f_acc - 0.08, "quantized {q_acc} vs float {f_acc}");
    }

    #[test]
    fn all_zero_input_is_handled() {
        let mlp = Mlp::new(&[4, 3, 2], Activation::sigmoid(), 0).unwrap();
        let mut q = QuantizedMlp::from_mlp(&mlp);
        let out = q.forward_u8(&[0; 4]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn forward_reuses_scratch_without_reallocating() {
        // The documented zero-allocation contract: after warm-up the
        // output slice lives in the same scratch allocation on every
        // presentation (the layer count is even, so the double-buffer
        // swap returns to the same Vec), i.e. the steady state never
        // touches the heap.
        let mlp = Mlp::new(&[32, 16, 8], Activation::sigmoid(), 7).unwrap();
        let mut q = QuantizedMlp::from_mlp(&mlp);
        let warm = q.forward_u8(&[128; 32]).as_ptr();
        for round in 0..16 {
            let out = q.forward_u8(&[round as u8 * 3; 32]);
            assert_eq!(out.as_ptr(), warm, "round {round} moved the buffer");
            assert_eq!(out.len(), 8);
        }
    }

    #[test]
    #[should_panic(expected = "does not match topology")]
    fn rejects_wrong_input_width() {
        let mlp = Mlp::new(&[4, 2], Activation::sigmoid(), 0).unwrap();
        let mut q = QuantizedMlp::from_mlp(&mlp);
        let _ = q.forward_u8(&[0; 3]);
    }

    fn faulty(model: FaultModel, rate: f64) -> FaultPlan {
        FaultPlan::new(model, rate, 42).unwrap()
    }

    #[test]
    fn stuck_bits_corrupt_weights_deterministically() {
        let mlp = Mlp::new(&[10, 6, 3], Activation::sigmoid(), 4).unwrap();
        let mut a = QuantizedMlp::from_mlp(&mlp);
        let mut b = QuantizedMlp::from_mlp(&mlp);
        let plan = faulty(FaultModel::StuckAt1, 0.2);
        a.apply_fault(&plan).unwrap();
        b.apply_fault(&plan).unwrap();
        assert_eq!(a, b);
        assert_ne!(
            a.layer_weights(0),
            QuantizedMlp::from_mlp(&mlp).layer_weights(0)
        );
        // Layers get independent defect patterns: a single-layer slice of
        // the pattern must not repeat across layers of equal length.
        let clean = QuantizedMlp::from_mlp(&mlp);
        let delta0: Vec<u8> = a
            .layer_weights(0)
            .iter()
            .zip(clean.layer_weights(0))
            .map(|(f, c)| (f.to_ne_bytes()[0]) ^ (c.to_ne_bytes()[0]))
            .collect();
        assert!(delta0.iter().any(|&d| d != 0));
    }

    #[test]
    fn full_stuck_at_zero_clears_every_weight() {
        let mlp = Mlp::new(&[6, 4, 2], Activation::sigmoid(), 1).unwrap();
        let mut q = QuantizedMlp::from_mlp(&mlp);
        q.apply_fault(&faulty(FaultModel::StuckAt0, 1.0)).unwrap();
        for l in 0..2 {
            assert!(q.layer_weights(l).iter().all(|&w| w == 0));
        }
    }

    #[test]
    fn dead_neurons_zero_outgoing_columns() {
        let mlp = Mlp::new(&[5, 4, 3], Activation::sigmoid(), 2).unwrap();
        let mut q = QuantizedMlp::from_mlp(&mlp);
        q.apply_fault(&faulty(FaultModel::DeadNeuron, 1.0)).unwrap();
        // Every hidden unit dead => every non-bias weight of layer 1 is 0.
        let fan_in = 4;
        let out = q.layer_weights(1);
        for j in 0..3 {
            for i in 0..fan_in {
                assert_eq!(out[j * (fan_in + 1) + i], 0, "row {j} col {i}");
            }
        }
        // Input-side weights (layer 0) are untouched.
        assert_eq!(
            q.layer_weights(0),
            QuantizedMlp::from_mlp(&mlp).layer_weights(0)
        );
    }

    #[test]
    fn transient_reads_perturb_inference_but_not_storage() {
        let mlp = Mlp::new(&[8, 6, 4], Activation::sigmoid(), 3).unwrap();
        let mut clean = QuantizedMlp::from_mlp(&mlp);
        let mut q = QuantizedMlp::from_mlp(&mlp);
        q.apply_fault(&faulty(FaultModel::TransientRead, 0.5))
            .unwrap();
        for l in 0..2 {
            assert_eq!(q.layer_weights(l), clean.layer_weights(l));
        }
        let input = [200u8; 8];
        let outs: Vec<Vec<u8>> = (0..32).map(|_| q.forward_u8(&input).to_vec()).collect();
        let reference = clean.forward_u8(&input);
        assert!(
            outs.iter().any(|o| o.as_slice() != reference),
            "a 50% read-fault rate must disturb at least one of 32 passes"
        );
    }

    #[test]
    fn zero_rate_faults_are_no_ops() {
        let mlp = Mlp::new(&[6, 5, 3], Activation::sigmoid(), 9).unwrap();
        let mut clean = QuantizedMlp::from_mlp(&mlp);
        for model in [
            FaultModel::StuckAt0,
            FaultModel::StuckAt1,
            FaultModel::DeadNeuron,
            FaultModel::TransientRead,
        ] {
            let mut q = QuantizedMlp::from_mlp(&mlp);
            q.apply_fault(&faulty(model, 0.0)).unwrap();
            let input = [77u8; 6];
            assert_eq!(q.forward_u8(&input), clean.forward_u8(&input), "{model}");
        }
    }

    #[test]
    fn lfsr_faults_are_rejected() {
        let mlp = Mlp::new(&[4, 3, 2], Activation::sigmoid(), 0).unwrap();
        let mut q = QuantizedMlp::from_mlp(&mlp);
        assert!(matches!(
            q.apply_fault(&faulty(FaultModel::StuckLfsrTap, 0.5)),
            Err(ModelError::FaultUnsupported { .. })
        ));
        assert!(matches!(
            q.apply_fault(&FaultPlan {
                model: FaultModel::StuckAt0,
                rate: -1.0,
                seed: 0
            }),
            Err(ModelError::InvalidFaultPlan { .. })
        ));
    }
}
