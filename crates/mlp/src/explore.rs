//! Design-space exploration for the MLP: the hyper-parameter and
//! precision searches behind §3.1 ("We selected 100 hidden neurons after
//! exploring the number of hidden neurons from 10 to 1000 (and
//! simultaneously exploring the hyper-parameters, such as the learning
//! rate)") and §4.2.3 (operator/weight bit-width exploration).

use crate::metrics;
use crate::quant::QuantizedMlp;
use crate::trainer::{TrainConfig, Trainer};
use crate::{Activation, Mlp};
use nc_dataset::Dataset;
use nc_substrate::rng::SplitMix64;

/// One evaluated hyper-parameter setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpCandidate {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Learning rate η.
    pub learning_rate: f64,
    /// Test accuracy achieved.
    pub accuracy: f64,
}

/// Random search over hidden width × learning rate, the §3.1 protocol.
/// Returns all evaluated candidates sorted best-first.
///
/// # Panics
///
/// Panics if `budget == 0` or the width range is empty/ inverted.
pub fn random_search(
    train: &Dataset,
    test: &Dataset,
    hidden_range: (usize, usize),
    budget: usize,
    epochs: usize,
    seed: u64,
) -> Vec<MlpCandidate> {
    assert!(budget > 0, "need a positive budget");
    assert!(
        hidden_range.0 >= 1 && hidden_range.0 <= hidden_range.1,
        "bad hidden range"
    );
    let mut rng = SplitMix64::new(seed);
    let mut results = Vec::with_capacity(budget);
    for _ in 0..budget {
        let hidden = hidden_range.0 + rng.next_index(hidden_range.1 - hidden_range.0 + 1);
        // Log-uniform learning rate in [0.05, 1.0] (Table 1: 0.1–1).
        let learning_rate = 0.05 * (20.0f64).powf(rng.next_unit());
        let mut mlp = Mlp::new(
            &[train.input_dim(), hidden, train.num_classes()],
            Activation::sigmoid(),
            rng.next_u64(),
        )
        // nc-lint: allow(R5, reason = "topology is sampled from bounded nonzero ranges")
        .expect("valid topology");
        Trainer::new(TrainConfig {
            epochs,
            learning_rate,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, train);
        results.push(MlpCandidate {
            hidden,
            learning_rate,
            accuracy: metrics::evaluate(&mlp, test).accuracy(),
        });
    }
    results.sort_by(|a, b| b.accuracy.total_cmp(&a.accuracy));
    results
}

/// One point of the weight-precision sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionPoint {
    /// Weight bit width.
    pub bits: u32,
    /// Quantized test accuracy.
    pub accuracy: f64,
}

/// The §4.2.3 precision study: quantize a trained network at each bit
/// width and measure the accuracy. The paper found 8 bits "on par" with
/// floating point; the sweep exposes where the knee actually is.
pub fn precision_sweep(mlp: &Mlp, test: &Dataset, bit_widths: &[u32]) -> Vec<PrecisionPoint> {
    bit_widths
        .iter()
        .map(|&bits| {
            let mut q = QuantizedMlp::from_mlp_with_bits(mlp, bits);
            PrecisionPoint {
                bits,
                accuracy: metrics::evaluate_quantized(&mut q, test).accuracy(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dataset::{digits::DigitsSpec, Difficulty};

    fn task() -> (Dataset, Dataset) {
        DigitsSpec {
            train: 250,
            test: 80,
            seed: 31,
            difficulty: Difficulty::default(),
        }
        .generate()
    }

    #[test]
    fn random_search_returns_sorted_candidates() {
        let (train, test) = task();
        let results = random_search(&train, &test, (4, 24), 4, 5, 9);
        assert_eq!(results.len(), 4);
        assert!(results.windows(2).all(|w| w[0].accuracy >= w[1].accuracy));
        assert!(results.iter().all(|c| (4..=24).contains(&c.hidden)));
        assert!(results
            .iter()
            .all(|c| c.learning_rate >= 0.05 && c.learning_rate <= 1.0));
    }

    #[test]
    fn search_is_deterministic() {
        let (train, test) = task();
        let a = random_search(&train, &test, (4, 16), 3, 4, 9);
        let b = random_search(&train, &test, (4, 16), 3, 4, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn precision_sweep_degrades_gracefully() {
        let (train, test) = task();
        let mut mlp = Mlp::new(&[784, 16, 10], Activation::sigmoid(), 4).unwrap();
        Trainer::new(TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &train);
        let pts = precision_sweep(&mlp, &test, &[2, 4, 6, 8]);
        assert_eq!(pts.len(), 4);
        // 8-bit should be at least as accurate as 2-bit (paper: 8 bits
        // is "on par" with float, very low precision is not).
        let acc8 = pts.iter().find(|p| p.bits == 8).unwrap().accuracy;
        let acc2 = pts.iter().find(|p| p.bits == 2).unwrap().accuracy;
        assert!(acc8 >= acc2, "8-bit {acc8} vs 2-bit {acc2}");
        // And 8-bit must be close to float.
        let float_acc = metrics::evaluate(&mlp, &test).accuracy();
        assert!(
            acc8 >= float_acc - 0.08,
            "8-bit {acc8} vs float {float_acc}"
        );
    }

    #[test]
    #[should_panic(expected = "positive budget")]
    fn zero_budget_rejected() {
        let (train, test) = task();
        let _ = random_search(&train, &test, (4, 8), 0, 1, 0);
    }
}
