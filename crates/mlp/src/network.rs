//! The Multi-Layer Perceptron (paper §2.1).
//!
//! "MLPs contain input layer, one or multiple hidden layers, and an
//! output layer; the input layer does not contain neurons … A neuron j in
//! layer l performs `y_j = f(s_j)` where `s_j = Σ_i w_ji · y_i`."
//!
//! Weights are stored per layer in row-major `[output][input + 1]` form;
//! the trailing column is the bias (driven by a constant 1 input).

use crate::activation::Activation;
use nc_substrate::rng::SplitMix64;

/// Errors constructing an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlpError {
    /// Fewer than two layer sizes were given (need at least input+output).
    TooFewLayers,
    /// A layer size was zero.
    ZeroWidthLayer {
        /// Index of the zero-width layer in the topology slice.
        index: usize,
    },
}

impl std::fmt::Display for MlpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlpError::TooFewLayers => {
                write!(f, "topology needs at least an input and an output layer")
            }
            MlpError::ZeroWidthLayer { index } => {
                write!(f, "layer {index} has zero width")
            }
        }
    }
}

impl std::error::Error for MlpError {}

/// A dense feed-forward network with one activation function shared by
/// every neuron (as in the paper's designs).
///
/// # Examples
///
/// ```
/// use nc_mlp::{Activation, Mlp};
///
/// // The paper's MNIST network: 28x28 inputs, 100 hidden, 10 outputs.
/// let mlp = Mlp::new(&[784, 100, 10], Activation::sigmoid(), 7).unwrap();
/// assert_eq!(mlp.num_weights(), 784 * 100 + 100 * 10); // paper: 79,400
/// let out = mlp.forward(&vec![0.0; 784]);
/// assert_eq!(out.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    sizes: Vec<usize>,
    activation: Activation,
    /// `layers[l][j * (sizes[l] + 1) + i]`: weight from input `i` of layer
    /// `l` to its neuron `j`; index `sizes[l]` is the bias.
    layers: Vec<Vec<f64>>,
}

impl Mlp {
    /// Creates a network with uniformly random weights in
    /// `[-1/(a·√fan_in), 1/(a·√fan_in)]`, the standard fan-in scaling
    /// divided by the activation slope `a` so that steep sigmoids (and
    /// the step function's surrogate) start in their active region
    /// rather than saturated — without this, the Figure 6 bridging
    /// experiment cannot train at `a ≥ 4`.
    ///
    /// # Errors
    ///
    /// Returns [`MlpError`] if fewer than two sizes are given or any size
    /// is zero.
    pub fn new(sizes: &[usize], activation: Activation, seed: u64) -> Result<Self, MlpError> {
        if sizes.len() < 2 {
            return Err(MlpError::TooFewLayers);
        }
        if let Some(index) = sizes.iter().position(|&s| s == 0) {
            return Err(MlpError::ZeroWidthLayer { index });
        }
        let slope = activation.slope().unwrap_or(16.0).max(1.0);
        let mut rng = SplitMix64::new(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let bound = 1.0 / (slope * (fan_in as f64).sqrt());
            let weights = (0..fan_out * (fan_in + 1))
                .map(|_| rng.next_range(-bound, bound))
                .collect();
            layers.push(weights);
        }
        Ok(Mlp {
            sizes: sizes.to_vec(),
            activation,
            layers,
        })
    }

    /// Layer widths, input first.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The shared activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Replaces the activation function (used by the sigmoid→step
    /// bridging experiment to evaluate a trained network under a steeper
    /// profile).
    pub fn set_activation(&mut self, activation: Activation) {
        self.activation = activation;
    }

    /// Total number of synaptic weights, excluding biases — the quantity
    /// the paper's synaptic-SRAM sizing uses (79,400 for 28x28-100-10).
    pub fn num_weights(&self) -> usize {
        self.sizes.windows(2).map(|w| w[0] * w[1]).sum()
    }

    /// Number of neurons (hidden + output; the input layer "does not
    /// contain neurons").
    pub fn num_neurons(&self) -> usize {
        self.sizes[1..].iter().sum()
    }

    /// Immutable access to a layer's weight matrix
    /// (row-major `[out][in + 1]`, bias last).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_weights(&self, layer: usize) -> &[f64] {
        &self.layers[layer]
    }

    /// Mutable access to a layer's weight matrix (used by the trainer and
    /// by quantization round-trips).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_weights_mut(&mut self, layer: usize) -> &mut [f64] {
        &mut self.layers[layer]
    }

    /// Runs the feed-forward path, returning the output-layer activations.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input layer width.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        // nc-lint: allow(R5, reason = "Mlp::new rejects empty topologies, so the trace is nonempty")
        self.forward_trace(input).pop().expect("at least one layer")
    }

    /// Runs the feed-forward path and returns every layer's activations
    /// (hidden layers first, output last) — the intermediate values BP
    /// needs (C-INTERMEDIATE).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input layer width.
    pub fn forward_trace(&self, input: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(
            input.len(),
            self.sizes[0],
            "input width {} does not match topology input {}",
            input.len(),
            self.sizes[0]
        );
        let mut activations: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
        let mut current: &[f64] = input;
        for (l, weights) in self.layers.iter().enumerate() {
            let fan_in = self.sizes[l];
            let fan_out = self.sizes[l + 1];
            let mut out = Vec::with_capacity(fan_out);
            for j in 0..fan_out {
                let row = &weights[j * (fan_in + 1)..(j + 1) * (fan_in + 1)];
                let mut s = row[fan_in]; // bias
                for i in 0..fan_in {
                    s += row[i] * current[i];
                }
                out.push(self.activation.eval(s));
            }
            activations.push(out);
            // nc-lint: allow(R5, reason = "the vector was pushed to on the previous line")
            current = activations.last().expect("just pushed");
        }
        activations
    }

    /// The output layer's pre-activation sums (membrane potentials in
    /// the SNN analogy), used for readout when the activation is binary.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input layer width.
    pub fn output_potentials(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.sizes[0], "input width mismatch");
        // Run all but the last layer normally.
        let penultimate: Vec<f64> = if self.layers.len() == 1 {
            input.to_vec()
        } else {
            let mut trace = self.forward_trace(input);
            trace.swap_remove(self.layers.len() - 2)
        };
        let l = self.layers.len() - 1;
        let fan_in = self.sizes[l];
        let weights = &self.layers[l];
        (0..self.sizes[l + 1])
            .map(|j| {
                let row = &weights[j * (fan_in + 1)..(j + 1) * (fan_in + 1)];
                let mut s = row[fan_in];
                for i in 0..fan_in {
                    s += row[i] * penultimate[i];
                }
                s
            })
            .collect()
    }

    /// Predicted class: index of the maximum output activation. For the
    /// binary [`Activation::Step`] the activations carry no ranking
    /// (several outputs can be exactly 1), so the readout falls back to
    /// the maximum output *potential* — the same max-potential readout
    /// the paper's SNNwot hardware uses (§4.2.2).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input layer width.
    pub fn predict(&self, input: &[f64]) -> usize {
        match self.activation {
            Activation::Step => argmax(&self.output_potentials(input)),
            _ => argmax(&self.forward(input)),
        }
    }
}

/// Index of the maximum element (first maximum on ties).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn argmax(values: &[f64]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_topologies() {
        assert_eq!(
            Mlp::new(&[4], Activation::sigmoid(), 0).unwrap_err(),
            MlpError::TooFewLayers
        );
        assert_eq!(
            Mlp::new(&[4, 0, 2], Activation::sigmoid(), 0).unwrap_err(),
            MlpError::ZeroWidthLayer { index: 1 }
        );
    }

    #[test]
    fn weight_count_matches_paper() {
        // §4.3.3: "784×100 + 100×10 = 79,400 weights for the MLP".
        let mlp = Mlp::new(&[784, 100, 10], Activation::sigmoid(), 1).unwrap();
        assert_eq!(mlp.num_weights(), 79_400);
        assert_eq!(mlp.num_neurons(), 110);
    }

    #[test]
    fn forward_output_is_in_sigmoid_range() {
        let mlp = Mlp::new(&[5, 4, 3], Activation::sigmoid(), 2).unwrap();
        let out = mlp.forward(&[0.1, 0.9, 0.5, 0.0, 1.0]);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|&y| (0.0..=1.0).contains(&y)));
    }

    #[test]
    fn forward_trace_exposes_hidden_layers() {
        let mlp = Mlp::new(&[3, 7, 2], Activation::sigmoid(), 3).unwrap();
        let trace = mlp.forward_trace(&[0.2, 0.4, 0.6]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].len(), 7);
        assert_eq!(trace[1].len(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match topology input")]
    fn forward_rejects_wrong_input_width() {
        let mlp = Mlp::new(&[3, 2], Activation::sigmoid(), 0).unwrap();
        let _ = mlp.forward(&[0.0; 4]);
    }

    #[test]
    fn deterministic_initialization() {
        let a = Mlp::new(&[4, 3, 2], Activation::sigmoid(), 9).unwrap();
        let b = Mlp::new(&[4, 3, 2], Activation::sigmoid(), 9).unwrap();
        assert_eq!(a, b);
        let c = Mlp::new(&[4, 3, 2], Activation::sigmoid(), 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn argmax_takes_first_maximum() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn zero_weight_network_is_constant() {
        let mut mlp = Mlp::new(&[2, 2, 2], Activation::sigmoid(), 0).unwrap();
        for l in 0..2 {
            for w in mlp.layer_weights_mut(l) {
                *w = 0.0;
            }
        }
        let a = mlp.forward(&[0.0, 0.0]);
        let b = mlp.forward(&[1.0, 1.0]);
        assert_eq!(a, b);
        assert!((a[0] - 0.5).abs() < 1e-12);
    }
}
