//! Property-based tests for the MLP and its quantized hardware path.

use nc_mlp::network::argmax;
use nc_mlp::{Activation, Mlp, QuantizedMlp};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..20, 2..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_outputs_are_sigmoid_bounded(
        sizes in arb_topology(),
        seed in any::<u64>(),
        fill in 0.0f64..1.0,
    ) {
        let mlp = Mlp::new(&sizes, Activation::sigmoid(), seed).unwrap();
        let input = vec![fill; sizes[0]];
        let out = mlp.forward(&input);
        prop_assert_eq!(out.len(), *sizes.last().unwrap());
        prop_assert!(out.iter().all(|&y| (0.0..=1.0).contains(&y)));
    }

    #[test]
    fn step_outputs_are_binary(sizes in arb_topology(), seed in any::<u64>()) {
        let mlp = Mlp::new(&sizes, Activation::Step, seed).unwrap();
        let input = vec![0.5; sizes[0]];
        let out = mlp.forward(&input);
        prop_assert!(out.iter().all(|&y| y == 0.0 || y == 1.0));
    }

    #[test]
    fn sigmoid_is_monotone_in_slope_at_positive_x(
        a in 0.1f64..32.0,
        x in 0.01f64..5.0,
    ) {
        let base = Activation::sigmoid().eval(x);
        let steep = Activation::sigmoid_slope(a).eval(x);
        if a >= 1.0 {
            prop_assert!(steep >= base - 1e-12);
        } else {
            prop_assert!(steep <= base + 1e-12);
        }
    }

    #[test]
    fn derivative_matches_finite_difference(a in 0.1f64..4.0, x in -4.0f64..4.0) {
        let f = Activation::sigmoid_slope(a);
        let y = f.eval(x);
        let h = 1e-6;
        let fd = (f.eval(x + h) - f.eval(x - h)) / (2.0 * h);
        prop_assert!((f.derivative_from_output(y) - fd).abs() < 1e-4);
    }

    #[test]
    fn quantized_weights_round_trip_within_half_step(
        sizes in arb_topology(),
        seed in any::<u64>(),
    ) {
        let mlp = Mlp::new(&sizes, Activation::sigmoid(), seed).unwrap();
        let q = QuantizedMlp::from_mlp(&mlp);
        for l in 0..sizes.len() - 1 {
            let scale = 2f64.powi(q.layer_scale_exp(l));
            for (qw, fw) in q.layer_weights(l).iter().zip(mlp.layer_weights(l)) {
                prop_assert!((f64::from(*qw) / scale - fw).abs() <= 0.5 / scale + 1e-12);
            }
        }
    }

    #[test]
    fn quantized_forward_tracks_float_forward(
        seed in any::<u64>(),
        pixels in proptest::collection::vec(any::<u8>(), 12),
    ) {
        let mlp = Mlp::new(&[12, 6, 4], Activation::sigmoid(), seed).unwrap();
        let q = QuantizedMlp::from_mlp(&mlp);
        let fin: Vec<f64> = pixels.iter().map(|&p| f64::from(p) / 255.0).collect();
        let f_out = mlp.forward(&fin);
        let q_out = q.forward_u8(&pixels);
        for (f, qv) in f_out.iter().zip(&q_out) {
            prop_assert!((f - f64::from(*qv) / 255.0).abs() < 0.08,
                "float {} vs quantized {}", f, qv);
        }
    }

    #[test]
    fn argmax_returns_a_maximal_index(xs in proptest::collection::vec(-1e9f64..1e9, 1..50)) {
        let i = argmax(&xs);
        prop_assert!(xs.iter().all(|&x| x <= xs[i]));
    }

    #[test]
    fn initialization_is_bounded_by_fan_in(sizes in arb_topology(), seed in any::<u64>()) {
        let mlp = Mlp::new(&sizes, Activation::sigmoid(), seed).unwrap();
        for (l, &fan_in) in sizes[..sizes.len() - 1].iter().enumerate() {
            let bound = 1.0 / (fan_in as f64).sqrt() + 1e-12;
            prop_assert!(mlp.layer_weights(l).iter().all(|w| w.abs() <= bound));
        }
    }
}
