//! Randomized invariant tests for the MLP and its quantized hardware path.
//!
//! Formerly proptest-based; converted to a deterministic std-only harness
//! (seeded [`SplitMix64`] case generation) so the workspace builds and
//! tests fully offline.

use nc_mlp::network::argmax;
use nc_mlp::{Activation, Mlp, QuantizedMlp};
use nc_substrate::rng::SplitMix64;

const CASES: u64 = 48;

fn random_topology(rng: &mut SplitMix64) -> Vec<usize> {
    let layers = 2 + rng.next_below(3) as usize;
    (0..layers)
        .map(|_| 1 + rng.next_below(19) as usize)
        .collect()
}

#[test]
fn forward_outputs_are_sigmoid_bounded() {
    let mut rng = SplitMix64::new(0x3101);
    for case in 0..CASES {
        let sizes = random_topology(&mut rng);
        let seed = rng.next_u64();
        let fill = rng.next_range(0.0, 1.0);
        let mlp = Mlp::new(&sizes, Activation::sigmoid(), seed).unwrap();
        let input = vec![fill; sizes[0]];
        let out = mlp.forward(&input);
        assert_eq!(out.len(), *sizes.last().unwrap(), "case {case}");
        assert!(
            out.iter().all(|&y| (0.0..=1.0).contains(&y)),
            "case {case}: {out:?}"
        );
    }
}

#[test]
fn step_outputs_are_binary() {
    let mut rng = SplitMix64::new(0x3102);
    for case in 0..CASES {
        let sizes = random_topology(&mut rng);
        let mlp = Mlp::new(&sizes, Activation::Step, rng.next_u64()).unwrap();
        let input = vec![0.5; sizes[0]];
        let out = mlp.forward(&input);
        assert!(
            out.iter().all(|&y| y == 0.0 || y == 1.0),
            "case {case}: {out:?}"
        );
    }
}

#[test]
fn sigmoid_is_monotone_in_slope_at_positive_x() {
    let mut rng = SplitMix64::new(0x3103);
    for case in 0..CASES {
        let a = rng.next_range(0.1, 32.0);
        let x = rng.next_range(0.01, 5.0);
        let base = Activation::sigmoid().eval(x);
        let steep = Activation::sigmoid_slope(a).eval(x);
        if a >= 1.0 {
            assert!(steep >= base - 1e-12, "case {case}: a {a} x {x}");
        } else {
            assert!(steep <= base + 1e-12, "case {case}: a {a} x {x}");
        }
    }
}

#[test]
fn derivative_matches_finite_difference() {
    let mut rng = SplitMix64::new(0x3104);
    for case in 0..CASES {
        let a = rng.next_range(0.1, 4.0);
        let x = rng.next_range(-4.0, 4.0);
        let f = Activation::sigmoid_slope(a);
        let y = f.eval(x);
        let h = 1e-6;
        let fd = (f.eval(x + h) - f.eval(x - h)) / (2.0 * h);
        assert!(
            (f.derivative_from_output(y) - fd).abs() < 1e-4,
            "case {case}: a {a} x {x}"
        );
    }
}

#[test]
fn quantized_weights_round_trip_within_half_step() {
    let mut rng = SplitMix64::new(0x3105);
    for case in 0..CASES {
        let sizes = random_topology(&mut rng);
        let mlp = Mlp::new(&sizes, Activation::sigmoid(), rng.next_u64()).unwrap();
        let q = QuantizedMlp::from_mlp(&mlp);
        for l in 0..sizes.len() - 1 {
            let scale = 2f64.powi(q.layer_scale_exp(l));
            for (qw, fw) in q.layer_weights(l).iter().zip(mlp.layer_weights(l)) {
                assert!(
                    (f64::from(*qw) / scale - fw).abs() <= 0.5 / scale + 1e-12,
                    "case {case}: layer {l}"
                );
            }
        }
    }
}

#[test]
fn quantized_forward_tracks_float_forward() {
    let mut rng = SplitMix64::new(0x3106);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let pixels: Vec<u8> = (0..12).map(|_| rng.next_u64() as u8).collect();
        let mlp = Mlp::new(&[12, 6, 4], Activation::sigmoid(), seed).unwrap();
        let mut q = QuantizedMlp::from_mlp(&mlp);
        let fin: Vec<f64> = pixels.iter().map(|&p| f64::from(p) / 255.0).collect();
        let f_out = mlp.forward(&fin);
        let q_out = q.forward_u8(&pixels);
        for (f, qv) in f_out.iter().zip(q_out) {
            assert!(
                (f - f64::from(*qv) / 255.0).abs() < 0.08,
                "case {case}: float {f} vs quantized {qv}"
            );
        }
    }
}

#[test]
fn argmax_returns_a_maximal_index() {
    let mut rng = SplitMix64::new(0x3107);
    for case in 0..CASES {
        let n = 1 + rng.next_below(49) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_range(-1e9, 1e9)).collect();
        let i = argmax(&xs);
        assert!(xs.iter().all(|&x| x <= xs[i]), "case {case}");
    }
}

#[test]
fn initialization_is_bounded_by_fan_in() {
    let mut rng = SplitMix64::new(0x3108);
    for case in 0..CASES {
        let sizes = random_topology(&mut rng);
        let mlp = Mlp::new(&sizes, Activation::sigmoid(), rng.next_u64()).unwrap();
        for (l, &fan_in) in sizes[..sizes.len() - 1].iter().enumerate() {
            let bound = 1.0 / (fan_in as f64).sqrt() + 1e-12;
            assert!(
                mlp.layer_weights(l).iter().all(|w| w.abs() <= bound),
                "case {case}: layer {l}"
            );
        }
    }
}
