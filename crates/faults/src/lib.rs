//! # nc-faults
//!
//! Deterministic hardware fault models over the quantized state the
//! paper's accelerators actually hold in silicon: 8-bit synaptic weights
//! in SRAM, LIF neuron circuits, and the LFSR-based spike-interval
//! generators (paper §4.2). The crate answers the question the paper's
//! Section-7 discussion gestures at but never measures — which family
//! degrades more gracefully when the *hardware itself* is faulty?
//!
//! Every fault model is seeded: a [`FaultPlan`] carries `(model, rate,
//! seed)` and two identical plans applied to identical state produce
//! bit-identical outcomes, on any thread count. The determinism contract
//! is the same as the experiment engine's: randomness is owned by the
//! plan, never drawn from the environment.
//!
//! Fault taxonomy (see DESIGN.md "Fault model"):
//!
//! * [`FaultModel::StuckAt0`] / [`FaultModel::StuckAt1`] — permanent
//!   manufacturing defects: each weight-memory *bit* is independently
//!   stuck at a rail with probability `rate`, applied once via
//!   [`stuck_bits_u8`] / [`stuck_bits_i8`].
//! * [`FaultModel::DeadNeuron`] — a neuron circuit stuck at reset: each
//!   unit is independently dead with probability `rate`
//!   ([`dead_unit_mask`]); a dead unit's output contribution is zero
//!   forever.
//! * [`FaultModel::TransientRead`] — soft errors on the SRAM read port:
//!   every weight *read* independently flips one uniformly-chosen bit
//!   with probability `rate` ([`TransientReads`]). The stored word is
//!   unharmed; only the value seen by the datapath is corrupted.
//! * [`FaultModel::StuckLfsrTap`] — a stuck feedback tap in the
//!   spike-interval generators (`Lfsr31::with_stuck_tap` in
//!   `nc-substrate`): with probability `rate` a per-pixel generator is
//!   built with its `x^3` tap stuck ([`stuck_tap_for`]).
//! * [`FaultModel::DeadLink`] / [`FaultModel::DeadRouter`] — broken
//!   mesh-fabric components on a many-core deployment: each directional
//!   inter-core link (or each core's router) is independently dead with
//!   probability `rate` ([`dead_link_mask`] / [`dead_router_mask`]).
//!   Spike packets that would traverse a dead component are dropped in
//!   flight; the neuron state they would have updated is untouched.
//!   These models act on the routing fabric only, so they are inert
//!   no-ops on single-core (dense) substrates.
//!
//! # Examples
//!
//! ```
//! use nc_faults::{FaultModel, FaultPlan, stuck_bits_u8};
//!
//! let plan = FaultPlan::new(FaultModel::StuckAt1, 0.05, 42).unwrap();
//! let mut weights = vec![0u8; 64];
//! let forced = stuck_bits_u8(&mut weights, &plan);
//! assert!(forced > 0); // some bits are now stuck high
//! let mut again = vec![0u8; 64];
//! stuck_bits_u8(&mut again, &plan);
//! assert_eq!(weights, again); // same plan => same defect pattern
//! ```

mod chaos;

pub use chaos::ChaosPlan;

use nc_substrate::SplitMix64;
use std::cell::RefCell;
use std::fmt;

/// The kinds of hardware fault the subsystem can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultModel {
    /// Permanent stuck-at-0 weight-memory bits.
    StuckAt0,
    /// Permanent stuck-at-1 weight-memory bits.
    StuckAt1,
    /// Neuron circuits stuck at reset (zero output contribution).
    DeadNeuron,
    /// Transient single-bit flips on each weight read.
    TransientRead,
    /// Stuck `x^3` feedback taps in the spike-interval LFSRs.
    StuckLfsrTap,
    /// Dead directional inter-core mesh links (packets dropped at the
    /// broken hop). Fabric-only: inert on single-core substrates.
    DeadLink,
    /// Dead mesh routers (a core's router drops every packet that is
    /// forwarded *through* it). Fabric-only: inert on single-core
    /// substrates.
    DeadRouter,
}

impl FaultModel {
    /// Every fault model, in sweep order.
    pub const ALL: [FaultModel; 7] = [
        FaultModel::StuckAt0,
        FaultModel::StuckAt1,
        FaultModel::DeadNeuron,
        FaultModel::TransientRead,
        FaultModel::StuckLfsrTap,
        FaultModel::DeadLink,
        FaultModel::DeadRouter,
    ];

    /// Stable machine-readable name (CSV column value).
    pub fn name(self) -> &'static str {
        match self {
            FaultModel::StuckAt0 => "stuck_at_0",
            FaultModel::StuckAt1 => "stuck_at_1",
            FaultModel::DeadNeuron => "dead_neuron",
            FaultModel::TransientRead => "transient_read",
            FaultModel::StuckLfsrTap => "stuck_lfsr_tap",
            FaultModel::DeadLink => "dead_link",
            FaultModel::DeadRouter => "dead_router",
        }
    }

    /// `true` for the routing-fabric models ([`FaultModel::DeadLink`],
    /// [`FaultModel::DeadRouter`]) that only have an effect on meshed
    /// substrates and are inert everywhere else.
    pub fn is_fabric(self) -> bool {
        matches!(self, FaultModel::DeadLink | FaultModel::DeadRouter)
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors from constructing or applying a fault plan.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// The fault rate was outside `[0, 1]` or not finite.
    BadRate(f64),
    /// A chaos plan's burst window does not fit its period.
    BadBurst {
        /// The configured burst period in virtual ticks.
        period: u64,
        /// The configured burst width in virtual ticks.
        width: u64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::BadRate(rate) => {
                write!(f, "fault rate {rate} must be a finite value in [0, 1]")
            }
            FaultError::BadBurst { period, width } => {
                write!(
                    f,
                    "burst width {width} must be in 1..={period} (the burst period)"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// One fully-specified fault injection: what kind of fault, how often,
/// and the seed that makes the defect pattern reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Which physical fault to model.
    pub model: FaultModel,
    /// Per-site fault probability in `[0, 1]` (per bit, per neuron, per
    /// read, or per generator depending on `model`).
    pub rate: f64,
    /// Seed for the defect pattern; two plans with equal fields inject
    /// bit-identical faults.
    pub seed: u64,
}

impl FaultPlan {
    /// Builds a validated plan. Returns [`FaultError::BadRate`] unless
    /// `rate` is finite and in `[0, 1]`.
    pub fn new(model: FaultModel, rate: f64, seed: u64) -> Result<Self, FaultError> {
        let plan = FaultPlan { model, rate, seed };
        plan.validate()?;
        Ok(plan)
    }

    /// Re-checks the rate invariant (useful when the struct was built
    /// literally rather than through [`FaultPlan::new`]).
    pub fn validate(&self) -> Result<(), FaultError> {
        if self.rate.is_finite() && (0.0..=1.0).contains(&self.rate) {
            Ok(())
        } else {
            Err(FaultError::BadRate(self.rate))
        }
    }

    /// Derives a decorrelated [`SplitMix64`] stream for one injection
    /// site. Different `salt`s (e.g. layer indices) give independent
    /// defect patterns from the same plan seed.
    pub fn stream(&self, salt: u64) -> SplitMix64 {
        let mut sm = SplitMix64::new(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Burn one word so plans whose seed equals the mixed salt of
        // another plan still diverge immediately.
        let first = sm.next_u64();
        SplitMix64::new(first)
    }

    /// Returns the same plan re-seeded for one injection site (e.g. one
    /// layer of a multi-layer network), so repeated helper calls on
    /// different sites draw independent defect patterns.
    #[must_use]
    pub fn for_site(&self, salt: u64) -> FaultPlan {
        let mut sm = self.stream(salt.wrapping_add(0x5EED));
        FaultPlan {
            model: self.model,
            rate: self.rate,
            seed: sm.next_u64(),
        }
    }
}

fn bernoulli(rng: &mut SplitMix64, rate: f64) -> bool {
    rng.next_unit() < rate
}

/// Applies permanent stuck-at faults to a slice of 8-bit weight words:
/// each bit is independently stuck with probability `plan.rate`, at the
/// rail chosen by `plan.model` (`StuckAt0` clears, `StuckAt1` sets;
/// other models are a no-op). Returns the number of bits forced.
pub fn stuck_bits_u8(words: &mut [u8], plan: &FaultPlan) -> usize {
    let level_high = match plan.model {
        FaultModel::StuckAt0 => false,
        FaultModel::StuckAt1 => true,
        _ => return 0,
    };
    let mut rng = plan.stream(0);
    let mut forced = 0;
    for word in words.iter_mut() {
        for bit in 0..8u8 {
            if bernoulli(&mut rng, plan.rate) {
                let mask = 1u8 << bit;
                if level_high {
                    *word |= mask;
                } else {
                    *word &= !mask;
                }
                forced += 1;
            }
        }
    }
    forced
}

/// [`stuck_bits_u8`] over signed 8-bit weights (the quantized MLP's
/// two's-complement registers): the bit pattern is reinterpreted, stuck,
/// and reinterpreted back, exactly as the SRAM cell would behave.
pub fn stuck_bits_i8(words: &mut [i8], plan: &FaultPlan) -> usize {
    let mut raw: Vec<u8> = words.iter().map(|w| w.to_ne_bytes()[0]).collect();
    let forced = stuck_bits_u8(&mut raw, plan);
    for (word, byte) in words.iter_mut().zip(raw) {
        *word = i8::from_ne_bytes([byte]);
    }
    forced
}

/// Selects dead units: entry `i` is `true` when unit `i`'s circuit is
/// stuck at reset. Each of the `n` units dies independently with
/// probability `plan.rate` (no-op mask for non-`DeadNeuron` models).
pub fn dead_unit_mask(n: usize, plan: &FaultPlan) -> Vec<bool> {
    if plan.model != FaultModel::DeadNeuron {
        return vec![false; n];
    }
    let mut rng = plan.stream(1);
    (0..n).map(|_| bernoulli(&mut rng, plan.rate)).collect()
}

/// Selects dead directional mesh links: entry `l` is `true` when link
/// `l` drops every packet. Each of the `n` links dies independently with
/// probability `plan.rate` (no-op mask for non-`DeadLink` models). Link
/// numbering is owned by the mesh substrate (`nc-hw`); the mask only
/// fixes *which* indices die for a given plan.
pub fn dead_link_mask(n: usize, plan: &FaultPlan) -> Vec<bool> {
    if plan.model != FaultModel::DeadLink {
        return vec![false; n];
    }
    let mut rng = plan.stream(4);
    (0..n).map(|_| bernoulli(&mut rng, plan.rate)).collect()
}

/// Selects dead mesh routers: entry `r` is `true` when core `r`'s router
/// drops every packet forwarded through it. Each of the `n` routers dies
/// independently with probability `plan.rate` (no-op mask for
/// non-`DeadRouter` models).
pub fn dead_router_mask(n: usize, plan: &FaultPlan) -> Vec<bool> {
    if plan.model != FaultModel::DeadRouter {
        return vec![false; n];
    }
    let mut rng = plan.stream(5);
    (0..n).map(|_| bernoulli(&mut rng, plan.rate)).collect()
}

/// Decides, for the `pixel`-th spike-interval generator, whether its
/// LFSR tap is stuck and at which level. Returns `Some(stuck_high)` with
/// probability `plan.rate` (level chosen by a second coin), `None` for a
/// healthy generator or a non-`StuckLfsrTap` model. Deterministic per
/// `(plan, pixel)` — the same generator is faulty on every presentation,
/// as a manufacturing defect would be.
pub fn stuck_tap_for(plan: &FaultPlan, pixel: u64) -> Option<bool> {
    if plan.model != FaultModel::StuckLfsrTap {
        return None;
    }
    let mut rng = plan.stream(2u64.wrapping_add(pixel.wrapping_mul(2)));
    if bernoulli(&mut rng, plan.rate) {
        Some(rng.next_u64() & 1 == 1)
    } else {
        None
    }
}

/// Transient SRAM read-port faults: every `read_*` call independently
/// flips one uniformly-chosen bit of the value with probability `rate`.
///
/// The state lives behind a `RefCell` so read paths that take `&self`
/// (the hardware-faithful inference paths) can draw from the fault
/// stream; a model carrying one is still `Send` and each model instance
/// owns its stream, so engine determinism is preserved.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientReads {
    rate: f64,
    rng: RefCell<SplitMix64>,
}

impl TransientReads {
    /// Builds an active fault stream from a plan (rate 0 — and any
    /// non-`TransientRead` model — yields the disabled stream).
    pub fn from_plan(plan: &FaultPlan) -> Self {
        if plan.model != FaultModel::TransientRead {
            return TransientReads::disabled();
        }
        TransientReads {
            rate: plan.rate,
            rng: RefCell::new(plan.stream(3)),
        }
    }

    /// A permanently healthy read port (the default for every model).
    pub fn disabled() -> Self {
        /// The stream behind a disabled port is never drawn from (rate
        /// is 0.0), so its seed only has to be a fixed, named value.
        const DISABLED_PORT_SEED: u64 = 0;
        TransientReads {
            rate: 0.0,
            rng: RefCell::new(SplitMix64::new(DISABLED_PORT_SEED)),
        }
    }

    /// `true` when reads can fault (nonzero rate).
    pub fn is_active(&self) -> bool {
        self.rate > 0.0
    }

    /// Reads an unsigned 8-bit word through the faulty port.
    pub fn read_u8(&self, word: u8) -> u8 {
        if !self.is_active() {
            return word;
        }
        let mut rng = self.rng.borrow_mut();
        if bernoulli(&mut rng, self.rate) {
            word ^ (1u8 << rng.next_below(8))
        } else {
            word
        }
    }

    /// Reads a signed 8-bit word through the faulty port.
    pub fn read_i8(&self, word: i8) -> i8 {
        i8::from_ne_bytes([self.read_u8(word.to_ne_bytes()[0])])
    }
}

impl Default for TransientReads {
    fn default() -> Self {
        TransientReads::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(model: FaultModel, rate: f64, seed: u64) -> FaultPlan {
        #[allow(clippy::unwrap_used)]
        FaultPlan::new(model, rate, seed).unwrap()
    }

    #[test]
    fn plan_rejects_bad_rates() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = FaultPlan::new(FaultModel::StuckAt0, bad, 0);
            assert!(
                matches!(err, Err(FaultError::BadRate(_))),
                "rate {bad} must be rejected, got {err:?}"
            );
        }
        assert!(FaultPlan::new(FaultModel::StuckAt0, 0.0, 0).is_ok());
        assert!(FaultPlan::new(FaultModel::StuckAt0, 1.0, 0).is_ok());
        let display = FaultError::BadRate(2.0).to_string();
        assert!(display.contains("2"), "{display}");
    }

    #[test]
    fn stuck_bits_are_deterministic_and_rate_scaled() {
        let p = plan(FaultModel::StuckAt1, 0.1, 7);
        let mut a = vec![0u8; 1000];
        let mut b = vec![0u8; 1000];
        let fa = stuck_bits_u8(&mut a, &p);
        let fb = stuck_bits_u8(&mut b, &p);
        assert_eq!(a, b);
        assert_eq!(fa, fb);
        // 8000 bits at 10%: expect ~800 forced.
        assert!((600..=1000).contains(&fa), "forced = {fa}");
        // And all forced bits really are high.
        let ones: u32 = a.iter().map(|w| w.count_ones()).sum();
        assert_eq!(ones as usize, fa);
    }

    #[test]
    fn stuck_at_zero_clears_bits() {
        let p = plan(FaultModel::StuckAt0, 1.0, 3);
        let mut words = vec![0xFFu8; 16];
        let forced = stuck_bits_u8(&mut words, &p);
        assert_eq!(forced, 128);
        assert!(words.iter().all(|&w| w == 0));
    }

    #[test]
    fn stuck_bits_i8_round_trips_the_bit_pattern() {
        let p = plan(FaultModel::StuckAt1, 1.0, 9);
        let mut words = vec![0i8; 8];
        stuck_bits_i8(&mut words, &p);
        assert!(words.iter().all(|&w| w == -1), "{words:?}"); // all bits set
        let p0 = plan(FaultModel::StuckAt0, 1.0, 9);
        stuck_bits_i8(&mut words, &p0);
        assert!(words.iter().all(|&w| w == 0));
    }

    #[test]
    fn non_stuck_models_do_not_touch_weights() {
        let p = plan(FaultModel::DeadNeuron, 1.0, 1);
        let mut words = vec![0xA5u8; 32];
        assert_eq!(stuck_bits_u8(&mut words, &p), 0);
        assert!(words.iter().all(|&w| w == 0xA5));
    }

    #[test]
    fn dead_mask_is_deterministic_and_scaled() {
        let p = plan(FaultModel::DeadNeuron, 0.3, 11);
        let a = dead_unit_mask(10_000, &p);
        let b = dead_unit_mask(10_000, &p);
        assert_eq!(a, b);
        let dead = a.iter().filter(|&&d| d).count();
        assert!((2500..=3500).contains(&dead), "dead = {dead}");
        // Other models never kill units.
        let t = plan(FaultModel::TransientRead, 1.0, 11);
        assert!(dead_unit_mask(100, &t).iter().all(|&d| !d));
    }

    #[test]
    fn transient_reads_flip_single_bits_at_rate() {
        let p = plan(FaultModel::TransientRead, 0.25, 5);
        let port = TransientReads::from_plan(&p);
        assert!(port.is_active());
        let mut faulted = 0;
        for _ in 0..10_000 {
            let seen = port.read_u8(0b1010_1010);
            let diff = (seen ^ 0b1010_1010).count_ones();
            assert!(diff <= 1, "at most one bit flips per read");
            faulted += diff as usize;
        }
        assert!((2000..=3000).contains(&faulted), "faulted = {faulted}");
    }

    #[test]
    fn transient_reads_are_deterministic_per_stream() {
        let p = plan(FaultModel::TransientRead, 0.5, 13);
        let a = TransientReads::from_plan(&p);
        let b = TransientReads::from_plan(&p);
        for i in 0..1000u16 {
            let w = (i % 251).to_ne_bytes()[0];
            assert_eq!(a.read_u8(w), b.read_u8(w));
        }
    }

    #[test]
    fn disabled_port_is_transparent() {
        let port = TransientReads::default();
        assert!(!port.is_active());
        for w in 0..=255u8 {
            assert_eq!(port.read_u8(w), w);
        }
        assert_eq!(port.read_i8(-77), -77);
        // Non-transient plans also disable the port.
        let p = plan(FaultModel::StuckAt1, 1.0, 2);
        assert!(!TransientReads::from_plan(&p).is_active());
    }

    #[test]
    fn stuck_taps_are_per_pixel_deterministic() {
        let p = plan(FaultModel::StuckLfsrTap, 0.4, 21);
        let picks: Vec<Option<bool>> = (0..1000).map(|px| stuck_tap_for(&p, px)).collect();
        let again: Vec<Option<bool>> = (0..1000).map(|px| stuck_tap_for(&p, px)).collect();
        assert_eq!(picks, again);
        let stuck = picks.iter().filter(|t| t.is_some()).count();
        assert!((300..=500).contains(&stuck), "stuck = {stuck}");
        // Both levels occur.
        assert!(picks.contains(&Some(true)) && picks.contains(&Some(false)));
        // Other models never stick taps.
        let d = plan(FaultModel::DeadNeuron, 1.0, 21);
        assert_eq!(stuck_tap_for(&d, 0), None);
    }

    #[test]
    fn zero_rate_plans_are_no_ops_everywhere() {
        for model in FaultModel::ALL {
            let p = plan(model, 0.0, 99);
            let mut words = vec![0x5Au8; 64];
            assert_eq!(stuck_bits_u8(&mut words, &p), 0);
            assert!(dead_unit_mask(64, &p).iter().all(|&d| !d));
            assert!(dead_link_mask(64, &p).iter().all(|&d| !d));
            assert!(dead_router_mask(64, &p).iter().all(|&d| !d));
            assert_eq!(stuck_tap_for(&p, 0), None);
            assert!(!TransientReads::from_plan(&p).is_active());
        }
    }

    #[test]
    fn fabric_masks_are_deterministic_model_gated_and_decorrelated() {
        let links = plan(FaultModel::DeadLink, 0.3, 17);
        let a = dead_link_mask(10_000, &links);
        assert_eq!(a, dead_link_mask(10_000, &links));
        let dead = a.iter().filter(|&&d| d).count();
        assert!((2500..=3500).contains(&dead), "dead links = {dead}");
        // A DeadLink plan never kills routers (and vice versa), and
        // neither kills neurons.
        assert!(dead_router_mask(100, &links).iter().all(|&d| !d));
        assert!(dead_unit_mask(100, &links).iter().all(|&d| !d));
        let routers = plan(FaultModel::DeadRouter, 0.3, 17);
        let r = dead_router_mask(10_000, &routers);
        let dead_r = r.iter().filter(|&&d| d).count();
        assert!((2500..=3500).contains(&dead_r), "dead routers = {dead_r}");
        assert!(dead_link_mask(100, &routers).iter().all(|&d| !d));
        // Same seed, different salt: link and router defect patterns
        // must not be copies of each other.
        let same_seed_links = plan(FaultModel::DeadLink, 0.3, 17);
        assert_ne!(dead_link_mask(10_000, &same_seed_links), r);
        // Fabric classification is exactly the two mesh models.
        for model in FaultModel::ALL {
            let expect = matches!(model, FaultModel::DeadLink | FaultModel::DeadRouter);
            assert_eq!(model.is_fabric(), expect, "{model}");
        }
    }

    #[test]
    fn model_names_are_stable() {
        let names: Vec<&str> = FaultModel::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            [
                "stuck_at_0",
                "stuck_at_1",
                "dead_neuron",
                "transient_read",
                "stuck_lfsr_tap",
                "dead_link",
                "dead_router"
            ]
        );
        assert_eq!(FaultModel::StuckAt0.to_string(), "stuck_at_0");
    }

    #[test]
    fn streams_with_different_salts_decorrelate() {
        let p = plan(FaultModel::StuckAt0, 0.5, 1234);
        let mut a = p.stream(0);
        let mut b = p.stream(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn per_site_plans_give_independent_patterns() {
        let p = plan(FaultModel::StuckAt1, 0.5, 77);
        let (s0, s1) = (p.for_site(0), p.for_site(1));
        assert_eq!(s0, p.for_site(0)); // deterministic
        assert_ne!(s0.seed, s1.seed);
        assert_eq!(s0.model, p.model);
        assert_eq!(s0.rate, p.rate);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        stuck_bits_u8(&mut a, &s0);
        stuck_bits_u8(&mut b, &s1);
        assert_ne!(a, b);
    }
}
