//! Deterministic chaos schedules for the serving layer.
//!
//! A [`ChaosPlan`] is to *operational* failures what [`FaultPlan`] is to
//! silicon defects: a seeded, fully-specified schedule of bad luck. It
//! decides — as a pure function of `(plan, item, tick, attempt)` —
//! whether a replica panics mid-batch, how many **virtual ticks** a
//! batch is delayed (never wall-clock; lint rules R3/R7 apply to the
//! consumer as much as here), whether a response is poisoned, and when
//! transient-fault bursts wash over the fleet via the existing
//! [`FaultPlan`] shims.
//!
//! Determinism contract, mirrored from the engine's:
//!
//! * Panic and poison decisions are keyed by **item**, not by batch
//!   composition or arrival order, so a shuffled admission sequence
//!   injures exactly the same requests.
//! * Delay decisions are keyed by **batch sequence number** — batch
//!   identity is itself a pure function of the admission sequence, so
//!   replays at any thread count see identical delays.
//! * Burst windows are keyed by the **virtual tick**, so the same ticks
//!   are stormy on every run.
//!
//! Nothing here reads a clock or an entropy source; every decision
//! draws from a decorrelated [`SplitMix64`] stream in the same per-site
//! idiom as [`FaultPlan::stream`].

use crate::{FaultError, FaultPlan};
use nc_substrate::SplitMix64;

/// Stream channels: distinct salts so the panic, delay, and poison
/// coins are mutually independent even for equal items/batches.
const CH_PANIC: u64 = 0xC4A0_51DE_0000_0001;
const CH_DELAY: u64 = 0xC4A0_51DE_0000_0002;
const CH_POISON: u64 = 0xC4A0_51DE_0000_0003;

/// A seeded schedule of operational failures for the serving layer.
///
/// All rates are per-site probabilities in `[0, 1]`; a rate of `0.0`
/// disables that failure mode, and [`ChaosPlan::quiet`] disables all of
/// them. Two equal plans schedule bit-identical chaos.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed for every chaos decision stream.
    pub seed: u64,
    /// Probability that a given *item* is panic-targeted: batches
    /// containing it panic on their early attempts (see
    /// [`ChaosPlan::should_panic`]).
    pub panic_rate: f64,
    /// How many supervised attempts a panic-targeted item sabotages
    /// before the replica "recovers". `u32::MAX` means the item panics
    /// every attempt (until [`ChaosPlan::panic_until_tick`]).
    pub panic_attempts: u32,
    /// Virtual tick at which panic chaos heals: ticks `>= panic_until_tick`
    /// never panic. `u64::MAX` means the storm never ends.
    pub panic_until_tick: u64,
    /// Probability that a sealed batch is a slow batch.
    pub delay_rate: f64,
    /// A slow batch completes `1..=max_delay_ticks` virtual ticks after
    /// it is drained (uniformly drawn); `0` disables delays outright.
    pub max_delay_ticks: u64,
    /// Probability that a given item's response is poisoned — replaced
    /// by a deterministic *wrong* class (see
    /// [`ChaosPlan::poisoned_prediction`]).
    pub poison_rate: f64,
    /// Period, in virtual ticks, of transient-fault bursts; `0`
    /// disables bursts.
    pub burst_period: u64,
    /// How many ticks at the start of each period are stormy; must be
    /// in `1..=burst_period` when bursts are enabled.
    pub burst_width: u64,
    /// The fault plan applied to burst replicas during stormy ticks
    /// (re-seeded per burst window via [`FaultPlan::for_site`]).
    pub burst_faults: Option<FaultPlan>,
}

impl ChaosPlan {
    /// A plan that schedules no chaos at all (all rates zero, bursts
    /// off). Useful as a baseline and for config plumbing tests.
    pub fn quiet(seed: u64) -> Self {
        ChaosPlan {
            seed,
            panic_rate: 0.0,
            panic_attempts: 0,
            panic_until_tick: u64::MAX,
            delay_rate: 0.0,
            max_delay_ticks: 0,
            poison_rate: 0.0,
            burst_period: 0,
            burst_width: 0,
            burst_faults: None,
        }
    }

    /// Re-checks every rate and the burst-window geometry. Plans are
    /// plain structs, so call this at the admission boundary (the
    /// server does, at construction).
    pub fn validate(&self) -> Result<(), FaultError> {
        for rate in [self.panic_rate, self.delay_rate, self.poison_rate] {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(FaultError::BadRate(rate));
            }
        }
        if self.burst_period > 0 && !(1..=self.burst_period).contains(&self.burst_width) {
            return Err(FaultError::BadBurst {
                period: self.burst_period,
                width: self.burst_width,
            });
        }
        if let Some(faults) = &self.burst_faults {
            faults.validate()?;
        }
        Ok(())
    }

    /// Derives a decorrelated [`SplitMix64`] stream for one decision
    /// site — the same mixing idiom as [`FaultPlan::stream`].
    pub fn stream(&self, salt: u64) -> SplitMix64 {
        let mut sm = SplitMix64::new(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let first = sm.next_u64();
        SplitMix64::new(first)
    }

    /// Whether `item` is panic-targeted under this plan. Keyed by item
    /// alone, so shuffled arrival orders target the same requests.
    pub fn panics_item(&self, item: u64) -> bool {
        if self.panic_rate <= 0.0 {
            return false;
        }
        self.stream(CH_PANIC ^ item).next_unit() < self.panic_rate
    }

    /// Whether a batch containing `item`, drained at virtual `tick` on
    /// supervised `attempt` (0-based, counted across serve-level retry
    /// rounds), panics. Pure in all three arguments.
    pub fn should_panic(&self, item: u64, tick: u64, attempt: u32) -> bool {
        tick < self.panic_until_tick && attempt < self.panic_attempts && self.panics_item(item)
    }

    /// Whether `item`'s response is poisoned under this plan.
    pub fn poisons_item(&self, item: u64) -> bool {
        if self.poison_rate <= 0.0 {
            return false;
        }
        self.stream(CH_POISON ^ item).next_unit() < self.poison_rate
    }

    /// The deterministic wrong answer for a poisoned response: a class
    /// in `0..classes` that is guaranteed to differ from `honest`
    /// (degenerate single-class models are returned unharmed — there is
    /// no wrong answer to give).
    #[allow(clippy::cast_possible_truncation)]
    pub fn poisoned_prediction(&self, item: u64, honest: usize, classes: usize) -> usize {
        if classes <= 1 {
            return honest;
        }
        let span = (classes - 1) as u64;
        let offset = self.stream(CH_POISON ^ item).next_below(span);
        // nc-lint: allow(R2, reason = "offset < classes - 1 <= usize::MAX, lossless narrowing")
        let offset = 1 + offset as usize;
        (honest + offset) % classes
    }

    /// How many virtual ticks the batch with sequence number `batch`
    /// completes late: `0` for a healthy batch, `1..=max_delay_ticks`
    /// for a slow one.
    pub fn delay_ticks(&self, batch: u64) -> u64 {
        if self.delay_rate <= 0.0 || self.max_delay_ticks == 0 {
            return 0;
        }
        let mut rng = self.stream(CH_DELAY ^ batch);
        if rng.next_unit() < self.delay_rate {
            1 + rng.next_below(self.max_delay_ticks)
        } else {
            0
        }
    }

    /// The fault plan in force at virtual `tick`, if the tick falls in
    /// a burst window: the configured [`ChaosPlan::burst_faults`]
    /// re-seeded per window, so consecutive storms corrupt differently
    /// but every replay of the same storm corrupts identically.
    pub fn burst_plan(&self, tick: u64) -> Option<FaultPlan> {
        let base = self.burst_faults?;
        if self.burst_period == 0 || tick % self.burst_period >= self.burst_width {
            return None;
        }
        Some(base.for_site(tick / self.burst_period))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultModel;

    fn noisy() -> ChaosPlan {
        ChaosPlan {
            panic_rate: 0.4,
            panic_attempts: 1,
            delay_rate: 0.5,
            max_delay_ticks: 3,
            poison_rate: 0.3,
            burst_period: 8,
            burst_width: 2,
            burst_faults: Some(FaultPlan {
                model: FaultModel::TransientRead,
                rate: 0.05,
                seed: 11,
            }),
            ..ChaosPlan::quiet(42)
        }
    }

    #[test]
    fn quiet_plan_schedules_nothing() {
        let plan = ChaosPlan::quiet(7);
        assert!(plan.validate().is_ok());
        for item in 0..256 {
            assert!(!plan.panics_item(item));
            assert!(!plan.should_panic(item, 0, 0));
            assert!(!plan.poisons_item(item));
            assert_eq!(plan.delay_ticks(item), 0);
            assert_eq!(plan.burst_plan(item), None);
        }
    }

    #[test]
    fn validate_rejects_bad_rates_and_burst_geometry() {
        for bad in [-0.1, 1.5, f64::NAN] {
            for field in 0..3 {
                let mut plan = ChaosPlan::quiet(0);
                match field {
                    0 => plan.panic_rate = bad,
                    1 => plan.delay_rate = bad,
                    _ => plan.poison_rate = bad,
                }
                assert!(
                    matches!(plan.validate(), Err(FaultError::BadRate(_))),
                    "field {field} rate {bad} must be rejected"
                );
            }
        }
        let mut plan = ChaosPlan::quiet(0);
        plan.burst_period = 4;
        plan.burst_width = 0;
        assert!(matches!(
            plan.validate(),
            Err(FaultError::BadBurst {
                period: 4,
                width: 0
            })
        ));
        plan.burst_width = 5;
        assert!(plan.validate().is_err());
        plan.burst_width = 4;
        assert!(plan.validate().is_ok());
        // A burst fault plan's own rate invariant is re-checked too.
        plan.burst_faults = Some(FaultPlan {
            model: FaultModel::TransientRead,
            rate: 2.0,
            seed: 0,
        });
        assert!(matches!(plan.validate(), Err(FaultError::BadRate(_))));
    }

    #[test]
    fn panic_targets_are_item_keyed_and_rate_scaled() {
        let plan = noisy();
        let targeted: Vec<u64> = (0..10_000).filter(|&i| plan.panics_item(i)).collect();
        let again: Vec<u64> = (0..10_000).filter(|&i| plan.panics_item(i)).collect();
        assert_eq!(targeted, again);
        // 10k items at 40%: expect ~4000 targeted.
        assert!(
            (3500..=4500).contains(&targeted.len()),
            "targeted = {}",
            targeted.len()
        );
    }

    #[test]
    fn should_panic_respects_attempts_and_healing_tick() {
        let mut plan = noisy();
        plan.panic_rate = 1.0;
        plan.panic_attempts = 2;
        plan.panic_until_tick = 10;
        assert!(plan.should_panic(3, 0, 0));
        assert!(plan.should_panic(3, 9, 1));
        assert!(!plan.should_panic(3, 0, 2), "attempts exhausted");
        assert!(!plan.should_panic(3, 10, 0), "storm healed");
        assert!(!plan.should_panic(3, u64::MAX, 0));
    }

    #[test]
    fn poison_picks_a_wrong_class_deterministically() {
        let plan = noisy();
        let poisoned: Vec<u64> = (0..10_000).filter(|&i| plan.poisons_item(i)).collect();
        assert!(
            (2500..=3500).contains(&poisoned.len()),
            "poisoned = {}",
            poisoned.len()
        );
        for &item in poisoned.iter().take(64) {
            for honest in 0..10 {
                let lie = plan.poisoned_prediction(item, honest, 10);
                assert!(lie < 10);
                assert_ne!(lie, honest, "poison must change the answer");
                assert_eq!(lie, plan.poisoned_prediction(item, honest, 10));
            }
            // Single-class models have no wrong answer to give.
            assert_eq!(plan.poisoned_prediction(item, 0, 1), 0);
        }
    }

    #[test]
    fn delays_are_batch_keyed_bounded_and_rate_scaled() {
        let plan = noisy();
        let delays: Vec<u64> = (0..10_000).map(|b| plan.delay_ticks(b)).collect();
        assert_eq!(
            delays,
            (0..10_000).map(|b| plan.delay_ticks(b)).collect::<Vec<_>>()
        );
        assert!(delays.iter().all(|&d| d <= plan.max_delay_ticks));
        let slow = delays.iter().filter(|&&d| d > 0).count();
        // 10k batches at 50%: expect ~5000 slow.
        assert!((4500..=5500).contains(&slow), "slow = {slow}");
        // Every delay magnitude in 1..=3 occurs.
        for d in 1..=3 {
            assert!(delays.contains(&d), "no delay of {d} ticks in 10k draws");
        }
    }

    #[test]
    fn burst_windows_follow_the_period_and_reseed_per_window() {
        let plan = noisy();
        // Period 8, width 2: ticks 0,1 stormy, 2..=7 calm, 8,9 stormy...
        for tick in 0..32 {
            let stormy = tick % 8 < 2;
            assert_eq!(plan.burst_plan(tick).is_some(), stormy, "tick {tick}");
        }
        let w0 = plan.burst_plan(0);
        assert_eq!(w0, plan.burst_plan(1), "same window, same plan");
        assert_eq!(w0, plan.burst_plan(0), "replays identically");
        assert_ne!(w0, plan.burst_plan(8), "next window reseeds");
        // Burst plans keep the model and rate; only the seed moves.
        let p8 = plan.burst_plan(8).map(|p| (p.model, p.rate));
        assert_eq!(p8, Some((FaultModel::TransientRead, 0.05)));
    }

    #[test]
    fn chaos_streams_decorrelate_across_channels() {
        let plan = noisy();
        let mut a = plan.stream(CH_PANIC ^ 5);
        let mut b = plan.stream(CH_POISON ^ 5);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "panic and poison coins must be independent");
    }
}
