//! Immutable trained-model snapshots with a deterministic replica pool.

use crate::ServeError;
use nc_core::{FaultPlan, ModelSpec};
use nc_dataset::{Dataset, FitBudget, Model};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// See `MemoryRecorder` in nc-obs for the rationale: a poisoned pool
/// mutex still holds consistent data (each critical section is a single
/// push/pop), and serving must not die because one replica panicked.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a snapshot materializes replicas.
enum Source {
    /// Build the spec, fit it on the pinned training set, then inject
    /// the optional fault plan — all deterministic, so every replica is
    /// bit-identical to the first.
    Trained {
        spec: ModelSpec,
        budget: FitBudget,
        train: Arc<Dataset>,
        faults: Option<FaultPlan>,
    },
    /// An arbitrary factory — the test seam for poison models and other
    /// synthetic behaviors (the factory must itself be deterministic to
    /// keep the serving contract).
    Factory(Box<dyn Fn() -> Box<dyn Model> + Send + Sync>),
}

/// An immutable description of one trained model plus a pool of
/// ready-to-run replicas.
///
/// The `Model` trait takes `&mut self` on inference (scratch buffers,
/// presentation RNG state), so concurrent batches cannot share one
/// instance. Instead each worker job checks a replica out of the pool
/// (or rebuilds one deterministically on a pool miss), runs its batch,
/// and returns it. A replica consumed by a panic simply never comes
/// back — the next checkout rebuilds, and because build → fit → inject
/// is a pure function of the snapshot, the rebuilt replica is
/// bit-identical. Snapshots are shared `Arc`-immutably between the
/// server and every in-flight job.
pub struct ModelSnapshot {
    name: String,
    input_dim: usize,
    num_classes: usize,
    source: Source,
    pool: Mutex<Vec<Box<dyn Model>>>,
    /// Pool-miss rebuilds. Monotone but *schedule-dependent* (worker
    /// contention decides pool misses), so it is an observability
    /// counter, never part of a deterministic outcome trace.
    rebuilds: AtomicU64,
    /// Replicas consumed by panicking attempts (see
    /// [`ModelSnapshot::note_lost`]). Deterministic under a seeded
    /// chaos plan: the panic schedule is item/attempt-keyed.
    lost: AtomicU64,
}

impl std::fmt::Debug for ModelSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSnapshot")
            .field("name", &self.name)
            .field("input_dim", &self.input_dim)
            .field("num_classes", &self.num_classes)
            .field("pooled", &lock_or_recover(&self.pool).len())
            .finish_non_exhaustive()
    }
}

impl ModelSnapshot {
    /// Trains one replica of `spec` on `train` within `budget`
    /// (injecting `faults` afterwards, if any) and pins the recipe so
    /// further replicas rebuild identically. Training eagerly here means
    /// a broken spec fails at preparation time, never inside a serving
    /// job.
    ///
    /// # Errors
    ///
    /// [`ServeError::Build`] when the spec cannot build, fit, or inject.
    pub fn prepare(
        name: impl Into<String>,
        spec: ModelSpec,
        budget: FitBudget,
        train: Arc<Dataset>,
        faults: Option<FaultPlan>,
    ) -> Result<ModelSnapshot, ServeError> {
        let snapshot = ModelSnapshot {
            name: name.into(),
            input_dim: spec.input_dim(),
            num_classes: spec.num_classes(),
            source: Source::Trained {
                spec,
                budget,
                train,
                faults,
            },
            pool: Mutex::new(Vec::new()),
            rebuilds: AtomicU64::new(0),
            lost: AtomicU64::new(0),
        };
        let replica = snapshot.build_replica()?;
        lock_or_recover(&snapshot.pool).push(replica);
        Ok(snapshot)
    }

    /// A snapshot whose replicas come from `factory` — the test seam
    /// for synthetic models (e.g. one that panics on a poisoned item).
    /// The factory must be deterministic for served results to be.
    pub fn from_factory(
        name: impl Into<String>,
        input_dim: usize,
        num_classes: usize,
        factory: impl Fn() -> Box<dyn Model> + Send + Sync + 'static,
    ) -> ModelSnapshot {
        ModelSnapshot {
            name: name.into(),
            input_dim,
            num_classes,
            source: Source::Factory(Box::new(factory)),
            pool: Mutex::new(Vec::new()),
            rebuilds: AtomicU64::new(0),
            lost: AtomicU64::new(0),
        }
    }

    /// The serving name requests address this snapshot by.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pixels per request image.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Label classes the model predicts over.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Replicas currently idle in the pool.
    pub fn pooled(&self) -> usize {
        lock_or_recover(&self.pool).len()
    }

    fn build_replica(&self) -> Result<Box<dyn Model>, ServeError> {
        match &self.source {
            Source::Trained {
                spec,
                budget,
                train,
                faults,
            } => {
                let mut model = spec.build().map_err(|e| ServeError::Build(e.to_string()))?;
                model
                    .fit(train, budget)
                    .map_err(|e| ServeError::Build(e.to_string()))?;
                if let Some(plan) = faults {
                    model
                        .inject(plan)
                        .map_err(|e| ServeError::Build(e.to_string()))?;
                }
                Ok(model)
            }
            Source::Factory(factory) => Ok(factory()),
        }
    }

    /// Checks a replica out of the pool, rebuilding deterministically on
    /// a miss.
    ///
    /// # Errors
    ///
    /// [`ServeError::Build`] when a rebuild fails (never for a pooled
    /// replica).
    pub fn replica(&self) -> Result<Box<dyn Model>, ServeError> {
        if let Some(model) = lock_or_recover(&self.pool).pop() {
            return Ok(model);
        }
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        self.build_replica()
    }

    /// Returns a checked-out replica to the pool.
    pub fn release(&self, replica: Box<dyn Model>) {
        lock_or_recover(&self.pool).push(replica);
    }

    /// A one-shot replica for a transient-fault burst: freshly built
    /// from the recipe (bit-identical to a pooled one), then injected
    /// with `faults` on top of the snapshot's own plan. Burst replicas
    /// are *never pooled* — injected faults cannot be removed, so the
    /// caller discards the replica after its batch.
    ///
    /// # Errors
    ///
    /// [`ServeError::Build`] when the build or injection fails.
    pub fn burst_replica(&self, faults: &FaultPlan) -> Result<Box<dyn Model>, ServeError> {
        let mut replica = self.build_replica()?;
        replica
            .inject(faults)
            .map_err(|e| ServeError::Build(e.to_string()))?;
        Ok(replica)
    }

    /// Records one replica consumed by a panicking attempt (it never
    /// returned to the pool; the next checkout rebuilds bit-identically
    /// from the recipe). Called by the server's quarantine accounting.
    pub fn note_lost(&self) {
        self.lost.fetch_add(1, Ordering::Relaxed);
    }

    /// Replicas rebuilt on pool misses so far. Schedule-dependent —
    /// use for observability, not for deterministic traces.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Replicas consumed by panicking attempts so far.
    pub fn lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dataset::model::ModelError;
    use nc_dataset::{digits::DigitsSpec, Difficulty};
    use nc_mlp::Activation;
    use nc_substrate::stats::Confusion;

    fn tiny_data() -> (Dataset, Dataset) {
        DigitsSpec {
            train: 12,
            test: 6,
            seed: 5,
            difficulty: Difficulty::default(),
        }
        .generate()
    }

    fn quant_spec() -> ModelSpec {
        ModelSpec::QuantizedMlp {
            sizes: vec![784, 6, 10],
            activation: Activation::sigmoid(),
            seed: 11,
        }
    }

    fn tiny_budget() -> FitBudget {
        FitBudget {
            epochs: 1,
            stdp_epochs: 1,
            stdp_delta: 8,
            learning_rate: None,
        }
    }

    #[test]
    fn prepare_pools_one_trained_replica() {
        let (train, _) = tiny_data();
        let snap = ModelSnapshot::prepare("q", quant_spec(), tiny_budget(), Arc::new(train), None)
            .unwrap();
        assert_eq!(snap.name(), "q");
        assert_eq!(snap.input_dim(), 784);
        assert_eq!(snap.num_classes(), 10);
        assert_eq!(snap.pooled(), 1);
        let dbg = format!("{snap:?}");
        assert!(dbg.contains("\"q\""), "{dbg}");
    }

    #[test]
    fn rebuilt_replicas_are_bit_identical() {
        let (train, test) = tiny_data();
        let snap = ModelSnapshot::prepare("q", quant_spec(), tiny_budget(), Arc::new(train), None)
            .unwrap();
        let mut pooled = snap.replica().unwrap();
        assert_eq!(snap.pooled(), 0);
        // Pool is empty now: this one is rebuilt from the recipe.
        let mut rebuilt = snap.replica().unwrap();
        for (i, s) in test.iter().enumerate() {
            let seed = crate::presentation_seed(u64::try_from(i).unwrap());
            assert_eq!(
                pooled.predict(&s.pixels, seed),
                rebuilt.predict(&s.pixels, seed),
                "item {i}"
            );
        }
        snap.release(pooled);
        snap.release(rebuilt);
        assert_eq!(snap.pooled(), 2);
    }

    #[test]
    fn rebuild_and_loss_counters_track_pool_traffic() {
        let (train, _) = tiny_data();
        let snap = ModelSnapshot::prepare("q", quant_spec(), tiny_budget(), Arc::new(train), None)
            .unwrap();
        assert_eq!((snap.rebuilds(), snap.lost()), (0, 0));
        let pooled = snap.replica().unwrap();
        assert_eq!(snap.rebuilds(), 0, "pool hit is not a rebuild");
        let rebuilt = snap.replica().unwrap();
        assert_eq!(snap.rebuilds(), 1, "pool miss rebuilds");
        // A panicking attempt consumes its replica: drop without
        // release, as the unwinding worker would, and note the loss.
        drop(pooled);
        snap.note_lost();
        assert_eq!(snap.lost(), 1);
        snap.release(rebuilt);
        assert_eq!(snap.pooled(), 1);
    }

    #[test]
    fn burst_replicas_are_injected_and_never_pooled() {
        use nc_core::FaultModel;
        let (train, test) = tiny_data();
        let snap = ModelSnapshot::prepare("q", quant_spec(), tiny_budget(), Arc::new(train), None)
            .unwrap();
        let storm = FaultPlan {
            model: FaultModel::StuckAt1,
            rate: 0.9,
            seed: 9,
        };
        let mut stormy = snap.burst_replica(&storm).unwrap();
        let mut stormy_twin = snap.burst_replica(&storm).unwrap();
        let mut healthy = snap.replica().unwrap();
        assert_eq!(snap.pooled(), 0, "burst builds never touch the pool");
        let mut diverged = false;
        for (i, s) in test.iter().enumerate() {
            let seed = crate::presentation_seed(u64::try_from(i).unwrap());
            // The burst is itself deterministic...
            assert_eq!(
                stormy.predict(&s.pixels, seed),
                stormy_twin.predict(&s.pixels, seed),
                "item {i}"
            );
            // ...and actually corrupts relative to the healthy replica.
            if stormy.predict(&s.pixels, seed) != healthy.predict(&s.pixels, seed) {
                diverged = true;
            }
        }
        assert!(diverged, "a 90% stuck-at-1 burst must disturb something");
        snap.release(healthy);
    }

    #[test]
    fn broken_spec_fails_at_prepare_time() {
        let (train, _) = tiny_data();
        let spec = ModelSpec::Mlp {
            sizes: vec![784],
            activation: Activation::sigmoid(),
            seed: 1,
        };
        let err =
            ModelSnapshot::prepare("bad", spec, tiny_budget(), Arc::new(train), None).unwrap_err();
        assert!(matches!(err, ServeError::Build(_)), "{err}");
    }

    #[test]
    fn factory_snapshots_skip_training() {
        struct Fixed;
        impl Model for Fixed {
            fn name(&self) -> &'static str {
                "fixed"
            }
            fn fit(&mut self, _: &Dataset, _: &FitBudget) -> Result<(), ModelError> {
                Ok(())
            }
            fn evaluate(&mut self, _: &Dataset) -> Confusion {
                Confusion::new(2)
            }
            fn predict(&mut self, _: &[u8], _: u64) -> usize {
                1
            }
        }
        let snap = ModelSnapshot::from_factory("fixed", 4, 2, || Box::new(Fixed));
        assert_eq!(snap.pooled(), 0);
        let mut replica = snap.replica().unwrap();
        assert_eq!(replica.predict(&[0; 4], 0), 1);
        snap.release(replica);
        assert_eq!(snap.pooled(), 1);
    }
}
