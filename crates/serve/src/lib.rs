//! # nc-serve
//!
//! In-process batched inference serving for the neurocmp model zoo —
//! ROADMAP item 2, the paper's "millions of users" deployment direction.
//! The paper's throughput-per-area argument assumes presentations are
//! *batched*; this crate is the layer that turns independent recognition
//! requests into the batched kernel work the argument rests on.
//!
//! The stack is std-only (threads + mutexes, no async runtime) and
//! deliberately narrow:
//!
//! * [`ModelSnapshot`] — an immutable, `Arc`-shared description of a
//!   trained model (spec + budget + training set + optional fault plan)
//!   with a replica pool. Replicas are rebuilt deterministically on
//!   demand, so a replica lost to a panic costs a rebuild, never
//!   correctness.
//! * [`Coalescer`] — the admission queue. Requests are ticketed in
//!   arrival order and coalesced per model into [`SealedBatch`]es of at
//!   most [`ServeConfig::batch_window`] items. The window is counted in
//!   requests, not wall-clock time, so batch composition is a pure
//!   function of the admission sequence — the serving determinism
//!   contract.
//! * [`Server`] — ties the two together: [`Server::submit`] validates
//!   and admits, [`Server::drain`] executes every sealed batch on the
//!   engine's supervised-job machinery ([`Engine::run_jobs_supervised`]
//!   panic isolation + deterministic retries), building one
//!   [`RequestSlab`](nc_dataset::RequestSlab) per batch so predictions
//!   flow through the same `predict_batch`/GEMM path offline evaluation
//!   uses, with the same per-item presentation seeds
//!   (`EVAL_PRESENTATION_SEED_BASE | item`). Served predictions are
//!   therefore *bit-equal* to offline `evaluate_batch` — the conformance
//!   suite in `tests/conformance.rs` holds this across arrival orders,
//!   batch windows, and thread counts.
//! * [`run_load`] — a seeded, closed-loop load generator (SplitMix64
//!   per-user streams, Zipfian model mix) for soak tests and the `serve`
//!   bench bin. No entropy sources anywhere (lint rule R7).
//!
//! Latency is observed through the clock-quarantined
//! [`Stopwatch`](nc_obs::Stopwatch): when the engine's recorder is
//! disabled no request ever reads the clock, and when enabled the
//! admission→response interval lands in the `serve.latency_ns`
//! histogram ([`nc_obs::LatencyHistogram`], exact p50/p95/p99).
//!
//! [`Engine::run_jobs_supervised`]: nc_core::Engine::run_jobs_supervised
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use nc_core::{Engine, ExperimentScale, FitBudget, ModelSpec};
//! use nc_dataset::{digits::DigitsSpec, Difficulty};
//! use nc_serve::{ModelSnapshot, ServeConfig, Server};
//!
//! // Train a snapshot once; the server shares it immutably.
//! let (train, test) = DigitsSpec {
//!     train: 16, test: 4, seed: 1, difficulty: Difficulty::default(),
//! }.generate();
//! let spec = ModelSpec::Wot {
//!     inputs: 784, classes: 10,
//!     params: nc_snn::SnnParams::for_neurons(10), seed: 7,
//! };
//! let budget = FitBudget { epochs: 1, stdp_epochs: 1, stdp_delta: 8, learning_rate: None };
//! let snapshot = ModelSnapshot::prepare("wot", spec, budget, Arc::new(train), None).unwrap();
//!
//! // Serve: submit, flush the partial window, drain, collect.
//! let engine = Arc::new(Engine::builder().threads(2).scale(ExperimentScale::Tiny).build());
//! let server = Server::new(engine, ServeConfig::default(), vec![Arc::new(snapshot)]).unwrap();
//! let ticket = server.submit("wot", &test.samples()[0].pixels, 0).unwrap();
//! server.flush();
//! server.drain();
//! let response = server.take_response(ticket).unwrap();
//! assert!(response.outcome.unwrap() < 10);
//! ```

mod coalescer;
mod loadgen;
mod resilience;
mod server;
mod snapshot;

pub use coalescer::{presentation_seed, CoalescedRequest, Coalescer, SealedBatch, Ticket};
pub use loadgen::{run_load, LoadOutcome, LoadPlan};
pub use resilience::{BreakerConfig, ResilienceConfig, ServeEvent, DEFAULT_SERVE_RETRY_SEED};
pub use server::{Response, ServeConfig, Server};
pub use snapshot::ModelSnapshot;

/// Why a serving call could not be honored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A server needs at least one model snapshot.
    NoModels,
    /// Two snapshots were registered under the same name.
    DuplicateModel(String),
    /// A request named a model the server does not hold.
    UnknownModel(String),
    /// A request's pixel count does not match the model's input width.
    Geometry {
        /// The model the request addressed.
        model: String,
        /// Input dimension the model expects.
        expected: usize,
        /// Pixels the request carried.
        got: usize,
    },
    /// A snapshot could not build/train/inject a replica.
    Build(String),
    /// A batch failed every supervised attempt (panic isolation caught
    /// it; the server stayed up and siblings completed).
    BatchFailed {
        /// The sealed batch's sequence number.
        batch: u64,
        /// The engine's final error message.
        message: String,
    },
    /// A load-generation plan was inconsistent (no users, empty
    /// dataset, …), or a serve/chaos configuration was invalid.
    Config(String),
    /// The bounded admission queue is full; the request was shed
    /// before consuming any batch slot ([`ResilienceConfig::queue_limit`]).
    Shed {
        /// The model the refused request addressed.
        model: String,
    },
    /// The model's circuit breaker is open and no geometry-compatible
    /// fallback exists; the request was refused at admission.
    BreakerOpen {
        /// The model whose breaker refused the request.
        model: String,
    },
    /// The request's virtual-tick deadline passed before (or while) its
    /// batch ran; the answer, if any, was discarded.
    DeadlineMissed {
        /// Absolute tick the request had to complete by.
        deadline: u64,
        /// Tick it actually would have completed at.
        at: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoModels => write!(f, "server needs at least one model snapshot"),
            ServeError::DuplicateModel(name) => {
                write!(f, "duplicate model snapshot name `{name}`")
            }
            ServeError::UnknownModel(name) => write!(f, "no model snapshot named `{name}`"),
            ServeError::Geometry {
                model,
                expected,
                got,
            } => write!(
                f,
                "request for `{model}` carries {got} pixels, model expects {expected}"
            ),
            ServeError::Build(reason) => write!(f, "replica build failed: {reason}"),
            ServeError::BatchFailed { batch, message } => {
                write!(f, "batch {batch} failed every attempt: {message}")
            }
            ServeError::Config(reason) => write!(f, "bad load plan: {reason}"),
            ServeError::Shed { model } => {
                write!(f, "admission queue full, request for `{model}` shed")
            }
            ServeError::BreakerOpen { model } => {
                write!(f, "circuit breaker open for `{model}`, request refused")
            }
            ServeError::DeadlineMissed { deadline, at } => {
                write!(
                    f,
                    "deadline tick {deadline} missed (completed at tick {at})"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_is_nonempty_and_specific() {
        for (err, needle) in [
            (ServeError::NoModels, "at least one"),
            (ServeError::DuplicateModel("m".into()), "duplicate"),
            (ServeError::UnknownModel("m".into()), "no model"),
            (
                ServeError::Geometry {
                    model: "m".into(),
                    expected: 784,
                    got: 3,
                },
                "784",
            ),
            (ServeError::Build("boom".into()), "boom"),
            (
                ServeError::BatchFailed {
                    batch: 7,
                    message: "panic".into(),
                },
                "batch 7",
            ),
            (ServeError::Config("no users".into()), "no users"),
            (ServeError::Shed { model: "m".into() }, "shed"),
            (ServeError::BreakerOpen { model: "m".into() }, "breaker"),
            (
                ServeError::DeadlineMissed { deadline: 4, at: 6 },
                "deadline tick 4",
            ),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
