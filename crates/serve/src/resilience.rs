//! Server-side resilience policy: bounded admission, virtual-time
//! deadlines, serve-level retry rounds, and the per-model circuit
//! breaker.
//!
//! Everything here is driven by the server's **virtual clock** (a tick
//! counter advanced by the caller, never a wall clock — lint rule R3)
//! and plain counters, so every decision is a pure function of the
//! admission/drain history. The [`ServeEvent`] trace the server emits
//! is therefore bit-identical across engine thread counts — the
//! chaos-conformance suite in `tests/chaos.rs` pins exactly that.
//!
//! The breaker is the classic three-phase machine, made deterministic:
//!
//! ```text
//!            failures >= threshold
//!   Closed ────────────────────────► Open{since}
//!     ▲                                 │ cooldown_ticks elapse
//!     │ probe batch succeeds            ▼
//!     └─────────────────────────── HalfOpen ──► (probe fails: Open again)
//! ```
//!
//! While open (and while a half-open probe is in flight), requests for
//! the tripped model degrade to the designated fallback model when one
//! is configured, and are refused with [`ServeError::BreakerOpen`]
//! otherwise. The half-open probe is a *ticket*, not a timer: the first
//! request admitted after the cooldown elapses carries the probe, and
//! the breaker closes or reopens on that batch's outcome.
//!
//! [`ServeError::BreakerOpen`]: crate::ServeError::BreakerOpen

/// Per-model circuit-breaker policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive batch failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Virtual ticks an open breaker waits before admitting a half-open
    /// probe.
    pub cooldown_ticks: u64,
    /// Snapshot index requests degrade to while the breaker is open
    /// (`None` = refuse instead). Validated against the snapshot list
    /// at server construction.
    pub fallback: Option<usize>,
}

impl Default for BreakerConfig {
    /// Trip after 3 consecutive failures, probe after 8 ticks, refuse
    /// (no fallback) while open.
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 8,
            fallback: None,
        }
    }
}

/// Default root seed for serve-level retry jitter (overridable via
/// [`ResilienceConfig::retry_seed`]).
pub const DEFAULT_SERVE_RETRY_SEED: u64 = 0x5E51_1E27;

/// The server's resilience policy. The default disables every defense,
/// so a server without an explicit policy behaves exactly as before
/// the resilience layer existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Maximum requests in flight before admission sheds
    /// ([`ServeError::Shed`]); `None` = unbounded.
    ///
    /// [`ServeError::Shed`]: crate::ServeError::Shed
    pub queue_limit: Option<usize>,
    /// Per-request deadline in virtual ticks from admission, enforced
    /// at seal and at (possibly chaos-delayed) completion; `None` = no
    /// deadline.
    pub deadline_ticks: Option<u64>,
    /// Serve-level retry rounds for batches that failed every engine
    /// attempt (each round re-runs under a [`Supervision::jittered`]
    /// policy; 0 = no serve-level retries).
    ///
    /// [`Supervision::jittered`]: nc_core::Supervision::jittered
    pub batch_retries: u32,
    /// Root seed the per-round jittered retry policies derive from.
    pub retry_seed: u64,
    /// Per-model circuit breaking; `None` disables the breaker.
    pub breaker: Option<BreakerConfig>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            queue_limit: None,
            deadline_ticks: None,
            batch_retries: 0,
            retry_seed: DEFAULT_SERVE_RETRY_SEED,
            breaker: None,
        }
    }
}

/// One entry in the server's deterministic resilience trace. Events
/// are emitted in a fixed order within each `submit`/`drain` call, so
/// the full event vector is part of the bit-identical outcome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEvent {
    /// Admission refused: the queue was full, or the model's breaker
    /// was open with no fallback.
    Shed {
        /// Virtual tick of the refusal.
        tick: u64,
        /// Model index the request addressed.
        model: usize,
        /// The request's stream item index.
        item: u64,
    },
    /// A request for a tripped model was served by its fallback.
    Degraded {
        /// Virtual tick of the admission.
        tick: u64,
        /// The degraded request's ticket.
        ticket: u64,
        /// Model index the request addressed.
        from: usize,
        /// Fallback model index that served it.
        to: usize,
    },
    /// A request's deadline expired (at seal, or at chaos-delayed
    /// completion).
    DeadlineMissed {
        /// Virtual tick of the miss.
        tick: u64,
        /// The expired request's ticket.
        ticket: u64,
        /// Sequence number of the batch that carried it.
        batch: u64,
        /// `true` when the batch was already expired at seal time.
        at_seal: bool,
    },
    /// A batch that failed every engine attempt was re-run in a
    /// serve-level retry round.
    BatchRetried {
        /// Virtual tick of the retry.
        tick: u64,
        /// The batch's sequence number.
        batch: u64,
        /// 1-based retry round.
        round: u32,
    },
    /// Replicas were lost to panics while running a batch; the pool
    /// rebuilds them bit-identically on the next checkout.
    ReplicaQuarantined {
        /// Virtual tick of the drain.
        tick: u64,
        /// Model index whose replicas were lost.
        model: usize,
        /// The batch whose attempts consumed them.
        batch: u64,
        /// How many attempts each consumed one replica.
        lost: u32,
    },
    /// A transient-fault burst was in force for this drain: every batch
    /// ran on a freshly-built, fault-injected, discarded-after-use
    /// replica.
    Burst {
        /// Virtual tick of the stormy drain.
        tick: u64,
        /// How many batches ran under the burst.
        batches: u64,
    },
    /// A response was poisoned by the chaos plan (served as a
    /// deterministic wrong class).
    Poisoned {
        /// Virtual tick of the drain.
        tick: u64,
        /// The poisoned request's ticket.
        ticket: u64,
        /// The batch that carried it.
        batch: u64,
    },
    /// A model's breaker tripped open.
    BreakerOpened {
        /// Virtual tick of the trip.
        tick: u64,
        /// The tripped model's index.
        model: usize,
    },
    /// An open breaker's cooldown elapsed; the next admission carries
    /// the half-open probe.
    BreakerHalfOpen {
        /// Virtual tick of the transition.
        tick: u64,
        /// The probing model's index.
        model: usize,
        /// Ticket of the probe request.
        probe: u64,
    },
    /// A half-open probe succeeded; the breaker closed.
    BreakerClosed {
        /// Virtual tick of the close.
        tick: u64,
        /// The recovered model's index.
        model: usize,
    },
}

/// What the breaker decided about one admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Serve on the primary model (breaker closed or disabled).
    Primary,
    /// Serve on the primary model *as the half-open probe* — the caller
    /// must register the admitted ticket via [`Breaker::set_probe`].
    Probe,
    /// Degrade to the fallback snapshot index.
    Fallback(usize),
    /// Refuse the request (open, no fallback configured).
    Refuse,
}

/// A breaker phase change worth reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerFlip {
    Opened,
    Closed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Closed,
    Open { since: u64 },
    HalfOpen,
}

/// Per-model breaker state. Pure state machine: every transition is a
/// function of `(config, phase, failures, now)` — no clocks, no
/// randomness.
#[derive(Debug)]
pub(crate) struct Breaker {
    config: Option<BreakerConfig>,
    phase: Phase,
    failures: u32,
    probe: Option<u64>,
}

impl Breaker {
    pub(crate) fn new(config: Option<BreakerConfig>) -> Breaker {
        Breaker {
            config,
            phase: Phase::Closed,
            failures: 0,
            probe: None,
        }
    }

    /// Routes one admission at virtual tick `now`. May transition
    /// `Open → HalfOpen` (cooldown elapsed); the caller emits the
    /// half-open event and registers the probe ticket.
    pub(crate) fn admit(&mut self, now: u64) -> Admission {
        let Some(config) = self.config else {
            return Admission::Primary;
        };
        match self.phase {
            Phase::Closed => Admission::Primary,
            Phase::Open { since } if now >= since.saturating_add(config.cooldown_ticks) => {
                self.phase = Phase::HalfOpen;
                self.probe = None;
                Admission::Probe
            }
            Phase::Open { .. } => config
                .fallback
                .map_or(Admission::Refuse, Admission::Fallback),
            Phase::HalfOpen if self.probe.is_none() => Admission::Probe,
            Phase::HalfOpen => config
                .fallback
                .map_or(Admission::Refuse, Admission::Fallback),
        }
    }

    /// Registers the ticket carrying the half-open probe.
    pub(crate) fn set_probe(&mut self, ticket: u64) {
        self.probe = Some(ticket);
    }

    /// Feeds one batch outcome for this model back into the machine.
    /// `tickets` identifies the probe; `ok` is whether the batch
    /// produced predictions after every retry layer.
    pub(crate) fn on_batch(&mut self, ok: bool, tickets: &[u64], now: u64) -> Option<BreakerFlip> {
        let config = self.config?;
        if let Some(probe) = self.probe {
            if tickets.contains(&probe) {
                self.probe = None;
                self.failures = 0;
                return if ok {
                    self.phase = Phase::Closed;
                    Some(BreakerFlip::Closed)
                } else {
                    self.phase = Phase::Open { since: now };
                    Some(BreakerFlip::Opened)
                };
            }
        }
        if self.phase != Phase::Closed {
            // Stragglers admitted before the trip neither heal nor
            // re-trip an open breaker; only the probe decides.
            return None;
        }
        if ok {
            self.failures = 0;
            None
        } else {
            self.failures += 1;
            if self.failures >= config.failure_threshold {
                self.phase = Phase::Open { since: now };
                Some(BreakerFlip::Opened)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_breaker_always_admits_primary_and_never_flips() {
        let mut breaker = Breaker::new(None);
        assert_eq!(breaker.admit(0), Admission::Primary);
        for tick in 0..32 {
            assert_eq!(breaker.on_batch(false, &[tick], tick), None);
            assert_eq!(breaker.admit(tick), Admission::Primary);
        }
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_only() {
        let mut breaker = Breaker::new(Some(BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 10,
            fallback: None,
        }));
        assert_eq!(breaker.on_batch(false, &[0], 1), None);
        assert_eq!(breaker.on_batch(false, &[1], 2), None);
        // A success resets the streak.
        assert_eq!(breaker.on_batch(true, &[2], 3), None);
        assert_eq!(breaker.on_batch(false, &[3], 4), None);
        assert_eq!(breaker.on_batch(false, &[4], 5), None);
        assert_eq!(breaker.on_batch(false, &[5], 6), Some(BreakerFlip::Opened));
        // Open without fallback refuses; with the cooldown unelapsed.
        assert_eq!(breaker.admit(7), Admission::Refuse);
    }

    #[test]
    fn open_breaker_with_fallback_degrades_until_cooldown() {
        let mut breaker = Breaker::new(Some(BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 5,
            fallback: Some(2),
        }));
        assert_eq!(breaker.on_batch(false, &[0], 10), Some(BreakerFlip::Opened));
        assert_eq!(breaker.admit(11), Admission::Fallback(2));
        assert_eq!(breaker.admit(14), Admission::Fallback(2));
        // Tick 15 = since(10) + cooldown(5): the next admission probes.
        assert_eq!(breaker.admit(15), Admission::Probe);
        breaker.set_probe(77);
        // Half-open with a probe in flight still degrades everyone else.
        assert_eq!(breaker.admit(15), Admission::Fallback(2));
    }

    #[test]
    fn probe_outcome_closes_or_reopens() {
        let config = Some(BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 2,
            fallback: None,
        });
        let mut breaker = Breaker::new(config);
        assert_eq!(breaker.on_batch(false, &[0], 0), Some(BreakerFlip::Opened));
        assert_eq!(breaker.admit(2), Admission::Probe);
        breaker.set_probe(9);
        // A non-probe straggler batch failing while half-open is inert.
        assert_eq!(breaker.on_batch(false, &[4, 5], 2), None);
        // The probe batch succeeding closes the breaker.
        assert_eq!(
            breaker.on_batch(true, &[8, 9], 2),
            Some(BreakerFlip::Closed)
        );
        assert_eq!(breaker.admit(3), Admission::Primary);

        // And the probe failing reopens with a fresh cooldown epoch.
        let mut breaker = Breaker::new(config);
        assert_eq!(breaker.on_batch(false, &[0], 0), Some(BreakerFlip::Opened));
        assert_eq!(breaker.admit(2), Admission::Probe);
        breaker.set_probe(3);
        assert_eq!(breaker.on_batch(false, &[3], 2), Some(BreakerFlip::Opened));
        assert_eq!(breaker.admit(3), Admission::Refuse);
        assert_eq!(breaker.admit(4), Admission::Probe);
    }

    #[test]
    fn defaults_disable_every_defense() {
        let resilience = ResilienceConfig::default();
        assert_eq!(resilience.queue_limit, None);
        assert_eq!(resilience.deadline_ticks, None);
        assert_eq!(resilience.batch_retries, 0);
        assert_eq!(resilience.breaker, None);
        let breaker = BreakerConfig::default();
        assert_eq!(breaker.failure_threshold, 3);
        assert_eq!(breaker.fallback, None);
    }
}
