//! The admission queue: tickets requests in arrival order and coalesces
//! them per model into fixed-window [`SealedBatch`]es.
//!
//! The batch window is counted in **requests, not time**: a wall-clock
//! window would make batch composition depend on scheduling jitter and
//! break the repository's determinism contract. With a count-based
//! window, the sealed-batch sequence is a pure function of the admission
//! sequence — the property `tests/determinism.rs` checks across worker
//! thread counts.

use nc_dataset::model::EVAL_PRESENTATION_SEED_BASE;

/// A request's identity from admission to response: dense, monotone
/// admission order (ticket `n` is the `n`-th request the coalescer ever
/// admitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub u64);

/// The presentation seed a served item must replay: the same
/// `EVAL_PRESENTATION_SEED_BASE | item` convention positional offline
/// evaluation uses, keyed by the *item's* stream index rather than its
/// position in whatever batch it was coalesced into.
pub fn presentation_seed(item: u64) -> u64 {
    EVAL_PRESENTATION_SEED_BASE | item
}

/// One admitted request, waiting in or sealed into a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedRequest {
    /// Admission-order identity.
    pub ticket: Ticket,
    /// Index of the model snapshot the request addresses.
    pub model: usize,
    /// The item's stream index — the seed key (see
    /// [`presentation_seed`]) and, in conformance tests, the offline
    /// dataset position.
    pub item: u64,
    /// The image.
    pub pixels: Vec<u8>,
    /// Absolute virtual-tick deadline (admission tick + the policy's
    /// `deadline_ticks`), or `None` when the server enforces none. The
    /// server checks it at seal and again at (possibly chaos-delayed)
    /// completion.
    pub deadline: Option<u64>,
}

/// A batch sealed for execution: one model, at most `window` requests,
/// in admission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBatch {
    /// Seal-order sequence number, monotone across all models.
    pub seq: u64,
    /// Index of the model snapshot every request addresses.
    pub model: usize,
    /// The requests, in admission order.
    pub requests: Vec<CoalescedRequest>,
}

/// The admission queue. Not thread-safe by itself — the [`Server`]
/// guards it with its state mutex; keeping it lock-free makes the
/// determinism property directly testable.
///
/// [`Server`]: crate::Server
#[derive(Debug)]
pub struct Coalescer {
    window: usize,
    pending: Vec<Vec<CoalescedRequest>>,
    sealed: Vec<SealedBatch>,
    next_ticket: u64,
    next_seq: u64,
}

impl Coalescer {
    /// An empty queue over `models` snapshots sealing at `window`
    /// requests per batch (`window` is clamped to at least 1).
    pub fn new(models: usize, window: usize) -> Coalescer {
        Coalescer {
            window: window.max(1),
            pending: (0..models).map(|_| Vec::new()).collect(),
            sealed: Vec::new(),
            next_ticket: 0,
            next_seq: 0,
        }
    }

    /// The effective batch window (requests per sealed batch).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Admits one request for model index `model`, sealing that model's
    /// pending batch if it reaches the window.
    ///
    /// # Panics
    ///
    /// Panics if `model` is out of range — the server validates names
    /// before admission.
    pub fn admit(
        &mut self,
        model: usize,
        item: u64,
        pixels: Vec<u8>,
        deadline: Option<u64>,
    ) -> Ticket {
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.pending[model].push(CoalescedRequest {
            ticket,
            model,
            item,
            pixels,
            deadline,
        });
        if self.pending[model].len() >= self.window {
            self.seal(model);
        }
        ticket
    }

    fn seal(&mut self, model: usize) {
        if self.pending[model].is_empty() {
            return;
        }
        let requests = std::mem::take(&mut self.pending[model]);
        self.sealed.push(SealedBatch {
            seq: self.next_seq,
            model,
            requests,
        });
        self.next_seq += 1;
    }

    /// Seals every non-empty partial batch, in model-index order — the
    /// deterministic stand-in for a batch-window timeout.
    pub fn flush(&mut self) {
        for model in 0..self.pending.len() {
            self.seal(model);
        }
    }

    /// Takes every sealed batch, in seal order.
    pub fn take_sealed(&mut self) -> Vec<SealedBatch> {
        std::mem::take(&mut self.sealed)
    }

    /// Requests admitted but not yet sealed.
    pub fn pending_len(&self) -> usize {
        self.pending.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_seals_exactly_on_the_count() {
        let mut c = Coalescer::new(2, 3);
        for i in 0..5u64 {
            c.admit(0, i, vec![0], None);
        }
        c.admit(1, 100, vec![1], None);
        // Model 0 sealed once at 3; 2 + 1 requests still pending.
        assert_eq!(c.pending_len(), 3);
        let sealed = c.take_sealed();
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].seq, 0);
        assert_eq!(sealed[0].model, 0);
        assert_eq!(sealed[0].requests.len(), 3);
        assert_eq!(sealed[0].requests[2].ticket, Ticket(2));
    }

    #[test]
    fn flush_seals_partials_in_model_order() {
        let mut c = Coalescer::new(3, 8);
        c.admit(2, 0, vec![], None);
        c.admit(0, 1, vec![], None);
        c.admit(2, 2, vec![], None);
        c.flush();
        let sealed = c.take_sealed();
        assert_eq!(
            sealed.iter().map(|b| b.model).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(sealed[1].requests.len(), 2);
        assert_eq!(c.pending_len(), 0);
        // Flushing an empty queue seals nothing.
        c.flush();
        assert!(c.take_sealed().is_empty());
    }

    #[test]
    fn tickets_are_dense_and_monotone_across_models() {
        let mut c = Coalescer::new(4, 1);
        let tickets: Vec<u64> = (0..8).map(|i| c.admit(i % 4, 0, vec![], None).0).collect();
        assert_eq!(tickets, (0..8).collect::<Vec<u64>>());
        assert_eq!(c.take_sealed().len(), 8);
    }

    #[test]
    fn zero_window_is_clamped_to_one() {
        let mut c = Coalescer::new(1, 0);
        assert_eq!(c.window(), 1);
        c.admit(0, 0, vec![], None);
        assert_eq!(c.take_sealed().len(), 1);
    }

    #[test]
    fn deadlines_ride_through_sealing_untouched() {
        let mut c = Coalescer::new(1, 2);
        c.admit(0, 0, vec![], Some(7));
        c.admit(0, 1, vec![], None);
        let sealed = c.take_sealed();
        assert_eq!(sealed[0].requests[0].deadline, Some(7));
        assert_eq!(sealed[0].requests[1].deadline, None);
    }

    #[test]
    fn presentation_seed_matches_the_offline_convention() {
        assert_eq!(presentation_seed(0), EVAL_PRESENTATION_SEED_BASE);
        assert_eq!(presentation_seed(41), EVAL_PRESENTATION_SEED_BASE | 41);
    }
}
