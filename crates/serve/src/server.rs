//! The in-process serving front end: validate → admit → coalesce →
//! execute on the engine's supervised jobs → respond.

use crate::coalescer::{presentation_seed, Coalescer, SealedBatch, Ticket};
use crate::snapshot::ModelSnapshot;
use crate::ServeError;
use nc_core::{Engine, Job, Supervision};
use nc_dataset::RequestSlab;
use nc_obs::Stopwatch;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serving policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Requests per model a batch seals at (count-based, clamped to at
    /// least 1; see [`Coalescer`] for why it is not a time window).
    pub batch_window: usize,
    /// Supervision policy batches execute under: panic isolation always,
    /// plus deterministic retries / sample budget as configured.
    pub supervision: Supervision,
}

impl Default for ServeConfig {
    /// Window of 8 — the knee of the latency/throughput frontier at the
    /// bench's model sizes — and fail-fast supervision.
    fn default() -> Self {
        ServeConfig {
            batch_window: 8,
            supervision: Supervision::default(),
        }
    }
}

/// The server's answer to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's admission ticket.
    pub ticket: Ticket,
    /// Index of the model snapshot that served it.
    pub model: usize,
    /// The request's stream item index (echoed from
    /// [`Server::submit`]).
    pub item: u64,
    /// Sequence number of the sealed batch that carried it.
    pub batch: u64,
    /// The predicted class, or why the batch could not produce one.
    pub outcome: Result<usize, ServeError>,
    /// Admission→response latency; `None` when the engine's recorder is
    /// disabled (the clock is never read then).
    pub latency_ns: Option<u64>,
}

/// Everything mutable, guarded by one mutex: the admission queue, the
/// per-ticket stopwatches, the finished responses, and the in-flight
/// count.
#[derive(Debug)]
struct ServerState {
    coalescer: Coalescer,
    watches: BTreeMap<u64, Stopwatch>,
    responses: BTreeMap<u64, Response>,
    in_flight: usize,
}

/// Alignment metadata for one dispatched batch, kept *outside* the job
/// payloads: `run_jobs_supervised` consumes payloads and returns only
/// outputs, so ticket/item bookkeeping rides alongside, zipped back by
/// job index.
struct BatchMeta {
    seq: u64,
    model: usize,
    tickets: Vec<(Ticket, u64)>,
}

/// One job's payload: the shared snapshot plus the batch to classify.
struct BatchPayload {
    snapshot: Arc<ModelSnapshot>,
    batch: SealedBatch,
}

/// The in-process inference server. Thread-safe: any thread may
/// [`Server::submit`]; any thread may [`Server::drain`] — execution
/// parallelism comes from the engine's worker pool, the server itself
/// spawns nothing (lint rule R6).
#[derive(Debug)]
pub struct Server {
    engine: Arc<Engine>,
    config: ServeConfig,
    snapshots: Vec<Arc<ModelSnapshot>>,
    names: BTreeMap<String, usize>,
    state: Mutex<ServerState>,
}

impl Server {
    /// A server over `snapshots`, executing on `engine`.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModels`] without snapshots,
    /// [`ServeError::DuplicateModel`] when two share a name.
    pub fn new(
        engine: Arc<Engine>,
        config: ServeConfig,
        snapshots: Vec<Arc<ModelSnapshot>>,
    ) -> Result<Server, ServeError> {
        if snapshots.is_empty() {
            return Err(ServeError::NoModels);
        }
        let mut names = BTreeMap::new();
        for (index, snapshot) in snapshots.iter().enumerate() {
            if names.insert(snapshot.name().to_string(), index).is_some() {
                return Err(ServeError::DuplicateModel(snapshot.name().to_string()));
            }
        }
        let coalescer = Coalescer::new(snapshots.len(), config.batch_window);
        Ok(Server {
            engine,
            config,
            snapshots,
            names,
            state: Mutex::new(ServerState {
                coalescer,
                watches: BTreeMap::new(),
                responses: BTreeMap::new(),
                in_flight: 0,
            }),
        })
    }

    /// The serving names, in registration order.
    pub fn model_names(&self) -> Vec<&str> {
        self.snapshots.iter().map(|s| s.name()).collect()
    }

    /// Requests admitted but not yet answered.
    pub fn in_flight(&self) -> usize {
        lock_or_recover(&self.state).in_flight
    }

    /// Admits one request: `item` is the request's stream index, which
    /// fixes its presentation seed to the offline convention
    /// (`EVAL_PRESENTATION_SEED_BASE | item`) no matter which batch it
    /// lands in. Returns the ticket [`Server::take_response`] answers
    /// under.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] / [`ServeError::Geometry`] — both
    /// checked before admission, so a bad request never occupies a
    /// batch slot.
    pub fn submit(&self, model: &str, pixels: &[u8], item: u64) -> Result<Ticket, ServeError> {
        let Some(&index) = self.names.get(model) else {
            return Err(ServeError::UnknownModel(model.to_string()));
        };
        let expected = self.snapshots[index].input_dim();
        if pixels.len() != expected {
            return Err(ServeError::Geometry {
                model: model.to_string(),
                expected,
                got: pixels.len(),
            });
        }
        // Latency is admission→response; the watch only runs (and the
        // clock is only read) when someone is listening.
        let watch = Stopwatch::start_if(self.engine.recorder().enabled());
        let mut state = lock_or_recover(&self.state);
        let ticket = state.coalescer.admit(index, item, pixels.to_vec());
        state.watches.insert(ticket.0, watch);
        state.in_flight += 1;
        drop(state);
        self.engine.recorder().add("serve.requests", 1);
        Ok(ticket)
    }

    /// Seals every partial batch — the deterministic stand-in for a
    /// batch-window timeout, invoked by callers (or the load generator)
    /// when the request stream stalls.
    pub fn flush(&self) {
        lock_or_recover(&self.state).coalescer.flush();
    }

    /// Executes every sealed batch on the engine and files the
    /// responses; returns how many requests completed. Batches run as
    /// supervised jobs: a panicking batch is caught (and retried per the
    /// config's [`Supervision`]), its requests answer with
    /// [`ServeError::BatchFailed`], and sibling batches complete.
    pub fn drain(&self) -> usize {
        let sealed = lock_or_recover(&self.state).coalescer.take_sealed();
        if sealed.is_empty() {
            return 0;
        }
        let recorder = self.engine.recorder();
        let mut metas = Vec::with_capacity(sealed.len());
        let mut jobs = Vec::with_capacity(sealed.len());
        for batch in sealed {
            metas.push(BatchMeta {
                seq: batch.seq,
                model: batch.model,
                tickets: batch.requests.iter().map(|r| (r.ticket, r.item)).collect(),
            });
            jobs.push(Job::new(
                format!("serve/batch{}", batch.seq),
                u64::try_from(batch.requests.len()).unwrap_or(u64::MAX),
                BatchPayload {
                    snapshot: Arc::clone(&self.snapshots[batch.model]),
                    batch,
                },
            ));
        }

        let results = self.engine.run_jobs_supervised(
            jobs,
            self.config.supervision,
            |payload: &BatchPayload, _attempt| -> Result<Vec<usize>, ServeError> {
                let snapshot = &payload.snapshot;
                let mut slab = RequestSlab::new(snapshot.input_dim(), snapshot.num_classes());
                for request in &payload.batch.requests {
                    slab.push(&request.pixels, presentation_seed(request.item), 0)
                        .map_err(|e| ServeError::Build(e.to_string()))?;
                }
                let mut replica = snapshot.replica()?;
                let mut predictions = Vec::new();
                replica.predict_batch(&slab.batch(), &mut predictions);
                snapshot.release(replica);
                Ok(predictions)
            },
        );

        // Pull every finished stopwatch out in one short critical
        // section, then read the clock and file metrics with the lock
        // dropped: `Recorder` is open-ended `dyn` (an implementation may
        // block, or call back into the server and re-take `state`), and
        // `submit` already records outside the lock for the same reason
        // — the admission and drain paths must agree on that order.
        let mut pulled: Vec<(u64, Option<Stopwatch>)> = Vec::new();
        {
            let mut state = lock_or_recover(&self.state);
            for meta in &metas {
                for &(ticket, _) in &meta.tickets {
                    pulled.push((ticket.0, state.watches.remove(&ticket.0)));
                }
            }
        }
        let latencies: BTreeMap<u64, u64> = pulled
            .into_iter()
            .filter_map(|(id, watch)| watch.and_then(|w| w.elapsed_ns()).map(|ns| (id, ns)))
            .collect();

        let mut completed = 0usize;
        let mut responses: Vec<Response> = Vec::new();
        for (meta, result) in metas.iter().zip(results) {
            recorder.add("serve.batches", 1);
            recorder.observe("serve.batch_size", meta.tickets.len() as f64);
            for (k, &(ticket, item)) in meta.tickets.iter().enumerate() {
                let outcome = match &result {
                    Ok(Ok(predictions)) => {
                        predictions
                            .get(k)
                            .copied()
                            .ok_or_else(|| ServeError::BatchFailed {
                                batch: meta.seq,
                                message: "prediction missing from batch output".to_string(),
                            })
                    }
                    Ok(Err(serve_err)) => Err(serve_err.clone()),
                    Err(engine_err) => Err(ServeError::BatchFailed {
                        batch: meta.seq,
                        message: engine_err.to_string(),
                    }),
                };
                let latency_ns = latencies.get(&ticket.0).copied();
                if let Some(nanos) = latency_ns {
                    recorder.record_latency("serve.latency_ns", nanos);
                }
                responses.push(Response {
                    ticket,
                    model: meta.model,
                    item,
                    batch: meta.seq,
                    outcome,
                    latency_ns,
                });
                completed += 1;
            }
        }

        let mut state = lock_or_recover(&self.state);
        for response in responses {
            state.responses.insert(response.ticket.0, response);
            state.in_flight = state.in_flight.saturating_sub(1);
        }
        drop(state);
        recorder.add(
            "serve.responses",
            u64::try_from(completed).unwrap_or(u64::MAX),
        );
        completed
    }

    /// Removes and returns the response for `ticket`, if it has been
    /// served.
    pub fn take_response(&self, ticket: Ticket) -> Option<Response> {
        lock_or_recover(&self.state).responses.remove(&ticket.0)
    }

    /// Flushes and drains until nothing is in flight; returns how many
    /// requests completed. The loop is bounded: every pass either
    /// completes requests or proves the queue empty.
    pub fn run_until_idle(&self) -> usize {
        let mut total = 0;
        loop {
            total += self.drain();
            if lock_or_recover(&self.state).in_flight == 0 {
                return total;
            }
            self.flush();
            let completed = self.drain();
            total += completed;
            if completed == 0 {
                // In flight but nothing sealed nor pending: every
                // remaining ticket already has a response filed.
                return total;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_core::{ExperimentScale, FitBudget, ModelSpec};
    use nc_dataset::{digits::DigitsSpec, Difficulty};
    use nc_mlp::Activation;

    fn engine(threads: usize) -> Arc<Engine> {
        Arc::new(
            Engine::builder()
                .threads(threads)
                .scale(ExperimentScale::Tiny)
                .build(),
        )
    }

    fn snapshot(name: &str, seed: u64) -> Arc<ModelSnapshot> {
        let (train, _) = DigitsSpec {
            train: 12,
            test: 4,
            seed: 3,
            difficulty: Difficulty::default(),
        }
        .generate();
        let spec = ModelSpec::QuantizedMlp {
            sizes: vec![784, 6, 10],
            activation: Activation::sigmoid(),
            seed,
        };
        let budget = FitBudget {
            epochs: 1,
            stdp_epochs: 1,
            stdp_delta: 8,
            learning_rate: None,
        };
        Arc::new(ModelSnapshot::prepare(name, spec, budget, Arc::new(train), None).unwrap())
    }

    #[test]
    fn empty_and_duplicate_registration_are_rejected() {
        assert_eq!(
            Server::new(engine(1), ServeConfig::default(), vec![]).unwrap_err(),
            ServeError::NoModels
        );
        let err = Server::new(
            engine(1),
            ServeConfig::default(),
            vec![snapshot("m", 1), snapshot("m", 2)],
        )
        .unwrap_err();
        assert_eq!(err, ServeError::DuplicateModel("m".to_string()));
    }

    #[test]
    fn submit_validates_name_and_geometry_before_admission() {
        let server =
            Server::new(engine(1), ServeConfig::default(), vec![snapshot("q", 1)]).unwrap();
        assert!(matches!(
            server.submit("absent", &[0; 784], 0),
            Err(ServeError::UnknownModel(_))
        ));
        assert_eq!(
            server.submit("q", &[0; 3], 0).unwrap_err(),
            ServeError::Geometry {
                model: "q".to_string(),
                expected: 784,
                got: 3,
            }
        );
        assert_eq!(server.in_flight(), 0);
    }

    #[test]
    fn full_window_serves_without_an_explicit_flush() {
        let (_, test) = DigitsSpec {
            train: 12,
            test: 4,
            seed: 3,
            difficulty: Difficulty::default(),
        }
        .generate();
        let config = ServeConfig {
            batch_window: 2,
            ..ServeConfig::default()
        };
        let server = Server::new(engine(2), config, vec![snapshot("q", 1)]).unwrap();
        let t0 = server.submit("q", &test.samples()[0].pixels, 0).unwrap();
        let t1 = server.submit("q", &test.samples()[1].pixels, 1).unwrap();
        assert_eq!(server.drain(), 2);
        let r0 = server.take_response(t0).unwrap();
        let r1 = server.take_response(t1).unwrap();
        assert_eq!(r0.batch, r1.batch);
        assert!(r0.outcome.is_ok() && r1.outcome.is_ok());
        assert_eq!(server.in_flight(), 0);
        // Responses are take-once.
        assert!(server.take_response(t0).is_none());
    }

    #[test]
    fn run_until_idle_flushes_partial_windows() {
        let (_, test) = DigitsSpec {
            train: 12,
            test: 4,
            seed: 3,
            difficulty: Difficulty::default(),
        }
        .generate();
        let server =
            Server::new(engine(1), ServeConfig::default(), vec![snapshot("q", 1)]).unwrap();
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| {
                server
                    .submit("q", &test.samples()[i].pixels, u64::try_from(i).unwrap())
                    .unwrap()
            })
            .collect();
        assert_eq!(server.run_until_idle(), 3);
        for t in tickets {
            assert!(server.take_response(t).unwrap().outcome.is_ok());
        }
        // Idle server: nothing to do, loop terminates immediately.
        assert_eq!(server.run_until_idle(), 0);
    }

    #[test]
    fn latency_is_none_with_a_disabled_recorder() {
        let (_, test) = DigitsSpec {
            train: 12,
            test: 4,
            seed: 3,
            difficulty: Difficulty::default(),
        }
        .generate();
        // Engine::builder() defaults to the NullRecorder (disabled), so
        // the serving path must never read the clock.
        let server =
            Server::new(engine(1), ServeConfig::default(), vec![snapshot("q", 1)]).unwrap();
        let t = server.submit("q", &test.samples()[0].pixels, 0).unwrap();
        server.run_until_idle();
        assert_eq!(server.take_response(t).unwrap().latency_ns, None);
    }
}
