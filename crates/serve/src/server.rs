//! The in-process serving front end: validate → admit (shed / breaker
//! / deadline-stamp) → coalesce → execute on the engine's supervised
//! jobs (plus serve-level retry rounds) → respond, emitting the
//! deterministic [`ServeEvent`] trace along the way.

use crate::coalescer::{presentation_seed, Coalescer, SealedBatch, Ticket};
use crate::resilience::{Admission, Breaker, BreakerFlip, ResilienceConfig, ServeEvent};
use crate::snapshot::ModelSnapshot;
use crate::ServeError;
use nc_core::{ChaosPlan, Engine, FaultPlan, Job, Supervision};
use nc_dataset::RequestSlab;
use nc_obs::Stopwatch;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serving policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Requests per model a batch seals at (count-based, clamped to at
    /// least 1; see [`Coalescer`] for why it is not a time window).
    pub batch_window: usize,
    /// Supervision policy batches execute under: panic isolation always,
    /// plus deterministic retries / sample budget as configured.
    pub supervision: Supervision,
    /// Admission control, deadlines, serve-level retries, and circuit
    /// breaking. The default disables all of them.
    pub resilience: ResilienceConfig,
    /// Optional seeded chaos schedule (replica panics, slow batches,
    /// poisoned responses, transient-fault bursts) — the test harness
    /// the resilience layer is measured under.
    pub chaos: Option<ChaosPlan>,
}

impl Default for ServeConfig {
    /// Window of 8 — the knee of the latency/throughput frontier at the
    /// bench's model sizes — fail-fast supervision, no resilience
    /// policy, no chaos.
    fn default() -> Self {
        ServeConfig {
            batch_window: 8,
            supervision: Supervision::default(),
            resilience: ResilienceConfig::default(),
            chaos: None,
        }
    }
}

/// The server's answer to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's admission ticket.
    pub ticket: Ticket,
    /// Index of the model snapshot that served it (the fallback's index
    /// for a degraded request).
    pub model: usize,
    /// The request's stream item index (echoed from
    /// [`Server::submit`]).
    pub item: u64,
    /// Sequence number of the sealed batch that carried it.
    pub batch: u64,
    /// The predicted class, or why the batch could not produce one.
    pub outcome: Result<usize, ServeError>,
    /// `true` when a tripped breaker degraded this request to the
    /// fallback model.
    pub degraded: bool,
    /// Admission→response latency; `None` when the engine's recorder is
    /// disabled (the clock is never read then).
    pub latency_ns: Option<u64>,
}

/// Everything mutable, guarded by one mutex: the admission queue, the
/// virtual clock, the per-ticket stopwatches, the finished responses,
/// the breakers, the event trace, and the in-flight count.
#[derive(Debug)]
struct ServerState {
    coalescer: Coalescer,
    now: u64,
    watches: BTreeMap<u64, Stopwatch>,
    responses: BTreeMap<u64, Response>,
    breakers: Vec<Breaker>,
    degraded: BTreeSet<u64>,
    events: Vec<ServeEvent>,
    in_flight: usize,
}

/// Alignment metadata for one dispatched batch, kept *outside* the job
/// payloads: `run_jobs_supervised` consumes payloads and returns only
/// outputs, so ticket/item bookkeeping rides alongside, zipped back by
/// job index.
struct BatchMeta {
    seq: u64,
    model: usize,
    tickets: Vec<(Ticket, u64, Option<u64>)>,
}

/// One job's payload: the shared snapshot, the (shared) batch to
/// classify, and the chaos context the worker consults. `slot` indexes
/// the drain-local replica-loss accumulators.
struct BatchPayload {
    snapshot: Arc<ModelSnapshot>,
    batch: Arc<SealedBatch>,
    slot: usize,
    now: u64,
    burst: Option<FaultPlan>,
    chaos: Option<ChaosPlan>,
    /// Global attempt offset: serve-level retry round `r` runs engine
    /// attempts `r * (max_retries + 1) ..`, so the chaos plan's
    /// `panic_attempts` counts across rounds.
    attempt_base: u32,
}

/// The in-process inference server. Thread-safe: any thread may
/// [`Server::submit`]; any thread may [`Server::drain`] — execution
/// parallelism comes from the engine's worker pool, the server itself
/// spawns nothing (lint rule R6).
#[derive(Debug)]
pub struct Server {
    engine: Arc<Engine>,
    config: ServeConfig,
    snapshots: Vec<Arc<ModelSnapshot>>,
    names: BTreeMap<String, usize>,
    state: Mutex<ServerState>,
}

impl Server {
    /// A server over `snapshots`, executing on `engine`.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModels`] without snapshots,
    /// [`ServeError::DuplicateModel`] when two share a name,
    /// [`ServeError::Config`] for an invalid chaos plan or an
    /// out-of-range breaker fallback index.
    pub fn new(
        engine: Arc<Engine>,
        config: ServeConfig,
        snapshots: Vec<Arc<ModelSnapshot>>,
    ) -> Result<Server, ServeError> {
        if snapshots.is_empty() {
            return Err(ServeError::NoModels);
        }
        let mut names = BTreeMap::new();
        for (index, snapshot) in snapshots.iter().enumerate() {
            if names.insert(snapshot.name().to_string(), index).is_some() {
                return Err(ServeError::DuplicateModel(snapshot.name().to_string()));
            }
        }
        if let Some(chaos) = &config.chaos {
            chaos
                .validate()
                .map_err(|e| ServeError::Config(format!("chaos plan: {e}")))?;
        }
        if let Some(breaker) = &config.resilience.breaker {
            if let Some(fallback) = breaker.fallback {
                if fallback >= snapshots.len() {
                    return Err(ServeError::Config(format!(
                        "breaker fallback index {fallback} out of range ({} models)",
                        snapshots.len()
                    )));
                }
            }
        }
        let coalescer = Coalescer::new(snapshots.len(), config.batch_window);
        let breakers = (0..snapshots.len())
            .map(|_| Breaker::new(config.resilience.breaker))
            .collect();
        Ok(Server {
            engine,
            config,
            snapshots,
            names,
            state: Mutex::new(ServerState {
                coalescer,
                now: 0,
                watches: BTreeMap::new(),
                responses: BTreeMap::new(),
                breakers,
                degraded: BTreeSet::new(),
                events: Vec::new(),
                in_flight: 0,
            }),
        })
    }

    /// The serving names, in registration order.
    pub fn model_names(&self) -> Vec<&str> {
        self.snapshots.iter().map(|s| s.name()).collect()
    }

    /// Requests admitted but not yet answered.
    pub fn in_flight(&self) -> usize {
        lock_or_recover(&self.state).in_flight
    }

    /// The server's virtual clock: the tick deadlines, breaker
    /// cooldowns, and chaos schedules are measured against. Starts at 0
    /// and only moves via [`Server::advance_tick`] — never a wall
    /// clock.
    pub fn now(&self) -> u64 {
        lock_or_recover(&self.state).now
    }

    /// Advances the virtual clock one tick and returns the new time.
    /// The load generator calls this once per closed-loop tick; direct
    /// drivers call it to model time passing between submissions.
    pub fn advance_tick(&self) -> u64 {
        let mut state = lock_or_recover(&self.state);
        state.now += 1;
        state.now
    }

    /// Takes the resilience event trace accumulated so far (shed,
    /// degraded, deadline, retry, quarantine, burst, poison, breaker
    /// transitions), in emission order. Emission order is deterministic
    /// — events are only appended by `submit`/`drain` calls, in a fixed
    /// order within each — so the trace is part of the bit-identical
    /// outcome contract.
    pub fn take_events(&self) -> Vec<ServeEvent> {
        std::mem::take(&mut lock_or_recover(&self.state).events)
    }

    /// Admits one request: `item` is the request's stream index, which
    /// fixes its presentation seed to the offline convention
    /// (`EVAL_PRESENTATION_SEED_BASE | item`) no matter which batch it
    /// lands in. Returns the ticket [`Server::take_response`] answers
    /// under.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] / [`ServeError::Geometry`] — both
    /// checked before admission, so a bad request never occupies a
    /// batch slot. [`ServeError::Shed`] when the queue is at the
    /// policy's limit, [`ServeError::BreakerOpen`] when the model's
    /// breaker is open and no (geometry-compatible) fallback exists.
    pub fn submit(&self, model: &str, pixels: &[u8], item: u64) -> Result<Ticket, ServeError> {
        let Some(&index) = self.names.get(model) else {
            return Err(ServeError::UnknownModel(model.to_string()));
        };
        let expected = self.snapshots[index].input_dim();
        if pixels.len() != expected {
            return Err(ServeError::Geometry {
                model: model.to_string(),
                expected,
                got: pixels.len(),
            });
        }
        // Latency is admission→response; the watch only runs (and the
        // clock is only read) when someone is listening.
        let watch = Stopwatch::start_if(self.engine.recorder().enabled());
        let resilience = &self.config.resilience;
        let mut state = lock_or_recover(&self.state);
        let now = state.now;

        // Bounded admission: a full queue sheds before any batch slot
        // is consumed.
        if let Some(limit) = resilience.queue_limit {
            if state.in_flight >= limit {
                state.events.push(ServeEvent::Shed {
                    tick: now,
                    model: index,
                    item,
                });
                drop(state);
                self.engine.recorder().add("serve.shed", 1);
                return Err(ServeError::Shed {
                    model: model.to_string(),
                });
            }
        }

        // Circuit breaking: route to primary, probe, fallback, or
        // refuse. The probe ticket is registered after admission.
        let mut serve_on = index;
        let mut is_probe = false;
        match state.breakers[index].admit(now) {
            Admission::Primary => {}
            Admission::Probe => is_probe = true,
            Admission::Fallback(fallback)
                if self.snapshots[fallback].input_dim() == pixels.len() =>
            {
                serve_on = fallback;
            }
            Admission::Fallback(_) | Admission::Refuse => {
                state.events.push(ServeEvent::Shed {
                    tick: now,
                    model: index,
                    item,
                });
                drop(state);
                self.engine.recorder().add("serve.breaker.rejected", 1);
                return Err(ServeError::BreakerOpen {
                    model: model.to_string(),
                });
            }
        }

        let deadline = resilience.deadline_ticks.map(|ticks| now + ticks);
        let ticket = state
            .coalescer
            .admit(serve_on, item, pixels.to_vec(), deadline);
        if is_probe {
            state.breakers[index].set_probe(ticket.0);
            state.events.push(ServeEvent::BreakerHalfOpen {
                tick: now,
                model: index,
                probe: ticket.0,
            });
        }
        let degraded = serve_on != index;
        if degraded {
            state.degraded.insert(ticket.0);
            state.events.push(ServeEvent::Degraded {
                tick: now,
                ticket: ticket.0,
                from: index,
                to: serve_on,
            });
        }
        state.watches.insert(ticket.0, watch);
        state.in_flight += 1;
        drop(state);
        let recorder = self.engine.recorder();
        recorder.add("serve.requests", 1);
        if degraded {
            recorder.add("serve.degraded", 1);
        }
        if is_probe {
            recorder.add("serve.breaker.half_open", 1);
        }
        Ok(ticket)
    }

    /// Seals every partial batch — the deterministic stand-in for a
    /// batch-window timeout, invoked by callers (or the load generator)
    /// when the request stream stalls.
    pub fn flush(&self) {
        lock_or_recover(&self.state).coalescer.flush();
    }

    /// Executes every sealed batch on the engine and files the
    /// responses; returns how many requests completed (including
    /// requests answered with an error). Batches run as supervised
    /// jobs: a panicking batch is caught (and retried per the config's
    /// [`Supervision`], then per the resilience policy's serve-level
    /// retry rounds), its requests answer with
    /// [`ServeError::BatchFailed`], and sibling batches complete.
    /// Under a chaos plan this is also where scheduled panics, slow
    /// batches, response poison, and transient-fault bursts strike.
    pub fn drain(&self) -> usize {
        let (sealed, now) = {
            let mut state = lock_or_recover(&self.state);
            (state.coalescer.take_sealed(), state.now)
        };
        if sealed.is_empty() {
            return 0;
        }
        let recorder = self.engine.recorder();
        let chaos = self.config.chaos;
        let resilience = self.config.resilience;
        let mut events: Vec<ServeEvent> = Vec::new();

        // Seal-time deadline enforcement: requests already expired when
        // their batch seals answer immediately and never run.
        let mut responses: Vec<Response> = Vec::new();
        let mut batches: Vec<Arc<SealedBatch>> = Vec::new();
        for mut batch in sealed {
            let (expired, live): (Vec<_>, Vec<_>) = batch
                .requests
                .drain(..)
                .partition(|r| r.deadline.is_some_and(|d| now > d));
            for request in expired {
                events.push(ServeEvent::DeadlineMissed {
                    tick: now,
                    ticket: request.ticket.0,
                    batch: batch.seq,
                    at_seal: true,
                });
                responses.push(Response {
                    ticket: request.ticket,
                    model: batch.model,
                    item: request.item,
                    batch: batch.seq,
                    outcome: Err(ServeError::DeadlineMissed {
                        deadline: request.deadline.unwrap_or_default(),
                        at: now,
                    }),
                    degraded: false,
                    latency_ns: None,
                });
            }
            if !live.is_empty() {
                batch.requests = live;
                batches.push(Arc::new(batch));
            }
        }

        // The tick-wide transient-fault burst, decorrelated per batch.
        let storm = chaos.and_then(|c| c.burst_plan(now));
        if storm.is_some() && !batches.is_empty() {
            events.push(ServeEvent::Burst {
                tick: now,
                batches: u64::try_from(batches.len()).unwrap_or(u64::MAX),
            });
        }

        let mut metas = Vec::with_capacity(batches.len());
        for batch in &batches {
            metas.push(BatchMeta {
                seq: batch.seq,
                model: batch.model,
                tickets: batch
                    .requests
                    .iter()
                    .map(|r| (r.ticket, r.item, r.deadline))
                    .collect(),
            });
        }
        // Replica-loss accumulators, one per batch slot: workers record
        // each panicking attempt here before resuming the unwind, so
        // quarantine accounting is exact at any thread count.
        let losses: Vec<AtomicU32> = (0..batches.len()).map(|_| AtomicU32::new(0)).collect();

        let make_jobs = |selection: &[usize], attempt_base: u32| -> Vec<Job<BatchPayload>> {
            selection
                .iter()
                .map(|&slot| {
                    let batch = &batches[slot];
                    Job::new(
                        format!("serve/batch{}", batch.seq),
                        u64::try_from(batch.requests.len()).unwrap_or(u64::MAX),
                        BatchPayload {
                            snapshot: Arc::clone(&self.snapshots[batch.model]),
                            batch: Arc::clone(batch),
                            slot,
                            now,
                            burst: storm.map(|plan| plan.for_site(batch.seq)),
                            chaos,
                            attempt_base,
                        },
                    )
                })
                .collect()
        };
        let worker = |payload: &BatchPayload, attempt: nc_core::Attempt| {
            run_batch(payload, attempt, &losses)
        };

        // Round 0 under the configured supervision, then bounded
        // serve-level retry rounds for batches that failed every
        // attempt, each under a jittered re-derivation of the policy.
        let all_slots: Vec<usize> = (0..batches.len()).collect();
        let mut results = self.engine.run_jobs_supervised(
            make_jobs(&all_slots, 0),
            self.config.supervision,
            worker,
        );
        let attempts_per_round = self.config.supervision.max_retries + 1;
        for round in 1..=resilience.batch_retries {
            let failed: Vec<usize> = results
                .iter()
                .enumerate()
                .filter_map(|(slot, r)| r.is_err().then_some(slot))
                .collect();
            if failed.is_empty() {
                break;
            }
            for &slot in &failed {
                events.push(ServeEvent::BatchRetried {
                    tick: now,
                    batch: metas[slot].seq,
                    round,
                });
                recorder.add("serve.retried", 1);
            }
            let jittered = Supervision {
                retry_seed: resilience.retry_seed,
                ..self.config.supervision
            }
            .jittered(u64::from(round));
            let retry_results = self.engine.run_jobs_supervised(
                make_jobs(&failed, round.saturating_mul(attempts_per_round)),
                jittered,
                worker,
            );
            for (&slot, result) in failed.iter().zip(retry_results) {
                results[slot] = result;
            }
        }

        // Pull every finished stopwatch out in one short critical
        // section, then read the clock and file metrics with the lock
        // dropped: `Recorder` is open-ended `dyn` (an implementation may
        // block, or call back into the server and re-take `state`), and
        // `submit` already records outside the lock for the same reason
        // — the admission and drain paths must agree on that order.
        let mut pulled: Vec<(u64, Option<Stopwatch>)> = Vec::new();
        {
            let mut state = lock_or_recover(&self.state);
            for response in &responses {
                pulled.push((response.ticket.0, state.watches.remove(&response.ticket.0)));
            }
            for meta in &metas {
                for &(ticket, _, _) in &meta.tickets {
                    pulled.push((ticket.0, state.watches.remove(&ticket.0)));
                }
            }
        }
        let latencies: BTreeMap<u64, u64> = pulled
            .into_iter()
            .filter_map(|(id, watch)| watch.and_then(|w| w.elapsed_ns()).map(|ns| (id, ns)))
            .collect();

        // Every response built so far is a seal-time expiration (the
        // batch loop below appends the rest). They must report exactly
        // like completion-time misses: same latency accounting from the
        // pulled stopwatches, same `serve.deadline_missed` metric —
        // whether the batch sealed on its count window or on a
        // flush-on-stall makes no difference to the request that missed.
        let mut deadline_missed = u64::try_from(responses.len()).unwrap_or(u64::MAX);
        for response in &mut responses {
            let latency_ns = latencies.get(&response.ticket.0).copied();
            if let Some(nanos) = latency_ns {
                recorder.record_latency("serve.latency_ns", nanos);
            }
            response.latency_ns = latency_ns;
        }

        let mut replica_lost = 0u64;
        let mut poisoned = 0u64;
        // `(model, ok, ticket ids)` per batch, fed to the breakers in
        // seal order inside the final critical section.
        let mut breaker_feed: Vec<(usize, bool, Vec<u64>)> = Vec::new();
        for (slot, (meta, result)) in metas.iter().zip(results).enumerate() {
            recorder.add("serve.batches", 1);
            recorder.observe("serve.batch_size", meta.tickets.len() as f64);
            let lost = losses[slot].load(Ordering::Relaxed);
            if lost > 0 {
                events.push(ServeEvent::ReplicaQuarantined {
                    tick: now,
                    model: meta.model,
                    batch: meta.seq,
                    lost,
                });
                replica_lost += u64::from(lost);
            }
            let delay = chaos.map_or(0, |c| c.delay_ticks(meta.seq));
            let completion = now + delay;
            let batch_ok = matches!(&result, Ok(Ok(_)));
            breaker_feed.push((
                meta.model,
                batch_ok,
                meta.tickets.iter().map(|&(t, _, _)| t.0).collect(),
            ));
            for (k, &(ticket, item, deadline)) in meta.tickets.iter().enumerate() {
                let mut outcome = match &result {
                    Ok(Ok(predictions)) => {
                        predictions
                            .get(k)
                            .copied()
                            .ok_or_else(|| ServeError::BatchFailed {
                                batch: meta.seq,
                                message: "prediction missing from batch output".to_string(),
                            })
                    }
                    Ok(Err(serve_err)) => Err(serve_err.clone()),
                    Err(engine_err) => Err(ServeError::BatchFailed {
                        batch: meta.seq,
                        message: engine_err.to_string(),
                    }),
                };
                if outcome.is_ok() {
                    if let Some(deadline) = deadline.filter(|&d| completion > d) {
                        // The batch answered, but (chaos-delayed) past
                        // the request's deadline.
                        events.push(ServeEvent::DeadlineMissed {
                            tick: now,
                            ticket: ticket.0,
                            batch: meta.seq,
                            at_seal: false,
                        });
                        deadline_missed += 1;
                        outcome = Err(ServeError::DeadlineMissed {
                            deadline,
                            at: completion,
                        });
                    } else if let Some(plan) = chaos.filter(|c| c.poisons_item(item)) {
                        // Poison serves a deterministic wrong class —
                        // an *answered* request with a corrupted value,
                        // which is exactly why the trace records it.
                        let classes = self.snapshots[meta.model].num_classes();
                        outcome =
                            outcome.map(|honest| plan.poisoned_prediction(item, honest, classes));
                        events.push(ServeEvent::Poisoned {
                            tick: now,
                            ticket: ticket.0,
                            batch: meta.seq,
                        });
                        poisoned += 1;
                    }
                }
                let latency_ns = latencies.get(&ticket.0).copied();
                if let Some(nanos) = latency_ns {
                    recorder.record_latency("serve.latency_ns", nanos);
                }
                responses.push(Response {
                    ticket,
                    model: meta.model,
                    item,
                    batch: meta.seq,
                    outcome,
                    degraded: false,
                    latency_ns,
                });
            }
        }

        let completed = responses.len();
        {
            let mut state = lock_or_recover(&self.state);
            for (model, ok, tickets) in breaker_feed {
                match state.breakers[model].on_batch(ok, &tickets, now) {
                    Some(BreakerFlip::Opened) => {
                        events.push(ServeEvent::BreakerOpened { tick: now, model });
                    }
                    Some(BreakerFlip::Closed) => {
                        events.push(ServeEvent::BreakerClosed { tick: now, model });
                    }
                    None => {}
                }
            }
            for mut response in responses {
                response.degraded = state.degraded.remove(&response.ticket.0);
                state.responses.insert(response.ticket.0, response);
                state.in_flight = state.in_flight.saturating_sub(1);
            }
            state.events.append(&mut events);
        }
        recorder.add(
            "serve.responses",
            u64::try_from(completed).unwrap_or(u64::MAX),
        );
        if replica_lost > 0 {
            recorder.add("serve.replica_lost", replica_lost);
        }
        if deadline_missed > 0 {
            recorder.add("serve.deadline_missed", deadline_missed);
        }
        if poisoned > 0 {
            recorder.add("serve.poisoned", poisoned);
        }
        completed
    }

    /// Removes and returns the response for `ticket`, if it has been
    /// served.
    pub fn take_response(&self, ticket: Ticket) -> Option<Response> {
        lock_or_recover(&self.state).responses.remove(&ticket.0)
    }

    /// Flushes and drains until nothing is in flight; returns how many
    /// requests completed. The loop is bounded: every pass either
    /// completes requests or proves the queue empty.
    pub fn run_until_idle(&self) -> usize {
        let mut total = 0;
        loop {
            total += self.drain();
            if lock_or_recover(&self.state).in_flight == 0 {
                return total;
            }
            self.flush();
            let completed = self.drain();
            total += completed;
            if completed == 0 {
                // In flight but nothing sealed nor pending: every
                // remaining ticket already has a response filed.
                return total;
            }
        }
    }
}

/// One supervised attempt of one batch: build the request slab, check
/// out a replica (a freshly-injected one-shot under a burst), run the
/// batched prediction path, and return the replica to the pool.
///
/// A chaos-scheduled panic strikes *after* checkout, so it consumes the
/// replica exactly as a real mid-inference panic would: the unwinding
/// attempt records the loss in its slot (quarantine accounting), the
/// engine's supervision catches the panic, and the next checkout
/// rebuilds bit-identically from the snapshot recipe.
fn run_batch(
    payload: &BatchPayload,
    attempt: nc_core::Attempt,
    losses: &[AtomicU32],
) -> Result<Vec<usize>, ServeError> {
    let snapshot = &payload.snapshot;
    let mut slab = RequestSlab::new(snapshot.input_dim(), snapshot.num_classes());
    for request in &payload.batch.requests {
        slab.push(&request.pixels, presentation_seed(request.item), 0)
            .map_err(|e| ServeError::Build(e.to_string()))?;
    }
    let global_attempt = payload.attempt_base.saturating_add(attempt.index);
    let chaos_strikes = payload.chaos.as_ref().is_some_and(|plan| {
        payload
            .batch
            .requests
            .iter()
            .any(|r| plan.should_panic(r.item, payload.now, global_attempt))
    });
    let mut replica = match &payload.burst {
        Some(plan) => snapshot.burst_replica(plan)?,
        None => snapshot.replica()?,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if chaos_strikes {
            // nc-lint: allow(R5, reason = "deliberate chaos-scheduled replica panic; caught by the engine's supervision")
            panic!(
                "chaos: scheduled replica panic (batch {})",
                payload.batch.seq
            );
        }
        let mut predictions = Vec::new();
        replica.predict_batch(&slab.batch(), &mut predictions);
        predictions
    }));
    match outcome {
        Ok(predictions) => {
            // Burst replicas carry injected faults and are discarded;
            // healthy replicas return to the pool.
            if payload.burst.is_none() {
                snapshot.release(replica);
            }
            Ok(predictions)
        }
        Err(panic) => {
            // The replica dies with the attempt (it is dropped here,
            // never released). Record the loss, then let the engine's
            // supervision observe the panic as usual.
            snapshot.note_lost();
            if let Some(slot) = losses.get(payload.slot) {
                slot.fetch_add(1, Ordering::Relaxed);
            }
            resume_unwind(panic)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::BreakerConfig;
    use nc_core::{ExperimentScale, FitBudget, ModelSpec};
    use nc_dataset::{digits::DigitsSpec, Difficulty};
    use nc_mlp::Activation;

    fn engine(threads: usize) -> Arc<Engine> {
        Arc::new(
            Engine::builder()
                .threads(threads)
                .scale(ExperimentScale::Tiny)
                .build(),
        )
    }

    fn snapshot(name: &str, seed: u64) -> Arc<ModelSnapshot> {
        let (train, _) = DigitsSpec {
            train: 12,
            test: 4,
            seed: 3,
            difficulty: Difficulty::default(),
        }
        .generate();
        let spec = ModelSpec::QuantizedMlp {
            sizes: vec![784, 6, 10],
            activation: Activation::sigmoid(),
            seed,
        };
        let budget = FitBudget {
            epochs: 1,
            stdp_epochs: 1,
            stdp_delta: 8,
            learning_rate: None,
        };
        Arc::new(ModelSnapshot::prepare(name, spec, budget, Arc::new(train), None).unwrap())
    }

    #[test]
    fn empty_and_duplicate_registration_are_rejected() {
        assert_eq!(
            Server::new(engine(1), ServeConfig::default(), vec![]).unwrap_err(),
            ServeError::NoModels
        );
        let err = Server::new(
            engine(1),
            ServeConfig::default(),
            vec![snapshot("m", 1), snapshot("m", 2)],
        )
        .unwrap_err();
        assert_eq!(err, ServeError::DuplicateModel("m".to_string()));
    }

    #[test]
    fn invalid_chaos_and_fallback_configs_are_rejected_at_construction() {
        let mut bad_chaos = ChaosPlan::quiet(1);
        bad_chaos.panic_rate = 7.0;
        let config = ServeConfig {
            chaos: Some(bad_chaos),
            ..ServeConfig::default()
        };
        let err = Server::new(engine(1), config, vec![snapshot("q", 1)]).unwrap_err();
        assert!(matches!(err, ServeError::Config(_)), "{err}");

        let config = ServeConfig {
            resilience: ResilienceConfig {
                breaker: Some(BreakerConfig {
                    fallback: Some(9),
                    ..BreakerConfig::default()
                }),
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let err = Server::new(engine(1), config, vec![snapshot("q", 1)]).unwrap_err();
        assert!(err.to_string().contains("fallback index 9"), "{err}");
    }

    #[test]
    fn submit_validates_name_and_geometry_before_admission() {
        let server =
            Server::new(engine(1), ServeConfig::default(), vec![snapshot("q", 1)]).unwrap();
        assert!(matches!(
            server.submit("absent", &[0; 784], 0),
            Err(ServeError::UnknownModel(_))
        ));
        assert_eq!(
            server.submit("q", &[0; 3], 0).unwrap_err(),
            ServeError::Geometry {
                model: "q".to_string(),
                expected: 784,
                got: 3,
            }
        );
        assert_eq!(server.in_flight(), 0);
    }

    #[test]
    fn full_window_serves_without_an_explicit_flush() {
        let (_, test) = DigitsSpec {
            train: 12,
            test: 4,
            seed: 3,
            difficulty: Difficulty::default(),
        }
        .generate();
        let config = ServeConfig {
            batch_window: 2,
            ..ServeConfig::default()
        };
        let server = Server::new(engine(2), config, vec![snapshot("q", 1)]).unwrap();
        let t0 = server.submit("q", &test.samples()[0].pixels, 0).unwrap();
        let t1 = server.submit("q", &test.samples()[1].pixels, 1).unwrap();
        assert_eq!(server.drain(), 2);
        let r0 = server.take_response(t0).unwrap();
        let r1 = server.take_response(t1).unwrap();
        assert_eq!(r0.batch, r1.batch);
        assert!(r0.outcome.is_ok() && r1.outcome.is_ok());
        assert!(!r0.degraded && !r1.degraded);
        assert_eq!(server.in_flight(), 0);
        // No resilience policy, no chaos: the trace stays empty.
        assert!(server.take_events().is_empty());
        // Responses are take-once.
        assert!(server.take_response(t0).is_none());
    }

    #[test]
    fn run_until_idle_flushes_partial_windows() {
        let (_, test) = DigitsSpec {
            train: 12,
            test: 4,
            seed: 3,
            difficulty: Difficulty::default(),
        }
        .generate();
        let server =
            Server::new(engine(1), ServeConfig::default(), vec![snapshot("q", 1)]).unwrap();
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| {
                server
                    .submit("q", &test.samples()[i].pixels, u64::try_from(i).unwrap())
                    .unwrap()
            })
            .collect();
        assert_eq!(server.run_until_idle(), 3);
        for t in tickets {
            assert!(server.take_response(t).unwrap().outcome.is_ok());
        }
        // Idle server: nothing to do, loop terminates immediately.
        assert_eq!(server.run_until_idle(), 0);
    }

    #[test]
    fn latency_is_none_with_a_disabled_recorder() {
        let (_, test) = DigitsSpec {
            train: 12,
            test: 4,
            seed: 3,
            difficulty: Difficulty::default(),
        }
        .generate();
        // Engine::builder() defaults to the NullRecorder (disabled), so
        // the serving path must never read the clock.
        let server =
            Server::new(engine(1), ServeConfig::default(), vec![snapshot("q", 1)]).unwrap();
        let t = server.submit("q", &test.samples()[0].pixels, 0).unwrap();
        server.run_until_idle();
        assert_eq!(server.take_response(t).unwrap().latency_ns, None);
    }

    #[test]
    fn queue_limit_sheds_with_an_event_and_no_admission() {
        let (_, test) = DigitsSpec {
            train: 12,
            test: 4,
            seed: 3,
            difficulty: Difficulty::default(),
        }
        .generate();
        let config = ServeConfig {
            resilience: ResilienceConfig {
                queue_limit: Some(2),
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let server = Server::new(engine(1), config, vec![snapshot("q", 1)]).unwrap();
        server.advance_tick();
        server.submit("q", &test.samples()[0].pixels, 0).unwrap();
        server.submit("q", &test.samples()[1].pixels, 1).unwrap();
        let err = server
            .submit("q", &test.samples()[2].pixels, 2)
            .unwrap_err();
        assert!(matches!(err, ServeError::Shed { .. }), "{err}");
        assert_eq!(server.in_flight(), 2);
        assert_eq!(
            server.take_events(),
            vec![ServeEvent::Shed {
                tick: 1,
                model: 0,
                item: 2
            }]
        );
        // Draining frees capacity; admission resumes.
        server.run_until_idle();
        assert!(server.submit("q", &test.samples()[2].pixels, 2).is_ok());
    }

    #[test]
    fn deadlines_expire_at_seal_when_the_clock_outruns_them() {
        let (_, test) = DigitsSpec {
            train: 12,
            test: 4,
            seed: 3,
            difficulty: Difficulty::default(),
        }
        .generate();
        let config = ServeConfig {
            resilience: ResilienceConfig {
                deadline_ticks: Some(2),
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let server = Server::new(engine(1), config, vec![snapshot("q", 1)]).unwrap();
        let t = server.submit("q", &test.samples()[0].pixels, 0).unwrap();
        // Admitted at tick 0 with deadline 2; the queue sits unflushed
        // until tick 3 — expired before it ever ran.
        for _ in 0..3 {
            server.advance_tick();
        }
        server.flush();
        assert_eq!(server.drain(), 1);
        let response = server.take_response(t).unwrap();
        assert_eq!(
            response.outcome,
            Err(ServeError::DeadlineMissed { deadline: 2, at: 3 })
        );
        let events = server.take_events();
        assert_eq!(
            events,
            vec![ServeEvent::DeadlineMissed {
                tick: 3,
                ticket: t.0,
                batch: 0,
                at_seal: true
            }]
        );
    }
}
