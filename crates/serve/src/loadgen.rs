//! Seeded, deterministic closed-loop load generation.
//!
//! A population of virtual users drives the server in discrete ticks:
//! each idle user draws a model (Zipfian mix — rank `r` weighted
//! `1/(r+1)`, integer cumulative table, no floats in the draw) and an
//! item (uniform over the test set) from its own SplitMix64 stream,
//! submits, and waits for its response before thinking for a few ticks
//! and going again. Every tick ends with a drain; a stalled tick (no
//! sealed batch) flushes the partial windows first — the deterministic
//! stand-in for a batch-window timeout.
//!
//! Everything is a pure function of [`LoadPlan`]: per-user RNG streams
//! derive from `plan.seed` (lint rule R7 — no entropy sources), users
//! are visited in index order, and the server's coalescer is itself
//! deterministic, so the full request/response trace is identical at
//! any engine thread count.

use crate::resilience::ServeEvent;
use crate::server::Server;
use crate::ServeError;
use nc_dataset::Dataset;
use nc_substrate::rng::SplitMix64;

/// The closed-loop workload description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadPlan {
    /// Root seed every per-user stream derives from.
    pub seed: u64,
    /// Concurrent virtual users (the closed-loop concurrency level).
    pub users: usize,
    /// Total requests to issue before stopping.
    pub requests: u64,
    /// Maximum think-time ticks a user idles after a response
    /// (uniform in `[0, think_max]`; 0 = no think time).
    pub think_max: u32,
}

impl Default for LoadPlan {
    fn default() -> Self {
        LoadPlan {
            seed: 0x5E21_0007,
            users: 8,
            requests: 256,
            think_max: 3,
        }
    }
}

/// What a load run produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Requests submitted.
    pub issued: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests answered with an error (e.g. a failed batch).
    pub failed: u64,
    /// Completed requests whose prediction matched the item's label.
    pub correct: u64,
    /// Ticks the loop ran.
    pub ticks: u64,
    /// Requests issued per model index — the observed Zipfian mix.
    pub per_model: Vec<u64>,
    /// Admission refusals (queue full or breaker open). Shed attempts
    /// do not count as issued; the user retries on a later tick.
    pub shed: u64,
    /// Requests answered with [`ServeError::DeadlineMissed`] (a subset
    /// of `failed`).
    pub deadline_missed: u64,
    /// Completed-or-failed requests a tripped breaker degraded to the
    /// fallback model.
    pub degraded: u64,
    /// Requests completed by a flush-on-stall drain — requests that sat
    /// in a partial window until the stream stalled, accounted
    /// explicitly so a stall-heavy run is visible in the outcome.
    pub stalled: u64,
    /// The server's resilience event trace for the run, in emission
    /// order — part of the bit-identical outcome contract the chaos
    /// conformance suite pins across thread counts.
    pub events: Vec<ServeEvent>,
}

impl LoadOutcome {
    /// Fraction of completed requests predicted correctly.
    pub fn accuracy(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.correct as f64 / self.completed as f64
        }
    }
}

/// One virtual user's closed-loop state.
struct User {
    rng: SplitMix64,
    /// `(ticket, item)` of the awaited request, if any.
    waiting: Option<(crate::Ticket, usize)>,
    think: u32,
}

/// The integer Zipf cumulative table: rank `r` weighted `SCALE/(r+1)`.
fn zipf_cumulative(models: usize) -> Vec<u64> {
    const SCALE: u64 = 1 << 32;
    let mut cumulative = Vec::with_capacity(models);
    let mut total = 0u64;
    for rank in 0..models {
        total += SCALE / (u64::try_from(rank).unwrap_or(u64::MAX) + 1);
        cumulative.push(total);
    }
    cumulative
}

fn pick_model(cumulative: &[u64], rng: &mut SplitMix64) -> usize {
    let total = cumulative.last().copied().unwrap_or(1);
    let draw = rng.next_below(total.max(1));
    cumulative.iter().position(|&edge| draw < edge).unwrap_or(0)
}

/// Runs `plan` against `server`, drawing items from `test` and models
/// from `models` (rank order = Zipf rank: put the hot model first).
/// Item `i` of `test` is submitted with stream index `i`, so served
/// predictions are comparable against offline evaluation of the same
/// set.
///
/// # Errors
///
/// [`ServeError::Config`] for an inconsistent plan, plus anything
/// [`Server::submit`] rejects (unknown model, geometry).
pub fn run_load(
    server: &Server,
    test: &Dataset,
    models: &[&str],
    plan: &LoadPlan,
) -> Result<LoadOutcome, ServeError> {
    if plan.users == 0 {
        return Err(ServeError::Config("plan needs at least one user".into()));
    }
    if models.is_empty() {
        return Err(ServeError::Config("plan names no models".into()));
    }
    if test.is_empty() {
        return Err(ServeError::Config("test dataset is empty".into()));
    }

    let cumulative = zipf_cumulative(models.len());
    let mut master = SplitMix64::new(plan.seed);
    let mut users: Vec<User> = (0..plan.users)
        .map(|_| User {
            rng: SplitMix64::new(master.next_u64()),
            waiting: None,
            think: 0,
        })
        .collect();

    let mut outcome = LoadOutcome {
        per_model: vec![0; models.len()],
        ..LoadOutcome::default()
    };
    let samples = test.samples();
    // Hard tick ceiling: under permanent shedding (a breaker that never
    // heals, a queue limit of 0) the closed loop could otherwise spin
    // forever. Generous enough that any healthy plan finishes first.
    let tick_cap = 256 + plan.requests.saturating_mul(u64::from(plan.think_max) + 8);

    while outcome.completed + outcome.failed < plan.requests && outcome.ticks < tick_cap {
        outcome.ticks = server.advance_tick();
        // Admission, in user-index order (the determinism contract).
        for user in &mut users {
            if user.waiting.is_some() {
                continue;
            }
            if user.think > 0 {
                user.think -= 1;
                continue;
            }
            if outcome.issued >= plan.requests {
                continue;
            }
            let model = pick_model(&cumulative, &mut user.rng);
            let item = user.rng.next_index(samples.len());
            match server.submit(
                models[model],
                &samples[item].pixels,
                u64::try_from(item).unwrap_or(u64::MAX),
            ) {
                Ok(ticket) => {
                    user.waiting = Some((ticket, item));
                    outcome.issued += 1;
                    outcome.per_model[model] += 1;
                }
                // Admission refusals are load-shedding working as
                // designed: count them and let the user retry with a
                // fresh draw next tick.
                Err(ServeError::Shed { .. } | ServeError::BreakerOpen { .. }) => {
                    outcome.shed += 1;
                }
                Err(other) => return Err(other),
            }
        }

        // Service: drain sealed batches; a stalled tick flushes the
        // partial windows (the count-based window's "timeout").
        let mut progressed = server.drain();
        if progressed == 0 {
            server.flush();
            let flushed = server.drain();
            // Requests completed only because the stall forced a flush.
            outcome.stalled += u64::try_from(flushed).unwrap_or(u64::MAX);
            progressed = flushed;
        }

        // Completion, again in user-index order.
        for user in &mut users {
            let Some((ticket, item)) = user.waiting else {
                continue;
            };
            let Some(response) = server.take_response(ticket) else {
                continue;
            };
            user.waiting = None;
            if response.degraded {
                outcome.degraded += 1;
            }
            match response.outcome {
                Ok(prediction) => {
                    outcome.completed += 1;
                    if prediction == samples[item].label {
                        outcome.correct += 1;
                    }
                }
                Err(ServeError::DeadlineMissed { .. }) => {
                    outcome.failed += 1;
                    outcome.deadline_missed += 1;
                }
                Err(_) => outcome.failed += 1,
            }
            user.think = if plan.think_max == 0 {
                0
            } else {
                user.rng.next_below_u32(plan.think_max + 1)
            };
        }

        // Safety valve: with nothing in flight, nothing drained, and
        // the issue budget spent, another tick cannot make progress.
        if progressed == 0
            && outcome.issued >= plan.requests
            && users.iter().all(|u| u.waiting.is_none())
        {
            break;
        }
    }
    outcome.events = server.take_events();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_table_is_monotone_and_head_heavy() {
        let cumulative = zipf_cumulative(4);
        assert_eq!(cumulative.len(), 4);
        assert!(cumulative.windows(2).all(|w| w[0] < w[1]));
        // Rank 0 holds the largest single share.
        let first = cumulative[0];
        let rest: Vec<u64> = cumulative.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(rest.iter().all(|&share| share < first));
    }

    #[test]
    fn pick_model_is_deterministic_and_in_range() {
        let cumulative = zipf_cumulative(3);
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        let draws_a: Vec<usize> = (0..64).map(|_| pick_model(&cumulative, &mut a)).collect();
        let draws_b: Vec<usize> = (0..64).map(|_| pick_model(&cumulative, &mut b)).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().all(|&m| m < 3));
        // The head rank dominates the draw counts.
        let head = draws_a.iter().filter(|&&m| m == 0).count();
        assert!(head > draws_a.len() / 3, "head drew {head}/64");
    }

    #[test]
    fn outcome_accuracy_handles_zero_completed() {
        let outcome = LoadOutcome::default();
        assert_eq!(outcome.accuracy(), 0.0);
        let some = LoadOutcome {
            completed: 4,
            correct: 3,
            ..LoadOutcome::default()
        };
        assert!((some.accuracy() - 0.75).abs() < 1e-12);
    }
}
