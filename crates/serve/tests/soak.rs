//! Soak-under-faults (full tier, `--ignored`): the closed-loop load
//! generator drives a server whose hot model carries an injected
//! hardware fault plan. The server must stay up (zero panics escaping
//! `run_jobs_supervised`, zero failed responses), and the faulted
//! model's accuracy may degrade only within a bound of the healthy
//! model's — the paper's robustness claim, observed through the serving
//! stack instead of the offline sweep.

use nc_core::{
    Engine, ExperimentScale, FaultModel, FaultPlan, FitBudget, MemoryRecorder, ModelSpec,
    Supervision,
};
use nc_dataset::{digits::DigitsSpec, Difficulty};
use nc_mlp::Activation;
use nc_serve::{run_load, LoadPlan, ModelSnapshot, ServeConfig, Server};
use std::sync::Arc;

#[test]
#[ignore = "full tier: ~1k served presentations through a faulted model"]
fn soak_under_faults_stays_up_with_bounded_degradation() {
    let (train, test) = DigitsSpec {
        train: 120,
        test: 40,
        seed: 77,
        difficulty: Difficulty::default(),
    }
    .generate();
    let train = Arc::new(train);
    let budget = FitBudget {
        epochs: 3,
        stdp_epochs: 1,
        stdp_delta: 8,
        learning_rate: None,
    };
    let spec = |seed| ModelSpec::QuantizedMlp {
        sizes: vec![784, 16, 10],
        activation: Activation::sigmoid(),
        seed,
    };
    // Same architecture and training twice: one healthy, one with
    // stuck-at-1 weight SRAM cells — deterministic injection, so the
    // degradation is reproducible.
    let healthy = Arc::new(
        ModelSnapshot::prepare("healthy", spec(51), budget, Arc::clone(&train), None).unwrap(),
    );
    let plan = FaultPlan::new(FaultModel::StuckAt1, 0.01, 0xFA17).unwrap();
    let faulty = Arc::new(
        ModelSnapshot::prepare("faulty", spec(51), budget, Arc::clone(&train), Some(plan)).unwrap(),
    );

    let run = |snapshot: &Arc<ModelSnapshot>, recorder: &Arc<MemoryRecorder>| {
        let engine = Arc::new(
            Engine::builder()
                .threads(4)
                .scale(ExperimentScale::Tiny)
                .recorder(Arc::clone(recorder) as Arc<dyn nc_core::Recorder>)
                .build(),
        );
        let server = Server::new(
            engine,
            ServeConfig {
                batch_window: 8,
                supervision: Supervision::with_retries(1, 0x50AC),
            },
            vec![Arc::clone(snapshot)],
        )
        .unwrap();
        run_load(
            &server,
            &test,
            &[snapshot.name()],
            &LoadPlan {
                seed: 0x50AC_0001,
                users: 16,
                requests: 512,
                think_max: 1,
            },
        )
        .unwrap()
    };

    let healthy_rec = Arc::new(MemoryRecorder::new());
    let faulty_rec = Arc::new(MemoryRecorder::new());
    let healthy_out = run(&healthy, &healthy_rec);
    let faulty_out = run(&faulty, &faulty_rec);

    // The server never dropped a request and nothing escaped the
    // supervised jobs.
    for (out, rec) in [(&healthy_out, &healthy_rec), (&faulty_out, &faulty_rec)] {
        assert_eq!(out.completed, 512);
        assert_eq!(out.failed, 0);
        assert_eq!(rec.counter("engine.panics"), 0);
        assert_eq!(rec.counter("engine.retries"), 0);
        assert_eq!(rec.counter("serve.responses"), 512);
        // Latency histogram observed every request exactly once.
        let hist = rec.histogram("serve.latency_ns").unwrap();
        assert_eq!(hist.count(), 512);
        assert!(hist.p50().unwrap() <= hist.p99().unwrap());
    }

    // Bounded degradation: the faulted model loses accuracy, but the
    // 1% stuck-cell rate must not collapse it (both runs draw the same
    // item stream, so the comparison is apples to apples).
    let healthy_acc = healthy_out.accuracy();
    let faulty_acc = faulty_out.accuracy();
    assert!(healthy_acc > 0.3, "healthy accuracy {healthy_acc}");
    assert!(
        faulty_acc >= healthy_acc - 0.35,
        "faulted accuracy {faulty_acc} collapsed vs healthy {healthy_acc}"
    );
}
