//! Soak-under-faults: the closed-loop load generator drives a server
//! whose hot model carries an injected hardware fault plan. The server
//! must stay up (zero panics escaping `run_jobs_supervised`, zero
//! failed responses), and the faulted model's accuracy may degrade only
//! within a bound of the healthy model's — the paper's robustness
//! claim, observed through the serving stack instead of the offline
//! sweep.
//!
//! Two tiers share one harness: the fast variant runs in tier-1 CI
//! (bounded well under 2 s at tiny scale), the full variant keeps the
//! original ~1k-presentation soak for the nightly workflow
//! (`--ignored`).

use nc_core::{
    Engine, ExperimentScale, FaultModel, FaultPlan, FitBudget, MemoryRecorder, ModelSpec,
    Supervision,
};
use nc_dataset::{digits::DigitsSpec, Difficulty};
use nc_mlp::Activation;
use nc_serve::{run_load, LoadPlan, ModelSnapshot, ServeConfig, Server};
use std::sync::Arc;

/// One soak tier: dataset/budget sizes and the load level.
struct SoakTier {
    train: usize,
    test: usize,
    epochs: usize,
    hidden: usize,
    users: usize,
    requests: u64,
    /// Accuracy floor for the healthy run — tier-dependent because the
    /// fast tier's one-epoch budget trains a much weaker model.
    min_accuracy: f64,
}

const FAST: SoakTier = SoakTier {
    train: 32,
    test: 12,
    epochs: 1,
    hidden: 8,
    users: 8,
    requests: 96,
    min_accuracy: 0.15,
};

const FULL: SoakTier = SoakTier {
    train: 120,
    test: 40,
    epochs: 3,
    hidden: 16,
    users: 16,
    requests: 512,
    min_accuracy: 0.3,
};

fn soak(tier: &SoakTier) {
    let (train, test) = DigitsSpec {
        train: tier.train,
        test: tier.test,
        seed: 77,
        difficulty: Difficulty::default(),
    }
    .generate();
    let train = Arc::new(train);
    let budget = FitBudget {
        epochs: tier.epochs,
        stdp_epochs: 1,
        stdp_delta: 8,
        learning_rate: None,
    };
    let spec = |seed| ModelSpec::QuantizedMlp {
        sizes: vec![784, tier.hidden, 10],
        activation: Activation::sigmoid(),
        seed,
    };
    // Same architecture and training twice: one healthy, one with
    // stuck-at-1 weight SRAM cells — deterministic injection, so the
    // degradation is reproducible.
    let healthy = Arc::new(
        ModelSnapshot::prepare("healthy", spec(51), budget, Arc::clone(&train), None).unwrap(),
    );
    let plan = FaultPlan::new(FaultModel::StuckAt1, 0.01, 0xFA17).unwrap();
    let faulty = Arc::new(
        ModelSnapshot::prepare("faulty", spec(51), budget, Arc::clone(&train), Some(plan)).unwrap(),
    );

    let run = |snapshot: &Arc<ModelSnapshot>, recorder: &Arc<MemoryRecorder>| {
        let engine = Arc::new(
            Engine::builder()
                .threads(4)
                .scale(ExperimentScale::Tiny)
                .recorder(Arc::clone(recorder) as Arc<dyn nc_core::Recorder>)
                .build(),
        );
        let server = Server::new(
            engine,
            ServeConfig {
                batch_window: 8,
                supervision: Supervision::with_retries(1, 0x50AC),
                ..ServeConfig::default()
            },
            vec![Arc::clone(snapshot)],
        )
        .unwrap();
        run_load(
            &server,
            &test,
            &[snapshot.name()],
            &LoadPlan {
                seed: 0x50AC_0001,
                users: tier.users,
                requests: tier.requests,
                think_max: 1,
            },
        )
        .unwrap()
    };

    let healthy_rec = Arc::new(MemoryRecorder::new());
    let faulty_rec = Arc::new(MemoryRecorder::new());
    let healthy_out = run(&healthy, &healthy_rec);
    let faulty_out = run(&faulty, &faulty_rec);

    // The server never dropped a request and nothing escaped the
    // supervised jobs.
    for (out, rec) in [(&healthy_out, &healthy_rec), (&faulty_out, &faulty_rec)] {
        assert_eq!(out.completed, tier.requests);
        assert_eq!(out.failed, 0);
        assert_eq!(out.shed, 0);
        assert_eq!(out.deadline_missed, 0);
        assert_eq!(rec.counter("engine.panics"), 0);
        assert_eq!(rec.counter("engine.retries"), 0);
        assert_eq!(rec.counter("serve.responses"), tier.requests);
        // Latency histogram observed every request exactly once.
        let hist = rec.histogram("serve.latency_ns").unwrap();
        assert_eq!(hist.count(), tier.requests);
        assert!(hist.p50().unwrap() <= hist.p99().unwrap());
        // No resilience policy, no chaos: the trace stays empty.
        assert!(out.events.is_empty());
    }

    // Bounded degradation: the faulted model loses accuracy, but the
    // 1% stuck-cell rate must not collapse it (both runs draw the same
    // item stream, so the comparison is apples to apples).
    let healthy_acc = healthy_out.accuracy();
    let faulty_acc = faulty_out.accuracy();
    assert!(
        healthy_acc > tier.min_accuracy,
        "healthy accuracy {healthy_acc}"
    );
    assert!(
        faulty_acc >= healthy_acc - 0.35,
        "faulted accuracy {faulty_acc} collapsed vs healthy {healthy_acc}"
    );
}

/// Tier-1 variant: same harness, bounded sizes (runs in well under 2 s).
#[test]
fn soak_under_faults_fast_tier_stays_up() {
    soak(&FAST);
}

#[test]
#[ignore = "full tier: ~1k served presentations through a faulted model"]
fn soak_under_faults_stays_up_with_bounded_degradation() {
    soak(&FULL);
}
