//! The serving determinism contract, attacked from three sides:
//!
//! 1. **Coalescer purity** (property, `check_cases`): batch composition
//!    and per-item presentation seeds are a pure function of the
//!    admission sequence — replaying a seeded random request stream
//!    reproduces the sealed-batch trace exactly, and the trace is
//!    computable from the stream by a straight-line reference model.
//! 2. **Thread invariance**: the same request stream served at 1 and 4
//!    engine worker threads produces identical responses and identical
//!    load-generator traces.
//! 3. **Panic isolation**: a poisoned request takes down its batch, not
//!    the server — siblings complete, panics/retries land in the engine
//!    counters, and the server keeps serving afterwards.

use nc_core::{Engine, ExperimentScale, FitBudget, MemoryRecorder, ModelSpec, Supervision};
use nc_dataset::model::ModelError;
use nc_dataset::{digits::DigitsSpec, Dataset, Difficulty, Model};
use nc_mlp::Activation;
use nc_serve::{
    presentation_seed, run_load, Coalescer, LoadPlan, ModelSnapshot, ServeConfig, ServeError,
    Server,
};
use nc_substrate::check::check_cases;
use nc_substrate::stats::Confusion;
use std::sync::Arc;

#[test]
fn coalescer_trace_is_a_pure_function_of_the_stream() {
    check_cases(0x5EA1, 48, |case, rng| {
        let models = 1 + rng.next_index(4);
        let window = 1 + rng.next_index(9);
        let stream: Vec<(usize, u64)> = (0..rng.next_index(120))
            .map(|_| (rng.next_index(models), rng.next_below(1000)))
            .collect();

        // Replay the identical stream through two coalescers.
        let mut a = Coalescer::new(models, window);
        let mut b = Coalescer::new(models, window);
        for &(model, item) in &stream {
            let ta = a.admit(model, item, vec![], None);
            let tb = b.admit(model, item, vec![], None);
            assert_eq!(ta, tb, "case {case}");
        }
        a.flush();
        b.flush();
        let sealed_a = a.take_sealed();
        let sealed_b = b.take_sealed();
        assert_eq!(sealed_a, sealed_b, "case {case}");

        // Straight-line reference: simulate the window rule directly.
        let mut pending: Vec<Vec<(u64, u64)>> = vec![Vec::new(); models];
        let mut expected: Vec<(usize, Vec<(u64, u64)>)> = Vec::new();
        for (ticket, &(model, item)) in stream.iter().enumerate() {
            pending[model].push((u64::try_from(ticket).unwrap(), item));
            if pending[model].len() >= window {
                expected.push((model, std::mem::take(&mut pending[model])));
            }
        }
        for (model, partial) in pending.into_iter().enumerate() {
            if !partial.is_empty() {
                expected.push((model, partial));
            }
        }
        assert_eq!(sealed_a.len(), expected.len(), "case {case}");
        for (seq, (batch, (model, items))) in sealed_a.iter().zip(&expected).enumerate() {
            assert_eq!(batch.seq, u64::try_from(seq).unwrap(), "case {case}");
            assert_eq!(batch.model, *model, "case {case}");
            let got: Vec<(u64, u64)> = batch
                .requests
                .iter()
                .map(|r| (r.ticket.0, r.item))
                .collect();
            assert_eq!(&got, items, "case {case}");
            // Every item's seed follows the offline convention,
            // regardless of batch position.
            for request in &batch.requests {
                assert_eq!(
                    presentation_seed(request.item),
                    nc_dataset::model::EVAL_PRESENTATION_SEED_BASE | request.item,
                    "case {case}"
                );
            }
        }
    });
}

fn tiny_data() -> (Dataset, Dataset) {
    DigitsSpec {
        train: 40,
        test: 16,
        seed: 9,
        difficulty: Difficulty::default(),
    }
    .generate()
}

fn tiny_budget() -> FitBudget {
    FitBudget {
        epochs: 1,
        stdp_epochs: 1,
        stdp_delta: 8,
        learning_rate: None,
    }
}

fn snapshots(train: &Arc<Dataset>) -> Vec<Arc<ModelSnapshot>> {
    let quant = ModelSpec::QuantizedMlp {
        sizes: vec![784, 8, 10],
        activation: Activation::sigmoid(),
        seed: 31,
    };
    let float = ModelSpec::Mlp {
        sizes: vec![784, 8, 10],
        activation: Activation::sigmoid(),
        seed: 32,
    };
    vec![
        Arc::new(
            ModelSnapshot::prepare("hot", quant, tiny_budget(), Arc::clone(train), None).unwrap(),
        ),
        Arc::new(
            ModelSnapshot::prepare("cold", float, tiny_budget(), Arc::clone(train), None).unwrap(),
        ),
    ]
}

fn serve_at(threads: usize) -> (Vec<Option<usize>>, nc_serve::LoadOutcome) {
    let (train, test) = tiny_data();
    let train = Arc::new(train);
    let snaps = snapshots(&train);
    let engine = Arc::new(
        Engine::builder()
            .threads(threads)
            .scale(ExperimentScale::Tiny)
            .build(),
    );
    let server = Server::new(
        engine,
        ServeConfig {
            batch_window: 3,
            ..ServeConfig::default()
        },
        snaps,
    )
    .unwrap();

    // Direct stream: a fixed interleaving across both models.
    let tickets: Vec<_> = (0..test.len())
        .map(|i| {
            let name = if i % 3 == 0 { "cold" } else { "hot" };
            server
                .submit(name, &test.samples()[i].pixels, u64::try_from(i).unwrap())
                .unwrap()
        })
        .collect();
    server.run_until_idle();
    let direct: Vec<Option<usize>> = tickets
        .into_iter()
        .map(|t| server.take_response(t).unwrap().outcome.ok())
        .collect();

    // Closed-loop stream on the same server.
    let outcome = run_load(
        &server,
        &test,
        &["hot", "cold"],
        &LoadPlan {
            seed: 0xD15E,
            users: 5,
            requests: 64,
            think_max: 2,
        },
    )
    .unwrap();
    (direct, outcome)
}

#[test]
fn serving_is_invariant_across_worker_thread_counts() {
    let (direct_1, load_1) = serve_at(1);
    let (direct_4, load_4) = serve_at(4);
    assert!(direct_1.iter().all(Option::is_some));
    assert_eq!(direct_1, direct_4);
    // The whole load-generator trace — counts, correctness, per-model
    // mix, tick count — is bit-identical.
    assert_eq!(load_1, load_4);
    assert_eq!(load_1.completed, 64);
    assert_eq!(load_1.failed, 0);
}

/// A model that panics when asked about the poison image (all-255
/// pixels) — the serving analogue of a corrupt request hitting a kernel
/// assertion.
struct PoisonSensitive;

impl Model for PoisonSensitive {
    fn name(&self) -> &'static str {
        "poison-sensitive"
    }
    fn fit(&mut self, _: &Dataset, _: &FitBudget) -> Result<(), ModelError> {
        Ok(())
    }
    fn evaluate(&mut self, _: &Dataset) -> Confusion {
        Confusion::new(10)
    }
    fn predict(&mut self, pixels: &[u8], _seed: u64) -> usize {
        assert!(
            !pixels.iter().all(|&p| p == 255),
            "poison image reached the kernel"
        );
        usize::from(pixels[0]) % 10
    }
}

#[test]
fn poisoned_batch_fails_alone_and_the_server_survives() {
    let recorder = Arc::new(MemoryRecorder::new());
    let engine = Arc::new(
        Engine::builder()
            .threads(4)
            .scale(ExperimentScale::Tiny)
            .recorder(Arc::clone(&recorder) as Arc<dyn nc_core::Recorder>)
            .build(),
    );
    let snapshot = Arc::new(ModelSnapshot::from_factory("edge", 4, 10, || {
        Box::new(PoisonSensitive)
    }));
    let config = ServeConfig {
        batch_window: 2,
        supervision: Supervision::with_retries(1, 0xF00D),
        ..ServeConfig::default()
    };
    let server = Server::new(engine, config, vec![snapshot]).unwrap();

    // Batch 0: two healthy requests. Batch 1: healthy + poison.
    let healthy: Vec<_> = (0..3u8)
        .map(|i| server.submit("edge", &[i; 4], u64::from(i)).unwrap())
        .collect();
    let poison = server.submit("edge", &[255; 4], 3).unwrap();
    assert_eq!(server.run_until_idle(), 4);

    // The healthy batch completed; both requests of the poisoned batch
    // failed with the engine's panic message.
    for (i, ticket) in healthy.iter().take(2).enumerate() {
        assert_eq!(
            server.take_response(*ticket).unwrap().outcome.unwrap(),
            i % 10
        );
    }
    let sibling = server.take_response(healthy[2]).unwrap();
    let poisoned = server.take_response(poison).unwrap();
    assert_eq!(sibling.batch, poisoned.batch);
    for response in [sibling, poisoned] {
        match response.outcome {
            Err(ServeError::BatchFailed { message, .. }) => {
                assert!(message.contains("poison image"), "{message}");
            }
            other => panic!("expected BatchFailed, got {other:?}"),
        }
    }

    // One attempt + one retry, both caught; nothing escaped.
    assert_eq!(recorder.counter("engine.panics"), 2);
    assert_eq!(recorder.counter("engine.retries"), 1);
    assert_eq!(recorder.counter("serve.responses"), 4);

    // The server keeps serving after the failure.
    let again = server.submit("edge", &[7; 4], 9).unwrap();
    server.run_until_idle();
    assert_eq!(server.take_response(again).unwrap().outcome.unwrap(), 7);
    assert_eq!(server.in_flight(), 0);
}
