//! Chaos conformance: the resilience layer's outcomes are a pure
//! function of `(ChaosPlan, ResilienceConfig, request stream)` — never
//! of scheduling. Four pins:
//!
//! 1. The **full `LoadOutcome`** (counters *and* the event trace) is
//!    bit-identical at 1 and 4 engine threads under combined chaos.
//! 2. Per-item outcomes are invariant under **shuffled arrival** when
//!    the chaos is item-keyed.
//! 3. The **circuit breaker** walks its closed → open → half-open
//!    cycle on an exactly pinned event trace, and degrades to a
//!    fallback model when one is configured.
//! 4. Replicas lost to chaos panics are **rebuilt bit-identically**:
//!    post-retry predictions equal a never-chaos'd twin's.
//! 5. A request expired when a **flush-on-stall** seals its partial
//!    window reports `DeadlineMissed` exactly like a count-window
//!    seal: same event shape, same measured latency, same
//!    `serve.deadline_missed` metric.

use nc_core::{
    ChaosPlan, Engine, ExperimentScale, FaultModel, FaultPlan, FitBudget, ModelSpec, Supervision,
};
use nc_dataset::{digits::DigitsSpec, Dataset, Difficulty};
use nc_mlp::Activation;
use nc_serve::{
    run_load, BreakerConfig, LoadOutcome, LoadPlan, ModelSnapshot, ResilienceConfig, Response,
    ServeConfig, ServeError, ServeEvent, Server,
};
use nc_substrate::rng::SplitMix64;
use std::sync::Arc;

fn data() -> (Arc<Dataset>, Dataset) {
    let (train, test) = DigitsSpec {
        train: 24,
        test: 10,
        seed: 3,
        difficulty: Difficulty::default(),
    }
    .generate();
    (Arc::new(train), test)
}

fn snapshot(name: &str, train: &Arc<Dataset>, seed: u64) -> Arc<ModelSnapshot> {
    let spec = ModelSpec::QuantizedMlp {
        sizes: vec![784, 6, 10],
        activation: Activation::sigmoid(),
        seed,
    };
    let budget = FitBudget {
        epochs: 1,
        stdp_epochs: 1,
        stdp_delta: 8,
        learning_rate: None,
    };
    Arc::new(ModelSnapshot::prepare(name, spec, budget, Arc::clone(train), None).unwrap())
}

fn engine(threads: usize) -> Arc<Engine> {
    Arc::new(
        Engine::builder()
            .threads(threads)
            .scale(ExperimentScale::Tiny)
            .build(),
    )
}

/// Every chaos channel and every defense at once, at a given engine
/// thread count.
fn chaotic_load(threads: usize) -> LoadOutcome {
    let (train, test) = data();
    let chaos = ChaosPlan {
        panic_rate: 0.25,
        panic_attempts: 1,
        delay_rate: 0.5,
        max_delay_ticks: 6,
        poison_rate: 0.2,
        burst_period: 3,
        burst_width: 1,
        burst_faults: Some(FaultPlan::new(FaultModel::StuckAt1, 0.02, 0xB0).unwrap()),
        ..ChaosPlan::quiet(0xC4A0_0001)
    };
    let config = ServeConfig {
        batch_window: 4,
        supervision: Supervision::with_retries(1, 0x50AC),
        resilience: ResilienceConfig {
            queue_limit: Some(4),
            deadline_ticks: Some(4),
            batch_retries: 1,
            ..ResilienceConfig::default()
        },
        chaos: Some(chaos),
    };
    let server = Server::new(engine(threads), config, vec![snapshot("q", &train, 51)]).unwrap();
    run_load(
        &server,
        &test,
        &["q"],
        &LoadPlan {
            seed: 0xC4A0_5EED,
            users: 6,
            requests: 64,
            think_max: 1,
        },
    )
    .unwrap()
}

#[test]
fn full_outcome_trace_is_bit_identical_across_thread_counts() {
    let single = chaotic_load(1);
    let pooled = chaotic_load(4);
    // The whole outcome — counters and the ordered event trace — must
    // match, not just the totals.
    assert_eq!(single, pooled);

    // And the chaos actually fired: every channel shows up in the run.
    assert!(single.shed > 0, "queue limit never shed: {single:?}");
    assert!(
        single.deadline_missed > 0,
        "no deadline ever missed: {single:?}"
    );
    assert!(single.completed + single.failed == 64, "{single:?}");
    let has = |pred: fn(&ServeEvent) -> bool| single.events.iter().any(pred);
    assert!(has(|e| matches!(e, ServeEvent::Poisoned { .. })));
    assert!(has(|e| matches!(e, ServeEvent::Burst { .. })));
    assert!(has(|e| matches!(e, ServeEvent::ReplicaQuarantined { .. })));
    assert!(has(|e| matches!(e, ServeEvent::Shed { .. })));
    assert!(has(|e| matches!(e, ServeEvent::DeadlineMissed { .. })));
}

#[test]
fn stall_flushed_deadline_misses_report_identically_to_count_window_seals() {
    let (train, test) = data();
    // A window wider than the request stream: only a flush-on-stall can
    // ever seal, so every miss below travels the stall path.
    let recorder = Arc::new(nc_obs::MemoryRecorder::new());
    let engine = Arc::new(
        Engine::builder()
            .threads(1)
            .scale(ExperimentScale::Tiny)
            .recorder(Arc::clone(&recorder) as Arc<dyn nc_obs::Recorder>)
            .build(),
    );
    let config = ServeConfig {
        batch_window: 16,
        resilience: ResilienceConfig {
            deadline_ticks: Some(1),
            ..ResilienceConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::new(engine, config, vec![snapshot("q", &train, 51)]).unwrap();
    let t = server.submit("q", &test.samples()[0].pixels, 0).unwrap();
    // The request sits in its partial window while the clock outruns
    // its deadline (admitted at tick 0, deadline 1, flushed at tick 3).
    for _ in 0..3 {
        server.advance_tick();
    }
    assert_eq!(server.drain(), 0, "the count window must never seal");
    server.flush();
    assert_eq!(server.drain(), 1);

    let response = server.take_response(t).unwrap();
    assert_eq!(
        response.outcome,
        Err(ServeError::DeadlineMissed { deadline: 1, at: 3 })
    );
    // The unified contract: a seal-time miss pulls its stopwatch like
    // any completed request (the recorder is enabled, so the watch ran)
    // and lands in the same metric a completion-time miss feeds.
    assert!(
        response.latency_ns.is_some(),
        "stall-flushed miss must report its measured latency"
    );
    assert_eq!(
        server.take_events(),
        vec![ServeEvent::DeadlineMissed {
            tick: 3,
            ticket: t.0,
            batch: 0,
            at_seal: true
        }]
    );
    let snap = recorder.snapshot();
    assert_eq!(
        snap.counters.get("serve.deadline_missed").copied(),
        Some(1),
        "seal-time miss must count in serve.deadline_missed: {snap:?}"
    );
}

#[test]
fn item_keyed_chaos_outcomes_are_arrival_order_invariant() {
    let (train, test) = data();
    // Item-keyed channels only: panics (healed by one engine retry) and
    // poison. No delays (batch-keyed) and no admission policy, so the
    // per-item outcome is a function of the item alone.
    let chaos = ChaosPlan {
        panic_rate: 0.3,
        panic_attempts: 1,
        poison_rate: 0.3,
        ..ChaosPlan::quiet(0xC4A0_0002)
    };
    let snap = snapshot("q", &train, 51);
    let items: Vec<u64> = (0..u64::try_from(test.len()).unwrap()).collect();

    let outcomes_for = |order: &[u64]| -> Vec<(u64, Result<usize, ServeError>)> {
        let config = ServeConfig {
            batch_window: 3,
            supervision: Supervision::with_retries(1, 0x50AC),
            chaos: Some(chaos),
            ..ServeConfig::default()
        };
        let server = Server::new(engine(2), config, vec![Arc::clone(&snap)]).unwrap();
        let tickets: Vec<_> = order
            .iter()
            .map(|&item| {
                let pixels = &test.samples()[usize::try_from(item).unwrap()].pixels;
                (item, server.submit("q", pixels, item).unwrap())
            })
            .collect();
        server.run_until_idle();
        let mut out: Vec<(u64, Result<usize, ServeError>)> = tickets
            .into_iter()
            .map(|(item, t)| (item, server.take_response(t).unwrap().outcome))
            .collect();
        out.sort_by_key(|&(item, _)| item);
        out
    };

    let baseline = outcomes_for(&items);
    assert!(baseline.iter().all(|(_, o)| o.is_ok()), "{baseline:?}");
    let mut rng = SplitMix64::new(0x5_4FFE);
    for _ in 0..3 {
        let mut shuffled = items.clone();
        // Fisher–Yates off the seeded stream.
        for i in (1..shuffled.len()).rev() {
            let j = rng.next_index(i + 1);
            shuffled.swap(i, j);
        }
        assert_eq!(outcomes_for(&shuffled), baseline);
    }
}

#[test]
fn breaker_cycle_walks_a_pinned_event_trace() {
    let (train, test) = data();
    // Panics strike every attempt of every item until tick 6 heals the
    // plan, so each pre-heal batch fails outright (no retries) and the
    // breaker trips, probes, re-trips, and finally closes.
    let chaos = ChaosPlan {
        panic_rate: 1.0,
        panic_attempts: u32::MAX,
        panic_until_tick: 6,
        ..ChaosPlan::quiet(0xC4A0_0003)
    };
    let config = ServeConfig {
        batch_window: 1,
        supervision: Supervision::with_retries(0, 0x50AC),
        resilience: ResilienceConfig {
            breaker: Some(BreakerConfig {
                failure_threshold: 2,
                cooldown_ticks: 3,
                fallback: None,
            }),
            ..ResilienceConfig::default()
        },
        chaos: Some(chaos),
    };
    let server = Server::new(engine(1), config, vec![snapshot("q", &train, 51)]).unwrap();

    let mut served = Vec::new();
    for tick in 1..=9u64 {
        assert_eq!(server.advance_tick(), tick);
        let submitted = server.submit("q", &test.samples()[0].pixels, tick);
        match (tick, submitted) {
            // Open breaker, no fallback: refused at admission.
            (3 | 4 | 6 | 7, Err(ServeError::BreakerOpen { .. })) => {}
            (3 | 4 | 6 | 7, other) => panic!("tick {tick}: expected refusal, got {other:?}"),
            (_, Ok(ticket)) => {
                server.drain();
                served.push((tick, server.take_response(ticket).unwrap()));
            }
            (_, Err(other)) => panic!("tick {tick}: {other}"),
        }
    }

    // Tickets are dense over *admitted* requests: ticks 1,2,5,8,9.
    let events = server.take_events();
    assert_eq!(
        events,
        vec![
            ServeEvent::ReplicaQuarantined {
                tick: 1,
                model: 0,
                batch: 0,
                lost: 1
            },
            ServeEvent::ReplicaQuarantined {
                tick: 2,
                model: 0,
                batch: 1,
                lost: 1
            },
            ServeEvent::BreakerOpened { tick: 2, model: 0 },
            ServeEvent::Shed {
                tick: 3,
                model: 0,
                item: 3
            },
            ServeEvent::Shed {
                tick: 4,
                model: 0,
                item: 4
            },
            // Cooldown elapsed: ticket 2 carries the half-open probe,
            // which still panics (tick 5 < heal tick 6) and re-opens.
            ServeEvent::BreakerHalfOpen {
                tick: 5,
                model: 0,
                probe: 2
            },
            ServeEvent::ReplicaQuarantined {
                tick: 5,
                model: 0,
                batch: 2,
                lost: 1
            },
            ServeEvent::BreakerOpened { tick: 5, model: 0 },
            ServeEvent::Shed {
                tick: 6,
                model: 0,
                item: 6
            },
            ServeEvent::Shed {
                tick: 7,
                model: 0,
                item: 7
            },
            // Healed: the second probe succeeds and closes the breaker.
            ServeEvent::BreakerHalfOpen {
                tick: 8,
                model: 0,
                probe: 3
            },
            ServeEvent::BreakerClosed { tick: 8, model: 0 },
        ]
    );
    // Pre-heal batches answer with the batch failure; post-heal ones
    // predict.
    for (tick, response) in &served {
        match tick {
            1 | 2 | 5 => assert!(
                matches!(response.outcome, Err(ServeError::BatchFailed { .. })),
                "tick {tick}: {response:?}"
            ),
            _ => assert!(response.outcome.is_ok(), "tick {tick}: {response:?}"),
        }
        assert!(!response.degraded);
    }
}

#[test]
fn open_breaker_degrades_to_the_fallback_model() {
    let (train, test) = data();
    let chaos = ChaosPlan {
        panic_rate: 1.0,
        panic_attempts: u32::MAX,
        panic_until_tick: 2,
        ..ChaosPlan::quiet(0xC4A0_0004)
    };
    // `panics_item` keys on the item, and the fallback model's batches
    // carry the same items — but model 1's batches run *after* the heal
    // tick here, so only the primary's batch fails.
    let config = ServeConfig {
        batch_window: 1,
        supervision: Supervision::with_retries(0, 0x50AC),
        resilience: ResilienceConfig {
            breaker: Some(BreakerConfig {
                failure_threshold: 1,
                cooldown_ticks: 10,
                fallback: Some(1),
            }),
            ..ResilienceConfig::default()
        },
        chaos: Some(chaos),
    };
    let snapshots = vec![snapshot("hot", &train, 51), snapshot("spare", &train, 52)];
    let server = Server::new(engine(1), config, snapshots).unwrap();

    // Tick 1: the hot model's batch panics; threshold 1 trips it open.
    server.advance_tick();
    let doomed = server.submit("hot", &test.samples()[0].pixels, 0).unwrap();
    server.drain();
    assert!(matches!(
        server.take_response(doomed).unwrap().outcome,
        Err(ServeError::BatchFailed { .. })
    ));

    // Tick 2 (healed): requests for `hot` now ride the spare.
    server.advance_tick();
    let ticket = server.submit("hot", &test.samples()[1].pixels, 1).unwrap();
    server.drain();
    let response = server.take_response(ticket).unwrap();
    assert!(response.degraded, "{response:?}");
    assert_eq!(response.model, 1, "served by the fallback snapshot");
    assert!(response.outcome.is_ok(), "{response:?}");

    let events = server.take_events();
    assert!(
        events.contains(&ServeEvent::Degraded {
            tick: 2,
            ticket: ticket.0,
            from: 0,
            to: 1
        }),
        "{events:?}"
    );
}

#[test]
fn quarantined_replicas_rebuild_bit_identically() {
    let (train, test) = data();
    // Every batch drained before tick 4 loses its replica to a panic on
    // the first attempt; the engine's retry reruns it on a freshly
    // rebuilt replica.
    let chaos = ChaosPlan {
        panic_rate: 1.0,
        panic_attempts: 1,
        panic_until_tick: 4,
        ..ChaosPlan::quiet(0xC4A0_0005)
    };
    let run = |chaos: Option<ChaosPlan>, snap: &Arc<ModelSnapshot>| -> Vec<Response> {
        let config = ServeConfig {
            batch_window: 2,
            supervision: Supervision::with_retries(1, 0x50AC),
            chaos,
            ..ServeConfig::default()
        };
        let server = Server::new(engine(1), config, vec![Arc::clone(snap)]).unwrap();
        let mut tickets = Vec::new();
        for (i, sample) in test.samples().iter().enumerate() {
            server.advance_tick();
            tickets.push(
                server
                    .submit("q", &sample.pixels, u64::try_from(i).unwrap())
                    .unwrap(),
            );
            server.run_until_idle();
        }
        tickets
            .into_iter()
            .map(|t| server.take_response(t).unwrap())
            .collect()
    };
    let stormy_snap = snapshot("q", &train, 51);
    let calm_snap = snapshot("q", &train, 51);
    let stormy = run(Some(chaos), &stormy_snap);
    let calm = run(None, &calm_snap);

    // The chaos really consumed replicas...
    assert!(stormy_snap.lost() > 0, "no replica was ever lost");
    assert_eq!(calm_snap.lost(), 0);
    // ...and every post-retry prediction matches the never-chaos'd twin
    // bit for bit: rebuilt replicas are the same model.
    assert_eq!(stormy.len(), calm.len());
    for (s, c) in stormy.iter().zip(&calm) {
        assert_eq!(s.outcome, c.outcome, "{s:?} vs {c:?}");
        assert!(s.outcome.is_ok(), "{s:?}");
    }
}
