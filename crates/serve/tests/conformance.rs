//! Serving conformance: served predictions are **bit-equal** to offline
//! `evaluate_batch` for every model family, regardless of request
//! arrival order, batch-window size, or engine thread count.
//!
//! The offline side is computed independently (spec → build → fit →
//! `predict_batch` over a positional `PixelSlab`), not through the
//! serving stack, so the test proves the serving path reproduces the
//! canonical evaluation — the coalescer may regroup items arbitrarily,
//! but every item keeps its `EVAL_PRESENTATION_SEED_BASE | i` seed.

use nc_core::{Engine, ExperimentScale, FitBudget, ModelSpec};
use nc_dataset::{digits::DigitsSpec, Dataset, Difficulty, PixelSlab};
use nc_mlp::Activation;
use nc_serve::{ModelSnapshot, ServeConfig, Server};
use nc_snn::SnnParams;
use nc_substrate::rng::SplitMix64;
use std::sync::Arc;

fn data() -> (Dataset, Dataset) {
    DigitsSpec {
        train: 60,
        test: 24,
        seed: 42,
        difficulty: Difficulty::default(),
    }
    .generate()
}

fn budget() -> FitBudget {
    FitBudget {
        epochs: 2,
        stdp_epochs: 1,
        stdp_delta: 8,
        learning_rate: None,
    }
}

/// All five families of the paper's comparison, at test-sized
/// topologies.
fn family_specs() -> Vec<(&'static str, ModelSpec)> {
    vec![
        (
            "mlp",
            ModelSpec::Mlp {
                sizes: vec![784, 8, 10],
                activation: Activation::sigmoid(),
                seed: 21,
            },
        ),
        (
            "qmlp",
            ModelSpec::QuantizedMlp {
                sizes: vec![784, 8, 10],
                activation: Activation::sigmoid(),
                seed: 22,
            },
        ),
        (
            "snn",
            ModelSpec::Snn {
                inputs: 784,
                classes: 10,
                params: SnnParams::for_neurons(10),
                seed: 23,
            },
        ),
        (
            "wot",
            ModelSpec::Wot {
                inputs: 784,
                classes: 10,
                params: SnnParams::for_neurons(10),
                seed: 24,
            },
        ),
        (
            "bpsnn",
            ModelSpec::BpSnn {
                inputs: 784,
                classes: 10,
                params: SnnParams::for_neurons(10),
                seed: 25,
            },
        ),
    ]
}

/// The canonical offline predictions: independent build + fit +
/// positional batch, no serving machinery involved.
fn offline_predictions(spec: &ModelSpec, train: &Dataset, test: &Dataset) -> Vec<usize> {
    let mut model = spec.build().unwrap();
    model.fit(train, &budget()).unwrap();
    let slab = PixelSlab::from_dataset(test);
    let mut out = Vec::new();
    model.predict_batch(&slab.batch(), &mut out);
    out
}

#[test]
fn served_predictions_bit_equal_offline_for_all_families() {
    let (train, test) = data();
    let train = Arc::new(train);
    let specs = family_specs();

    let offline: Vec<Vec<usize>> = specs
        .iter()
        .map(|(_, spec)| offline_predictions(spec, &train, &test))
        .collect();

    // Snapshots are shared across every (window, threads, order) combo;
    // replica pools regrow as servers come and go.
    let snapshots: Vec<Arc<ModelSnapshot>> = specs
        .iter()
        .map(|(name, spec)| {
            Arc::new(
                ModelSnapshot::prepare(*name, spec.clone(), budget(), Arc::clone(&train), None)
                    .unwrap(),
            )
        })
        .collect();

    // Every (model, item) pair once — 5 families × 24 items.
    let base_requests: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|m| (0..test.len()).map(move |i| (m, i)))
        .collect();

    for (combo, &(window, threads)) in [(1usize, 1usize), (3, 4), (8, 1), (8, 4), (24, 4)]
        .iter()
        .enumerate()
    {
        // A fresh seeded shuffle per combo: arrival order must not
        // matter.
        let mut order = base_requests.clone();
        let mut rng = SplitMix64::new(0xC04F + u64::try_from(combo).unwrap());
        for i in (1..order.len()).rev() {
            order.swap(i, rng.next_index(i + 1));
        }

        let engine = Arc::new(
            Engine::builder()
                .threads(threads)
                .scale(ExperimentScale::Tiny)
                .build(),
        );
        let config = ServeConfig {
            batch_window: window,
            ..ServeConfig::default()
        };
        let server = Server::new(engine, config, snapshots.clone()).unwrap();

        let tickets: Vec<_> = order
            .iter()
            .map(|&(m, i)| {
                let ticket = server
                    .submit(
                        specs[m].0,
                        &test.samples()[i].pixels,
                        u64::try_from(i).unwrap(),
                    )
                    .unwrap();
                (ticket, m, i)
            })
            .collect();
        assert_eq!(server.run_until_idle(), tickets.len());

        for (ticket, m, i) in tickets {
            let response = server.take_response(ticket).unwrap();
            assert_eq!(response.item, u64::try_from(i).unwrap());
            assert_eq!(
                response.outcome.clone().unwrap(),
                offline[m][i],
                "family {} item {i} at window {window} threads {threads}",
                specs[m].0,
            );
        }
        assert_eq!(server.in_flight(), 0);
    }
}

#[test]
fn served_confusion_matches_offline_evaluate_batch() {
    // The aggregate view of the same contract: accuracy computed from
    // served predictions equals offline `evaluate_batch` accuracy.
    let (train, test) = data();
    let train = Arc::new(train);
    let (name, spec) = ("qmlp", family_specs().swap_remove(1).1);

    let mut model = spec.build().unwrap();
    model.fit(&train, &budget()).unwrap();
    let offline_confusion = model.evaluate_batch(&PixelSlab::from_dataset(&test).batch());

    let snapshot =
        Arc::new(ModelSnapshot::prepare(name, spec, budget(), Arc::clone(&train), None).unwrap());
    let engine = Arc::new(
        Engine::builder()
            .threads(2)
            .scale(ExperimentScale::Tiny)
            .build(),
    );
    let server = Server::new(
        engine,
        ServeConfig {
            batch_window: 5,
            ..ServeConfig::default()
        },
        vec![snapshot],
    )
    .unwrap();

    let tickets: Vec<_> = (0..test.len())
        .map(|i| {
            server
                .submit(name, &test.samples()[i].pixels, u64::try_from(i).unwrap())
                .unwrap()
        })
        .collect();
    server.run_until_idle();

    let mut served = nc_substrate::stats::Confusion::new(10);
    for (i, ticket) in tickets.into_iter().enumerate() {
        let prediction = server.take_response(ticket).unwrap().outcome.unwrap();
        served.record(test.samples()[i].label, prediction);
    }
    assert_eq!(served.accuracy(), offline_confusion.accuracy());
    assert_eq!(served.total(), offline_confusion.total());
}
