//! The incremental-mode cache: phase-1 scan results keyed by file
//! content hash, persisted under `target/nc-lint/`.
//!
//! Phase 1 (lex → parse → per-file rules) dominates a full run; phase 2
//! is graph algebra over small models. So incremental mode caches the
//! per-file [`FileScan`] — the *pure* output of phase 1 — and re-parses
//! only files whose FNV-64 content hash changed. Phase 2 always re-runs
//! over the whole workspace, because a one-file edit can change
//! cross-file conclusions everywhere.
//!
//! The on-disk format is a versioned line/field text encoding (fields
//! separated by `US`, list elements by `RS`) rather than anything
//! fancier: the build is dependency-free, and the failure mode is
//! designed to be safe — *any* decode surprise (version bump, truncated
//! write, hand-edited file) discards the cache and falls back to a full
//! rescan. A cache can make the run faster, never wrong.

use crate::parse::{
    AllocSite, CallSite, FnDef, LetBind, LockSite, OwnerKind, SourceUse, TraitDecl,
};
use crate::rules::{FileScan, Finding, RuleId, Suppression, TargetKind};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Format tag; bump whenever the scan model or encoding changes so old
/// caches self-invalidate.
const MAGIC: &str = "nc-lint-cache v1";

/// Field separator (ASCII unit separator — cannot appear in source-derived text).
const FS: char = '\x1f';

/// List-element separator (ASCII record separator).
const LS: char = '\x1e';

/// One cached file: its content hash and the phase-1 scan it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedScan {
    /// FNV-64 of the file's bytes at scan time.
    pub hash: u64,
    /// The phase-1 result (with `used` flags at their scan-time `false`).
    pub scan: FileScan,
}

/// FNV-1a 64-bit over raw bytes: tiny, dependency-free, and collisions
/// would need an adversarial editor — the cache is a local accelerator,
/// not a security boundary.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Loads the cache, returning an empty map on any miss or decode
/// problem (full rescan is always safe).
pub fn load(path: &Path) -> BTreeMap<String, CachedScan> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| decode(&text))
        .unwrap_or_default()
}

/// Persists the cache, creating parent directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors (an unwritable `target/`, typically).
pub fn save(path: &Path, entries: &BTreeMap<String, CachedScan>) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, encode(entries))
}

fn rec(out: &mut String, fields: &[&str]) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(FS);
        }
        out.push_str(f);
    }
    out.push('\n');
}

fn enc_list(items: &[String]) -> (String, String) {
    (items.len().to_string(), items.join(&LS.to_string()))
}

fn enc_bool(b: bool) -> &'static str {
    if b {
        "1"
    } else {
        "0"
    }
}

fn enc_opt_u32(v: Option<u32>) -> String {
    v.map(|n| n.to_string()).unwrap_or_default()
}

/// Serializes the whole cache.
pub fn encode(entries: &BTreeMap<String, CachedScan>) -> String {
    let mut out = String::from(MAGIC);
    out.push('\n');
    for e in entries.values() {
        let scan = &e.scan;
        let target = match scan.target {
            TargetKind::Library => "L",
            TargetKind::Binary => "B",
            TargetKind::TestOrBench => "T",
        };
        rec(&mut out, &["F", &scan.path, target, &e.hash.to_string()]);
        let (n, joined) = enc_list(&scan.model.dyn_refs);
        rec(&mut out, &["D", &n, &joined]);
        for t in &scan.model.traits {
            let (n, joined) = enc_list(&t.methods);
            rec(&mut out, &["T", &t.name, &n, &joined]);
        }
        for f in &scan.model.fns {
            let kind = match f.owner_kind {
                OwnerKind::Free => "F",
                OwnerKind::Impl => "I",
                OwnerKind::Trait => "T",
            };
            let (np, params) = enc_list(&f.params);
            rec(
                &mut out,
                &[
                    "N",
                    &f.name,
                    f.owner.as_deref().unwrap_or(""),
                    kind,
                    &f.line.to_string(),
                    enc_bool(f.is_test),
                    &np,
                    &params,
                ],
            );
            for c in &f.calls {
                let (nh, held) = enc_list(&c.held);
                let (na, args) = enc_list(&c.args);
                rec(
                    &mut out,
                    &[
                        "C",
                        c.qualifier.as_deref().unwrap_or(""),
                        &c.name,
                        enc_bool(c.is_method),
                        &c.line.to_string(),
                        &nh,
                        &held,
                        &na,
                        &args,
                    ],
                );
            }
            for l in &f.locks {
                let (nh, held) = enc_list(&l.held);
                rec(&mut out, &["L", &l.lock, &l.line.to_string(), &nh, &held]);
            }
            for s in &f.sources {
                rec(
                    &mut out,
                    &["S", &s.ident, enc_bool(s.clock), &s.line.to_string()],
                );
            }
            for a in &f.allocs {
                rec(&mut out, &["A", &a.what, &a.line.to_string()]);
            }
            for b in &f.lets {
                rec(&mut out, &["B", &b.name, &b.rhs]);
            }
        }
        for f in &scan.raw {
            rec(
                &mut out,
                &["R", &f.line.to_string(), f.rule.name(), &f.message],
            );
        }
        for f in &scan.malformed {
            rec(&mut out, &["M", &f.line.to_string(), &f.message]);
        }
        for w in &scan.suppressions {
            let names: Vec<String> = w.rules.iter().map(|r| r.name().to_string()).collect();
            let (nr, rules) = enc_list(&names);
            rec(
                &mut out,
                &[
                    "W",
                    &w.line.to_string(),
                    &nr,
                    &rules,
                    enc_bool(w.file_wide),
                    &enc_opt_u32(w.expires),
                    &enc_opt_u32(w.covered),
                ],
            );
        }
    }
    out
}

fn de_list(count: &str, joined: &str) -> Option<Vec<String>> {
    let n: usize = count.parse().ok()?;
    if n == 0 {
        return joined.is_empty().then(Vec::new);
    }
    let parts: Vec<String> = joined.split(LS).map(str::to_string).collect();
    (parts.len() == n).then_some(parts)
}

fn de_bool(s: &str) -> Option<bool> {
    match s {
        "1" => Some(true),
        "0" => Some(false),
        _ => None,
    }
}

fn de_opt_u32(s: &str) -> Option<Option<u32>> {
    if s.is_empty() {
        return Some(None);
    }
    s.parse().ok().map(Some)
}

fn de_opt_string(s: &str) -> Option<String> {
    (!s.is_empty()).then(|| s.to_string())
}

/// Decodes a cache document; `None` means "treat as cold".
pub fn decode(text: &str) -> Option<BTreeMap<String, CachedScan>> {
    let mut lines = text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    let mut entries: BTreeMap<String, CachedScan> = BTreeMap::new();
    let mut current: Option<CachedScan> = None;
    for line in lines {
        let f: Vec<&str> = line.split(FS).collect();
        match f.first().copied()? {
            "F" => {
                if let Some(done) = current.take() {
                    entries.insert(done.scan.path.clone(), done);
                }
                let [_, path, target, hash] = f[..] else {
                    return None;
                };
                let target = match target {
                    "L" => TargetKind::Library,
                    "B" => TargetKind::Binary,
                    "T" => TargetKind::TestOrBench,
                    _ => return None,
                };
                current = Some(CachedScan {
                    hash: hash.parse().ok()?,
                    scan: FileScan {
                        path: path.to_string(),
                        target,
                        model: crate::parse::FileModel {
                            path: path.to_string(),
                            ..Default::default()
                        },
                        raw: Vec::new(),
                        malformed: Vec::new(),
                        suppressions: Vec::new(),
                    },
                });
            }
            "D" => {
                let [_, n, joined] = f[..] else { return None };
                current.as_mut()?.scan.model.dyn_refs = de_list(n, joined)?;
            }
            "T" => {
                let [_, name, n, joined] = f[..] else {
                    return None;
                };
                current.as_mut()?.scan.model.traits.push(TraitDecl {
                    name: name.to_string(),
                    methods: de_list(n, joined)?,
                });
            }
            "N" => {
                let [_, name, owner, kind, line, is_test, np, params] = f[..] else {
                    return None;
                };
                let owner_kind = match kind {
                    "F" => OwnerKind::Free,
                    "I" => OwnerKind::Impl,
                    "T" => OwnerKind::Trait,
                    _ => return None,
                };
                current.as_mut()?.scan.model.fns.push(FnDef {
                    name: name.to_string(),
                    owner: de_opt_string(owner),
                    owner_kind,
                    line: line.parse().ok()?,
                    is_test: de_bool(is_test)?,
                    params: de_list(np, params)?,
                    calls: Vec::new(),
                    locks: Vec::new(),
                    sources: Vec::new(),
                    allocs: Vec::new(),
                    lets: Vec::new(),
                });
            }
            "C" => {
                let [_, qual, name, is_method, line, nh, held, na, args] = f[..] else {
                    return None;
                };
                let site = CallSite {
                    qualifier: de_opt_string(qual),
                    name: name.to_string(),
                    is_method: de_bool(is_method)?,
                    line: line.parse().ok()?,
                    held: de_list(nh, held)?,
                    args: de_list(na, args)?,
                };
                current
                    .as_mut()?
                    .scan
                    .model
                    .fns
                    .last_mut()?
                    .calls
                    .push(site);
            }
            "L" => {
                let [_, lock, line, nh, held] = f[..] else {
                    return None;
                };
                let site = LockSite {
                    lock: lock.to_string(),
                    line: line.parse().ok()?,
                    held: de_list(nh, held)?,
                };
                current
                    .as_mut()?
                    .scan
                    .model
                    .fns
                    .last_mut()?
                    .locks
                    .push(site);
            }
            "S" => {
                let [_, ident, clock, line] = f[..] else {
                    return None;
                };
                let site = SourceUse {
                    ident: ident.to_string(),
                    clock: de_bool(clock)?,
                    line: line.parse().ok()?,
                };
                current
                    .as_mut()?
                    .scan
                    .model
                    .fns
                    .last_mut()?
                    .sources
                    .push(site);
            }
            "A" => {
                let [_, what, line] = f[..] else { return None };
                let site = AllocSite {
                    what: what.to_string(),
                    line: line.parse().ok()?,
                };
                current
                    .as_mut()?
                    .scan
                    .model
                    .fns
                    .last_mut()?
                    .allocs
                    .push(site);
            }
            "B" => {
                let [_, name, rhs] = f[..] else { return None };
                let bind = LetBind {
                    name: name.to_string(),
                    rhs: rhs.to_string(),
                };
                current.as_mut()?.scan.model.fns.last_mut()?.lets.push(bind);
            }
            "R" => {
                let [_, line, rule, message] = f[..] else {
                    return None;
                };
                let cur = current.as_mut()?;
                cur.scan.raw.push(Finding {
                    file: cur.scan.path.clone(),
                    line: line.parse().ok()?,
                    rule: RuleId::parse(rule)?,
                    message: message.to_string(),
                });
            }
            "M" => {
                let [_, line, message] = f[..] else {
                    return None;
                };
                let cur = current.as_mut()?;
                cur.scan.malformed.push(Finding {
                    file: cur.scan.path.clone(),
                    line: line.parse().ok()?,
                    rule: RuleId::Suppress,
                    message: message.to_string(),
                });
            }
            "W" => {
                let [_, line, nr, rules, file_wide, expires, covered] = f[..] else {
                    return None;
                };
                let rules = de_list(nr, rules)?
                    .iter()
                    .map(|r| RuleId::parse(r))
                    .collect::<Option<Vec<RuleId>>>()?;
                current.as_mut()?.scan.suppressions.push(Suppression {
                    line: line.parse().ok()?,
                    rules,
                    file_wide: de_bool(file_wide)?,
                    expires: de_opt_u32(expires)?,
                    covered: de_opt_u32(covered)?,
                    used: false,
                });
            }
            _ => return None,
        }
    }
    if let Some(done) = current.take() {
        entries.insert(done.scan.path.clone(), done);
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::scan_file;

    #[test]
    fn cache_round_trips_a_real_scan() {
        let src = "
            // nc-lint: allow(R4, reason = \"scratch\", expires = \"PR40\")
            use std::collections::HashMap;
            pub trait Sink { fn put(&self, v: u64); }
            impl Server {
                pub fn drain(&self, rec: &dyn Sink, master_seed: u64) -> usize {
                    let g = lock_or_recover(&self.state);
                    let first = derive(master_seed);
                    rec.put(first);
                    Some(1).unwrap()
                }
            }
        ";
        let scan = scan_file("crates/serve/src/server.rs", src);
        let mut entries = BTreeMap::new();
        entries.insert(
            scan.path.clone(),
            CachedScan {
                hash: fnv64(src.as_bytes()),
                scan,
            },
        );
        let decoded = decode(&encode(&entries)).expect("decodes");
        assert_eq!(decoded, entries);
    }

    #[test]
    fn empty_and_multi_file_caches_round_trip() {
        let empty = BTreeMap::new();
        assert_eq!(decode(&encode(&empty)), Some(empty));
        let mut entries = BTreeMap::new();
        for (path, src) in [
            ("crates/a/src/lib.rs", "pub fn a() {}"),
            ("crates/b/src/lib.rs", "pub fn b() { a(); }"),
        ] {
            let scan = scan_file(path, src);
            entries.insert(
                path.to_string(),
                CachedScan {
                    hash: fnv64(src.as_bytes()),
                    scan,
                },
            );
        }
        assert_eq!(decode(&encode(&entries)), Some(entries));
    }

    #[test]
    fn corrupt_documents_decode_to_cold() {
        assert_eq!(decode(""), None);
        assert_eq!(decode("not a cache"), None);
        assert_eq!(decode("nc-lint-cache v0\n"), None);
        let truncated = format!("{MAGIC}\nF\u{1f}only-two-fields");
        assert_eq!(decode(&truncated), None);
        let bad_tag = format!("{MAGIC}\nZ\u{1f}x");
        assert_eq!(decode(&bad_tag), None);
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
    }
}
