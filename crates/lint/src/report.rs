//! Rendering a lint run: rustc-style text and a versioned JSON document.

use crate::rules::{Finding, RuleId};
use std::fmt::Write as _;

/// The outcome of linting a file tree.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Report {
    /// Every unsuppressed finding, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Well-formed suppression comments seen across the tree.
    pub suppressions_total: usize,
    /// Suppressions that actually silenced a finding.
    pub suppressions_used: usize,
    /// In incremental mode, how many files were actually re-parsed
    /// (the rest came from the content-hash cache). `None` for a full
    /// run.
    pub files_reparsed: Option<usize>,
}

impl Report {
    /// Whether the tree satisfies every invariant.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report: one `file:line: rule: message`
    /// line per finding plus a summary trailer.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: {}: {}", f.file, f.line, f.rule, f.message);
        }
        let reparse_note = match self.files_reparsed {
            Some(n) => format!(" ({n} re-parsed)"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "nc-lint: {} finding(s) across {} file(s){}; {}/{} suppression(s) in use",
            self.findings.len(),
            self.files_scanned,
            reparse_note,
            self.suppressions_used,
            self.suppressions_total,
        );
        out
    }

    /// Renders the machine-readable report (schema `version` 2; v2 added
    /// `files_reparsed`, `null` outside incremental mode).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 2,\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        match self.files_reparsed {
            Some(n) => {
                let _ = writeln!(out, "  \"files_reparsed\": {n},");
            }
            None => out.push_str("  \"files_reparsed\": null,\n"),
        }
        let _ = writeln!(
            out,
            "  \"suppressions\": {{ \"total\": {}, \"used\": {} }},",
            self.suppressions_total, self.suppressions_used
        );
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{ \"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {} }}",
                json_string(&f.file),
                f.line,
                json_string(f.rule.name()),
                json_string(&f.message),
            );
        }
        if self.findings.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }

    /// Findings for one rule, for tests and tooling.
    pub fn findings_for(&self, rule: RuleId) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }
}

/// Escapes a string as a JSON literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let report = Report {
            findings: vec![Finding {
                file: String::from("crates/x/src/a.rs"),
                line: 3,
                rule: RuleId::R4,
                message: String::from("say \"no\"\tplease"),
            }],
            files_scanned: 1,
            suppressions_total: 2,
            suppressions_used: 1,
            files_reparsed: None,
        };
        let json = report.render_json();
        assert!(json.contains("\"version\": 2"));
        assert!(json.contains("\"files_reparsed\": null"));
        assert!(json.contains("\"rule\": \"R4\""));
        assert!(json.contains("say \\\"no\\\"\\tplease"));
        assert!(json.contains("\"clean\": false"));
        let empty = Report {
            files_scanned: 0,
            files_reparsed: Some(0),
            ..Report::default()
        };
        assert!(empty.render_json().contains("\"findings\": []"));
        assert!(empty.render_json().contains("\"files_reparsed\": 0"));
        assert!(empty.render_text().contains("(0 re-parsed)"));
        assert!(empty.is_clean());
    }
}
