//! SARIF 2.1.0 rendering, so CI can upload findings to GitHub code
//! scanning and annotate PRs in place.
//!
//! Only the schema subset code scanning consumes is emitted: one run,
//! the tool driver with its rule table, and one `result` per finding
//! with a `physicalLocation` (workspace-relative URI + start line).
//! Findings are already sorted `(file, line, rule)` by the caller, so
//! the document is byte-stable across runs.

use crate::report::{json_string, Report};
use crate::rules::RuleId;
use std::fmt::Write as _;

/// The schema URI GitHub's upload action validates against.
const SCHEMA_URI: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders the report as a SARIF 2.1.0 document.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"$schema\": {},", json_string(SCHEMA_URI));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"nc-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/example/neurocmp\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in RuleId::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "            {{ \"id\": {}, \"shortDescription\": {{ \"text\": {} }} }}",
            json_string(rule.name()),
            json_string(rule.summary()),
        );
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n        {\n");
        let _ = writeln!(out, "          \"ruleId\": {},", json_string(f.rule.name()));
        out.push_str("          \"level\": \"error\",\n");
        let _ = writeln!(
            out,
            "          \"message\": {{ \"text\": {} }},",
            json_string(&f.message)
        );
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        let _ = writeln!(
            out,
            "                \"artifactLocation\": {{ \"uri\": {} }},",
            json_string(&f.file)
        );
        let _ = writeln!(
            out,
            "                \"region\": {{ \"startLine\": {} }}",
            f.line
        );
        out.push_str("              }\n            }\n          ]\n        }");
    }
    if report.findings.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n      ]\n");
    }
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn sarif_shape_holds() {
        let report = Report {
            findings: vec![Finding {
                file: String::from("crates/x/src/a.rs"),
                line: 7,
                rule: RuleId::R9,
                message: String::from("lock-order cycle: `A` vs `B`"),
            }],
            files_scanned: 1,
            ..Report::default()
        };
        let sarif = render_sarif(&report);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("sarif-2.1.0.json"));
        assert!(sarif.contains("\"name\": \"nc-lint\""));
        assert!(sarif.contains("\"ruleId\": \"R9\""));
        assert!(sarif.contains("\"uri\": \"crates/x/src/a.rs\""));
        assert!(sarif.contains("\"startLine\": 7"));
        // Every rule is declared in the driver table.
        for rule in RuleId::ALL {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", rule.name())));
        }
    }

    #[test]
    fn empty_report_has_empty_results() {
        let sarif = render_sarif(&Report::default());
        assert!(sarif.contains("\"results\": []"));
    }
}
