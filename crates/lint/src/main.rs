//! The `nc-lint` CLI.
//!
//! ```text
//! cargo run -p nc-lint                  # human-readable report, exit 1 on findings
//! cargo run -p nc-lint -- --json        # machine-readable report (schema v2)
//! cargo run -p nc-lint -- --sarif out.sarif   # also write SARIF 2.1.0
//! cargo run -p nc-lint -- --incremental # phase-1 cache under target/nc-lint/
//! cargo run -p nc-lint -- --root path/to/tree
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O failure.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut incremental = false;
    let mut sarif_out: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--incremental" => incremental = true,
            "--sarif" => match args.next() {
                Some(path) => sarif_out = Some(PathBuf::from(path)),
                None => return usage("--sarif needs an output path argument"),
            },
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage("--root needs a path argument"),
            },
            "--help" | "-h" => {
                println!("usage: nc-lint [--json] [--sarif FILE] [--incremental] [--root DIR]");
                println!(
                    "Checks workspace invariants R1-R11; see DESIGN.md \"Static invariants\"."
                );
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => return usage(&format!("unrecognized argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => return usage("no Cargo workspace found above the current directory"),
        },
    };

    let result = if incremental {
        let cache = root.join("target").join("nc-lint").join("cache.v1");
        nc_lint::lint_tree_cached(&root, &cache)
    } else {
        nc_lint::lint_tree(&root)
    };
    match result {
        Ok(report) => {
            if let Some(path) = sarif_out {
                let doc = nc_lint::sarif::render_sarif(&report);
                if let Err(err) = std::fs::write(&path, doc) {
                    eprintln!("nc-lint: cannot write SARIF to {}: {err}", path.display());
                    return ExitCode::from(2);
                }
            }
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("nc-lint: I/O error under {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("nc-lint: {problem}");
    eprintln!("usage: nc-lint [--json] [--sarif FILE] [--incremental] [--root DIR]");
    ExitCode::from(2)
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir: PathBuf = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !pop(&mut dir) {
            return None;
        }
    }
}

fn pop(dir: &mut PathBuf) -> bool {
    let parent: Option<PathBuf> = Path::new(dir).parent().map(Path::to_path_buf);
    match parent {
        Some(p) if p != *dir => {
            *dir = p;
            true
        }
        _ => false,
    }
}
