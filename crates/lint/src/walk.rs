//! Deterministic discovery of the `.rs` files a lint run covers.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names that are never part of the workspace source: build
/// output, VCS metadata, and the linter's own deliberately-violating
/// fixture corpus.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Collects every `.rs` file under `root`, sorted by path so reports are
/// byte-stable across filesystems (directory iteration order is not).
///
/// # Errors
///
/// Returns the first I/O error hit while walking (an unreadable `root`,
/// typically; unreadable children are reported, not skipped, because a
/// lint pass that silently misses files is worse than one that fails).
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .map(|entry| entry.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, `/`-separated, for stable report keys.
pub fn relative_key(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_keys_are_slash_separated() {
        let root = Path::new("/ws");
        let file = Path::new("/ws/crates/core/src/engine.rs");
        assert_eq!(relative_key(root, file), "crates/core/src/engine.rs");
    }
}
