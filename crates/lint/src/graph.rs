//! The workspace symbol graph and the cross-file lock/allocation rules.
//!
//! Phase 2 input is every non-test file's [`FileModel`]. This module
//! links call references to definitions (name resolution with a
//! std-collision deny list), computes transitive lock-acquisition sets,
//! and runs:
//!
//! * **R9 lock-order** — build the may-hold-while-acquiring graph across
//!   the whole workspace and flag every edge that participates in a
//!   cycle (including self-cycles: re-acquiring a held mutex), plus the
//!   dyn-dispatch variant: a lock held across a call to a method of a
//!   trait the workspace uses as `dyn Trait`, whose implementations may
//!   block or re-enter the holder.
//! * **R10 no-alloc-in-kernel** — no heap allocation in
//!   `nc_substrate::kernel` hot functions or anything they transitively
//!   call (constructors `new`/`ensure`/`with_capacity`/`default` are
//!   setup paths, not hot loops, and are exempt as roots).
//!
//! Everything iterates in sorted order over `BTree` containers so the
//! produced findings are byte-identical regardless of the order files
//! were discovered in.

use crate::parse::{CallSite, FileModel, FnDef};
use crate::rules::{Finding, RuleId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names that shadow std collection/iterator/IO methods, or that
/// several unrelated workspace types implement: a bare `.get(...)` is
/// overwhelmingly a `BTreeMap` or slice access, a `.flush()` is usually
/// `io::Write`, and `.record(...)` lands on three unrelated stats types
/// — so resolving them to same-named workspace methods would invent
/// call edges (and from them, phantom deadlocks). Calls to these names
/// never resolve; workspace APIs that must participate in the graph
/// (e.g. `Server::drain`) simply avoid these names.
pub const METHOD_DENY: [&str; 46] = [
    "all",
    "and_then",
    "any",
    "chain",
    "clear",
    "clone",
    "collect",
    "contains",
    "count",
    "dedup",
    "entry",
    "extend",
    "filter",
    "find",
    "first",
    "flat_map",
    "flush",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "join",
    "last",
    "len",
    "map",
    "max",
    "min",
    "next",
    "parse",
    "pop",
    "position",
    "push",
    "record",
    "remove",
    "retain",
    "rev",
    "skip",
    "sort",
    "take",
    "to_string",
    "to_vec",
    "zip",
];

/// Kernel functions whose names mark them as setup/constructor paths
/// rather than hot loops (allowed to allocate).
const KERNEL_SETUP_FNS: [&str; 4] = ["new", "ensure", "with_capacity", "default"];

/// One analysis unit: a lintable (non-test-target) file.
#[derive(Debug)]
pub struct Unit<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Its parsed model.
    pub model: &'a FileModel,
}

/// A function definition inside the workspace graph.
#[derive(Debug, Clone, Copy)]
pub struct Def<'a> {
    /// Index into the unit list.
    pub unit: usize,
    /// The function's parsed facts.
    pub f: &'a FnDef,
}

/// The linked workspace symbol graph.
#[derive(Debug)]
pub struct SymbolGraph<'a> {
    /// The analysis units, sorted by path.
    pub units: Vec<Unit<'a>>,
    /// Every non-test function definition.
    pub defs: Vec<Def<'a>>,
    free: BTreeMap<&'a str, Vec<usize>>,
    assoc: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    methods: BTreeMap<&'a str, Vec<usize>>,
    /// Method name → trait name, for traits used as `dyn Trait`.
    dyn_methods: BTreeMap<&'a str, &'a str>,
    /// Resolved callee def-ids per def.
    callees: Vec<Vec<usize>>,
    /// Lock field name → owning types (for canonicalizing `x.field`
    /// receivers that are not `self`).
    field_owners: BTreeMap<String, BTreeSet<String>>,
}

impl<'a> SymbolGraph<'a> {
    /// Links `units` (any order; they are sorted internally) into a
    /// workspace graph.
    pub fn build(mut units: Vec<Unit<'a>>) -> SymbolGraph<'a> {
        units.sort_by(|a, b| a.path.cmp(b.path));
        let mut defs: Vec<Def<'a>> = Vec::new();
        for (u, unit) in units.iter().enumerate() {
            for f in &unit.model.fns {
                if !f.is_test {
                    defs.push(Def { unit: u, f });
                }
            }
        }
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut assoc: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (d, def) in defs.iter().enumerate() {
            match &def.f.owner {
                None => free.entry(&def.f.name).or_default().push(d),
                Some(owner) => {
                    assoc
                        .entry((owner.as_str(), def.f.name.as_str()))
                        .or_default()
                        .push(d);
                    methods.entry(&def.f.name).or_default().push(d);
                }
            }
        }
        // Traits the workspace dispatches dynamically: declared in one
        // unit, referenced as `dyn Trait` in any unit.
        let mut dyn_names: BTreeSet<&str> = BTreeSet::new();
        for unit in &units {
            for name in &unit.model.dyn_refs {
                dyn_names.insert(name);
            }
        }
        let mut dyn_methods: BTreeMap<&str, &str> = BTreeMap::new();
        for unit in &units {
            for t in &unit.model.traits {
                if dyn_names.contains(t.name.as_str()) {
                    for m in &t.methods {
                        dyn_methods.entry(m).or_insert(&t.name);
                    }
                }
            }
        }
        // `Owner.field` lock names seen via `self.field` receivers tell
        // us which types own which lock fields.
        let mut field_owners: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for def in &defs {
            for l in &def.f.locks {
                if let Some((owner, field)) = l.lock.split_once('.') {
                    if !owner.is_empty() {
                        field_owners
                            .entry(field.to_string())
                            .or_default()
                            .insert(owner.to_string());
                    }
                }
            }
        }
        let mut graph = SymbolGraph {
            units,
            defs,
            free,
            assoc,
            methods,
            dyn_methods,
            callees: Vec::new(),
            field_owners,
        };
        graph.callees = graph
            .defs
            .iter()
            .map(|def| {
                let mut out: Vec<usize> =
                    def.f.calls.iter().flat_map(|c| graph.resolve(c)).collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        graph
    }

    /// Resolves one call reference to candidate definitions.
    pub fn resolve(&self, call: &CallSite) -> Vec<usize> {
        match (&call.qualifier, call.is_method) {
            (Some(q), _) => {
                if q.chars().next().is_some_and(char::is_uppercase) {
                    self.assoc
                        .get(&(q.as_str(), call.name.as_str()))
                        .cloned()
                        .unwrap_or_default()
                } else {
                    // `module::helper(...)` — resolve as a free fn.
                    self.free
                        .get(call.name.as_str())
                        .cloned()
                        .unwrap_or_default()
                }
            }
            (None, true) => {
                if METHOD_DENY.contains(&call.name.as_str()) {
                    Vec::new()
                } else {
                    self.methods
                        .get(call.name.as_str())
                        .cloned()
                        .unwrap_or_default()
                }
            }
            (None, false) => self
                .free
                .get(call.name.as_str())
                .cloned()
                .unwrap_or_default(),
        }
    }

    /// `Owner::name` (or bare name) for messages.
    pub fn qualname(&self, d: usize) -> String {
        let f = self.defs[d].f;
        match &f.owner {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// The file path a def lives in.
    pub fn path_of(&self, d: usize) -> &str {
        self.units[self.defs[d].unit].path
    }

    /// Resolved callees of a def.
    pub fn callees_of(&self, d: usize) -> &[usize] {
        &self.callees[d]
    }

    /// Is `name` a method of a trait the workspace uses via `dyn`?
    pub fn dyn_trait_of(&self, name: &str) -> Option<&str> {
        self.dyn_methods.get(name).copied()
    }

    /// Breadth-first reachability from `roots` over call edges; returns
    /// the visited set and a parent map for path reconstruction.
    pub fn reach(&self, roots: &[usize]) -> (BTreeSet<usize>, BTreeMap<usize, usize>) {
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = roots.iter().copied().collect();
        while let Some(d) = queue.pop_front() {
            for &c in &self.callees[d] {
                if seen.insert(c) {
                    parent.insert(c, d);
                    queue.push_back(c);
                }
            }
        }
        (seen, parent)
    }

    /// The call chain `root → ... → target` as qualified names.
    pub fn chain(&self, parent: &BTreeMap<usize, usize>, target: usize) -> Vec<String> {
        let mut names = vec![self.qualname(target)];
        let mut at = target;
        while let Some(&p) = parent.get(&at) {
            names.push(self.qualname(p));
            at = p;
        }
        names.reverse();
        names
    }

    /// Canonicalizes a raw lock name recorded in def `d`:
    ///
    /// * `Owner.field` stays as-is;
    /// * `.field` / `self.field` (receiver through another binding, or
    ///   `self` in a free fn) collapses to `Owner.field` when exactly one
    ///   type owns a lock field of that name;
    /// * a lowercase bare name is a local and gets scoped to its
    ///   function (`file:fn/name`) so same-named locals in different
    ///   functions stay distinct;
    /// * an UPPERCASE bare name is a global/static and stays as-is.
    pub fn canon_lock(&self, d: usize, raw: &str) -> String {
        if let Some((owner, field)) = raw.split_once('.') {
            if !owner.is_empty() && owner != "self" {
                return raw.to_string();
            }
            if let Some(owners) = self.field_owners.get(field) {
                if let (1, Some(owner)) = (owners.len(), owners.iter().next()) {
                    return format!("{owner}.{field}");
                }
            }
            return format!(".{field}");
        }
        if raw.chars().next().is_some_and(char::is_lowercase) {
            let def = self.defs[d];
            format!("{}:{}/{raw}", self.units[def.unit].path, def.f.name)
        } else {
            raw.to_string()
        }
    }

    /// Transitive lock-acquisition sets (canonical names) per def.
    pub fn transitive_locks(&self) -> Vec<BTreeSet<String>> {
        let mut acq: Vec<BTreeSet<String>> = self
            .defs
            .iter()
            .enumerate()
            .map(|(d, def)| {
                def.f
                    .locks
                    .iter()
                    .map(|l| self.canon_lock(d, &l.lock))
                    .collect()
            })
            .collect();
        // Fixpoint: propagate callee acquisitions up to callers. The
        // graph is small (hundreds of defs), so iterate to stability.
        loop {
            let mut changed = false;
            for d in 0..self.defs.len() {
                let mut grown: Vec<String> = Vec::new();
                for &c in &self.callees[d] {
                    if c == d {
                        continue;
                    }
                    for l in &acq[c] {
                        if !acq[d].contains(l) {
                            grown.push(l.clone());
                        }
                    }
                }
                if !grown.is_empty() {
                    changed = true;
                    acq[d].extend(grown);
                }
            }
            if !changed {
                return acq;
            }
        }
    }
}

/// One may-hold-while-acquiring edge with its provenance.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct LockEdge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: Option<String>,
}

/// Runs R9 (lock-order cycles + dyn-dispatch-under-lock) over the graph.
pub fn check_lock_order(graph: &SymbolGraph<'_>) -> Vec<Finding> {
    let acq = graph.transitive_locks();
    let mut edges: BTreeSet<LockEdge> = BTreeSet::new();
    let mut findings = Vec::new();

    for (d, def) in graph.defs.iter().enumerate() {
        let file = graph.path_of(d).to_string();
        for l in &def.f.locks {
            let to = graph.canon_lock(d, &l.lock);
            for h in &l.held {
                edges.insert(LockEdge {
                    from: graph.canon_lock(d, h),
                    to: to.clone(),
                    file: file.clone(),
                    line: l.line,
                    via: None,
                });
            }
        }
        for call in &def.f.calls {
            if call.held.is_empty() {
                continue;
            }
            // Dyn-dispatch hazard: holding a lock across a method of a
            // trait the workspace calls through `dyn` — implementations
            // are open-ended and may block or call back into the holder.
            if call.is_method {
                if let Some(trait_name) = graph.dyn_trait_of(&call.name) {
                    let held: Vec<String> =
                        call.held.iter().map(|h| graph.canon_lock(d, h)).collect();
                    findings.push(Finding {
                        file: file.clone(),
                        line: call.line,
                        rule: RuleId::R9,
                        message: format!(
                            "`{}` held across dyn-dispatched `{trait_name}::{}` — \
                             implementations may block or re-enter the holder; move the \
                             call outside the critical section",
                            held.join("`, `"),
                            call.name
                        ),
                    });
                }
            }
            for &c in &graph.resolve(call) {
                for to in &acq[c] {
                    for h in &call.held {
                        edges.insert(LockEdge {
                            from: graph.canon_lock(d, h),
                            to: to.clone(),
                            file: file.clone(),
                            line: call.line,
                            via: Some(graph.qualname(c)),
                        });
                    }
                }
            }
        }
    }

    // Cycle detection over the lock-order graph: an edge is reported
    // when its target can reach its source again.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(at) = stack.pop() {
            if at == to {
                return true;
            }
            if let Some(next) = adj.get(at) {
                for n in next {
                    if seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
        }
        false
    };
    for e in &edges {
        if e.from == e.to {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: RuleId::R9,
                message: format!(
                    "`{}` acquired while already held{} — self-deadlock",
                    e.to,
                    via_note(&e.via)
                ),
            });
        } else if reaches(&e.to, &e.from) {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: RuleId::R9,
                message: format!(
                    "lock-order cycle: `{}` acquired while holding `{}`{}, but elsewhere \
                     `{}` is acquired while `{}` is held",
                    e.to,
                    e.from,
                    via_note(&e.via),
                    e.from,
                    e.to
                ),
            });
        }
    }
    findings
}

fn via_note(via: &Option<String>) -> String {
    match via {
        Some(callee) => format!(" (via call to `{callee}`)"),
        None => String::new(),
    }
}

/// Runs R10 (no heap allocation on kernel hot paths) over the graph.
pub fn check_kernel_allocs(graph: &SymbolGraph<'_>) -> Vec<Finding> {
    let roots: Vec<usize> = graph
        .defs
        .iter()
        .enumerate()
        .filter(|(_, def)| {
            graph.units[def.unit]
                .path
                .ends_with("substrate/src/kernel.rs")
                && !KERNEL_SETUP_FNS.contains(&def.f.name.as_str())
        })
        .map(|(d, _)| d)
        .collect();
    if roots.is_empty() {
        return Vec::new();
    }
    let (reached, parent) = graph.reach(&roots);
    let mut findings = Vec::new();
    for &d in &reached {
        let def = graph.defs[d];
        if def.f.allocs.is_empty() {
            continue;
        }
        let chain = graph.chain(&parent, d);
        let root = chain.first().cloned().unwrap_or_else(|| graph.qualname(d));
        for a in &def.f.allocs {
            findings.push(Finding {
                file: graph.path_of(d).to_string(),
                line: a.line,
                rule: RuleId::R10,
                message: format!(
                    "`{}` allocates on a kernel hot path (reachable from `{root}`); \
                     use caller-provided scratch buffers",
                    a.what
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, Token, TokenKind};
    use crate::parse::parse_file;

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files
            .iter()
            .map(|(path, src)| {
                let tokens = lex(src);
                let code: Vec<&Token> = tokens
                    .iter()
                    .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
                    .collect();
                parse_file(path, &code)
            })
            .collect()
    }

    fn graph(models: &[FileModel]) -> SymbolGraph<'_> {
        SymbolGraph::build(
            models
                .iter()
                .map(|m| Unit {
                    path: &m.path,
                    model: m,
                })
                .collect(),
        )
    }

    #[test]
    fn cross_file_lock_cycle_is_found() {
        let ms = models(&[
            (
                "crates/a/src/fwd.rs",
                "impl Gate {
                    pub fn forward(&self) {
                        let g = lock_or_recover(&self.admission);
                        lock_or_recover(&self.completion).clear();
                    }
                }",
            ),
            (
                "crates/a/src/back.rs",
                "impl Gate {
                    pub fn backward(&self) {
                        let g = lock_or_recover(&self.completion);
                        lock_or_recover(&self.admission).clear();
                    }
                }",
            ),
        ]);
        let findings = check_lock_order(&graph(&ms));
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == RuleId::R9));
        assert!(findings[0].message.contains("lock-order cycle"));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let ms = models(&[(
            "crates/a/src/ok.rs",
            "impl Gate {
                pub fn forward(&self) {
                    let g = lock_or_recover(&self.admission);
                    lock_or_recover(&self.completion).clear();
                }
                pub fn again(&self) {
                    let g = lock_or_recover(&self.admission);
                    lock_or_recover(&self.completion).clear();
                }
            }",
        )]);
        assert!(check_lock_order(&graph(&ms)).is_empty());
    }

    #[test]
    fn cycle_through_a_callee_is_found() {
        let ms = models(&[(
            "crates/a/src/x.rs",
            "impl Gate {
                pub fn outer(&self) {
                    let g = lock_or_recover(&self.admission);
                    self.helper();
                }
                fn helper(&self) {
                    lock_or_recover(&self.completion).clear();
                }
                pub fn reversed(&self) {
                    let g = lock_or_recover(&self.completion);
                    lock_or_recover(&self.admission).clear();
                }
            }",
        )]);
        let findings = check_lock_order(&graph(&ms));
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("via call to `Gate::helper`")),
            "{findings:?}"
        );
    }

    #[test]
    fn dyn_dispatch_under_lock_is_flagged() {
        let ms = models(&[
            (
                "crates/a/src/obs.rs",
                "pub trait Telemetry { fn emit(&self, v: u64); }",
            ),
            (
                "crates/a/src/gate.rs",
                "impl Gate {
                    pub fn flush(&self, rec: &dyn Telemetry) {
                        let g = lock_or_recover(&self.state);
                        rec.emit(1);
                    }
                }",
            ),
        ]);
        let findings = check_lock_order(&graph(&ms));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("Telemetry::emit"),
            "{findings:?}"
        );
    }

    #[test]
    fn dropping_the_guard_before_dyn_dispatch_is_clean() {
        let ms = models(&[
            (
                "crates/a/src/obs.rs",
                "pub trait Telemetry { fn emit(&self, v: u64); }",
            ),
            (
                "crates/a/src/gate.rs",
                "impl Gate {
                    pub fn flush(&self, rec: &dyn Telemetry) {
                        let g = lock_or_recover(&self.state);
                        drop(g);
                        rec.emit(1);
                    }
                }",
            ),
        ]);
        assert!(check_lock_order(&graph(&ms)).is_empty());
    }

    #[test]
    fn deny_listed_methods_create_no_edges() {
        // `.get(...)` under a temp guard must not resolve to the
        // workspace `get` and invent a self-cycle.
        let ms = models(&[(
            "crates/a/src/cache.rs",
            "impl Cache {
                pub fn get(&self, key: u64) -> u64 {
                    lock_or_recover(&self.map).get(&key).copied().unwrap_or(0)
                }
            }",
        )]);
        assert!(check_lock_order(&graph(&ms)).is_empty());
    }

    #[test]
    fn kernel_alloc_through_helper_is_flagged() {
        let ms = models(&[(
            "crates/substrate/src/kernel.rs",
            "pub fn gemv_hot(x: &[i8]) -> i32 { accumulate(x) }
             fn accumulate(x: &[i8]) -> i32 {
                 let mut v = Vec::new();
                 v.push(1);
                 0
             }",
        )]);
        let findings = check_kernel_allocs(&graph(&ms));
        assert_eq!(findings.len(), 2, "{findings:?}");
        // `accumulate` sits in kernel.rs, so it is itself a hot root —
        // the shortest chain to the alloc starts there.
        assert!(findings[0].message.contains("accumulate"), "{findings:?}");
        assert!(
            findings[0].message.contains("kernel hot path"),
            "{findings:?}"
        );
    }

    #[test]
    fn kernel_constructors_may_allocate() {
        let ms = models(&[(
            "crates/substrate/src/kernel.rs",
            "impl Lut {
                pub fn new(n: usize) -> Lut {
                    let mut table = Vec::with_capacity(n);
                    table.push(0);
                    Lut { table }
                }
            }",
        )]);
        assert!(check_kernel_allocs(&graph(&ms)).is_empty());
    }
}
