//! Phase-2 taint rules over the workspace symbol graph.
//!
//! * **R8 determinism-taint** — wall-clock and entropy identifiers are
//!   taint *sources*; `Model::evaluate_batch` / `predict_batch`,
//!   `Server::drain`, and every figure-CSV writer (anything calling
//!   `write_results`) are determinism *roots*. A source inside any
//!   function transitively reachable from a root is a finding, even when
//!   the source hides behind helpers in another crate. The observability
//!   crate (`crates/obs/`) is the sanctioned quarantine: its gated
//!   stopwatches are how timing is *supposed* to be read. A source whose
//!   line carries an R3/R7 waiver (or an explicit R8 one) is sanctioned
//!   too — the waiver is the audit point.
//! * **R11 seed-discipline** — every argument passed to a seed-named
//!   parameter must visibly derive from a seeded stream
//!   (`SplitMix64`-style `next_*` draws), a seed-carrying identifier, or
//!   a named ALL-CAPS plan constant; bare magic literals and opaque
//!   locals are findings. Checked along the call graph: the callee's
//!   parameter names decide which arguments are seeds, wherever the call
//!   lives.

use crate::graph::SymbolGraph;
use crate::rules::{FileWaivers, Finding, RuleId};
use std::collections::{BTreeMap, BTreeSet};

/// The directory whose gated stopwatches are the sanctioned way to read
/// time: sources here are quarantined, not findings.
const OBS_QUARANTINE: &str = "crates/obs/";

/// Runs R8 over the graph. `waivers` maps file path → that file's
/// waiver table (R3/R7/R8 waivers sanction sources on their line).
pub fn check_determinism_taint(
    graph: &SymbolGraph<'_>,
    waivers: &BTreeMap<String, FileWaivers>,
) -> Vec<Finding> {
    let roots: Vec<usize> = graph
        .defs
        .iter()
        .enumerate()
        .filter(|(_, def)| {
            let f = def.f;
            let batch_entry =
                f.owner.is_some() && (f.name == "evaluate_batch" || f.name == "predict_batch");
            let drain = f.owner.as_deref() == Some("Server") && f.name == "drain";
            let csv_writer = f.calls.iter().any(|c| c.name == "write_results");
            batch_entry || drain || csv_writer
        })
        .map(|(d, _)| d)
        .collect();
    if roots.is_empty() {
        return Vec::new();
    }
    let (reached, parent) = graph.reach(&roots);
    let root_set: BTreeSet<usize> = roots.iter().copied().collect();

    let mut findings = Vec::new();
    for &d in &reached {
        let def = graph.defs[d];
        let path = graph.path_of(d);
        if path.starts_with(OBS_QUARANTINE) {
            continue;
        }
        let table = waivers.get(path);
        // The first unsanctioned source in the function carries the
        // finding; one finding per tainted function keeps the report
        // actionable.
        // An R3/R7 waiver on the source line sanctions it for R8 too —
        // the waiver is the audit point. (An explicit `allow(R8)` is
        // instead resolved downstream like any other suppression, so it
        // is counted as used.)
        let Some(src) = def.f.sources.iter().find(|s| {
            let sanction = if s.clock { RuleId::R3 } else { RuleId::R7 };
            !table.is_some_and(|t| t.covers(sanction, s.line))
        }) else {
            continue;
        };
        let chain = graph.chain(&parent, d);
        let root = if root_set.contains(&d) {
            graph.qualname(d)
        } else {
            chain.first().cloned().unwrap_or_else(|| graph.qualname(d))
        };
        let kind = if src.clock { "wall-clock" } else { "entropy" };
        findings.push(Finding {
            file: path.to_string(),
            line: src.line,
            rule: RuleId::R8,
            message: format!(
                "`{}` ({kind} source) is reachable from determinism root `{root}` \
                 (call path: {}); route timing through gated nc-obs stopwatches or \
                 thread an explicit seed",
                src.ident,
                chain.join(" → ")
            ),
        });
    }
    findings
}

/// Is this parameter name a seed by convention?
fn is_seed_param(name: &str) -> bool {
    name == "seed" || name.ends_with("_seed")
}

/// Does one argument token visibly derive from a seeded stream or a
/// named constant? Tokens are the space-joined ident/number text
/// recorded by phase 1 (`#` stands for a numeric literal).
fn token_is_marker(tok: &str) -> bool {
    let lower = tok.to_ascii_lowercase();
    if lower.contains("seed") {
        return true;
    }
    if tok.starts_with("next_") {
        return true;
    }
    // Named ALL-CAPS constant, e.g. `EVAL_STREAM` or `DEFAULT_PLAN`.
    tok.len() >= 4
        && tok
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && tok.chars().any(|c| c.is_ascii_uppercase())
}

/// Runs R11 over the graph.
pub fn check_seed_discipline(graph: &SymbolGraph<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (d, def) in graph.defs.iter().enumerate() {
        for call in &def.f.calls {
            let candidates = graph.resolve(call);
            if candidates.is_empty() {
                continue;
            }
            // UFCS calls (`Mlp::predict(self, x)`) pass the receiver
            // explicitly; parameter lists never include `self`, so drop
            // it to keep args and params aligned.
            let args: &[String] = match call.args.first() {
                Some(first) if !call.is_method && first == "self" => &call.args[1..],
                _ => &call.args,
            };
            // Deterministic choice among candidates: prefer one whose
            // arity matches this call (same-named free fns can have
            // different signatures), else the lowest-id one (candidates
            // are sorted by construction).
            let callee = candidates
                .iter()
                .copied()
                .find(|&c| graph.defs[c].f.params.len() == args.len())
                .or_else(|| candidates.first().copied());
            let Some(callee) = callee else { continue };
            let params = &graph.defs[callee].f.params;
            for (k, param) in params.iter().enumerate() {
                if !is_seed_param(param) {
                    continue;
                }
                let Some(arg) = args.get(k) else {
                    continue;
                };
                let tokens: Vec<&str> = arg.split(' ').filter(|t| !t.is_empty()).collect();
                if tokens.is_empty() {
                    continue;
                }
                let mut ok = tokens.iter().any(|t| token_is_marker(t));
                // One level of local propagation: `let first =
                // sm.next_u64(); f(first)` is derived even though the
                // binding's name carries no marker.
                if !ok && tokens.len() == 1 {
                    if let Some(bind) = def.f.lets.iter().find(|b| b.name == tokens[0]) {
                        ok = bind
                            .rhs
                            .split(' ')
                            .filter(|t| !t.is_empty())
                            .any(token_is_marker);
                    }
                }
                if !ok {
                    let shown = if arg.is_empty() {
                        "<literal>"
                    } else {
                        arg.as_str()
                    };
                    findings.push(Finding {
                        file: graph.path_of(d).to_string(),
                        line: call.line,
                        rule: RuleId::R11,
                        message: format!(
                            "seed argument `{shown}` of `{}` is not derived from a seeded \
                             stream or a named plan constant; draw it from a `SplitMix64` \
                             stream or name the constant",
                            graph.qualname(callee)
                        ),
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Unit;
    use crate::lexer::{lex, Token, TokenKind};
    use crate::parse::{parse_file, FileModel};

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files
            .iter()
            .map(|(path, src)| {
                let tokens = lex(src);
                let code: Vec<&Token> = tokens
                    .iter()
                    .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
                    .collect();
                parse_file(path, &code)
            })
            .collect()
    }

    fn graph(models: &[FileModel]) -> SymbolGraph<'_> {
        SymbolGraph::build(
            models
                .iter()
                .map(|m| Unit {
                    path: &m.path,
                    model: m,
                })
                .collect(),
        )
    }

    fn no_waivers() -> BTreeMap<String, FileWaivers> {
        BTreeMap::new()
    }

    #[test]
    fn clock_behind_a_helper_taints_the_batch_root() {
        let ms = models(&[
            (
                "crates/m/src/model.rs",
                "impl Net {
                    pub fn evaluate_batch(&mut self, n: u64) -> u64 { stamp(n) }
                }",
            ),
            (
                "crates/bench/src/util.rs",
                "pub fn stamp(n: u64) -> u64 {
                    let t = Instant::now();
                    n
                }",
            ),
        ]);
        let findings = check_determinism_taint(&graph(&ms), &no_waivers());
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, RuleId::R8);
        assert_eq!(f.file, "crates/bench/src/util.rs");
        assert!(f.message.contains("Net::evaluate_batch"), "{}", f.message);
        assert!(f.message.contains("→ stamp"), "{}", f.message);
    }

    #[test]
    fn obs_quarantine_and_unreachable_sources_are_clean() {
        let ms = models(&[
            (
                "crates/m/src/model.rs",
                "impl Net { pub fn evaluate_batch(&mut self) -> u64 { tick() } }",
            ),
            (
                // Quarantined: the sanctioned timing layer.
                "crates/obs/src/hist.rs",
                "pub fn tick() -> u64 { let t = Instant::now(); 0 }",
            ),
            (
                // A source nothing reaches from a root.
                "crates/bench/src/micro.rs",
                "pub fn orphan() -> u64 { let t = Instant::now(); 0 }",
            ),
        ]);
        assert!(check_determinism_taint(&graph(&ms), &no_waivers()).is_empty());
    }

    #[test]
    fn waived_clock_is_sanctioned() {
        let ms = models(&[
            (
                "crates/m/src/model.rs",
                "impl Net { pub fn evaluate_batch(&mut self) -> u64 { span() } }",
            ),
            (
                "crates/core/src/engine.rs",
                "pub fn span() -> u64 { let t = Instant::now(); 0 }",
            ),
        ]);
        let mut waivers = BTreeMap::new();
        let mut table = FileWaivers::default();
        table.add_line(RuleId::R3, 1); // the `Instant` line
        waivers.insert(String::from("crates/core/src/engine.rs"), table);
        assert!(check_determinism_taint(&graph(&ms), &waivers).is_empty());
    }

    #[test]
    fn entropy_reaching_a_csv_writer_is_flagged() {
        let ms = models(&[(
            "crates/bench/src/bin/fig9.rs",
            "fn main() {
                let rows = sample();
                write_results(rows);
            }
            fn sample() -> u64 { thread_rng() }",
        )]);
        let findings = check_determinism_taint(&graph(&ms), &no_waivers());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("entropy"), "{findings:?}");
    }

    #[test]
    fn literal_seed_argument_is_flagged() {
        let ms = models(&[(
            "crates/r/src/rng.rs",
            "impl Mixer {
                pub fn new(seed: u64) -> Mixer { Mixer { s: seed } }
            }
            pub fn disabled() -> Mixer { Mixer::new(0) }",
        )]);
        let findings = check_seed_discipline(&graph(&ms));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::R11);
        assert!(findings[0].message.contains("Mixer::new"), "{findings:?}");
    }

    #[test]
    fn derived_and_named_seeds_pass() {
        let ms = models(&[(
            "crates/r/src/rng.rs",
            "impl Mixer {
                pub fn new(seed: u64) -> Mixer { Mixer { s: seed } }
            }
            pub fn streams(master_seed: u64) -> Mixer {
                let sm = Mixer::new(master_seed ^ 0x9E37);
                Mixer::new(DEFAULT_PLAN ^ 1)
            }
            pub fn forked(sm: &mut Mixer) -> Mixer {
                let first = sm.next_u64();
                Mixer::new(first)
            }",
        )]);
        let findings = check_seed_discipline(&graph(&ms));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn ufcs_self_receiver_keeps_args_aligned() {
        let ms = models(&[(
            "crates/m/src/model.rs",
            "impl Net {
                pub fn predict(&mut self, pixels: &[u8], presentation_seed: u64) -> usize { 0 }
            }
            impl Model for Net {
                fn predict(&mut self, pixels: &[u8], presentation_seed: u64) -> usize {
                    Net::predict(self, pixels, presentation_seed)
                }
            }",
        )]);
        assert!(check_seed_discipline(&graph(&ms)).is_empty());
    }

    #[test]
    fn arity_selects_among_same_named_free_fns() {
        let ms = models(&[
            (
                "crates/b/src/search.rs",
                "pub fn random_search(train: u64, budget: u64, seed: u64) -> u64 { seed }
                 pub fn run(train: u64) -> u64 { random_search(train, 100, SEARCH_SEED) }",
            ),
            (
                "crates/c/src/search.rs",
                "pub fn random_search(a: u64, b: u64, c: u64, d: u64, seed: u64) -> u64 { seed }
                 pub fn run2(a: u64, b: u64) -> u64 { random_search(a, b, 100, 5, OTHER_SEED) }",
            ),
        ]);
        assert!(check_seed_discipline(&graph(&ms)).is_empty());
    }

    #[test]
    fn opaque_local_seed_is_flagged() {
        let ms = models(&[(
            "crates/r/src/rng.rs",
            "impl Mixer {
                pub fn new(seed: u64) -> Mixer { Mixer { s: seed } }
            }
            pub fn sneaky(x: u64) -> Mixer {
                let salt = x;
                Mixer::new(salt)
            }",
        )]);
        let findings = check_seed_discipline(&graph(&ms));
        assert_eq!(findings.len(), 1, "{findings:?}");
    }
}
