//! `nc-lint` — the workspace invariant checker.
//!
//! The paper comparison this repository reproduces rests on bit-faithful
//! narrow fixed-point datapaths and byte-reproducible experiment runs
//! (`threads = 1` must equal `threads = 4` exactly). Those properties
//! depend on source-level invariants that `rustc` does not enforce and
//! that only fail *silently* — as accuracy drift or flaky golden
//! snapshots. This crate enforces them mechanically:
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1 | no `f32`/`f64` in fixed-point datapath modules |
//! | R2 | no bare narrowing `as` casts outside the audited fixed-point module |
//! | R3 | no wall-clock reads outside the observability crates |
//! | R4 | no `HashMap`/`HashSet` (hash iteration order) anywhere |
//! | R5 | no `unwrap`/`expect`/`panic!`/`todo!` in library code |
//! | R6 | no thread creation outside the engine pool |
//! | R7 | no entropy-sourced RNG construction |
//!
//! Violations that are intentional carry an inline, auditable waiver:
//!
//! ```text
//! // nc-lint: allow(R3, reason = "job wall-clock feeds the stats table, never results")
//! ```
//!
//! (`allow-file(...)` at any line waives a rule for the whole file.) A
//! waiver without a non-empty `reason`, or one that stops matching
//! anything, is itself a finding — the suppression set can only shrink
//! unless someone writes down *why* it grew.
//!
//! The crate is std-only and dependency-free: a hand-rolled lexer
//! ([`lexer`]) feeds a token-pattern rule table ([`rules`]); there is no
//! `syn` because the build is offline. Run it as
//! `cargo run -p nc-lint` (add `--json` for the machine-readable report).

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::Report;
pub use rules::{check_source, Finding, RuleId};

use std::io;
use std::path::Path;

/// Lints every `.rs` file under `root` (skipping `target/`, hidden
/// directories, and fixture corpora) and folds the results into one
/// [`Report`].
///
/// # Errors
///
/// Returns an I/O error if the tree cannot be walked or a source file
/// cannot be read.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    let files = walk::rust_files(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for path in &files {
        let source = std::fs::read_to_string(path)?;
        let key = walk::relative_key(root, path);
        let (findings, stats) = rules::check_source(&key, &source);
        report.findings.extend(findings);
        report.suppressions_total += stats.suppressions_total;
        report.suppressions_used += stats.suppressions_used;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}
