//! `nc-lint` — the workspace invariant checker.
//!
//! The paper comparison this repository reproduces rests on bit-faithful
//! narrow fixed-point datapaths and byte-reproducible experiment runs
//! (`threads = 1` must equal `threads = 4` exactly). Those properties
//! depend on source-level invariants that `rustc` does not enforce and
//! that only fail *silently* — as accuracy drift or flaky golden
//! snapshots. This crate enforces them mechanically, in two phases:
//!
//! **Phase 1** lexes each file ([`lexer`]) and runs the per-file rules
//! over the token stream, while also parsing a lightweight item/scope
//! model ([`parse`]) of what the file defines, calls, locks, and
//! allocates. **Phase 2** links every file's model into a workspace
//! symbol graph ([`graph`]) and runs the cross-file rules on it
//! ([`graph`], [`taint`]) — so a clock read laundered through a helper
//! in another crate, or a mutex pair acquired in opposite orders by two
//! different modules, is still caught.
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | R1 | per-file | no `f32`/`f64` in fixed-point datapath modules |
//! | R2 | per-file | no bare narrowing `as` casts outside the audited fixed-point module |
//! | R3 | per-file | no wall-clock reads outside the observability crates |
//! | R4 | per-file | no `HashMap`/`HashSet` (hash iteration order) anywhere |
//! | R5 | per-file | no `unwrap`/`expect`/`panic!`/`todo!` in library code |
//! | R6 | per-file | no thread creation outside the engine pool |
//! | R7 | per-file | no entropy-sourced RNG construction |
//! | R8 | graph | no clock/entropy source reachable from a determinism root |
//! | R9 | graph | no lock-order cycles; no lock held across dyn dispatch |
//! | R10 | graph | no heap allocation on `nc_substrate::kernel` hot paths |
//! | R11 | graph | seed arguments derive from seeded streams or named constants |
//!
//! Violations that are intentional carry an inline, auditable waiver:
//!
//! ```text
//! // nc-lint: allow(R3, reason = "job wall-clock feeds the stats table, never results")
//! ```
//!
//! (`allow-file(...)` at any line waives a rule for the whole file; an
//! optional `expires = "PR<n>"` field makes the waiver lapse at PR *n*.)
//! A waiver without a non-empty `reason`, one that stops matching
//! anything, or one past its expiry is itself a finding — the
//! suppression set can only shrink unless someone writes down *why* it
//! grew.
//!
//! The crate is std-only and dependency-free: there is no `syn` because
//! the build is offline. Run it as `cargo run -p nc-lint` (`--json` for
//! the machine-readable report, `--sarif FILE` for SARIF 2.1.0,
//! `--incremental` for the content-hash cache under `target/nc-lint/`).

pub mod cache;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod taint;
pub mod walk;

pub use report::Report;
pub use rules::{check_source, scan_file, Finding, RuleId};

use rules::FileScan;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Runs phase 2 and suppression resolution over completed phase-1 scans.
fn finish(mut scans: Vec<FileScan>) -> Report {
    // Sort before building the graph so the report is byte-identical
    // regardless of the order files were discovered (or cached) in.
    scans.sort_by(|a, b| a.path.cmp(&b.path));
    let phase2 = rules::run_phase2(&scans);
    rules::resolve_workspace(scans, phase2)
}

/// Lints a set of in-memory sources (`(workspace-relative path, text)`)
/// through the full two-phase pipeline. Pure and order-insensitive: the
/// same set of files produces a byte-identical report whatever order
/// they arrive in.
pub fn lint_sources(files: &[(String, String)]) -> Report {
    finish(
        files
            .iter()
            .map(|(path, source)| rules::scan_file(path, source))
            .collect(),
    )
}

/// Lints every `.rs` file under `root` (skipping `target/`, hidden
/// directories, and fixture corpora) and folds the results into one
/// [`Report`].
///
/// # Errors
///
/// Returns an I/O error if the tree cannot be walked or a source file
/// cannot be read.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    let files = walk::rust_files(root)?;
    let mut scans = Vec::with_capacity(files.len());
    for path in &files {
        let source = std::fs::read_to_string(path)?;
        let key = walk::relative_key(root, path);
        scans.push(rules::scan_file(&key, &source));
    }
    Ok(finish(scans))
}

/// Like [`lint_tree`], but with a persistent phase-1 cache at
/// `cache_path`: files whose content hash is unchanged reuse their
/// cached scan, and the report's `files_reparsed` records how many were
/// actually re-parsed. Phase 2 always re-runs over the whole workspace
/// (a one-file edit can change cross-file conclusions anywhere), and a
/// missing or corrupt cache silently degrades to a full rescan.
///
/// # Errors
///
/// Returns an I/O error if the tree cannot be walked, a source file
/// cannot be read, or the refreshed cache cannot be written.
pub fn lint_tree_cached(root: &Path, cache_path: &Path) -> io::Result<Report> {
    let files = walk::rust_files(root)?;
    let old = cache::load(cache_path);
    let mut fresh: BTreeMap<String, cache::CachedScan> = BTreeMap::new();
    let mut reparsed = 0usize;
    for path in &files {
        let bytes = std::fs::read(path)?;
        let hash = cache::fnv64(&bytes);
        let key = walk::relative_key(root, path);
        let scan = match old.get(&key) {
            Some(hit) if hit.hash == hash => hit.scan.clone(),
            _ => {
                reparsed += 1;
                let source = String::from_utf8_lossy(&bytes);
                rules::scan_file(&key, &source)
            }
        };
        // Entries for deleted files drop out here: only files present in
        // this walk are written back.
        fresh.insert(key, cache::CachedScan { hash, scan });
    }
    cache::save(cache_path, &fresh)?;
    let mut report = finish(fresh.into_values().map(|e| e.scan).collect());
    report.files_reparsed = Some(reparsed);
    Ok(report)
}
