//! Phase 1 of the two-phase workspace analysis: per-file parsing of the
//! token stream into a lightweight item/scope model.
//!
//! The build is offline (no `syn`), so this is not a Rust parser — it is
//! a fact extractor tuned to what the cross-file rules (R8–R11) consume:
//!
//! * which functions a file defines, and inside which `impl`/`trait`;
//! * which functions each body *references* (free calls, `Type::assoc`
//!   paths, `.method(...)` calls), with the argument token text the
//!   seed-discipline rule inspects;
//! * where locks are acquired (`Mutex::lock`, `RwLock::read/write`, the
//!   workspace's `lock_or_recover` helper) and which locks are already
//!   held at every acquisition and call site;
//! * direct uses of wall-clock and entropy identifiers (taint sources);
//! * heap-allocation sites (`Vec::new`, `push`, `format!`, ...).
//!
//! Everything is approximate in the direction the rules can tolerate:
//! call references over-approximate (they resolve by name, filtered
//! through a std-collision deny list in [`crate::graph`]), and guard
//! scopes under-approximate statement temporaries (a temporary guard is
//! assumed dead at the next `;`), which loses edges but never invents
//! deadlocks that cannot happen.

use crate::lexer::{Token, TokenKind};

/// Identifiers whose presence is a wall-clock read.
pub const CLOCK_IDENTS: [&str; 2] = ["Instant", "SystemTime"];

/// Identifiers whose presence means ambient entropy is being drawn
/// (mirrors rule R7's table).
pub const ENTROPY_IDENTS: [&str; 8] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "StdRng",
    "getrandom",
    "RandomState",
];

/// Path-call allocation constructors (`Type::fn`).
const ALLOC_PATHS: [(&str, &str); 6] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];

/// Allocating macros.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Allocating (or reallocating) method names.
const ALLOC_METHODS: [&str; 9] = [
    "push",
    "extend",
    "resize",
    "reserve",
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "insert",
];

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "loop", "return", "let", "in", "as", "move", "ref", "mut",
    "else", "fn",
];

/// What kind of item owns a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnerKind {
    /// A free function at module scope.
    Free,
    /// A method or associated function inside an `impl` block.
    Impl,
    /// A method declared (or defaulted) inside a `trait` block.
    Trait,
}

/// One call reference inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The `Type`/module segment immediately before `::`, if any.
    pub qualifier: Option<String>,
    /// The called identifier.
    pub name: String,
    /// `true` for `.name(...)` method syntax.
    pub is_method: bool,
    /// 1-based source line.
    pub line: u32,
    /// Lock names held when the call is made.
    pub held: Vec<String>,
    /// Per-argument token text (idents/numbers joined by spaces), for
    /// the seed-discipline rule.
    pub args: Vec<String>,
}

/// One lock acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// Canonical lock name: `Owner.field` for `self.field`, `.field`
    /// for a path through another binding, `fn/name` for a local.
    pub lock: String,
    /// 1-based source line.
    pub line: u32,
    /// Lock names already held when this one is acquired.
    pub held: Vec<String>,
}

/// One direct taint-source identifier use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceUse {
    /// The identifier (`Instant`, `thread_rng`, ...).
    pub ident: String,
    /// `true` for a wall-clock read, `false` for entropy.
    pub clock: bool,
    /// 1-based source line.
    pub line: u32,
}

/// One heap-allocation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// What allocated (`Vec::new`, `push`, `format!`, ...).
    pub what: String,
    /// 1-based source line.
    pub line: u32,
}

/// A `let NAME = ...;` binding, kept one level deep so the
/// seed-discipline rule can see through simple locals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LetBind {
    /// The bound identifier.
    pub name: String,
    /// Ident/number token text of the right-hand side.
    pub rhs: String,
}

/// One function definition with the facts the cross-file rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The function's identifier.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    /// What kind of item owns it.
    pub owner_kind: OwnerKind,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside a `#[test]`/`#[cfg(test)]` region.
    pub is_test: bool,
    /// Parameter names in order, `self` excluded.
    pub params: Vec<String>,
    /// Call references in body order.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions in body order.
    pub locks: Vec<LockSite>,
    /// Clock/entropy identifier uses.
    pub sources: Vec<SourceUse>,
    /// Heap allocation sites.
    pub allocs: Vec<AllocSite>,
    /// Simple local bindings.
    pub lets: Vec<LetBind>,
}

/// A `trait NAME { ... }` declaration and its method names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraitDecl {
    /// The trait's name.
    pub name: String,
    /// Methods it declares (with or without default bodies).
    pub methods: Vec<String>,
}

/// Everything phase 1 extracts from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileModel {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Function definitions, file order.
    pub fns: Vec<FnDef>,
    /// Trait declarations.
    pub traits: Vec<TraitDecl>,
    /// Trait names referenced as `dyn Trait` anywhere in the file.
    pub dyn_refs: Vec<String>,
}

/// Token-index ranges (over a comment-free stream) belonging to
/// `#[test]` / `#[cfg(test)]` items — exempt from every rule.
pub fn test_item_regions(code: &[&Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !is_punct(code, i, '#') {
            i += 1;
            continue;
        }
        // `#[...]` or `#![...]`: collect the attribute's identifiers.
        let mut j = i + 1;
        if is_punct(code, j, '!') {
            j += 1;
        }
        if !is_punct(code, j, '[') {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test_attr)) = scan_attribute(code, j) else {
            break;
        };
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then span the annotated item.
        let mut k = attr_end + 1;
        while is_punct(code, k, '#') {
            let mut b = k + 1;
            if is_punct(code, b, '!') {
                b += 1;
            }
            match scan_attribute(code, b) {
                Some((end, _)) if is_punct(code, b, '[') => k = end + 1,
                _ => break,
            }
        }
        let end = item_end(code, k);
        regions.push((i, end));
        i = end + 1;
    }
    regions
}

/// Scans a `[...]` group starting at `open` (which must be `[`); returns
/// the index of the matching `]` and whether the attribute marks
/// test-only code (`test` present without `not`).
pub fn scan_attribute(code: &[&Token], open: usize) -> Option<(usize, bool)> {
    if !is_punct(code, open, '[') {
        return None;
    }
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut i = open;
    while i < code.len() {
        match &code[i].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((i, has_test && !has_not));
                }
            }
            TokenKind::Ident(s) if s == "test" => has_test = true,
            TokenKind::Ident(s) if s == "not" => has_not = true,
            _ => {}
        }
        i += 1;
    }
    None
}

/// The token index where the item starting at `start` ends: at a
/// top-level `;` (e.g. `use`/`static` items) or at the `}` matching the
/// first `{` (fn bodies, mod blocks, impls).
pub fn item_end(code: &[&Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < code.len() {
        match &code[i].kind {
            TokenKind::Punct(';') if depth == 0 => return i,
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth <= 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Is the token at `i` the punctuation `c`?
pub fn is_punct(code: &[&Token], i: usize, c: char) -> bool {
    matches!(code.get(i), Some(t) if t.kind == TokenKind::Punct(c))
}

/// Identifier text at token index `i`, if any.
pub fn ident_at<'a>(code: &[&'a Token], i: usize) -> Option<&'a str> {
    code.get(i).and_then(|t| t.kind.ident())
}

/// Parses the comment-free token stream of one file into a
/// [`FileModel`]. `path` is the workspace-relative key; `code` must be
/// the comment-free token slice (the caller separates suppression
/// comments first).
pub fn parse_file(path: &str, code: &[&Token]) -> FileModel {
    let test_regions = test_item_regions(code);
    let in_test = |i: usize| test_regions.iter().any(|&(s, e)| i >= s && i <= e);
    let mut model = FileModel {
        path: path.to_string(),
        ..FileModel::default()
    };

    // `dyn Trait` references, wherever they occur.
    for i in 0..code.len() {
        if ident_at(code, i) == Some("dyn") {
            if let Some(name) = ident_at(code, i + 1) {
                if name.chars().next().is_some_and(char::is_uppercase) {
                    model.dyn_refs.push(name.to_string());
                }
            }
        }
    }
    model.dyn_refs.sort();
    model.dyn_refs.dedup();

    let has_rwlock = code.iter().any(|t| t.kind.ident() == Some("RwLock"));
    let cx = ScanCx {
        has_rwlock,
        in_test: &in_test,
    };
    scan_items(code, 0, code.len(), None, OwnerKind::Free, &mut model, &cx);

    // Trait method tables come from the fns parsed inside trait blocks.
    let mut traits: Vec<TraitDecl> = Vec::new();
    for f in &model.fns {
        if f.owner_kind == OwnerKind::Trait {
            if let Some(owner) = &f.owner {
                match traits.iter_mut().find(|t| &t.name == owner) {
                    Some(t) => t.methods.push(f.name.clone()),
                    None => traits.push(TraitDecl {
                        name: owner.clone(),
                        methods: vec![f.name.clone()],
                    }),
                }
            }
        }
    }
    model.traits = traits;
    model
}

/// File-level context threaded through the item scan.
struct ScanCx<'a> {
    /// Whether the file mentions `RwLock` (gates `.read()`/`.write()`
    /// lock detection).
    has_rwlock: bool,
    /// Whether a token index falls inside a test-only item.
    in_test: &'a dyn Fn(usize) -> bool,
}

/// Scans items in `code[start..end]`, recursing into `mod`/`impl`/
/// `trait` blocks and extracting every `fn`.
#[allow(clippy::too_many_arguments)]
fn scan_items(
    code: &[&Token],
    start: usize,
    end: usize,
    owner: Option<&str>,
    owner_kind: OwnerKind,
    model: &mut FileModel,
    cx: &ScanCx<'_>,
) {
    let mut i = start;
    while i < end {
        match ident_at(code, i) {
            Some("impl" | "trait") => {
                let is_trait = ident_at(code, i) == Some("trait");
                let Some((type_name, body_open)) = impl_header(code, i, end) else {
                    i += 1;
                    continue;
                };
                let body_close = matching_brace(code, body_open, end);
                scan_items(
                    code,
                    body_open + 1,
                    body_close,
                    Some(&type_name),
                    if is_trait {
                        OwnerKind::Trait
                    } else {
                        OwnerKind::Impl
                    },
                    model,
                    cx,
                );
                i = body_close + 1;
            }
            Some("mod") => {
                // `mod name { ... }` — recurse with the same owner;
                // `mod name;` — skip.
                let mut j = i + 1;
                while j < end && !is_punct(code, j, '{') && !is_punct(code, j, ';') {
                    j += 1;
                }
                if is_punct(code, j, '{') {
                    let close = matching_brace(code, j, end);
                    scan_items(code, j + 1, close, owner, owner_kind, model, cx);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            Some("fn") => {
                let fn_index = i;
                let Some(name) = ident_at(code, i + 1) else {
                    i += 1;
                    continue;
                };
                let (params, after_sig) = fn_params(code, i + 2, end);
                // Find the body `{` (or `;` for bodyless trait decls),
                // skipping the return type and where clause.
                let mut j = after_sig;
                while j < end && !is_punct(code, j, '{') && !is_punct(code, j, ';') {
                    j += 1;
                }
                let mut def = FnDef {
                    name: name.to_string(),
                    owner: owner.map(str::to_string),
                    owner_kind: if owner.is_some() {
                        owner_kind
                    } else {
                        OwnerKind::Free
                    },
                    line: code[fn_index].line,
                    is_test: (cx.in_test)(fn_index),
                    params,
                    calls: Vec::new(),
                    locks: Vec::new(),
                    sources: Vec::new(),
                    allocs: Vec::new(),
                    lets: Vec::new(),
                };
                if is_punct(code, j, '{') {
                    let close = matching_brace(code, j, end);
                    scan_body(code, j + 1, close, owner, cx.has_rwlock, &mut def);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
                model.fns.push(def);
            }
            _ => i += 1,
        }
    }
}

/// Extracts the subject type name of an `impl`/`trait` header starting
/// at `kw` and the index of the opening `{`. For `impl Trait for Type`,
/// the subject is `Type`.
fn impl_header(code: &[&Token], kw: usize, end: usize) -> Option<(String, usize)> {
    let mut i = kw + 1;
    let mut angle = 0i32;
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while i < end {
        match &code[i].kind {
            TokenKind::Punct('{') if angle <= 0 => {
                let name = after_for.or(first)?;
                return Some((name, i));
            }
            TokenKind::Punct(';') if angle <= 0 => return None, // `trait X: Y;` — malformed
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Ident(s) if angle <= 0 => {
                if s == "for" {
                    saw_for = true;
                } else if saw_for {
                    if after_for.is_none() {
                        after_for = Some(s.clone());
                    }
                } else if first.is_none() && s != "where" {
                    first = Some(s.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses a parameter list starting at (or just before) its `(`;
/// returns the names (excluding `self`) and the index after `)`.
fn fn_params(code: &[&Token], from: usize, end: usize) -> (Vec<String>, usize) {
    let mut i = from;
    // Skip generics between the name and `(`.
    let mut angle = 0i32;
    while i < end {
        match &code[i].kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('(') if angle <= 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= end {
        return (Vec::new(), end);
    }
    let close = matching_paren(code, i, end);
    let mut params = Vec::new();
    // Split on top-level commas; each parameter's name is its first
    // identifier that is not `mut`/`self`.
    let mut j = i + 1;
    let mut depth = 0i32;
    let mut seg_start = j;
    while j <= close {
        let at_comma = depth == 0 && is_punct(code, j, ',');
        if at_comma || j == close {
            let mut k = seg_start;
            while k < j {
                if let Some(name) = ident_at(code, k) {
                    if name == "mut" {
                        k += 1;
                        continue;
                    }
                    if name != "self" && is_punct(code, k + 1, ':') {
                        params.push(name.to_string());
                    }
                    break;
                }
                k += 1;
            }
            seg_start = j + 1;
        } else {
            match &code[j].kind {
                TokenKind::Punct('(' | '[' | '<' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '>' | '}') => depth -= 1,
                _ => {}
            }
        }
        j += 1;
    }
    (params, close + 1)
}

/// Index of the `}` matching the `{` at `open` (bounded by `end`).
fn matching_brace(code: &[&Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        match &code[i].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// Index of the `)` matching the `(` at `open` (bounded by `end`).
fn matching_paren(code: &[&Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        match &code[i].kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end.saturating_sub(1)
}

/// An active lock guard during the body scan.
struct Guard {
    lock: String,
    /// Binding name for `let g = <acquire>;`, `None` for a statement
    /// temporary.
    var: Option<String>,
    /// Brace depth the guard was bound at (guards die when the scan
    /// leaves their block).
    depth: i32,
}

/// Scans one function body (`code[start..end]`, inside the braces),
/// extracting calls, lock sites, sources, allocations, and simple lets.
fn scan_body(
    code: &[&Token],
    start: usize,
    end: usize,
    owner: Option<&str>,
    has_rwlock: bool,
    def: &mut FnDef,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    // `let NAME =` seen on the current statement, if any.
    let mut pending_let: Option<String> = None;
    let mut let_rhs_from: Option<usize> = None;
    let mut i = start;
    while i < end {
        let tok = code[i];
        match &tok.kind {
            TokenKind::Punct('{') => {
                // Statement temporaries do not outlive the condition or
                // expression that produced them.
                guards.retain(|g| g.var.is_some());
                depth += 1;
                i += 1;
            }
            TokenKind::Punct('}') => {
                // Close any `let`-binding before leaving its block; every
                // guard bound at or inside this block dies with it.
                flush_let(code, let_rhs_from.take(), i, pending_let.take(), def);
                guards.retain(|g| g.var.is_some() && g.depth < depth);
                depth -= 1;
                i += 1;
            }
            TokenKind::Punct(';') => {
                flush_let(code, let_rhs_from.take(), i, pending_let.take(), def);
                guards.retain(|g| g.var.is_some()); // statement temporaries die
                i += 1;
            }
            TokenKind::Ident(name) => {
                let name = name.as_str();
                // `let [mut] NAME =` — remember the binding.
                if name == "let" {
                    let mut j = i + 1;
                    if ident_at(code, j) == Some("mut") {
                        j += 1;
                    }
                    if let Some(bound) = ident_at(code, j) {
                        if is_punct(code, j + 1, '=') && !is_punct(code, j + 2, '=') {
                            pending_let = Some(bound.to_string());
                            let_rhs_from = Some(j + 2);
                            i = j + 2;
                            continue;
                        }
                    }
                    i += 1;
                    continue;
                }
                // `drop(g)` — release a named guard.
                if name == "drop" && is_punct(code, i + 1, '(') {
                    if let Some(dropped) = ident_at(code, i + 2) {
                        if is_punct(code, i + 3, ')') {
                            guards.retain(|g| g.var.as_deref() != Some(dropped));
                        }
                    }
                    i += 4.min(end - i);
                    continue;
                }
                // Taint sources.
                if CLOCK_IDENTS.contains(&name) || ENTROPY_IDENTS.contains(&name) {
                    def.sources.push(SourceUse {
                        ident: name.to_string(),
                        clock: CLOCK_IDENTS.contains(&name),
                        line: tok.line,
                    });
                    i += 1;
                    continue;
                }
                // Lock acquisition via the workspace helper.
                if name == "lock_or_recover" && is_punct(code, i + 1, '(') {
                    let close = matching_paren(code, i + 1, end);
                    let lock = lock_name_forward(code, i + 2, close, owner);
                    record_acquisition(
                        lock,
                        tok.line,
                        close,
                        code,
                        end,
                        depth,
                        &mut guards,
                        &mut pending_let,
                        &mut let_rhs_from,
                        def,
                    );
                    i = close + 1;
                    continue;
                }
                // Allocation macros and calls.
                if is_punct(code, i + 1, '!') && ALLOC_MACROS.contains(&name) {
                    def.allocs.push(AllocSite {
                        what: format!("{name}!"),
                        line: tok.line,
                    });
                    i += 2;
                    continue;
                }
                // A call? `name (` with an optional path/method prefix.
                if is_punct(code, i + 1, '(') && !NON_CALL_KEYWORDS.contains(&name) {
                    let is_method = i > start && is_punct(code, i - 1, '.');
                    // `.lock()` always acquires; `.read()`/`.write()` only
                    // count in files that actually use an `RwLock` (plain
                    // IO methods share the names).
                    if is_method
                        && (name == "lock" || (has_rwlock && (name == "read" || name == "write")))
                    {
                        let close = matching_paren(code, i + 1, end);
                        let lock = lock_name_backward(code, start, i - 1, owner);
                        record_acquisition(
                            lock,
                            tok.line,
                            close,
                            code,
                            end,
                            depth,
                            &mut guards,
                            &mut pending_let,
                            &mut let_rhs_from,
                            def,
                        );
                        i = close + 1;
                        continue;
                    }
                    let qualifier = if i >= start + 2
                        && is_punct(code, i - 1, ':')
                        && is_punct(code, i - 2, ':')
                    {
                        ident_at(code, i.wrapping_sub(3)).map(str::to_string)
                    } else {
                        None
                    };
                    if let Some((q, n)) = qualifier.as_deref().zip(Some(name)) {
                        if ALLOC_PATHS.contains(&(q, n)) {
                            def.allocs.push(AllocSite {
                                what: format!("{q}::{n}"),
                                line: tok.line,
                            });
                        }
                    }
                    if is_method && ALLOC_METHODS.contains(&name) {
                        def.allocs.push(AllocSite {
                            what: name.to_string(),
                            line: tok.line,
                        });
                    }
                    let close = matching_paren(code, i + 1, end);
                    let args = call_args(code, i + 1, close);
                    let mut held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
                    held.sort();
                    held.dedup();
                    def.calls.push(CallSite {
                        qualifier,
                        name: name.to_string(),
                        is_method,
                        line: tok.line,
                        held,
                        args,
                    });
                    // Scan *inside* the argument list too (nested calls).
                    i += 2;
                    continue;
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    // Tail statement without `;` (expression position).
    flush_let(code, let_rhs_from, end, pending_let, def);
}

/// Finishes a pending `let` binding: records the ident/number text of
/// its right-hand side.
fn flush_let(
    code: &[&Token],
    rhs_from: Option<usize>,
    rhs_end: usize,
    name: Option<String>,
    def: &mut FnDef,
) {
    let (Some(from), Some(name)) = (rhs_from, name) else {
        return;
    };
    let rhs = span_text(code, from, rhs_end);
    def.lets.push(LetBind { name, rhs });
}

/// Ident/number token text of `code[from..to]`, space-joined.
fn span_text(code: &[&Token], from: usize, to: usize) -> String {
    let mut out = String::new();
    for t in &code[from..to.min(code.len())] {
        match &t.kind {
            TokenKind::Ident(s) => {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(s);
            }
            TokenKind::Number { .. } => {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push('#');
            }
            _ => {}
        }
    }
    out
}

/// Splits a call's argument list (between the parens at `open` and its
/// match) on top-level commas, returning each argument's ident/number
/// text.
fn call_args(code: &[&Token], open: usize, close: usize) -> Vec<String> {
    if close <= open + 1 {
        return Vec::new();
    }
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut seg = open + 1;
    let mut j = open + 1;
    while j <= close {
        let at_comma = depth == 0 && is_punct(code, j, ',');
        if at_comma || j == close {
            // A segment with no tokens at all is a trailing comma, not
            // an argument (string-literal args still occupy tokens, so
            // they count — their recorded text is just empty).
            if !(j == close && seg == close) {
                args.push(span_text(code, seg, j));
            }
            seg = j + 1;
        } else {
            match &code[j].kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                _ => {}
            }
        }
        j += 1;
    }
    args
}

/// Canonical lock name from the receiver tokens of
/// `lock_or_recover( <recv> )`: `Owner.field` for `self.field`, the
/// bare name for a single ident, `.field` for other paths.
fn lock_name_forward(code: &[&Token], from: usize, to: usize, owner: Option<&str>) -> String {
    let mut idents: Vec<&str> = Vec::new();
    let mut bracket = 0i32;
    for token in code.iter().take(to).skip(from) {
        match &token.kind {
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Ident(s) if bracket == 0 => idents.push(s),
            _ => {}
        }
    }
    canonical_lock(&idents, owner)
}

/// Canonical lock name from the tokens *before* a `.lock()` call: walks
/// left over the `a.b.c` receiver chain ending at `dot`.
fn lock_name_backward(code: &[&Token], start: usize, dot: usize, owner: Option<&str>) -> String {
    let mut idents: Vec<&str> = Vec::new();
    let mut j = dot; // index of the `.` before `lock`
    loop {
        if j <= start {
            break;
        }
        // Expect ident before the dot, possibly with an index suffix.
        let mut k = j - 1;
        if is_punct(code, k, ']') {
            // Skip `[...]`.
            let mut depth = 0i32;
            while k > start {
                match &code[k].kind {
                    TokenKind::Punct(']') => depth += 1,
                    TokenKind::Punct('[') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k -= 1;
            }
            if k == start {
                break;
            }
            k -= 1;
        }
        let Some(name) = ident_at(code, k) else {
            break;
        };
        idents.push(name);
        if k == start || !is_punct(code, k - 1, '.') {
            break;
        }
        j = k - 1;
    }
    idents.reverse();
    canonical_lock(&idents, owner)
}

/// Collapses a receiver ident chain to a canonical lock identity.
fn canonical_lock(idents: &[&str], owner: Option<&str>) -> String {
    match idents {
        [] => String::from("?"),
        ["self", rest @ ..] if !rest.is_empty() => {
            let field = rest.last().copied().unwrap_or("?");
            match owner {
                Some(o) => format!("{o}.{field}"),
                None => format!("self.{field}"),
            }
        }
        [single] => (*single).to_string(),
        path => format!(".{}", path.last().copied().unwrap_or("?")),
    }
}

/// Records one lock acquisition: decides binding vs temporary guard and
/// pushes the [`LockSite`].
#[allow(clippy::too_many_arguments)]
fn record_acquisition(
    lock: String,
    line: u32,
    close: usize,
    code: &[&Token],
    end: usize,
    depth: i32,
    guards: &mut Vec<Guard>,
    pending_let: &mut Option<String>,
    let_rhs_from: &mut Option<usize>,
    def: &mut FnDef,
) {
    let mut held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
    held.sort();
    held.dedup();
    def.locks.push(LockSite {
        lock: lock.clone(),
        line,
        held,
    });
    // `let g = <acquire>;` binds the guard: the very next token after
    // the closing paren must end the statement.
    let bound = pending_let.is_some() && close + 1 < end && is_punct(code, close + 1, ';');
    if bound {
        let var = pending_let.take();
        *let_rhs_from = None;
        guards.push(Guard { lock, var, depth });
    } else {
        guards.push(Guard {
            lock,
            var: None,
            depth,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        let tokens = lex(src);
        let code: Vec<&Token> = tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
            .collect();
        parse_file("crates/x/src/a.rs", &code)
    }

    #[test]
    fn fns_and_owners_are_extracted() {
        let m = model(
            "
            pub fn free(a: u32, seed: u64) -> u64 { a as u64 ^ seed }
            impl Server {
                pub fn drain(&self) -> usize { 0 }
            }
            trait Recorder {
                fn add(&self, c: &str, d: u64);
                fn enabled(&self) -> bool { true }
            }
            ",
        );
        assert_eq!(m.fns.len(), 4);
        assert_eq!(m.fns[0].name, "free");
        assert_eq!(m.fns[0].params, vec!["a", "seed"]);
        assert_eq!(m.fns[1].owner.as_deref(), Some("Server"));
        assert_eq!(m.fns[1].owner_kind, OwnerKind::Impl);
        assert_eq!(m.fns[2].owner_kind, OwnerKind::Trait);
        assert_eq!(m.traits.len(), 1);
        assert_eq!(m.traits[0].methods, vec!["add", "enabled"]);
    }

    #[test]
    fn impl_trait_for_type_owner_is_the_type() {
        let m = model("impl Model for WotSnn { fn predict(&mut self) -> usize { 1 } }");
        assert_eq!(m.fns[0].owner.as_deref(), Some("WotSnn"));
    }

    #[test]
    fn calls_record_kind_qualifier_and_args() {
        let m = model(
            "
            fn f(seed: u64) {
                let rng = SplitMix64::new(seed ^ 0x9E);
                helper(rng.next_u64());
                self.engine.run_jobs(jobs);
            }
            ",
        );
        let calls = &m.fns[0].calls;
        let new = calls.iter().find(|c| c.name == "new").unwrap();
        assert_eq!(new.qualifier.as_deref(), Some("SplitMix64"));
        assert_eq!(new.args, vec!["seed #"]);
        let helper = calls.iter().find(|c| c.name == "helper").unwrap();
        assert!(!helper.is_method);
        assert_eq!(helper.args, vec!["rng next_u64"]);
        let run = calls.iter().find(|c| c.name == "run_jobs").unwrap();
        assert!(run.is_method);
    }

    #[test]
    fn trailing_commas_add_no_phantom_argument() {
        let m = model("fn f() { search(train, budget.min(8), PLAN_SEED,); }");
        let call = m.fns[0].calls.iter().find(|c| c.name == "search").unwrap();
        assert_eq!(call.args, vec!["train", "budget min #", "PLAN_SEED"]);
    }

    #[test]
    fn let_bound_guards_are_held_until_drop() {
        let m = model(
            "
            impl Server {
                fn drain(&self) {
                    let mut state = lock_or_recover(&self.state);
                    self.recorder.add(1);
                    drop(state);
                    self.recorder.observe(2);
                }
            }
            ",
        );
        let f = &m.fns[0];
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].lock, "Server.state");
        let add = f.calls.iter().find(|c| c.name == "add").unwrap();
        assert_eq!(add.held, vec!["Server.state"]);
        let obs = f.calls.iter().find(|c| c.name == "observe").unwrap();
        assert!(obs.held.is_empty());
    }

    #[test]
    fn temporary_guards_die_at_statement_end() {
        let m = model(
            "
            impl Cache {
                fn get(&self) {
                    lock_or_recover(&self.map).get(&key);
                    other_call();
                }
            }
            ",
        );
        let f = &m.fns[0];
        let get = f.calls.iter().find(|c| c.name == "get").unwrap();
        assert_eq!(get.held, vec!["Cache.map"]);
        let other = f.calls.iter().find(|c| c.name == "other_call").unwrap();
        assert!(other.held.is_empty());
    }

    #[test]
    fn dot_lock_receivers_are_canonicalized() {
        let m = model(
            "
            impl Pool {
                fn take(&self) {
                    let g = self.inner.lock();
                    g.use_it();
                }
                fn local(&self) {
                    let slot = make();
                    slot.lock();
                }
            }
            ",
        );
        assert_eq!(m.fns[0].locks[0].lock, "Pool.inner");
        assert_eq!(m.fns[1].locks[0].lock, "slot");
    }

    #[test]
    fn nested_acquisition_records_held_set() {
        let m = model(
            "
            impl S {
                fn both(&self) {
                    let a = lock_or_recover(&self.first);
                    let b = lock_or_recover(&self.second);
                    use_both(a, b);
                }
            }
            ",
        );
        let f = &m.fns[0];
        assert_eq!(f.locks[1].lock, "S.second");
        assert_eq!(f.locks[1].held, vec!["S.first"]);
    }

    #[test]
    fn sources_and_allocs_are_recorded() {
        let m = model(
            "
            fn f() {
                let t = Instant::now();
                let v = Vec::new();
                v.push(1);
                let s = format!(\"x\");
                let r = thread_rng();
            }
            ",
        );
        let f = &m.fns[0];
        assert_eq!(f.sources.len(), 2);
        assert!(f.sources[0].clock);
        assert!(!f.sources[1].clock);
        let whats: Vec<&str> = f.allocs.iter().map(|a| a.what.as_str()).collect();
        assert_eq!(whats, vec!["Vec::new", "push", "format!"]);
    }

    #[test]
    fn test_items_are_marked() {
        let m = model(
            "
            fn lib() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn t() {}
            }
            ",
        );
        assert!(!m.fns[0].is_test);
        assert!(m.fns[1].is_test);
        assert!(m.fns[2].is_test);
    }

    #[test]
    fn dyn_refs_are_collected() {
        let m = model("fn f(r: &dyn Recorder, m: Box<dyn Model>) {}");
        assert_eq!(m.dyn_refs, vec!["Model", "Recorder"]);
    }

    #[test]
    fn lets_capture_rhs_text() {
        let m = model("fn f(sm: &mut SplitMix64) { let first = sm.next_u64(); use_it(first); }");
        let f = &m.fns[0];
        assert_eq!(f.lets.len(), 1);
        assert_eq!(f.lets[0].name, "first");
        assert!(f.lets[0].rhs.contains("next_u64"));
    }
}
