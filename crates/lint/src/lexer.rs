//! A minimal hand-rolled Rust lexer.
//!
//! The build is offline, so `nc-lint` cannot lean on `syn` or `proc-macro2`.
//! Instead this module tokenizes Rust source just far enough for invariant
//! checking: it must never mistake the contents of a string literal, char
//! literal, or comment for code (otherwise `"HashMap"` in a log message
//! would trip R4), and it must keep comments *with their line numbers* so
//! suppression annotations can be attached to the code they cover.
//!
//! The lexer is intentionally lossy about things the rules never look at
//! (precise number grammar, operator composition); it is exact about the
//! boundaries that matter: string/char/comment extents, raw strings with
//! arbitrary `#` fences, nested block comments, lifetimes vs char literals,
//! and raw identifiers.

/// One lexical token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is, with its text where the rules need it.
    pub kind: TokenKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// Token classification. Only the shapes the rule table inspects are
/// distinguished; everything else is a `Punct`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`as`, `fn`, `HashMap`, `r#type`, ...).
    /// Raw identifiers are stored without the `r#` prefix.
    Ident(String),
    /// A line (`//`) or block (`/* */`) comment, text included verbatim.
    Comment(String),
    /// Any string-like literal: `"…"`, `b"…"`, `r#"…"#`, `c"…"`.
    StrLit,
    /// A character or byte literal: `'a'`, `b'\n'`.
    CharLit,
    /// A numeric literal. `is_float` is true for tokens with a decimal
    /// point, a decimal exponent, or an `f32`/`f64` suffix.
    Number {
        /// Whether the literal is floating-point.
        is_float: bool,
    },
    /// A lifetime such as `'a` (distinguished from `CharLit`).
    Lifetime,
    /// A single punctuation character (`.`, `!`, `#`, `{`, ...).
    Punct(char),
}

impl TokenKind {
    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// Tokenizes `source`. The lexer never fails: malformed input (an
/// unterminated string, say) produces a best-effort tail token and the
/// stream simply ends, which is the right behaviour for a linter that
/// runs before `rustc` has vetted the file.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'r' if self.raw_string_ahead() => self.raw_string(line, 1),
                b'b' | b'c' if self.peek(1) == Some(b'"') => {
                    self.bump();
                    self.string(line);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.bump();
                    self.bump();
                    self.char_body(line);
                }
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead_at(1) => {
                    self.raw_string(line, 2)
                }
                b'r' if self.peek(1) == Some(b'#')
                    && self.peek(2).is_some_and(is_ident_start)
                    && self.peek(2) != Some(b'"') =>
                {
                    // Raw identifier r#type: skip the fence, lex the ident.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                _ if is_ident_start(b) => self.ident(line),
                b'0'..=b'9' => self.number(line),
                b'"' => self.string(line),
                b'\'' => self.quote(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(char::from(b)), line);
                }
            }
        }
        self.tokens
    }

    /// Is `r"`, `r#"`, `r##"`... next (possibly with a `b` already seen)?
    fn raw_string_ahead(&self) -> bool {
        self.raw_string_ahead_at(0)
    }

    fn raw_string_ahead_at(&self, offset: usize) -> bool {
        // bytes[pos+offset] is the 'r'; scan over `#`s to find a quote.
        let mut i = offset + 1;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokenKind::Comment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokenKind::Comment(text), line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokenKind::Ident(text), line);
    }

    fn number(&mut self, line: u32) {
        let mut is_float = false;
        let hex =
            self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'b'));
        self.bump();
        if hex {
            self.bump();
        }
        loop {
            match self.peek(0) {
                Some(b) if b.is_ascii_digit() || b == b'_' => {
                    self.bump();
                }
                // A decimal point only counts when followed by a digit:
                // `0..10` and `1.max(2)` stay integers.
                Some(b'.') if !hex && self.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                    is_float = true;
                    self.bump();
                }
                // Decimal exponent `1e9` / `1E-9`.
                Some(b'e' | b'E')
                    if !hex
                        && self.peek(1).is_some_and(|d| {
                            d.is_ascii_digit()
                                || ((d == b'+' || d == b'-')
                                    && self.peek(2).is_some_and(|e| e.is_ascii_digit()))
                        }) =>
                {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(0), Some(b'+' | b'-')) {
                        self.bump();
                    }
                }
                // Suffix (u8, i64, f32, usize, ...), or hex digits.
                Some(b) if is_ident_continue(b) => {
                    let suffix_start = self.pos;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    let suffix = &self.bytes[suffix_start..self.pos];
                    if suffix == b"f32" || suffix == b"f64" {
                        is_float = true;
                    }
                    break;
                }
                _ => break,
            }
        }
        self.push(TokenKind::Number { is_float }, line);
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::StrLit, line);
    }

    /// Raw (byte) string: `prefix_len` bytes of `r`/`br` already peeked.
    fn raw_string(&mut self, line: u32, prefix_len: usize) {
        for _ in 0..prefix_len {
            self.bump();
        }
        let mut fence = 0usize;
        while self.peek(0) == Some(b'#') {
            fence += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(b) = self.bump() {
            if b == b'"' {
                for i in 0..fence {
                    if self.peek(i) != Some(b'#') {
                        continue 'scan;
                    }
                }
                for _ in 0..fence {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::StrLit, line);
    }

    /// A `'`: either a char literal or a lifetime.
    fn quote(&mut self, line: u32) {
        // `'\...'` is always a char literal.
        if self.peek(1) == Some(b'\\') {
            self.bump();
            self.char_body(line);
            return;
        }
        // `'x` where the ident run is followed by another `'` is a char
        // literal ('a'); otherwise it is a lifetime ('a, 'static, '_).
        if self.peek(1).is_some_and(is_ident_start) {
            let mut i = 2;
            while self.peek(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            if self.peek(i) == Some(b'\'') {
                self.bump();
                self.char_body(line);
            } else {
                self.bump();
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(TokenKind::Lifetime, line);
            }
            return;
        }
        // `'('`-style single-char literal, or a stray quote.
        self.bump();
        self.char_body(line);
    }

    /// Consumes a char-literal body up to and including the closing `'`
    /// (the opening quote has been consumed).
    fn char_body(&mut self, line: u32) {
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::CharLit, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let x = "HashMap::new()"; // HashMap in a comment
            /* Instant::now() in /* a nested */ block */
            let y = r#"panic!("no")"#;
        "##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|s| s == "HashMap" || s == "Instant" || s == "panic"));
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::CharLit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn float_literals_are_classified() {
        let floats: Vec<bool> =
            lex("let a = 1; let b = 1.5; let c = 2f64; let d = 1e9; let e = 0x1f; let f = 0..10;")
                .into_iter()
                .filter_map(|t| match t.kind {
                    TokenKind::Number { is_float } => Some(is_float),
                    _ => None,
                })
                .collect();
        assert_eq!(floats, vec![false, true, true, true, false, false, false]);
    }

    #[test]
    fn raw_idents_and_byte_strings() {
        let ids = idents("let r#type = b\"f64\"; let r = 1;");
        assert_eq!(ids, vec!["let", "type", "let", "r"]);
    }

    #[test]
    fn comments_keep_line_numbers() {
        let toks = lex("let a = 1;\n// nc-lint: allow(R4, reason = \"x\")\nlet b = 2;");
        let comment = toks
            .iter()
            .find(|t| matches!(t.kind, TokenKind::Comment(_)))
            .map(|t| t.line);
        assert_eq!(comment, Some(2));
    }
}
