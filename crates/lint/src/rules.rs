//! The invariant rule table and the two-phase checking pipeline.
//!
//! Each rule has an ID (`R1`..`R11`), a *scope* (which files or graph
//! regions it governs), and a detector. R1–R7 are per-file token-pattern
//! rules (phase 1); R8–R11 run on the workspace symbol graph built from
//! every file's parsed model (phase 2, see [`crate::graph`] and
//! [`crate::taint`]). The scopes encode the architecture DESIGN.md
//! documents: wall-clock reads belong to the observability layer,
//! hash-ordered containers never touch result paths, panics never cross
//! a library boundary, every narrowing cast outside the audited
//! fixed-point module is either rewritten or carries an auditable
//! justification, and the determinism contract (served predictions
//! bit-equal to offline evaluation) is closed under the call graph.

use crate::lexer::{lex, Token, TokenKind};
use crate::parse::{self, ident_at, is_punct, parse_file, test_item_regions, FileModel};
use crate::report::Report;
use crate::{graph, taint};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The PR this tree is being prepared for; waivers with
/// `expires = "PR<n>"` stop suppressing (and become findings) once
/// `CURRENT_PR >= n`. Bumped at the start of each PR.
pub const CURRENT_PR: u32 = 8;

/// Identifier of one invariant rule (or the meta-rule that audits the
/// suppression comments themselves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No `f32`/`f64` types or float literals in fixed-point datapath modules.
    R1,
    /// No bare narrowing `as` casts outside the audited fixed-point module.
    R2,
    /// No wall-clock reads (`Instant`, `SystemTime`) outside nc-obs/nc-bench.
    R3,
    /// No `HashMap`/`HashSet` anywhere a deterministic output could observe.
    R4,
    /// No `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code.
    R5,
    /// No thread creation outside the engine's worker pool.
    R6,
    /// No entropy-sourced RNG construction; seeds flow in explicitly.
    R7,
    /// No clock/entropy source reachable from a determinism root (cross-file).
    R8,
    /// No lock-order cycles; no lock held across dyn dispatch (cross-file).
    R9,
    /// No heap allocation on `nc_substrate::kernel` hot paths (cross-file).
    R10,
    /// Seed arguments derive from seeded streams or named constants (cross-file).
    R11,
    /// Suppression comments must parse, carry a reason, and not expire.
    Suppress,
}

impl RuleId {
    /// Every enforced rule, in report order.
    pub const ALL: [RuleId; 12] = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R5,
        RuleId::R6,
        RuleId::R7,
        RuleId::R8,
        RuleId::R9,
        RuleId::R10,
        RuleId::R11,
        RuleId::Suppress,
    ];

    /// The rule's name as written in reports and suppression comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::R1 => "R1",
            RuleId::R2 => "R2",
            RuleId::R3 => "R3",
            RuleId::R4 => "R4",
            RuleId::R5 => "R5",
            RuleId::R6 => "R6",
            RuleId::R7 => "R7",
            RuleId::R8 => "R8",
            RuleId::R9 => "R9",
            RuleId::R10 => "R10",
            RuleId::R11 => "R11",
            RuleId::Suppress => "SUPPRESS",
        }
    }

    /// Parses a rule name from a suppression comment.
    pub fn parse(name: &str) -> Option<RuleId> {
        match name {
            "R1" => Some(RuleId::R1),
            "R2" => Some(RuleId::R2),
            "R3" => Some(RuleId::R3),
            "R4" => Some(RuleId::R4),
            "R5" => Some(RuleId::R5),
            "R6" => Some(RuleId::R6),
            "R7" => Some(RuleId::R7),
            "R8" => Some(RuleId::R8),
            "R9" => Some(RuleId::R9),
            "R10" => Some(RuleId::R10),
            "R11" => Some(RuleId::R11),
            _ => None,
        }
    }

    /// One-line statement of the invariant, for reports and docs.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::R1 => "float type/literal in a fixed-point datapath module",
            RuleId::R2 => "bare narrowing `as` cast outside the audited fixed-point module",
            RuleId::R3 => "wall-clock read outside the observability crates",
            RuleId::R4 => "hash-ordered collection on a deterministic-output path",
            RuleId::R5 => "panic path in library code",
            RuleId::R6 => "thread creation outside the engine pool",
            RuleId::R7 => "entropy-sourced RNG construction",
            RuleId::R8 => "clock/entropy source reachable from a determinism root",
            RuleId::R9 => "lock-order cycle or lock held across dyn dispatch",
            RuleId::R10 => "heap allocation on a kernel hot path",
            RuleId::R11 => "seed argument not derived from a seeded stream or named constant",
            RuleId::Suppress => "malformed, unused, or expired suppression",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation (or suppression audit failure) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

/// What kind of build target a file belongs to, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// `src/` code built into a library.
    Library,
    /// `src/bin/`, `src/main.rs`: a binary entry point.
    Binary,
    /// `tests/`, `benches/`, `examples/`: never linked into a deliverable.
    TestOrBench,
}

/// Path-derived facts the scopes key on.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Which target family the file builds into.
    pub target: TargetKind,
}

impl FileContext {
    /// Classifies a workspace-relative path (`crates/core/src/engine.rs`).
    pub fn classify(path: &str) -> FileContext {
        let normalized = path.replace('\\', "/");
        let target = if normalized.contains("/tests/")
            || normalized.starts_with("tests/")
            || normalized.contains("/benches/")
            || normalized.contains("/examples/")
            || normalized.starts_with("examples/")
        {
            TargetKind::TestOrBench
        } else if normalized.contains("/src/bin/") || normalized.ends_with("/src/main.rs") {
            TargetKind::Binary
        } else {
            TargetKind::Library
        };
        FileContext {
            path: normalized,
            target,
        }
    }

    fn in_crate(&self, name: &str) -> bool {
        let prefix = format!("crates/{name}/");
        self.path.starts_with(&prefix)
    }
}

/// Files where R1 bans floats: the integer datapath modules whose whole
/// point is bit-faithful narrow arithmetic (paper §4.2). Everything else
/// may use floats freely — the software reference models are float by
/// design.
const R1_DATAPATH_FILES: [&str; 3] = [
    "crates/hw/src/sim.rs",
    "crates/hw/src/pipeline.rs",
    "crates/snn/src/wot.rs",
];

/// The audited fixed-point module where bare narrowing casts are the
/// implementation technique rather than a hazard.
const R2_EXEMPT_FILE: &str = "crates/substrate/src/fixed.rs";

/// The one file allowed to create threads: the engine's worker pool.
const R6_POOL_FILE: &str = "crates/core/src/engine.rs";

/// Cast targets R2 considers narrowing. Token-level linting cannot see
/// the source type, so every cast *to* a ≤32-bit or pointer-width integer
/// is flagged; lossless ones are rewritten to `From`/`try_from` (which
/// also documents the intent) and lossy-by-design ones carry a reason.
const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Does a phase-1 `rule` govern `file` at all? (Test regions are handled
/// separately; phase-2 rules scope themselves on the graph.)
fn rule_applies(rule: RuleId, file: &FileContext) -> bool {
    if file.target == TargetKind::TestOrBench {
        return false;
    }
    match rule {
        RuleId::R1 => R1_DATAPATH_FILES.contains(&file.path.as_str()),
        RuleId::R2 => file.path != R2_EXEMPT_FILE,
        RuleId::R3 => !file.in_crate("obs") && !file.in_crate("bench"),
        RuleId::R4 | RuleId::R7 => true,
        RuleId::R5 => file.target == TargetKind::Library,
        RuleId::R6 => file.path != R6_POOL_FILE,
        RuleId::R8 | RuleId::R9 | RuleId::R10 | RuleId::R11 => false,
        RuleId::Suppress => true,
    }
}

/// A parsed `// nc-lint: allow(...)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line the comment sits on.
    pub line: u32,
    /// Rules it waives.
    pub rules: Vec<RuleId>,
    /// `allow-file(...)` — covers the whole file.
    pub file_wide: bool,
    /// `expires = "PR<n>"`, if given.
    pub expires: Option<u32>,
    /// The code line a line-level waiver covers (the next line holding
    /// any code), resolved at scan time.
    pub covered: Option<u32>,
    /// Whether it silenced at least one finding (set during resolution).
    pub used: bool,
}

impl Suppression {
    /// Expired waivers no longer suppress and are findings themselves.
    pub fn expired(&self) -> bool {
        self.expires.is_some_and(|n| CURRENT_PR >= n)
    }
}

/// Result of parsing one suppression comment.
enum ParsedSuppression {
    Ok(Suppression),
    Malformed { line: u32, message: String },
}

/// Parses an `allow(R4, ...)` / `allow-file(R1, ...)` waiver out of a
/// comment, if present. Only plain `//` comments carry waivers: doc
/// comments (`///`, `//!`) and block comments are documentation and may
/// legitimately *mention* the directive syntax without enacting it.
fn parse_suppression(text: &str, line: u32) -> Option<ParsedSuppression> {
    let body = text.strip_prefix("//")?;
    if body.starts_with('/') || body.starts_with('!') {
        return None;
    }
    let marker = "nc-lint:";
    let trimmed = body.trim_start();
    // The directive must lead the comment; prose mentioning it does not count.
    let rest = trimmed.strip_prefix(marker)?.trim_start();
    let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (false, r)
    } else {
        return Some(ParsedSuppression::Malformed {
            line,
            message: format!(
                "unrecognized nc-lint directive (expected `allow(...)` or `allow-file(...)`): `{}`",
                rest.trim()
            ),
        });
    };
    let rest = rest.trim_start();
    let Some(inner) = rest
        .strip_prefix('(')
        .and_then(|r| r.rfind(')').map(|end| &r[..end]))
    else {
        return Some(ParsedSuppression::Malformed {
            line,
            message: String::from("suppression is missing its `(...)` argument list"),
        });
    };
    let mut rules = Vec::new();
    let mut reason: Option<&str> = None;
    let mut expires: Option<u32> = None;
    for part in split_top_level_commas(inner) {
        let part = part.trim();
        if let Some(value) = part.strip_prefix("reason") {
            let value = value.trim_start();
            let value = value.strip_prefix('=').unwrap_or(value).trim();
            let unquoted = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .unwrap_or(value);
            reason = Some(unquoted);
        } else if let Some(value) = part.strip_prefix("expires") {
            let value = value.trim_start();
            let value = value.strip_prefix('=').unwrap_or(value).trim();
            let unquoted = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .unwrap_or(value);
            match unquoted
                .strip_prefix("PR")
                .and_then(|n| n.parse::<u32>().ok())
            {
                Some(n) => expires = Some(n),
                None => {
                    return Some(ParsedSuppression::Malformed {
                        line,
                        message: format!("bad `expires` value `{unquoted}` (expected `\"PR<n>\"`)"),
                    })
                }
            }
        } else if let Some(rule) = RuleId::parse(part) {
            rules.push(rule);
        } else {
            return Some(ParsedSuppression::Malformed {
                line,
                message: format!("unknown rule `{part}` in suppression"),
            });
        }
    }
    if rules.is_empty() {
        return Some(ParsedSuppression::Malformed {
            line,
            message: String::from("suppression names no rule"),
        });
    }
    match reason {
        Some(r) if !r.trim().is_empty() => Some(ParsedSuppression::Ok(Suppression {
            line,
            rules,
            file_wide,
            expires,
            covered: None,
            used: false,
        })),
        _ => Some(ParsedSuppression::Malformed {
            line,
            message: String::from(
                "suppression must carry a non-empty `reason = \"...\"` justification",
            ),
        }),
    }
}

/// Splits on commas that are not inside a quoted reason string.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Per-file lint statistics, folded into the workspace report.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FileStats {
    /// Suppression comments seen (well-formed ones).
    pub suppressions_total: usize,
    /// Suppressions that silenced at least one finding.
    pub suppressions_used: usize,
}

/// A file's live (well-formed, unexpired) waivers, queryable by rule and
/// line. Phase-2 analyses consult this: an R3/R7 waiver on a source line
/// sanctions the source for R8 as well.
#[derive(Debug, Default, Clone)]
pub struct FileWaivers {
    lines: BTreeMap<u32, Vec<RuleId>>,
    file_wide: BTreeSet<RuleId>,
}

impl FileWaivers {
    /// Registers a line-level waiver for `rule` covering `line`.
    pub fn add_line(&mut self, rule: RuleId, line: u32) {
        self.lines.entry(line).or_default().push(rule);
    }

    /// Registers a file-wide waiver for `rule`.
    pub fn add_file_wide(&mut self, rule: RuleId) {
        self.file_wide.insert(rule);
    }

    /// Does a waiver for `rule` cover `line`?
    pub fn covers(&self, rule: RuleId, line: u32) -> bool {
        self.file_wide.contains(&rule)
            || self
                .lines
                .get(&line)
                .is_some_and(|rules| rules.contains(&rule))
    }
}

/// Everything phase 1 extracts from one file: the parsed model (for the
/// graph), the raw phase-1 findings (not yet suppressed), and the
/// suppression table. Pure per-file data — exactly what the incremental
/// cache stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileScan {
    /// Workspace-relative path.
    pub path: String,
    /// Which target family the file builds into.
    pub target: TargetKind,
    /// The parsed item/scope model.
    pub model: FileModel,
    /// Raw phase-1 findings, before suppression resolution.
    pub raw: Vec<Finding>,
    /// `Suppress` findings from malformed directives.
    pub malformed: Vec<Finding>,
    /// Well-formed waivers (resolution marks them used).
    pub suppressions: Vec<Suppression>,
}

impl FileScan {
    /// The live waiver table phase 2 consults.
    pub fn waivers(&self) -> FileWaivers {
        let mut table = FileWaivers::default();
        for s in &self.suppressions {
            if s.expired() {
                continue;
            }
            for &rule in &s.rules {
                if s.file_wide {
                    table.add_file_wide(rule);
                } else if let Some(line) = s.covered {
                    table.add_line(rule, line);
                }
            }
        }
        table
    }
}

/// Phase 1 for one file: lex, split comments from code, parse the item
/// model, run the per-file rules, and collect suppressions. Pure (no
/// filesystem), so fixtures and the cache share the exact code path the
/// CLI uses.
pub fn scan_file(path: &str, source: &str) -> FileScan {
    let file = FileContext::classify(path);
    let tokens = lex(source);

    // Separate code tokens from comments, remembering which lines hold
    // any code at all (suppression comments attach across blank/comment
    // lines to the next code line).
    let mut code: Vec<&Token> = Vec::new();
    let mut code_lines: BTreeSet<u32> = BTreeSet::new();
    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut malformed: Vec<Finding> = Vec::new();
    for token in &tokens {
        match &token.kind {
            TokenKind::Comment(text) => match parse_suppression(text, token.line) {
                Some(ParsedSuppression::Ok(s)) => suppressions.push(s),
                Some(ParsedSuppression::Malformed { line, message }) => malformed.push(Finding {
                    file: file.path.clone(),
                    line,
                    rule: RuleId::Suppress,
                    message,
                }),
                None => {}
            },
            _ => {
                code.push(token);
                code_lines.insert(token.line);
            }
        }
    }
    for s in &mut suppressions {
        if !s.file_wide {
            s.covered = code_lines.range(s.line..).next().copied();
        }
    }

    let test_regions = test_item_regions(&code);
    let raw = scan_rules(&file, &code, &test_regions);
    let model = parse_file(&file.path, &code);
    FileScan {
        path: file.path,
        target: file.target,
        model,
        raw,
        malformed,
        suppressions,
    }
}

/// Phase 2: links every non-test file's model into the workspace symbol
/// graph and runs the cross-file rules (R8–R11). Returns raw findings;
/// suppression resolution happens in [`resolve_workspace`].
pub fn run_phase2(scans: &[FileScan]) -> Vec<Finding> {
    let units: Vec<graph::Unit<'_>> = scans
        .iter()
        .filter(|s| s.target != TargetKind::TestOrBench)
        .map(|s| graph::Unit {
            path: &s.path,
            model: &s.model,
        })
        .collect();
    if units.is_empty() {
        return Vec::new();
    }
    let waivers: BTreeMap<String, FileWaivers> = scans
        .iter()
        .filter(|s| s.target != TargetKind::TestOrBench)
        .map(|s| (s.path.clone(), s.waivers()))
        .collect();
    let graph = graph::SymbolGraph::build(units);
    let mut findings = taint::check_determinism_taint(&graph, &waivers);
    findings.extend(graph::check_lock_order(&graph));
    findings.extend(graph::check_kernel_allocs(&graph));
    findings.extend(taint::check_seed_discipline(&graph));
    findings
}

/// Resolves suppressions across the whole workspace: folds raw phase-1
/// and phase-2 findings through each file's waiver table, then reports
/// malformed, expired, and unused waivers as `SUPPRESS` findings.
pub fn resolve_workspace(mut scans: Vec<FileScan>, phase2: Vec<Finding>) -> Report {
    let index: BTreeMap<String, usize> = scans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.path.clone(), i))
        .collect();
    let mut findings: Vec<Finding> = Vec::new();
    let mut raw: Vec<Finding> = Vec::new();
    for s in &mut scans {
        raw.append(&mut s.raw);
        findings.append(&mut s.malformed);
    }
    raw.extend(phase2);

    for f in raw {
        let Some(&i) = index.get(&f.file) else {
            findings.push(f);
            continue;
        };
        let scan = &mut scans[i];
        let mut suppressed = false;
        for s in scan.suppressions.iter_mut() {
            if s.expired() || !s.rules.contains(&f.rule) {
                continue;
            }
            let hit = if s.file_wide {
                true
            } else {
                s.covered == Some(f.line)
            };
            if hit {
                s.used = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }

    // Expired and unused suppressions are findings too: a stale allow is
    // an invariant hole waiting to be widened silently.
    let mut suppressions_total = 0usize;
    let mut suppressions_used = 0usize;
    for scan in &scans {
        suppressions_total += scan.suppressions.len();
        suppressions_used += scan.suppressions.iter().filter(|s| s.used).count();
        for s in &scan.suppressions {
            let names: Vec<&str> = s.rules.iter().map(|r| r.name()).collect();
            if s.expired() {
                let at = s.expires.unwrap_or(0);
                findings.push(Finding {
                    file: scan.path.clone(),
                    line: s.line,
                    rule: RuleId::Suppress,
                    message: format!(
                        "suppression for {} expired at PR{at} (current PR{CURRENT_PR}); \
                         fix the violation or renew the waiver with a fresh audit",
                        names.join(", ")
                    ),
                });
            } else if !s.used {
                findings.push(Finding {
                    file: scan.path.clone(),
                    line: s.line,
                    rule: RuleId::Suppress,
                    message: format!(
                        "unused suppression for {} (nothing on the covered line trips it)",
                        names.join(", ")
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Report {
        findings,
        files_scanned: scans.len(),
        suppressions_total,
        suppressions_used,
        files_reparsed: None,
    }
}

/// Lints one file's source text through the full two-phase pipeline
/// (phase 2 degenerates to a single-file graph). Pure: no filesystem
/// access, so fixture tests can feed synthetic sources through the
/// identical code path the CLI uses.
pub fn check_source(path: &str, source: &str) -> (Vec<Finding>, FileStats) {
    let scan = scan_file(path, source);
    let phase2 = run_phase2(std::slice::from_ref(&scan));
    let report = resolve_workspace(vec![scan], phase2);
    let stats = FileStats {
        suppressions_total: report.suppressions_total,
        suppressions_used: report.suppressions_used,
    };
    (report.findings, stats)
}

/// Runs every applicable phase-1 rule's detector over the comment-free
/// tokens.
fn scan_rules(
    file: &FileContext,
    code: &[&Token],
    test_regions: &[(usize, usize)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let in_test = |i: usize| test_regions.iter().any(|&(s, e)| i >= s && i <= e);
    let applies: Vec<RuleId> = RuleId::ALL
        .iter()
        .copied()
        .filter(|&r| r != RuleId::Suppress && rule_applies(r, file))
        .collect();
    if applies.is_empty() {
        return findings;
    }
    let mut push = |line: u32, rule: RuleId, message: String| {
        findings.push(Finding {
            file: file.path.clone(),
            line,
            rule,
            message,
        });
    };

    for (i, token) in code.iter().enumerate() {
        if in_test(i) {
            continue;
        }
        match &token.kind {
            TokenKind::Number { is_float: true } if applies.contains(&RuleId::R1) => {
                push(
                    token.line,
                    RuleId::R1,
                    String::from("float literal in a fixed-point datapath module"),
                );
            }
            TokenKind::Ident(name) => {
                let name = name.as_str();
                match name {
                    "f32" | "f64" if applies.contains(&RuleId::R1) => push(
                        token.line,
                        RuleId::R1,
                        format!("`{name}` in a fixed-point datapath module"),
                    ),
                    "as" if applies.contains(&RuleId::R2) => {
                        if let Some(target) = ident_at(code, i + 1) {
                            if NARROW_TARGETS.contains(&target) {
                                push(
                                    token.line,
                                    RuleId::R2,
                                    format!(
                                        "bare `as {target}` cast; use `{target}::from`/`try_from` \
                                         or a saturating fixed-point helper"
                                    ),
                                );
                            }
                        }
                    }
                    "Instant" | "SystemTime" if applies.contains(&RuleId::R3) => push(
                        token.line,
                        RuleId::R3,
                        format!("`{name}` wall-clock access outside nc-obs/nc-bench"),
                    ),
                    "HashMap" | "HashSet" if applies.contains(&RuleId::R4) => push(
                        token.line,
                        RuleId::R4,
                        format!("`{name}` iterates in hash order; use the BTree equivalent"),
                    ),
                    "unwrap" | "expect"
                        if applies.contains(&RuleId::R5)
                            && is_punct(code, i.wrapping_sub(1), '.')
                            && is_punct(code, i + 1, '(') =>
                    {
                        push(
                            token.line,
                            RuleId::R5,
                            format!("`.{name}()` can panic in library code"),
                        );
                    }
                    "panic" | "todo" | "unimplemented"
                        if applies.contains(&RuleId::R5) && is_punct(code, i + 1, '!') =>
                    {
                        push(
                            token.line,
                            RuleId::R5,
                            format!("`{name}!` in library code; return a typed error"),
                        );
                    }
                    "spawn" if applies.contains(&RuleId::R6) => push(
                        token.line,
                        RuleId::R6,
                        String::from("thread creation outside the engine pool"),
                    ),
                    _ if applies.contains(&RuleId::R7) && parse::ENTROPY_IDENTS.contains(&name) => {
                        push(
                            token.line,
                            RuleId::R7,
                            format!(
                                "`{name}` draws ambient entropy; construct RNGs from explicit seeds"
                            ),
                        )
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<RuleId> {
        check_source(path, src)
            .0
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn classify_targets() {
        let lib = FileContext::classify("crates/core/src/engine.rs");
        assert_eq!(lib.target, TargetKind::Library);
        let bin = FileContext::classify("crates/bench/src/bin/fig3.rs");
        assert_eq!(bin.target, TargetKind::Binary);
        let test = FileContext::classify("crates/core/tests/determinism.rs");
        assert_eq!(test.target, TargetKind::TestOrBench);
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "
            pub fn lib() -> u8 { 0 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        ";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "
            #[cfg(not(test))]
            pub fn lib() { Some(1).unwrap(); }
        ";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), vec![RuleId::R5]);
    }

    #[test]
    fn suppression_silences_and_is_counted() {
        let src = "
            // nc-lint: allow(R4, reason = \"bounded scratch map, drained before output\")
            use std::collections::HashMap;
        ";
        let (findings, stats) = check_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(stats.suppressions_total, 1);
        assert_eq!(stats.suppressions_used, 1);
    }

    #[test]
    fn reasonless_suppression_is_a_finding() {
        let src = "
            // nc-lint: allow(R4)
            use std::collections::HashMap;
        ";
        let rules = rules_hit("crates/core/src/x.rs", src);
        assert!(rules.contains(&RuleId::Suppress), "{rules:?}");
    }

    #[test]
    fn unused_suppression_is_a_finding() {
        let src = "
            // nc-lint: allow(R4, reason = \"nothing here\")
            pub fn f() {}
        ";
        let rules = rules_hit("crates/core/src/x.rs", src);
        assert_eq!(rules, vec![RuleId::Suppress]);
    }

    #[test]
    fn trailing_same_line_suppression_works() {
        let src = "use std::collections::HashMap; // nc-lint: allow(R4, reason = \"scratch\")\n";
        let (findings, _) = check_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unexpired_waiver_still_suppresses() {
        let src = "
            // nc-lint: allow(R4, reason = \"scratch\", expires = \"PR99\")
            use std::collections::HashMap;
        ";
        let (findings, stats) = check_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(stats.suppressions_used, 1);
    }

    #[test]
    fn expired_waiver_surfaces_both_findings() {
        let src = "
            // nc-lint: allow(R4, reason = \"scratch\", expires = \"PR8\")
            use std::collections::HashMap;
        ";
        let (findings, stats) = check_source("crates/core/src/x.rs", src);
        let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
        // Sorted by line: the expired waiver (line 2) precedes the
        // resurfaced R4 (line 3).
        assert_eq!(rules, vec![RuleId::Suppress, RuleId::R4], "{findings:?}");
        assert!(
            findings[0].message.contains("expired at PR8"),
            "{findings:?}"
        );
        assert_eq!(stats.suppressions_used, 0);
    }

    #[test]
    fn malformed_expires_is_a_finding() {
        let src = "
            // nc-lint: allow(R4, reason = \"scratch\", expires = \"v2\")
            use std::collections::HashMap;
        ";
        let rules = rules_hit("crates/core/src/x.rs", src);
        assert!(rules.contains(&RuleId::Suppress), "{rules:?}");
    }

    #[test]
    fn phase2_findings_can_be_waived_and_count_used() {
        let src = "
            impl Gate {
                pub fn spin(&self) {
                    let g = lock_or_recover(&self.state);
                    // nc-lint: allow(R9, reason = \"re-entrant by design in this fixture\")
                    lock_or_recover(&self.state).clear();
                }
            }
        ";
        let (findings, stats) = check_source("crates/serve/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(stats.suppressions_used, 1);
    }

    #[test]
    fn self_deadlock_is_found_single_file() {
        let src = "
            impl Gate {
                pub fn spin(&self) {
                    let g = lock_or_recover(&self.state);
                    lock_or_recover(&self.state).clear();
                }
            }
        ";
        let rules = rules_hit("crates/serve/src/x.rs", src);
        assert_eq!(rules, vec![RuleId::R9], "{rules:?}");
    }
}
