//! The invariant rule table and the per-file checking pass.
//!
//! Each rule has an ID (`R1`..`R7`), a path-based *scope* (which files it
//! governs), and a token-pattern detector. The scopes encode the
//! architecture DESIGN.md documents: wall-clock reads belong to the
//! observability layer, hash-ordered containers never touch result paths,
//! panics never cross a library boundary, and every narrowing cast outside
//! the audited fixed-point module is either rewritten or carries an
//! auditable justification.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of one invariant rule (or the meta-rule that audits the
/// suppression comments themselves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No `f32`/`f64` types or float literals in fixed-point datapath modules.
    R1,
    /// No bare narrowing `as` casts outside the audited fixed-point module.
    R2,
    /// No wall-clock reads (`Instant`, `SystemTime`) outside nc-obs/nc-bench.
    R3,
    /// No `HashMap`/`HashSet` anywhere a deterministic output could observe.
    R4,
    /// No `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code.
    R5,
    /// No thread creation outside the engine's worker pool.
    R6,
    /// No entropy-sourced RNG construction; seeds flow in explicitly.
    R7,
    /// Suppression comments must parse and carry a non-empty reason.
    Suppress,
}

impl RuleId {
    /// Every enforced rule, in report order.
    pub const ALL: [RuleId; 8] = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R5,
        RuleId::R6,
        RuleId::R7,
        RuleId::Suppress,
    ];

    /// The rule's name as written in reports and suppression comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::R1 => "R1",
            RuleId::R2 => "R2",
            RuleId::R3 => "R3",
            RuleId::R4 => "R4",
            RuleId::R5 => "R5",
            RuleId::R6 => "R6",
            RuleId::R7 => "R7",
            RuleId::Suppress => "SUPPRESS",
        }
    }

    /// Parses a rule name from a suppression comment.
    pub fn parse(name: &str) -> Option<RuleId> {
        match name {
            "R1" => Some(RuleId::R1),
            "R2" => Some(RuleId::R2),
            "R3" => Some(RuleId::R3),
            "R4" => Some(RuleId::R4),
            "R5" => Some(RuleId::R5),
            "R6" => Some(RuleId::R6),
            "R7" => Some(RuleId::R7),
            _ => None,
        }
    }

    /// One-line statement of the invariant, for reports and docs.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::R1 => "float type/literal in a fixed-point datapath module",
            RuleId::R2 => "bare narrowing `as` cast outside the audited fixed-point module",
            RuleId::R3 => "wall-clock read outside the observability crates",
            RuleId::R4 => "hash-ordered collection on a deterministic-output path",
            RuleId::R5 => "panic path in library code",
            RuleId::R6 => "thread creation outside the engine pool",
            RuleId::R7 => "entropy-sourced RNG construction",
            RuleId::Suppress => "malformed or unused suppression",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation (or suppression audit failure) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

/// What kind of build target a file belongs to, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// `src/` code built into a library.
    Library,
    /// `src/bin/`, `src/main.rs`: a binary entry point.
    Binary,
    /// `tests/`, `benches/`, `examples/`: never linked into a deliverable.
    TestOrBench,
}

/// Path-derived facts the scopes key on.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Which target family the file builds into.
    pub target: TargetKind,
}

impl FileContext {
    /// Classifies a workspace-relative path (`crates/core/src/engine.rs`).
    pub fn classify(path: &str) -> FileContext {
        let normalized = path.replace('\\', "/");
        let target = if normalized.contains("/tests/")
            || normalized.starts_with("tests/")
            || normalized.contains("/benches/")
            || normalized.contains("/examples/")
            || normalized.starts_with("examples/")
        {
            TargetKind::TestOrBench
        } else if normalized.contains("/src/bin/") || normalized.ends_with("/src/main.rs") {
            TargetKind::Binary
        } else {
            TargetKind::Library
        };
        FileContext {
            path: normalized,
            target,
        }
    }

    fn in_crate(&self, name: &str) -> bool {
        let prefix = format!("crates/{name}/");
        self.path.starts_with(&prefix)
    }
}

/// Files where R1 bans floats: the integer datapath modules whose whole
/// point is bit-faithful narrow arithmetic (paper §4.2). Everything else
/// may use floats freely — the software reference models are float by
/// design.
const R1_DATAPATH_FILES: [&str; 3] = [
    "crates/hw/src/sim.rs",
    "crates/hw/src/pipeline.rs",
    "crates/snn/src/wot.rs",
];

/// The audited fixed-point module where bare narrowing casts are the
/// implementation technique rather than a hazard.
const R2_EXEMPT_FILE: &str = "crates/substrate/src/fixed.rs";

/// The one file allowed to create threads: the engine's worker pool.
const R6_POOL_FILE: &str = "crates/core/src/engine.rs";

/// Cast targets R2 considers narrowing. Token-level linting cannot see
/// the source type, so every cast *to* a ≤32-bit or pointer-width integer
/// is flagged; lossless ones are rewritten to `From`/`try_from` (which
/// also documents the intent) and lossy-by-design ones carry a reason.
const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Identifiers whose presence means an RNG is being seeded from ambient
/// entropy rather than an explicit seed.
const ENTROPY_IDENTS: [&str; 8] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "StdRng",
    "getrandom",
    "RandomState",
];

/// Does `rule` govern `file` at all? (Test regions are handled separately.)
fn rule_applies(rule: RuleId, file: &FileContext) -> bool {
    if file.target == TargetKind::TestOrBench {
        return false;
    }
    match rule {
        RuleId::R1 => R1_DATAPATH_FILES.contains(&file.path.as_str()),
        RuleId::R2 => file.path != R2_EXEMPT_FILE,
        RuleId::R3 => !file.in_crate("obs") && !file.in_crate("bench"),
        RuleId::R4 | RuleId::R7 => true,
        RuleId::R5 => file.target == TargetKind::Library,
        RuleId::R6 => file.path != R6_POOL_FILE,
        RuleId::Suppress => true,
    }
}

/// A parsed `// nc-lint: allow(...)` comment.
#[derive(Debug)]
struct Suppression {
    line: u32,
    rules: Vec<RuleId>,
    file_wide: bool,
    used: bool,
}

/// Result of parsing one suppression comment.
enum ParsedSuppression {
    Ok(Suppression),
    Malformed { line: u32, message: String },
}

/// Parses an `allow(R4, ...)` / `allow-file(R1, ...)` waiver out of a
/// comment, if present. Only plain `//` comments carry waivers: doc
/// comments (`///`, `//!`) and block comments are documentation and may
/// legitimately *mention* the directive syntax without enacting it.
fn parse_suppression(text: &str, line: u32) -> Option<ParsedSuppression> {
    let body = text.strip_prefix("//")?;
    if body.starts_with('/') || body.starts_with('!') {
        return None;
    }
    let marker = "nc-lint:";
    let trimmed = body.trim_start();
    // The directive must lead the comment; prose mentioning it does not count.
    let rest = trimmed.strip_prefix(marker)?.trim_start();
    let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (false, r)
    } else {
        return Some(ParsedSuppression::Malformed {
            line,
            message: format!(
                "unrecognized nc-lint directive (expected `allow(...)` or `allow-file(...)`): `{}`",
                rest.trim()
            ),
        });
    };
    let rest = rest.trim_start();
    let Some(inner) = rest
        .strip_prefix('(')
        .and_then(|r| r.rfind(')').map(|end| &r[..end]))
    else {
        return Some(ParsedSuppression::Malformed {
            line,
            message: String::from("suppression is missing its `(...)` argument list"),
        });
    };
    let mut rules = Vec::new();
    let mut reason: Option<&str> = None;
    for part in split_top_level_commas(inner) {
        let part = part.trim();
        if let Some(value) = part.strip_prefix("reason") {
            let value = value.trim_start();
            let value = value.strip_prefix('=').unwrap_or(value).trim();
            let unquoted = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .unwrap_or(value);
            reason = Some(unquoted);
        } else if let Some(rule) = RuleId::parse(part) {
            rules.push(rule);
        } else {
            return Some(ParsedSuppression::Malformed {
                line,
                message: format!("unknown rule `{part}` in suppression"),
            });
        }
    }
    if rules.is_empty() {
        return Some(ParsedSuppression::Malformed {
            line,
            message: String::from("suppression names no rule"),
        });
    }
    match reason {
        Some(r) if !r.trim().is_empty() => Some(ParsedSuppression::Ok(Suppression {
            line,
            rules,
            file_wide,
            used: false,
        })),
        _ => Some(ParsedSuppression::Malformed {
            line,
            message: String::from(
                "suppression must carry a non-empty `reason = \"...\"` justification",
            ),
        }),
    }
}

/// Splits on commas that are not inside a quoted reason string.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Per-file lint statistics, folded into the workspace report.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FileStats {
    /// Suppression comments seen (well-formed ones).
    pub suppressions_total: usize,
    /// Suppressions that silenced at least one finding.
    pub suppressions_used: usize,
}

/// Lints one file's source text. Pure: no filesystem access, so fixture
/// tests can feed synthetic sources through the identical code path the
/// CLI uses.
pub fn check_source(path: &str, source: &str) -> (Vec<Finding>, FileStats) {
    let file = FileContext::classify(path);
    let tokens = lex(source);

    // Separate code tokens from comments, remembering which lines hold
    // any code at all (suppression comments attach across blank/comment
    // lines to the next code line).
    let mut code: Vec<&Token> = Vec::new();
    let mut code_lines: BTreeSet<u32> = BTreeSet::new();
    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for token in &tokens {
        match &token.kind {
            TokenKind::Comment(text) => match parse_suppression(text, token.line) {
                Some(ParsedSuppression::Ok(s)) => suppressions.push(s),
                Some(ParsedSuppression::Malformed { line, message }) => findings.push(Finding {
                    file: file.path.clone(),
                    line,
                    rule: RuleId::Suppress,
                    message,
                }),
                None => {}
            },
            _ => {
                code.push(token);
                code_lines.insert(token.line);
            }
        }
    }

    let test_regions = test_item_regions(&code);
    let raw = scan_rules(&file, &code, &test_regions);

    // Resolve suppressions. A line-level suppression covers the next code
    // line at or below it (its own line if that line has code); file-wide
    // ones cover everything.
    let mut covered_line: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (index, s) in suppressions.iter().enumerate() {
        if s.file_wide {
            continue;
        }
        let target = code_lines.range(s.line..).next().copied();
        if let Some(line) = target {
            covered_line.entry(line).or_default().push(index);
        }
    }
    for f in raw {
        let mut suppressed = false;
        for &index in covered_line.get(&f.line).into_iter().flatten() {
            if suppressions[index].rules.contains(&f.rule) {
                suppressions[index].used = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            for s in suppressions.iter_mut().filter(|s| s.file_wide) {
                if s.rules.contains(&f.rule) {
                    s.used = true;
                    suppressed = true;
                    break;
                }
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }

    // Unused suppressions are findings too: a stale allow is an invariant
    // hole waiting to be widened silently.
    for s in &suppressions {
        if !s.used {
            let names: Vec<&str> = s.rules.iter().map(|r| r.name()).collect();
            findings.push(Finding {
                file: file.path.clone(),
                line: s.line,
                rule: RuleId::Suppress,
                message: format!(
                    "unused suppression for {} (nothing on the covered line trips it)",
                    names.join(", ")
                ),
            });
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    let stats = FileStats {
        suppressions_total: suppressions.len(),
        suppressions_used: suppressions.iter().filter(|s| s.used).count(),
    };
    (findings, stats)
}

/// Token-index ranges (over the comment-free stream) belonging to
/// `#[test]` / `#[cfg(test)]` items — exempt from every rule.
fn test_item_regions(code: &[&Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !is_punct(code, i, '#') {
            i += 1;
            continue;
        }
        // `#[...]` or `#![...]`: collect the attribute's identifiers.
        let mut j = i + 1;
        if is_punct(code, j, '!') {
            j += 1;
        }
        if !is_punct(code, j, '[') {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test_attr)) = scan_attribute(code, j) else {
            break;
        };
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then span the annotated item.
        let mut k = attr_end + 1;
        while is_punct(code, k, '#') {
            let mut b = k + 1;
            if is_punct(code, b, '!') {
                b += 1;
            }
            match scan_attribute(code, b) {
                Some((end, _)) if is_punct(code, b, '[') => k = end + 1,
                _ => break,
            }
        }
        let end = item_end(code, k);
        regions.push((i, end));
        i = end + 1;
    }
    regions
}

/// Scans a `[...]` group starting at `open` (which must be `[`); returns
/// the index of the matching `]` and whether the attribute marks test-only
/// code (`test` present without `not`, e.g. `#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]` — but not `#[cfg(not(test))]`).
fn scan_attribute(code: &[&Token], open: usize) -> Option<(usize, bool)> {
    if !is_punct(code, open, '[') {
        return None;
    }
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut i = open;
    while i < code.len() {
        match &code[i].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((i, has_test && !has_not));
                }
            }
            TokenKind::Ident(s) if s == "test" => has_test = true,
            TokenKind::Ident(s) if s == "not" => has_not = true,
            _ => {}
        }
        i += 1;
    }
    None
}

/// The token index where the item starting at `start` ends: at a
/// top-level `;` (e.g. `use`/`static` items) or at the `}` matching the
/// first `{` (fn bodies, mod blocks, impls).
fn item_end(code: &[&Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < code.len() {
        match &code[i].kind {
            TokenKind::Punct(';') if depth == 0 => return i,
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth <= 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

fn is_punct(code: &[&Token], i: usize, c: char) -> bool {
    matches!(code.get(i), Some(t) if t.kind == TokenKind::Punct(c))
}

fn ident_at<'a>(code: &[&'a Token], i: usize) -> Option<&'a str> {
    code.get(i).and_then(|t| t.kind.ident())
}

/// Runs every applicable rule's detector over the comment-free tokens.
fn scan_rules(
    file: &FileContext,
    code: &[&Token],
    test_regions: &[(usize, usize)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let in_test = |i: usize| test_regions.iter().any(|&(s, e)| i >= s && i <= e);
    let applies: Vec<RuleId> = RuleId::ALL
        .iter()
        .copied()
        .filter(|&r| r != RuleId::Suppress && rule_applies(r, file))
        .collect();
    if applies.is_empty() {
        return findings;
    }
    let mut push = |line: u32, rule: RuleId, message: String| {
        findings.push(Finding {
            file: file.path.clone(),
            line,
            rule,
            message,
        });
    };

    for (i, token) in code.iter().enumerate() {
        if in_test(i) {
            continue;
        }
        match &token.kind {
            TokenKind::Number { is_float: true } if applies.contains(&RuleId::R1) => {
                push(
                    token.line,
                    RuleId::R1,
                    String::from("float literal in a fixed-point datapath module"),
                );
            }
            TokenKind::Ident(name) => {
                let name = name.as_str();
                match name {
                    "f32" | "f64" if applies.contains(&RuleId::R1) => push(
                        token.line,
                        RuleId::R1,
                        format!("`{name}` in a fixed-point datapath module"),
                    ),
                    "as" if applies.contains(&RuleId::R2) => {
                        if let Some(target) = ident_at(code, i + 1) {
                            if NARROW_TARGETS.contains(&target) {
                                push(
                                    token.line,
                                    RuleId::R2,
                                    format!(
                                        "bare `as {target}` cast; use `{target}::from`/`try_from` \
                                         or a saturating fixed-point helper"
                                    ),
                                );
                            }
                        }
                    }
                    "Instant" | "SystemTime" if applies.contains(&RuleId::R3) => push(
                        token.line,
                        RuleId::R3,
                        format!("`{name}` wall-clock access outside nc-obs/nc-bench"),
                    ),
                    "HashMap" | "HashSet" if applies.contains(&RuleId::R4) => push(
                        token.line,
                        RuleId::R4,
                        format!("`{name}` iterates in hash order; use the BTree equivalent"),
                    ),
                    "unwrap" | "expect"
                        if applies.contains(&RuleId::R5)
                            && is_punct(code, i.wrapping_sub(1), '.')
                            && is_punct(code, i + 1, '(') =>
                    {
                        push(
                            token.line,
                            RuleId::R5,
                            format!("`.{name}()` can panic in library code"),
                        );
                    }
                    "panic" | "todo" | "unimplemented"
                        if applies.contains(&RuleId::R5) && is_punct(code, i + 1, '!') =>
                    {
                        push(
                            token.line,
                            RuleId::R5,
                            format!("`{name}!` in library code; return a typed error"),
                        );
                    }
                    "spawn" if applies.contains(&RuleId::R6) => push(
                        token.line,
                        RuleId::R6,
                        String::from("thread creation outside the engine pool"),
                    ),
                    _ if applies.contains(&RuleId::R7) && ENTROPY_IDENTS.contains(&name) => push(
                        token.line,
                        RuleId::R7,
                        format!(
                            "`{name}` draws ambient entropy; construct RNGs from explicit seeds"
                        ),
                    ),
                    _ => {}
                }
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<RuleId> {
        check_source(path, src)
            .0
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn classify_targets() {
        let lib = FileContext::classify("crates/core/src/engine.rs");
        assert_eq!(lib.target, TargetKind::Library);
        let bin = FileContext::classify("crates/bench/src/bin/fig3.rs");
        assert_eq!(bin.target, TargetKind::Binary);
        let test = FileContext::classify("crates/core/tests/determinism.rs");
        assert_eq!(test.target, TargetKind::TestOrBench);
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "
            pub fn lib() -> u8 { 0 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        ";
        assert!(rules_hit("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "
            #[cfg(not(test))]
            pub fn lib() { Some(1).unwrap(); }
        ";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), vec![RuleId::R5]);
    }

    #[test]
    fn suppression_silences_and_is_counted() {
        let src = "
            // nc-lint: allow(R4, reason = \"bounded scratch map, drained before output\")
            use std::collections::HashMap;
        ";
        let (findings, stats) = check_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(stats.suppressions_total, 1);
        assert_eq!(stats.suppressions_used, 1);
    }

    #[test]
    fn reasonless_suppression_is_a_finding() {
        let src = "
            // nc-lint: allow(R4)
            use std::collections::HashMap;
        ";
        let rules = rules_hit("crates/core/src/x.rs", src);
        assert!(rules.contains(&RuleId::Suppress), "{rules:?}");
    }

    #[test]
    fn unused_suppression_is_a_finding() {
        let src = "
            // nc-lint: allow(R4, reason = \"nothing here\")
            pub fn f() {}
        ";
        let rules = rules_hit("crates/core/src/x.rs", src);
        assert_eq!(rules, vec![RuleId::Suppress]);
    }

    #[test]
    fn trailing_same_line_suppression_works() {
        let src = "use std::collections::HashMap; // nc-lint: allow(R4, reason = \"scratch\")\n";
        let (findings, _) = check_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
