//! Fixture corpora driven through the exact code path the CLI uses.
//!
//! `tests/fixtures/violations/` mirrors the workspace layout with one
//! deliberately violating file per rule plus a suppression-audit file;
//! `tests/fixtures/clean/` holds the near-misses (casts in strings and
//! comments, test-only floats, scoped exemptions, justified waivers)
//! that must never produce a finding. The real `cargo run -p nc-lint`
//! never sees either corpus: the walker skips `fixtures/` directories.

use nc_lint::rules::RuleId;
use nc_lint::Report;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> Report {
    nc_lint::lint_tree(&fixture(name)).expect("fixture tree is readable")
}

fn count(report: &Report, rule: RuleId) -> usize {
    report.findings_for(rule).len()
}

#[test]
fn violations_corpus_trips_every_rule() {
    let report = lint("violations");
    assert_eq!(count(&report, RuleId::R1), 2, "{report:#?}");
    assert_eq!(count(&report, RuleId::R2), 1, "{report:#?}");
    assert_eq!(count(&report, RuleId::R3), 4, "{report:#?}");
    assert_eq!(count(&report, RuleId::R4), 5, "{report:#?}");
    assert_eq!(count(&report, RuleId::R5), 2, "{report:#?}");
    assert_eq!(count(&report, RuleId::R6), 1, "{report:#?}");
    assert_eq!(count(&report, RuleId::R7), 3, "{report:#?}");
    assert_eq!(count(&report, RuleId::Suppress), 3, "{report:#?}");
    assert_eq!(report.findings.len(), 21);
    assert!(!report.is_clean());
}

#[test]
fn violations_land_on_the_expected_lines() {
    let report = lint("violations");
    let at = |rule: RuleId, file: &str, line: u32| {
        assert!(
            report
                .findings_for(rule)
                .iter()
                .any(|f| f.file == file && f.line == line),
            "missing {rule} at {file}:{line}: {report:#?}"
        );
    };
    at(RuleId::R1, "crates/hw/src/sim.rs", 3);
    at(RuleId::R1, "crates/hw/src/sim.rs", 4);
    at(RuleId::R2, "crates/mlp/src/quant.rs", 4);
    at(RuleId::R3, "crates/core/src/clock.rs", 6);
    at(RuleId::R3, "crates/serve/src/admission.rs", 5);
    at(RuleId::R4, "crates/core/src/cache.rs", 3);
    at(RuleId::R5, "crates/snn/src/panics.rs", 4);
    at(RuleId::R5, "crates/snn/src/panics.rs", 8);
    at(RuleId::R6, "crates/core/src/workers.rs", 4);
    at(RuleId::R7, "crates/faults/src/entropy.rs", 4);
    at(RuleId::R7, "crates/serve/src/admission.rs", 10);
    at(RuleId::R7, "crates/substrate/src/entropy.rs", 4);
    // Suppression audit: reasonless waiver, unknown rule, stale waiver.
    at(RuleId::Suppress, "crates/core/src/suppress.rs", 3);
    at(RuleId::Suppress, "crates/core/src/suppress.rs", 6);
    at(RuleId::Suppress, "crates/core/src/suppress.rs", 9);
}

#[test]
fn malformed_suppressions_do_not_silence_the_line_below() {
    let report = lint("violations");
    // Both HashMap uses under the broken waivers in suppress.rs still fire.
    let r4_in_suppress: Vec<u32> = report
        .findings_for(RuleId::R4)
        .iter()
        .filter(|f| f.file == "crates/core/src/suppress.rs")
        .map(|f| f.line)
        .collect();
    assert_eq!(r4_in_suppress, vec![4, 7], "{report:#?}");
    // The only well-formed suppression in the corpus is the stale one.
    assert_eq!(report.suppressions_total, 1);
    assert_eq!(report.suppressions_used, 0);
}

#[test]
fn findings_are_sorted_by_file_line_rule() {
    let report = lint("violations");
    let keys: Vec<_> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn clean_corpus_produces_no_findings() {
    let report = lint("clean");
    assert!(report.is_clean(), "{report:#?}");
    assert_eq!(report.files_scanned, 13);
    // Every waiver in the corpus is justified AND load-bearing.
    assert_eq!(report.suppressions_total, 4);
    assert_eq!(report.suppressions_used, 4);
}

#[test]
fn json_report_round_trips_the_verdict() {
    let bad = lint("violations").render_json();
    assert!(bad.contains("\"version\": 1"), "{bad}");
    assert!(bad.contains("\"clean\": false"), "{bad}");
    assert!(bad.contains("\"rule\": \"R6\""), "{bad}");
    assert!(bad.contains("\"rule\": \"SUPPRESS\""), "{bad}");
    assert!(bad.contains("\"file\": \"crates/hw/src/sim.rs\""), "{bad}");

    let good = lint("clean").render_json();
    assert!(good.contains("\"clean\": true"), "{good}");
    assert!(good.contains("\"findings\": []"), "{good}");
    assert!(
        good.contains("\"suppressions\": { \"total\": 4, \"used\": 4 }"),
        "{good}"
    );
}

#[test]
fn cli_exit_codes_and_json_match_the_library() {
    let exe = env!("CARGO_BIN_EXE_nc-lint");

    let bad = Command::new(exe)
        .args(["--json", "--root"])
        .arg(fixture("violations"))
        .output()
        .expect("spawn nc-lint");
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");
    let stdout = String::from_utf8(bad.stdout).expect("utf8 stdout");
    assert!(stdout.contains("\"clean\": false"), "{stdout}");
    assert!(stdout.contains("\"rule\": \"R2\""), "{stdout}");

    let good = Command::new(exe)
        .arg("--root")
        .arg(fixture("clean"))
        .output()
        .expect("spawn nc-lint");
    assert_eq!(good.status.code(), Some(0), "{good:?}");
    let stdout = String::from_utf8(good.stdout).expect("utf8 stdout");
    assert!(
        stdout.contains("0 finding(s) across 13 file(s); 4/4 suppression(s) in use"),
        "{stdout}"
    );

    let usage = Command::new(exe)
        .arg("--no-such-flag")
        .output()
        .expect("spawn nc-lint");
    assert_eq!(usage.status.code(), Some(2), "{usage:?}");
}
