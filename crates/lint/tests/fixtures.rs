//! Fixture corpora driven through the exact code path the CLI uses.
//!
//! `tests/fixtures/violations/` mirrors the workspace layout with one
//! deliberately violating file per rule plus a suppression-audit file;
//! `tests/fixtures/clean/` holds the near-misses (casts in strings and
//! comments, test-only floats, scoped exemptions, justified waivers)
//! that must never produce a finding. The real `cargo run -p nc-lint`
//! never sees either corpus: the walker skips `fixtures/` directories.

use nc_lint::rules::RuleId;
use nc_lint::Report;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> Report {
    nc_lint::lint_tree(&fixture(name)).expect("fixture tree is readable")
}

fn count(report: &Report, rule: RuleId) -> usize {
    report.findings_for(rule).len()
}

#[test]
fn violations_corpus_trips_every_rule() {
    let report = lint("violations");
    assert_eq!(count(&report, RuleId::R1), 2, "{report:#?}");
    assert_eq!(count(&report, RuleId::R2), 1, "{report:#?}");
    assert_eq!(count(&report, RuleId::R3), 4, "{report:#?}");
    assert_eq!(count(&report, RuleId::R4), 5, "{report:#?}");
    assert_eq!(count(&report, RuleId::R5), 2, "{report:#?}");
    assert_eq!(count(&report, RuleId::R6), 1, "{report:#?}");
    assert_eq!(count(&report, RuleId::R7), 3, "{report:#?}");
    assert_eq!(count(&report, RuleId::Suppress), 3, "{report:#?}");
    assert_eq!(report.findings.len(), 21);
    assert!(!report.is_clean());
}

#[test]
fn violations_land_on_the_expected_lines() {
    let report = lint("violations");
    let at = |rule: RuleId, file: &str, line: u32| {
        assert!(
            report
                .findings_for(rule)
                .iter()
                .any(|f| f.file == file && f.line == line),
            "missing {rule} at {file}:{line}: {report:#?}"
        );
    };
    at(RuleId::R1, "crates/hw/src/sim.rs", 3);
    at(RuleId::R1, "crates/hw/src/sim.rs", 4);
    at(RuleId::R2, "crates/mlp/src/quant.rs", 4);
    at(RuleId::R3, "crates/core/src/clock.rs", 6);
    at(RuleId::R3, "crates/serve/src/admission.rs", 5);
    at(RuleId::R4, "crates/core/src/cache.rs", 3);
    at(RuleId::R5, "crates/snn/src/panics.rs", 4);
    at(RuleId::R5, "crates/snn/src/panics.rs", 8);
    at(RuleId::R6, "crates/core/src/workers.rs", 4);
    at(RuleId::R7, "crates/faults/src/entropy.rs", 4);
    at(RuleId::R7, "crates/serve/src/admission.rs", 10);
    at(RuleId::R7, "crates/substrate/src/entropy.rs", 4);
    // Suppression audit: reasonless waiver, unknown rule, stale waiver.
    at(RuleId::Suppress, "crates/core/src/suppress.rs", 3);
    at(RuleId::Suppress, "crates/core/src/suppress.rs", 6);
    at(RuleId::Suppress, "crates/core/src/suppress.rs", 9);
}

#[test]
fn malformed_suppressions_do_not_silence_the_line_below() {
    let report = lint("violations");
    // Both HashMap uses under the broken waivers in suppress.rs still fire.
    let r4_in_suppress: Vec<u32> = report
        .findings_for(RuleId::R4)
        .iter()
        .filter(|f| f.file == "crates/core/src/suppress.rs")
        .map(|f| f.line)
        .collect();
    assert_eq!(r4_in_suppress, vec![4, 7], "{report:#?}");
    // The only well-formed suppression in the corpus is the stale one.
    assert_eq!(report.suppressions_total, 1);
    assert_eq!(report.suppressions_used, 0);
}

#[test]
fn findings_are_sorted_by_file_line_rule() {
    let report = lint("violations");
    let keys: Vec<_> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn clean_corpus_produces_no_findings() {
    let report = lint("clean");
    assert!(report.is_clean(), "{report:#?}");
    assert_eq!(report.files_scanned, 13);
    // Every waiver in the corpus is justified AND load-bearing.
    assert_eq!(report.suppressions_total, 4);
    assert_eq!(report.suppressions_used, 4);
}

#[test]
fn json_report_round_trips_the_verdict() {
    let bad = lint("violations").render_json();
    assert!(bad.contains("\"version\": 2"), "{bad}");
    assert!(bad.contains("\"clean\": false"), "{bad}");
    assert!(bad.contains("\"rule\": \"R6\""), "{bad}");
    assert!(bad.contains("\"rule\": \"SUPPRESS\""), "{bad}");
    assert!(bad.contains("\"file\": \"crates/hw/src/sim.rs\""), "{bad}");

    let good = lint("clean").render_json();
    assert!(good.contains("\"clean\": true"), "{good}");
    assert!(good.contains("\"findings\": []"), "{good}");
    assert!(
        good.contains("\"suppressions\": { \"total\": 4, \"used\": 4 }"),
        "{good}"
    );
}

#[test]
fn cli_exit_codes_and_json_match_the_library() {
    let exe = env!("CARGO_BIN_EXE_nc-lint");

    let bad = Command::new(exe)
        .args(["--json", "--root"])
        .arg(fixture("violations"))
        .output()
        .expect("spawn nc-lint");
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");
    let stdout = String::from_utf8(bad.stdout).expect("utf8 stdout");
    assert!(stdout.contains("\"clean\": false"), "{stdout}");
    assert!(stdout.contains("\"rule\": \"R2\""), "{stdout}");

    let good = Command::new(exe)
        .arg("--root")
        .arg(fixture("clean"))
        .output()
        .expect("spawn nc-lint");
    assert_eq!(good.status.code(), Some(0), "{good:?}");
    let stdout = String::from_utf8(good.stdout).expect("utf8 stdout");
    assert!(
        stdout.contains("0 finding(s) across 13 file(s); 4/4 suppression(s) in use"),
        "{stdout}"
    );

    let usage = Command::new(exe)
        .arg("--no-such-flag")
        .output()
        .expect("spawn nc-lint");
    assert_eq!(usage.status.code(), Some(2), "{usage:?}");
}

// ---------------------------------------------------------------------
// Phase-2 corpora: tests/fixtures/graph_violations/ trips every
// cross-file rule (R8–R11) plus an expired waiver; graph_clean/ holds
// the near-misses (obs-quarantined clocks, consistent lock order,
// dropped guards, setup-only allocation, derived seeds) and the two
// waiver flavours that must still suppress.

#[test]
fn graph_violations_corpus_trips_every_phase2_rule() {
    let report = lint("graph_violations");
    assert_eq!(count(&report, RuleId::R3), 1, "{report:#?}");
    assert_eq!(count(&report, RuleId::R4), 1, "{report:#?}");
    assert_eq!(count(&report, RuleId::R7), 2, "{report:#?}");
    assert_eq!(count(&report, RuleId::R8), 3, "{report:#?}");
    assert_eq!(count(&report, RuleId::R9), 4, "{report:#?}");
    assert_eq!(count(&report, RuleId::R10), 2, "{report:#?}");
    assert_eq!(count(&report, RuleId::R11), 2, "{report:#?}");
    assert_eq!(count(&report, RuleId::Suppress), 1, "{report:#?}");
    assert_eq!(report.findings.len(), 16);
    assert_eq!(report.files_scanned, 15);
    // The corpus's only suppression is the expired one, which never
    // counts as used.
    assert_eq!(report.suppressions_total, 1);
    assert_eq!(report.suppressions_used, 0);
}

#[test]
fn phase2_violations_land_on_the_expected_lines() {
    let report = lint("graph_violations");
    let at = |rule: RuleId, file: &str, line: u32| {
        assert!(
            report
                .findings_for(rule)
                .iter()
                .any(|f| f.file == file && f.line == line),
            "missing {rule} at {file}:{line}: {report:#?}"
        );
    };
    // R3: the chaos delay that reads the wall clock instead of ticks.
    at(RuleId::R3, "crates/serve/src/chaos.rs", 6);
    // R8: a clock two hops from `evaluate_batch`, entropy one hop from
    // a figure writer.
    at(RuleId::R8, "crates/bench/src/timing.rs", 6);
    at(RuleId::R8, "crates/core/src/noise.rs", 6);
    // R9: self-deadlock, both halves of the ALPHA/BETA cycle, and a
    // dyn dispatch under the registry lock.
    at(RuleId::R9, "crates/serve/src/queue.rs", 12);
    at(RuleId::R9, "crates/serve/src/ab.rs", 6);
    at(RuleId::R9, "crates/core/src/ba.rs", 7);
    at(RuleId::R9, "crates/serve/src/sink.rs", 18);
    // R10: the hot fn's own temporary plus the helper it reaches.
    at(RuleId::R10, "crates/substrate/src/kernel.rs", 6);
    at(RuleId::R10, "crates/substrate/src/scratch.rs", 6);
    // R11: the magic literal seed.
    at(RuleId::R11, "crates/snn/src/net.rs", 18);
    // The mesh corpus: entropy-jittered placement (R7), the same draw
    // reached from the fig_mesh writer root (R8), and a magic fabric
    // seed (R11).
    at(RuleId::R7, "crates/hw/src/mesh_deploy.rs", 17);
    at(RuleId::R8, "crates/hw/src/mesh_deploy.rs", 17);
    at(RuleId::R11, "crates/hw/src/mesh_deploy.rs", 23);
    // The expired waiver surfaces itself AND the R4 it used to hide.
    at(RuleId::Suppress, "crates/core/src/stale.rs", 5);
    at(RuleId::R4, "crates/core/src/stale.rs", 6);
}

#[test]
fn phase2_findings_carry_call_chains_and_canonical_locks() {
    let report = lint("graph_violations");
    let m = |rule: RuleId, file: &str| {
        report
            .findings_for(rule)
            .iter()
            .find(|f| f.file == file)
            .map(|f| f.message.clone())
            .unwrap_or_default()
    };
    let r8 = m(RuleId::R8, "crates/bench/src/timing.rs");
    assert!(r8.contains("Mlp::evaluate_batch"), "{r8}");
    assert!(r8.contains("→ timed_len"), "{r8}");
    let r9 = m(RuleId::R9, "crates/serve/src/queue.rs");
    assert!(r9.contains("Queue.state"), "{r9}");
    assert!(r9.contains("self-deadlock"), "{r9}");
    let dyn_r9 = m(RuleId::R9, "crates/serve/src/sink.rs");
    assert!(dyn_r9.contains("Sink::emit"), "{dyn_r9}");
    let expired = m(RuleId::Suppress, "crates/core/src/stale.rs");
    assert!(expired.contains("expired at PR7"), "{expired}");
}

#[test]
fn graph_clean_corpus_produces_no_findings() {
    let report = lint("graph_clean");
    assert!(report.is_clean(), "{report:#?}");
    assert_eq!(report.files_scanned, 11);
    // Both waivers — the explicit allow(R8) on the probe's clock and
    // the future-dated R4 one — suppress something real.
    assert_eq!(report.suppressions_total, 2);
    assert_eq!(report.suppressions_used, 2);
}

#[test]
fn sarif_output_matches_the_corpus_reports() {
    let bad = nc_lint::sarif::render_sarif(&lint("graph_violations"));
    assert!(bad.contains("\"version\": \"2.1.0\""), "{bad}");
    assert!(bad.contains("sarif-2.1.0.json"), "{bad}");
    assert!(bad.contains("\"name\": \"nc-lint\""), "{bad}");
    assert!(bad.contains("\"ruleId\": \"R9\""), "{bad}");
    assert!(bad.contains("\"ruleId\": \"R11\""), "{bad}");
    assert!(
        bad.contains("\"uri\": \"crates/serve/src/queue.rs\""),
        "{bad}"
    );
    assert!(bad.contains("\"startLine\": 12"), "{bad}");

    let good = nc_lint::sarif::render_sarif(&lint("graph_clean"));
    assert!(good.contains("\"results\": []"), "{good}");
    // The rule table ships even when nothing fired.
    assert!(good.contains("\"id\": \"R10\""), "{good}");
}

#[test]
fn cli_writes_sarif_alongside_the_terminal_report() {
    let exe = env!("CARGO_BIN_EXE_nc-lint");
    let out = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli-sarif.sarif");
    let run = Command::new(exe)
        .args(["--sarif"])
        .arg(&out)
        .args(["--root"])
        .arg(fixture("graph_violations"))
        .output()
        .expect("spawn nc-lint");
    // Findings still drive the exit code; the SARIF file is a side
    // output for upload.
    assert_eq!(run.status.code(), Some(1), "{run:?}");
    let doc = std::fs::read_to_string(&out).expect("SARIF file written");
    assert!(doc.contains("\"ruleId\": \"R8\""), "{doc}");
    assert!(doc.contains("\"ruleId\": \"R10\""), "{doc}");
}

/// Copies a fixture corpus into a scratch dir so the incremental cache
/// test can rewrite files without touching the checked-in corpus.
fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("mkdir");
    for entry in std::fs::read_dir(from).expect("readdir") {
        let entry = entry.expect("entry");
        let target = to.join(entry.file_name());
        if entry.file_type().expect("ftype").is_dir() {
            copy_tree(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).expect("copy");
        }
    }
}

#[test]
fn incremental_cache_reparses_only_changed_files() {
    let scratch = Path::new(env!("CARGO_TARGET_TMPDIR")).join("incremental-corpus");
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&fixture("graph_violations"), &scratch);
    let cache = Path::new(env!("CARGO_TARGET_TMPDIR")).join("incremental-cache.v1");
    let _ = std::fs::remove_file(&cache);

    // Cold: everything parses.
    let cold = nc_lint::lint_tree_cached(&scratch, &cache).expect("cold run");
    assert_eq!(cold.files_reparsed, Some(15), "{cold:#?}");
    // Warm, nothing changed: zero re-parses, byte-identical findings.
    let warm = nc_lint::lint_tree_cached(&scratch, &cache).expect("warm run");
    assert_eq!(warm.files_reparsed, Some(0), "{warm:#?}");
    assert_eq!(cold.findings, warm.findings);

    // Touch one file (append a comment): exactly that file re-parses
    // and the verdict is unchanged.
    let touched = scratch.join("crates/snn/src/net.rs");
    let mut source = std::fs::read_to_string(&touched).expect("read fixture");
    source.push_str("// trailing note\n");
    std::fs::write(&touched, source).expect("rewrite fixture");
    let third = nc_lint::lint_tree_cached(&scratch, &cache).expect("third run");
    assert_eq!(third.files_reparsed, Some(1), "{third:#?}");
    assert_eq!(cold.findings, third.findings);

    // The plain tree walk agrees with every cached run.
    let uncached = nc_lint::lint_tree(&scratch).expect("uncached run");
    assert_eq!(uncached.findings, third.findings);
}
