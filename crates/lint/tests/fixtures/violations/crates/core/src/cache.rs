//! R4 fixture: hash-ordered container in a deterministic-output crate.

use std::collections::HashMap;

pub fn table() -> HashMap<u32, u32> {
    HashMap::new()
}
