//! R3 fixture: wall-clock read outside the observability layer.

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
