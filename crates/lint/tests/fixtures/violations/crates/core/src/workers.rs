//! R6 fixture: thread creation outside the engine pool.

pub fn go() {
    std::thread::spawn(|| {});
}
