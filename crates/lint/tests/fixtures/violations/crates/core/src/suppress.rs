//! SUPPRESS fixture: reasonless, unknown-rule, and unused waivers.

// nc-lint: allow(R4)
use std::collections::HashMap;

// nc-lint: allow(R99, reason = "no such rule")
pub type Scratch = HashMap<u8, u8>;

// nc-lint: allow(R7, reason = "stale waiver, nothing below trips R7")
pub fn quiet() {}
