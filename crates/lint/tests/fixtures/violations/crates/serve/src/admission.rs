//! R3/R7 fixture: a serving layer that times its batch window off the
//! wall clock and seeds its load mix from ambient entropy.

pub fn window_wait_ns(budget: u64) -> u64 {
    let opened = std::time::Instant::now();
    budget.saturating_sub(opened.elapsed().subsec_nanos().into())
}

pub fn mix_seed() -> u64 {
    let mut source = rand::rngs::OsRng;
    source.next_u64()
}
