//! R1 fixture: float types and literals in the datapath module.

pub fn leak_factor() -> f64 {
    0.5
}
