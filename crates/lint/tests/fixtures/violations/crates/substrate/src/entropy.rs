//! R7 fixture: RNG construction from ambient entropy.

pub fn ambient() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
