//! R5 fixture: panic paths in library code.

pub fn first(xs: &[u8]) -> u8 {
    *xs.first().expect("nonempty")
}

pub fn boom() {
    panic!("unreachable by construction");
}
