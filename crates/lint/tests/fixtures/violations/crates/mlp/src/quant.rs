//! R2 fixture: bare narrowing cast.

pub fn quantize(x: u64) -> u8 {
    x as u8
}
