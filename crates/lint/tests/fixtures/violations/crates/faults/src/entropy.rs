//! R7 fixture: fault plans derive their seeds; ambient entropy is banned.

pub fn ambient_fault_seed() -> u64 {
    let seed = getrandom();
    seed
}
