//! Fixture clock helper: fine for nc-bench's own per-file rules (R3 is
//! scoped out of bench), but tainted once a determinism root reaches it.

/// Reads the wall clock, then returns the input length.
pub fn timed_len(inputs: &[u8]) -> usize {
    let start = Instant::now();
    let _ = start;
    inputs.len()
}
