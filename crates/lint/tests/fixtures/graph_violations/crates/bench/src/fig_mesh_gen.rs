//! Fixture mesh figure writer: calling `write_results` makes this a
//! determinism root, so the entropy behind `jittered_placement` is a
//! second R8 taint chain.

/// Emits the mesh CSV from a placement that draws OS entropy.
pub fn fig_mesh() {
    let core = jittered_placement(16);
    write_results("fig_mesh.csv", &format!("{core}"));
}
