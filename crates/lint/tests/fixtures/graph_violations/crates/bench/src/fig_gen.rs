//! Fixture figure writer: calling `write_results` makes this a
//! determinism root, so the entropy behind `noisy_rows` is a finding.

/// Emits one figure CSV built from a helper that draws OS entropy.
pub fn fig_noise() {
    let rows = noisy_rows();
    write_results("fig_noise.csv", &rows);
}
