//! Fixture batch-entry root for the determinism-taint rule: the clock
//! read lives two hops away in another crate.

pub struct Mlp {
    dim: usize,
}

impl Mlp {
    /// Scores a batch; leans on a helper that secretly reads the clock.
    pub fn evaluate_batch(&mut self, inputs: &[u8]) -> usize {
        timed_len(inputs)
    }
}
