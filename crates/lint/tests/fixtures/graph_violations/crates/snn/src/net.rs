//! Fixture seed discipline: a bare magic literal flows into a
//! seed-named parameter.

pub struct Net {
    dim: usize,
    s: u64,
}

impl Net {
    /// Builds a network from an explicit seed.
    pub fn new(dim: usize, seed: u64) -> Net {
        Net { dim, s: seed }
    }
}

/// Demo constructor hiding a magic seed literal.
pub fn demo(dim: usize) -> Net {
    Net::new(dim, 42)
}
