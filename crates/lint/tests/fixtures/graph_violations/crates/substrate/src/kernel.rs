//! Fixture kernel hot path: allocates where only caller-provided
//! scratch is allowed, and reaches a second allocation in a helper.

/// Row-major accumulate with a hidden temporary.
pub fn gemv_hot(acc: &mut [u32], weights: &[u32]) {
    let scratch: Vec<u32> = Vec::new();
    accumulate(acc, weights, &scratch);
}

fn accumulate(acc: &mut [u32], weights: &[u32], scratch: &[u32]) {
    let spilled = spill(weights);
    let _ = (acc, scratch, spilled);
}
