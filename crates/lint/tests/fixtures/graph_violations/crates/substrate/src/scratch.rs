//! Fixture spill helper: allocates per call. Harmless on its own — the
//! finding appears because the kernel hot path reaches it.

/// Spills weights into a fresh buffer.
pub fn spill(weights: &[u32]) -> Vec<u32> {
    vec![0; weights.len()]
}
