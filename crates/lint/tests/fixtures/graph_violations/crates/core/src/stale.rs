//! Fixture stale waiver: an `expires = "PR7"` waiver has lapsed, so the
//! waiver itself and the violation it used to hide both surface.

/// Interim hash-ordered index.
// nc-lint: allow(R4, reason = "interim index until the BTree port lands", expires = "PR7")
pub fn index() -> HashMap<u32, u32> {
    fresh_map()
}
