//! Fixture lock-order cycle, second half: BETA taken before ALPHA,
//! the reverse of `crates/serve/src/ab.rs`.

/// Takes the pair in beta→alpha order.
pub fn backward() {
    let beta = lock_or_recover(&BETA);
    let alpha = lock_or_recover(&ALPHA);
    let _ = (beta, alpha);
}
