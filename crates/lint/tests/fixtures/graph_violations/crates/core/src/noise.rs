//! Fixture entropy helper: trips R7 on its own line and R8 again once a
//! figure writer reaches it through the call graph.

/// Draws ambient entropy into a CSV body.
pub fn noisy_rows() -> String {
    let gen = thread_rng();
    render_csv(gen)
}
