//! Fixture self-deadlock: `push_back` holds the queue lock and calls a
//! helper that takes the same lock again.

pub struct Queue {
    state: Mutex<u64>,
}

impl Queue {
    /// Appends and bumps the generation counter — deadlocks.
    pub fn push_back(&self, item: u64) {
        let state = lock_or_recover(&self.state);
        self.bump_generation();
        let _ = (state, item);
    }

    fn bump_generation(&self) {
        let state = lock_or_recover(&self.state);
        let _ = state;
    }
}
