//! Fixture dyn-dispatch hazard: the registry lock is held across an
//! open-ended `dyn Sink` method.

pub trait Sink {
    fn emit(&self, value: u64);
}

pub struct Fanout {
    state: Mutex<u64>,
    sinks: Vec<Box<dyn Sink>>,
}

impl Fanout {
    /// Publishes under the state lock — a sink may block or re-enter.
    pub fn publish(&self, value: u64) {
        let state = lock_or_recover(&self.state);
        for sink in &self.sinks {
            sink.emit(value);
        }
        let _ = state;
    }
}
