//! Fixture lock-order cycle, first half: ALPHA taken before BETA.

/// Takes the pair in alpha→beta order.
pub fn forward() {
    let alpha = lock_or_recover(&ALPHA);
    let beta = lock_or_recover(&BETA);
    let _ = (alpha, beta);
}
