//! Chaos-delay fixture: schedules a slow batch off the wall clock —
//! the exact mistake the virtual-tick chaos plan exists to avoid (R3).

/// How long the batch has been stalled, measured against the wall clock.
pub fn delay_elapsed_ns(budget: u64) -> u64 {
    let opened = std::time::Instant::now();
    budget.saturating_sub(u64::from(opened.elapsed().subsec_nanos()))
}
