//! Fixture mesh deployment: placement jitter draws OS entropy (R7, and
//! R8 once the mesh figure writer reaches it) and a magic literal flows
//! into the fabric's seed parameter (R11).

pub struct Fabric {
    cores: usize,
    s: u64,
}

/// Builds a fault fabric from an explicit seed.
pub fn fabric(cores: usize, seed: u64) -> Fabric {
    Fabric { cores, s: seed }
}

/// Placement jitter from ambient entropy.
pub fn jittered_placement(cores: usize) -> usize {
    let gen = thread_rng();
    scatter(gen, cores)
}

/// Demo compile hiding a magic fabric seed.
pub fn demo_fabric(cores: usize) -> Fabric {
    fabric(cores, 1234)
}
