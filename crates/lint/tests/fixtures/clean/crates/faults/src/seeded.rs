//! Near-miss: explicitly seeded fault streams are fine, and entropy
//! names in comments (thread_rng, OsRng) or strings must not fire.

pub fn derived(seed: u64, site: u64) -> u64 {
    let label = "from_entropy is banned outside this string";
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ site ^ label.len() as u64
}
