//! R2 near-misses: strings, comments, raw strings, widening casts.

pub fn widen(x: u8) -> u64 {
    // `x as u8` in prose does not count
    let doc = r##"select cast(x as u16) from t"##;
    let _ = doc;
    x as u64
}

// nc-lint: allow(R2, reason = "lossy by design: keep only the low byte")
pub fn low_byte(x: u64) -> u8 { x as u8 }
