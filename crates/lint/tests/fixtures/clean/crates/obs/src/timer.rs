//! R3 scope: the observability crate may read the wall clock.

use std::time::Instant;

pub fn now() -> Instant {
    Instant::now()
}
