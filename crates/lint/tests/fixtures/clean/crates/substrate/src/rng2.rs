//! R7 near-misses: similar identifiers that are not entropy sources.

pub struct SplitMix64(u64);

pub fn from_entropy_budget(seed: u64) -> SplitMix64 {
    SplitMix64(seed)
}
