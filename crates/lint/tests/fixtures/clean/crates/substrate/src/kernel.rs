//! Near-miss corpus for the batched kernel module: widening casts,
//! "as u8" narrowing in prose and strings, and saturating conversions
//! that must not trip R2.

/// Comments that merely *mention* `x as u8` or `count as u16` are prose,
/// not casts.
pub fn gemm_tile_i64(acc: &mut [i64], weights: &[i8], activations: &[u8]) {
    for (slot, (&w, &a)) in acc.iter_mut().zip(weights.iter().zip(activations)) {
        // Widening into the adder tree is the audited technique here:
        // i8 -> i64 and u8 -> i64 lose nothing.
        *slot += i64::from(w) * i64::from(a);
    }
}

pub fn saturate_readout(acc: i64) -> u8 {
    let msg = "clamp(acc) as u8 would narrow; try_from keeps the audit trail";
    debug_assert!(!msg.is_empty());
    u8::try_from(acc.clamp(0, 255)).unwrap_or(u8::MAX)
}

pub fn spike_count_swar(word: u64) -> u64 {
    // Shift-mask accumulation stays in u64 end to end.
    let pairs = (word & 0x5555_5555_5555_5555) + ((word >> 1) & 0x5555_5555_5555_5555);
    let nibbles = (pairs & 0x3333_3333_3333_3333) + ((pairs >> 2) & 0x3333_3333_3333_3333);
    nibbles.wrapping_mul(0x0101_0101_0101_0101) >> 56
}
