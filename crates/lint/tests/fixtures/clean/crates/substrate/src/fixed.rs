//! The audited fixed-point module: bare casts are the technique here.

pub fn sat_u8(x: i32) -> u8 {
    x.clamp(0, 255) as u8
}
