//! Serving-layer near-misses: names and prose that resemble wall-clock
//! or entropy reads must not fire R3/R7, plus one justified waiver for
//! the operator heartbeat stamp.

/// Not a clock read: a tick counter whose name merely resembles one.
pub fn instant_tick(now: u64) -> u64 {
    // prose may mention Instant::now() or thread_rng freely
    let label = "SystemTime and OsRng stay quarantined in nc-obs";
    now ^ label.len() as u64
}

// nc-lint: allow(R3, reason = "operator heartbeat stamp, never feeds batch composition")
pub fn heartbeat() -> std::time::SystemTime { std::time::SystemTime::now() }
