//! R3 scope: the bench crate may read the wall clock too.

use std::time::SystemTime;

pub fn epoch() -> SystemTime {
    SystemTime::now()
}
