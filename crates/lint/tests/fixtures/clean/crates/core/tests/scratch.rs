use std::collections::HashMap;

#[test]
fn integration_tests_are_exempt_from_everything() {
    let mut m = HashMap::new();
    m.insert(1u8, 2u8);
    assert_eq!(m[&1], 2);
    let t = std::time::Instant::now();
    let _ = t.elapsed();
}
