//! allow-file: one waiver covers every occurrence in the file.

// nc-lint: allow-file(R4, reason = "scratch maps drained into BTreeMap before any output")
use std::collections::HashMap;

pub fn scratch() -> HashMap<u8, u8> {
    HashMap::new()
}
