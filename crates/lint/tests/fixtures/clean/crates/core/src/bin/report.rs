//! Binaries may unwrap: a CLI panic is its error report.

fn main() {
    let arg = std::env::args().next().unwrap();
    println!("{arg}");
}
