//! R6 scope: the engine pool file may create worker threads.

pub fn fan_out() {
    std::thread::scope(|scope| {
        scope.spawn(|| {});
    });
}
