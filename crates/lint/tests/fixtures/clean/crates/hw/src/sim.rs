//! Near-misses that must not trip R1/R2 in a datapath module.
//! Doc prose may mention f64 or 0.5 freely.

pub fn int_math(x: u64) -> u64 {
    // a comment saying `x as u8` or f32 or 0.5 is not code
    let s = "cast as u8, or f64 0.5";
    let r#type = s.len() as u64;
    let range = 0..10;
    let m = 1i64.max(2);
    let c = 'f';
    let _ = (r#type, range, m, c);
    x + 1
}

pub fn life<'a>(s: &'a str) -> &'a str {
    s
}

// nc-lint: allow(R1, reason = "reporting ratio, never fed back into the datapath")
pub fn half() -> f64 { 0.5 }

#[cfg(test)]
mod tests {
    #[test]
    fn floats_and_unwraps_are_fine_in_tests() {
        let x: f64 = 0.5;
        assert!(x.is_finite());
        Some(1).unwrap();
    }
}
