//! A live waiver with a future expiry: it still suppresses, still
//! counts as used, and will resurface for re-audit at PR40.

/// Interim hash-ordered cache index.
// nc-lint: allow(R4, reason = "hot-path map until the BTree port lands", expires = "PR40")
pub fn interim() -> HashMap<u32, u32> {
    fresh_map()
}
