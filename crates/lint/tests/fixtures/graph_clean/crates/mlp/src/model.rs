//! Clean batch root: the only clock in reach is quarantined inside the
//! sanctioned nc-obs timing layer.

pub struct Mlp {
    dim: usize,
}

impl Mlp {
    /// Scores a batch; timing flows through gated nc-obs stopwatches.
    pub fn evaluate_batch(&mut self, inputs: &[u8]) -> usize {
        observed_len(inputs)
    }
}
