//! Clean mesh deployment: the fabric seed is a named constant and the
//! per-core fault streams are salted SplitMix64 forks — no entropy or
//! clock anywhere in reach of the compile path.

/// Fabric fault-stream root seed; named so audits can find it.
const FABRIC_SEED: u64 = 0x0FAB;

pub struct Fabric {
    cores: usize,
    s: u64,
}

/// Builds a fault fabric from an explicit seed.
pub fn fabric(cores: usize, seed: u64) -> Fabric {
    Fabric { cores, s: seed }
}

/// Named-constant fabric seed.
pub fn demo_fabric(cores: usize) -> Fabric {
    fabric(cores, FABRIC_SEED)
}

/// Per-core stream-derived seed.
pub fn forked_fabric(cores: usize, stream: &mut SplitMix64) -> Fabric {
    fabric(cores, stream.next_u64())
}
