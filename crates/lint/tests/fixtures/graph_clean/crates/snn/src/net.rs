//! Clean seed discipline: named constants, stream draws, and one level
//! of propagation through a local binding.

/// Seed for the demo network; named so audits can find it.
const DEMO_SEED: u64 = 0x5EED;

pub struct Net {
    dim: usize,
    s: u64,
}

impl Net {
    /// Builds a network from an explicit seed.
    pub fn new(dim: usize, seed: u64) -> Net {
        Net { dim, s: seed }
    }
}

/// Named-constant seed.
pub fn demo(dim: usize) -> Net {
    Net::new(dim, DEMO_SEED)
}

/// Stream-derived seed.
pub fn forked(dim: usize, stream: &mut SplitMix64) -> Net {
    Net::new(dim, stream.next_u64())
}

/// One level of local propagation from a stream draw.
pub fn staged(dim: usize, stream: &mut SplitMix64) -> Net {
    let drawn = stream.next_u64();
    Net::new(dim, drawn)
}
