//! Probe with an explicit, audited R8 waiver on its clock read: the
//! taint still flows, but the waiver absorbs it and counts as used.

/// Spends the budget against the wall clock, by design.
pub fn probe_budget(budget: u64) -> u64 {
    // nc-lint: allow(R8, reason = "calibration probe reads wall time by design; audited at PR8")
    let start = Instant::now();
    let _ = start;
    budget
}
