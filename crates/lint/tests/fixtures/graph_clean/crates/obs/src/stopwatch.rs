//! Sanctioned timing layer: clocks are allowed here, and the
//! determinism-taint rule quarantines the whole crate.

/// Reads the wall clock while counting the batch.
pub fn observed_len(inputs: &[u8]) -> usize {
    let start = Instant::now();
    let _ = start;
    inputs.len()
}
