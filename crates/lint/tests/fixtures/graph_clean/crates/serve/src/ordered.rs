//! Near-miss locking: consistent alpha→beta order everywhere, and a
//! re-take that only happens once the first guard is dropped.

/// Takes the pair in the canonical order.
pub fn forward() {
    let alpha = lock_or_recover(&ALPHA);
    let beta = lock_or_recover(&BETA);
    let _ = (alpha, beta);
}

/// Re-takes ALPHA only once the first guard is gone.
pub fn reenter() {
    let alpha = lock_or_recover(&ALPHA);
    drop(alpha);
    let again = lock_or_recover(&ALPHA);
    let _ = again;
}

/// Same canonical order from a second function.
pub fn also_forward() {
    let alpha = lock_or_recover(&ALPHA);
    let beta = lock_or_recover(&BETA);
    let _ = (alpha, beta);
}
