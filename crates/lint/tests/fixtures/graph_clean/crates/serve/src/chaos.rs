//! Chaos-delay near-miss: the slow-batch stall is measured in virtual
//! ticks (a counter the caller advances), so no clock identifier ever
//! appears — the word "instant" in prose must not trip R3.

/// Absolute tick the delayed batch completes at.
pub fn delayed_completion(now_tick: u64, delay_ticks: u64) -> u64 {
    now_tick.saturating_add(delay_ticks)
}

/// Whether the deadline instant (in ticks) has passed by completion.
pub fn deadline_missed(completion_tick: u64, deadline_tick: u64) -> bool {
    completion_tick > deadline_tick
}
