//! Near-miss dyn dispatch: the registry lock is released before the
//! open-ended `dyn Sink` methods run.

pub trait Sink {
    fn emit(&self, value: u64);
}

pub struct Fanout {
    state: Mutex<u64>,
    sinks: Vec<Box<dyn Sink>>,
}

impl Fanout {
    /// Reads the generation under the lock, publishes after dropping it.
    pub fn publish(&self, value: u64) {
        let state = lock_or_recover(&self.state);
        drop(state);
        for sink in &self.sinks {
            sink.emit(value);
        }
    }
}
