//! Clean drain root: the probe it reaches carries an audited,
//! explicit R8 waiver on its clock line.

pub struct Server {
    depth: usize,
}

impl Server {
    /// Drains one batch; the probe's wall-clock read is waived.
    pub fn drain(&self, budget: u64) -> u64 {
        probe_budget(budget)
    }
}
