//! Clean kernel: construction may allocate (setup functions are
//! exempt); the hot path only writes into caller-provided scratch.

pub struct Scratch {
    buf: Vec<u32>,
}

impl Scratch {
    /// Builds the scratch buffer once, outside the hot path.
    pub fn new(len: usize) -> Scratch {
        Scratch {
            buf: Vec::with_capacity(len),
        }
    }
}

/// Accumulates into caller scratch; nothing on this path allocates.
pub fn gemv_hot(acc: &mut [u32], weights: &[u32]) {
    for (slot, value) in acc.iter_mut().zip(weights.iter()) {
        *slot = slot.wrapping_add(*value);
    }
}
