//! Order-insensitivity property: the report is byte-identical no
//! matter how the directory walk orders the files.
//!
//! `lint_sources` is fed the phase-2 violation corpus in seeded random
//! permutations; every permutation must produce the same rustc-style,
//! JSON, and SARIF bytes as the sorted baseline. This is the contract
//! that makes the incremental cache safe: cached and fresh scans meet
//! in one `finish()` that must not care who arrived first.

use nc_substrate::check::check_cases;
use nc_substrate::rng::SplitMix64;
use std::path::{Path, PathBuf};

fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graph_violations")
}

/// Collects `(relative path, source)` pairs exactly as the walker
/// would, minus the ordering guarantee this test exists to prove.
fn collect(root: &Path, dir: &Path, files: &mut Vec<(String, String)>) {
    for entry in std::fs::read_dir(dir).expect("readdir") {
        let path = entry.expect("entry").path();
        if path.is_dir() {
            collect(root, &path, files);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            let source = std::fs::read_to_string(&path).expect("read source");
            files.push((rel, source));
        }
    }
}

fn shuffle(files: &mut [(String, String)], rng: &mut SplitMix64) {
    for i in (1..files.len()).rev() {
        let j = usize::try_from(rng.next_u64() % (i as u64 + 1)).expect("index fits");
        files.swap(i, j);
    }
}

#[test]
fn reports_are_byte_identical_across_walk_orders() {
    let root = corpus_root();
    let mut files = Vec::new();
    collect(&root, &root, &mut files);
    assert_eq!(files.len(), 15, "corpus drifted: {files:?}");

    let baseline = nc_lint::lint_sources(&files);
    let base_text = baseline.render_text();
    let base_json = baseline.render_json();
    let base_sarif = nc_lint::sarif::render_sarif(&baseline);
    assert!(!baseline.is_clean(), "{baseline:#?}");

    check_cases(0x0D0E_0F10, 32, |case, rng| {
        let mut shuffled = files.clone();
        shuffle(&mut shuffled, rng);
        let report = nc_lint::lint_sources(&shuffled);
        assert_eq!(report.render_text(), base_text, "case {case}");
        assert_eq!(report.render_json(), base_json, "case {case}");
        assert_eq!(
            nc_lint::sarif::render_sarif(&report),
            base_sarif,
            "case {case}"
        );
    });
}
