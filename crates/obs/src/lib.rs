//! # nc-obs
//!
//! Std-only, zero-dependency observability for the experiment stack.
//! Every hot layer (the engine's job scheduler, the MLP trainer, the SNN
//! simulation loop, the hardware datapath simulators) reports through
//! one narrow interface — the [`Recorder`] trait — so instrumentation
//! has a single disabled-by-default cost model:
//!
//! * [`Span`] — RAII wall-clock timing of a named region. When the
//!   recorder is disabled the guard never reads the clock.
//! * counters — monotonically increasing `u64` event counts
//!   ([`Recorder::add`]): presentations, weight updates, spikes,
//!   datapath cycles.
//! * observations — named `f64` series aggregated with the Welford
//!   [`Running`](nc_substrate::stats::Running) accumulator
//!   ([`Recorder::observe`]).
//! * epoch metrics — per-epoch training telemetry ([`EpochMetrics`]:
//!   loss, train accuracy, weight updates, spike counts) reported by
//!   every trainer ([`Recorder::record_epoch`]).
//! * latency histograms — fixed-bucket integer-nanosecond
//!   [`LatencyHistogram`]s with exact rank-based p50/p95/p99
//!   ([`Recorder::record_latency`]); samples come from the
//!   clock-quarantined [`Stopwatch`] so a disabled recorder never causes
//!   a clock read.
//!
//! The default recorder is [`NullRecorder`]: every method is an empty
//! body and [`Recorder::enabled`] is `false`, so instrumented code can
//! skip even the argument computation. [`MemoryRecorder`] aggregates
//! everything in memory behind a mutex and snapshots into
//! [`ObsSnapshot`] for reporting.
//!
//! The [`record`] module turns an engine run into a machine-readable
//! [`BenchRecord`] serialized by the in-repo [`json`] writer — the
//! `BENCH_<git-sha>.json` perf-trajectory artifact (schema documented in
//! `DESIGN.md`).
//!
//! # Examples
//!
//! ```
//! use nc_obs::{MemoryRecorder, Recorder, Span};
//!
//! let rec = MemoryRecorder::new();
//! {
//!     let _span = Span::enter(&rec, "train");
//!     rec.add("weight_updates", 128);
//!     rec.observe("accuracy", 0.94);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counters["weight_updates"], 128);
//! assert_eq!(snap.spans["train"].count, 1);
//! ```

pub mod json;
pub mod record;

mod hist;
mod memory;
mod recorder;

pub use hist::{LatencyHistogram, Stopwatch};
pub use memory::{EpochRecord, MemoryRecorder, ObsSnapshot, SpanStats};
pub use record::{BenchRecord, SectionRecord};
pub use recorder::{null, EpochMetrics, NullRecorder, Recorder, Span};
