//! The machine-readable bench record: one JSON document per bench run
//! (`BENCH_<git-sha>.json`), the artifact the perf trajectory is built
//! from. Schema documented in `DESIGN.md` ("Observability layer").

use crate::json::Json;
use crate::memory::ObsSnapshot;

/// Schema version stamped into every record; bump on breaking changes.
///
/// v2 (PR 9): adds the top-level `"supervision"` object — the engine's
/// panic-isolation counters (`panics`, `retries`, `fault_injections`)
/// surfaced as first-class fields so soak artifacts show supervision
/// activity, not just latency. v1 consumers that ignore unknown keys
/// are unaffected; the counters also remain in `"counters"` verbatim.
pub const SCHEMA_VERSION: u64 = 2;

/// Wall-clock and throughput of one named section of a bench run
/// (for `all`, one table/figure generator).
#[derive(Debug, Clone, PartialEq)]
pub struct SectionRecord {
    /// Section label (e.g. `all/fig8`).
    pub name: String,
    /// Wall-clock seconds the section took.
    pub wall_s: f64,
    /// Samples processed (0 = unknown).
    pub samples: u64,
}

impl SectionRecord {
    /// Throughput, if the sample count is known and time is measurable.
    pub fn samples_per_sec(&self) -> Option<f64> {
        if self.samples == 0 || self.wall_s <= 0.0 {
            None
        } else {
            Some(self.samples as f64 / self.wall_s)
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(self.name.clone())),
            ("wall_s".into(), Json::Num(self.wall_s)),
            ("samples".into(), Json::int(self.samples)),
            (
                "samples_per_sec".into(),
                self.samples_per_sec().map_or(Json::Null, Json::Num),
            ),
        ])
    }
}

/// One bench run, ready to serialize.
#[derive(Debug, Clone, Default)]
pub struct BenchRecord {
    /// Short git SHA of the working tree (`"unknown"` outside a repo).
    pub git_sha: String,
    /// The binary that produced the record (e.g. `all`).
    pub bin: String,
    /// Worker thread count of the engine.
    pub threads: usize,
    /// Experiment scale name (`tiny`/`quick`/`standard`/`full`).
    pub scale: String,
    /// Per-section wall-clock and throughput.
    pub sections: Vec<SectionRecord>,
    /// Everything the run's recorder aggregated.
    pub snapshot: ObsSnapshot,
}

impl BenchRecord {
    /// Sum of the section wall-clocks (CPU-seconds of scheduled work;
    /// with threads > 1 this exceeds the run's elapsed time).
    pub fn total_wall_s(&self) -> f64 {
        self.sections.iter().map(|s| s.wall_s).sum()
    }

    /// Serializes the record as a compact JSON document.
    pub fn to_json(&self) -> String {
        let sections = Json::Arr(self.sections.iter().map(SectionRecord::to_json).collect());
        let counters = Json::Obj(
            self.snapshot
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::int(v)))
                .collect(),
        );
        let series = Json::Obj(
            self.snapshot
                .series
                .iter()
                .map(|(k, r)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::int(r.count())),
                            ("mean".into(), Json::Num(r.mean())),
                            ("std_dev".into(), Json::Num(r.std_dev())),
                            ("min".into(), Json::Num(r.min())),
                            ("max".into(), Json::Num(r.max())),
                        ]),
                    )
                })
                .collect(),
        );
        let spans = Json::Obj(
            self.snapshot
                .spans
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::int(s.count)),
                            ("total_s".into(), Json::Num(s.total.as_secs_f64())),
                            ("min_s".into(), Json::Num(s.min.as_secs_f64())),
                            ("max_s".into(), Json::Num(s.max.as_secs_f64())),
                        ]),
                    )
                })
                .collect(),
        );
        let epochs = Json::Arr(
            self.snapshot
                .epochs
                .iter()
                .map(|e| {
                    Json::Obj(vec![
                        ("context".into(), Json::str(e.context.clone())),
                        ("epoch".into(), Json::int(e.metrics.epoch as u64)),
                        ("samples".into(), Json::int(e.metrics.samples)),
                        ("loss".into(), e.metrics.loss.map_or(Json::Null, Json::Num)),
                        (
                            "train_accuracy".into(),
                            e.metrics.train_accuracy.map_or(Json::Null, Json::Num),
                        ),
                        ("weight_updates".into(), Json::int(e.metrics.weight_updates)),
                        ("spikes".into(), Json::int(e.metrics.spikes)),
                    ])
                })
                .collect(),
        );
        let histograms = Json::Obj(
            self.snapshot
                .histograms
                .iter()
                .map(|(k, h)| {
                    let opt = |v: Option<u64>| v.map_or(Json::Null, Json::int);
                    (
                        k.clone(),
                        Json::Obj(vec![
                            ("count".into(), Json::int(h.count())),
                            ("min_ns".into(), opt(h.min())),
                            ("max_ns".into(), opt(h.max())),
                            ("mean_ns".into(), opt(h.mean_ns())),
                            ("p50_ns".into(), opt(h.p50())),
                            ("p95_ns".into(), opt(h.p95())),
                            ("p99_ns".into(), opt(h.p99())),
                        ]),
                    )
                })
                .collect(),
        );
        let counter = |name: &str| {
            Json::int(
                self.snapshot
                    .counters
                    .get(name)
                    .copied()
                    .unwrap_or_default(),
            )
        };
        let supervision = Json::Obj(vec![
            ("panics".into(), counter("engine.panics")),
            ("retries".into(), counter("engine.retries")),
            (
                "fault_injections".into(),
                counter("engine.fault_injections"),
            ),
        ]);
        Json::Obj(vec![
            ("schema_version".into(), Json::int(SCHEMA_VERSION)),
            ("git_sha".into(), Json::str(self.git_sha.clone())),
            ("bin".into(), Json::str(self.bin.clone())),
            ("threads".into(), Json::int(self.threads as u64)),
            ("scale".into(), Json::str(self.scale.clone())),
            ("total_wall_s".into(), Json::Num(self.total_wall_s())),
            ("sections".into(), sections),
            ("supervision".into(), supervision),
            ("counters".into(), counters),
            ("series".into(), series),
            ("spans".into(), spans),
            ("histograms".into(), histograms),
            ("epochs".into(), epochs),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryRecorder, Recorder};
    use std::time::Duration;

    #[test]
    fn throughput_needs_samples_and_time() {
        let mut s = SectionRecord {
            name: "x".into(),
            wall_s: 2.0,
            samples: 100,
        };
        assert_eq!(s.samples_per_sec(), Some(50.0));
        s.samples = 0;
        assert_eq!(s.samples_per_sec(), None);
        s.samples = 1;
        s.wall_s = 0.0;
        assert_eq!(s.samples_per_sec(), None);
    }

    #[test]
    fn record_serializes_every_block() {
        let rec = MemoryRecorder::new();
        rec.add("spikes", 9);
        rec.add("engine.panics", 3);
        rec.add("engine.retries", 2);
        rec.observe("accuracy", 0.5);
        rec.record_span("fit", Duration::from_millis(250));
        rec.record_latency("serve.latency_ns", 64);
        rec.record_epoch(
            "mlp",
            &crate::EpochMetrics {
                epoch: 1,
                samples: 10,
                loss: Some(0.25),
                train_accuracy: Some(0.9),
                weight_updates: 40,
                spikes: 0,
            },
        );
        let record = BenchRecord {
            git_sha: "abc1234".into(),
            bin: "all".into(),
            threads: 4,
            scale: "tiny".into(),
            sections: vec![SectionRecord {
                name: "all/table3".into(),
                wall_s: 1.5,
                samples: 300,
            }],
            snapshot: rec.snapshot(),
        };
        let json = record.to_json();
        for needle in [
            "\"schema_version\":2",
            // The v2 supervision block: explicitly-recorded counters
            // surface, unrecorded ones default to zero.
            "\"supervision\":{\"panics\":3,\"retries\":2,\"fault_injections\":0}",
            "\"git_sha\":\"abc1234\"",
            "\"threads\":4",
            "\"scale\":\"tiny\"",
            "\"total_wall_s\":1.5",
            "\"name\":\"all/table3\"",
            "\"samples_per_sec\":200",
            "\"spikes\":9",
            "\"accuracy\"",
            "\"fit\"",
            "\"train_accuracy\":0.9",
            "\"weight_updates\":40",
            "\"serve.latency_ns\"",
            "\"p50_ns\":64",
            "\"p99_ns\":64",
        ] {
            assert!(json.contains(needle), "{needle} missing in {json}");
        }
    }

    #[test]
    fn total_wall_sums_sections() {
        let record = BenchRecord {
            sections: vec![
                SectionRecord {
                    name: "a".into(),
                    wall_s: 1.0,
                    samples: 0,
                },
                SectionRecord {
                    name: "b".into(),
                    wall_s: 2.5,
                    samples: 0,
                },
            ],
            ..BenchRecord::default()
        };
        assert!((record.total_wall_s() - 3.5).abs() < 1e-12);
    }
}
