//! A minimal JSON writer — just enough to serialize bench records
//! without an external dependency. Values are built as a [`Json`] tree
//! and rendered in one pass; object keys keep insertion order so output
//! is deterministic.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite values render as `null` (JSON has no
    /// NaN/Infinity).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for magnitudes below 2^53).
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format_number(*n));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// `{:?}` on f64 round-trips (shortest representation that parses back
/// exactly) and always includes a decimal point or exponent — valid
/// JSON either way.
fn format_number(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        #[allow(clippy::cast_possible_truncation)]
        let int = n as i64;
        format!("{int}")
    } else {
        format!("{n:?}")
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::int(42).render(), "42");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"",);
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_nest_and_keep_order() {
        let v = Json::Obj(vec![
            ("b".into(), Json::int(1)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.render(), "{\"b\":1,\"a\":[null,false]}");
    }

    #[test]
    fn whole_floats_render_as_integers() {
        assert_eq!(Json::Num(4.0).render(), "4");
        assert_eq!(Json::Num(-0.25).render(), "-0.25");
    }
}
