//! In-memory aggregation: [`MemoryRecorder`] and its [`ObsSnapshot`].

use crate::hist::LatencyHistogram;
use crate::recorder::{EpochMetrics, Recorder};
use nc_substrate::stats::Running;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Acquires the recorder mutex, recovering the inner value if a
/// previous holder panicked. Every critical section here is a single
/// map insert or read, so a poisoned lock still holds consistent data
/// and observability should never take the process down.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Aggregated timings of one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed timings recorded.
    pub count: u64,
    /// Total wall-clock across all timings.
    pub total: Duration,
    /// Shortest single timing.
    pub min: Duration,
    /// Longest single timing.
    pub max: Duration,
}

impl SpanStats {
    fn record(&mut self, wall: Duration) {
        self.count += 1;
        self.total += wall;
        self.min = self.min.min(wall);
        self.max = self.max.max(wall);
    }

    /// Mean wall-clock per timing.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.count).unwrap_or(u32::MAX)
        }
    }
}

/// One [`Recorder::record_epoch`] report.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// The context label the trainer reported under.
    pub context: String,
    /// The epoch's metrics.
    pub metrics: EpochMetrics,
}

/// Everything a [`MemoryRecorder`] has aggregated, cloned out for
/// reporting. Maps are ordered so rendering is deterministic.
#[derive(Debug, Clone, Default)]
pub struct ObsSnapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Observation series by name (Welford aggregates).
    pub series: BTreeMap<String, Running>,
    /// Span timings by name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Every epoch report, in arrival order.
    pub epochs: Vec<EpochRecord>,
    /// Latency histograms by name (integer-nanosecond samples).
    pub histograms: BTreeMap<String, LatencyHistogram>,
}

/// A thread-safe recorder that aggregates everything in memory — the
/// backing store for `--json` bench records and for tests asserting on
/// instrumentation.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    inner: Mutex<ObsSnapshot>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clones out everything aggregated so far.
    pub fn snapshot(&self) -> ObsSnapshot {
        lock_or_recover(&self.inner).clone()
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        lock_or_recover(&self.inner)
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Aggregated timings of a span name, if it was ever recorded.
    pub fn span(&self, name: &str) -> Option<SpanStats> {
        lock_or_recover(&self.inner).spans.get(name).copied()
    }

    /// Number of epoch reports received.
    pub fn epoch_count(&self) -> usize {
        lock_or_recover(&self.inner).epochs.len()
    }

    /// Clones out a named latency histogram, if any sample ever landed
    /// in it.
    pub fn histogram(&self, name: &str) -> Option<LatencyHistogram> {
        lock_or_recover(&self.inner).histograms.get(name).cloned()
    }
}

impl Recorder for MemoryRecorder {
    fn record_span(&self, name: &str, wall: Duration) {
        let mut inner = lock_or_recover(&self.inner);
        inner
            .spans
            .entry(name.to_string())
            .or_insert(SpanStats {
                count: 0,
                total: Duration::ZERO,
                min: Duration::MAX,
                max: Duration::ZERO,
            })
            .record(wall);
    }

    fn add(&self, counter: &str, delta: u64) {
        let mut inner = lock_or_recover(&self.inner);
        *inner.counters.entry(counter.to_string()).or_insert(0) += delta;
    }

    fn observe(&self, series: &str, value: f64) {
        let mut inner = lock_or_recover(&self.inner);
        inner
            .series
            .entry(series.to_string())
            .or_default()
            .push(value);
    }

    fn record_epoch(&self, context: &str, metrics: &EpochMetrics) {
        let mut inner = lock_or_recover(&self.inner);
        inner.epochs.push(EpochRecord {
            context: context.to_string(),
            metrics: *metrics,
        });
    }

    fn record_latency(&self, hist: &str, nanos: u64) {
        let mut inner = lock_or_recover(&self.inner);
        inner
            .histograms
            .entry(hist.to_string())
            .or_default()
            .record(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let rec = MemoryRecorder::new();
        rec.add("spikes", 3);
        rec.add("spikes", 4);
        assert_eq!(rec.counter("spikes"), 7);
        assert_eq!(rec.counter("absent"), 0);
    }

    #[test]
    fn spans_aggregate_by_name() {
        let rec = MemoryRecorder::new();
        rec.record_span("fit", Duration::from_millis(10));
        rec.record_span("fit", Duration::from_millis(30));
        let s = rec.span("fit").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total, Duration::from_millis(40));
        assert_eq!(s.min, Duration::from_millis(10));
        assert_eq!(s.max, Duration::from_millis(30));
        assert_eq!(s.mean(), Duration::from_millis(20));
    }

    #[test]
    fn series_use_running_aggregation() {
        let rec = MemoryRecorder::new();
        rec.observe("acc", 0.5);
        rec.observe("acc", 1.0);
        let snap = rec.snapshot();
        let r = &snap.series["acc"];
        assert_eq!(r.count(), 2);
        assert!((r.mean() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn epochs_arrive_in_order() {
        let rec = MemoryRecorder::new();
        for epoch in 0..3 {
            rec.record_epoch(
                "mlp",
                &EpochMetrics {
                    epoch,
                    ..EpochMetrics::default()
                },
            );
        }
        let snap = rec.snapshot();
        assert_eq!(snap.epochs.len(), 3);
        assert_eq!(snap.epochs[2].metrics.epoch, 2);
        assert_eq!(rec.epoch_count(), 3);
    }

    #[test]
    fn latency_samples_aggregate_by_histogram_name() {
        let rec = MemoryRecorder::new();
        rec.record_latency("serve.latency_ns", 40);
        rec.record_latency("serve.latency_ns", 80);
        rec.record_latency("other", 7);
        let h = rec.histogram("serve.latency_ns").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(40));
        assert_eq!(h.max(), Some(80));
        assert!(rec.histogram("absent").is_none());
        assert_eq!(rec.snapshot().histograms.len(), 2);
    }

    #[test]
    fn recording_is_thread_safe() {
        let rec = MemoryRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        rec.add("n", 1);
                    }
                });
            }
        });
        assert_eq!(rec.counter("n"), 400);
    }
}
