//! Fixed-bucket integer-nanosecond latency histograms and the
//! clock-quarantined [`Stopwatch`].
//!
//! The serving layer (`nc-serve`) reports per-request latency through
//! [`Recorder::record_latency`](crate::Recorder::record_latency); this
//! module provides the aggregation structure. Two properties matter for
//! this repository's determinism posture:
//!
//! 1. **Quantiles are exact in rank.** [`LatencyHistogram::quantile_ppm`]
//!    walks fixed bucket boundaries and returns the upper bound of the
//!    bucket holding the rank-`⌈q·n⌉` sample — the *same* value a sorted
//!    reference implementation produces after mapping that sample through
//!    [`LatencyHistogram::bucket_upper_bound`]. No interpolation, no
//!    floating-point rank arithmetic: quantile fractions are expressed in
//!    integer parts-per-million.
//! 2. **Clock reads stay quarantined.** [`Stopwatch`] owns the only
//!    `Instant` the serving path ever touches, and — like
//!    [`Span`](crate::Span) — never reads the clock unless it was started
//!    enabled, so a disabled recorder makes serving bit-deterministic.
//!
//! Buckets are HDR-style: exact for values below 2⁷ ns, then 128
//! logarithmically-placed sub-buckets per power of two (relative error
//! bounded by 2⁻⁷ ≈ 0.8%). Counts are kept in a `BTreeMap` so iteration
//! order (and therefore every report) is deterministic.

use std::collections::BTreeMap;
use std::time::Instant;

/// Sub-bucket resolution: 2^SUB_BITS linear sub-buckets per power of two.
const SUB_BITS: u32 = 7;
/// First value that leaves the exact (one-value-per-bucket) range.
const SUB: u64 = 1 << SUB_BITS;
/// One million, the quantile denominator (`ppm` = parts per million).
const PPM_SCALE: u128 = 1_000_000;

/// The bucket index a value lands in. Values below [`SUB`] get exact
/// buckets; above, the index is `(msb − 6)·128 + (mantissa top 7 bits)`,
/// contiguous with the exact range.
fn bucket_of(value: u64) -> u32 {
    if value < SUB {
        // value < 128 fits u32 exactly.
        u32::try_from(value).unwrap_or(u32::MAX)
    } else {
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        // `value >> shift` is in [128, 256); the subtraction re-bases it.
        let sub = u32::try_from((value >> shift) - SUB).unwrap_or(u32::MAX);
        (msb - SUB_BITS + 1) * (1 << SUB_BITS) + sub
    }
}

/// The largest value mapping to bucket `index` — the inverse of
/// [`bucket_of`], widened through `u128` because the top block's bound
/// is `u64::MAX` itself.
fn upper_of_bucket(index: u32) -> u64 {
    let block = index >> SUB_BITS;
    if block == 0 {
        u64::from(index)
    } else {
        let shift = block - 1;
        let sub = u128::from(index & u32::try_from(SUB - 1).unwrap_or(u32::MAX)) + u128::from(SUB);
        u64::try_from(((sub + 1) << shift) - 1).unwrap_or(u64::MAX)
    }
}

/// A fixed-bucket histogram of `u64` nanosecond samples with exact
/// rank-based quantile extraction.
///
/// # Examples
///
/// ```
/// use nc_obs::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [10, 20, 30, 40, 1_000_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.p50(), Some(30)); // exact: below 128 ns buckets are 1 ns wide
/// assert_eq!(h.min(), Some(10));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: BTreeMap<u32, u64>,
    total: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (nanoseconds).
    pub fn record(&mut self, nanos: u64) {
        *self.counts.entry(bucket_of(nanos)).or_insert(0) += 1;
        self.total += 1;
        self.sum += u128::from(nanos);
        self.min = Some(self.min.map_or(nanos, |m| m.min(nanos)));
        self.max = Some(self.max.map_or(nanos, |m| m.max(nanos)));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Exact largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Mean sample value (exact integer sum over count, rounded down).
    pub fn mean_ns(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            u64::try_from(self.sum / u128::from(self.total)).ok()
        }
    }

    /// The largest value that maps into the same bucket as `value` — the
    /// canonical reported value for every sample in that bucket, and the
    /// value a sorted-reference quantile must quantize through to compare
    /// against [`LatencyHistogram::quantile_ppm`].
    pub fn bucket_upper_bound(value: u64) -> u64 {
        upper_of_bucket(bucket_of(value))
    }

    /// The quantile at `ppm` parts per million (e.g. p99 = 990 000):
    /// the bucket upper bound of the sample with rank `⌈ppm·n / 10⁶⌉`
    /// (clamped to `[1, n]`, so `ppm = 0` reports the smallest bucket).
    /// Returns `None` on an empty histogram — there is no rank to
    /// report, not a zero — and the *exact* sole sample on a
    /// single-sample histogram: with one sample every quantile is that
    /// sample, which `min` stores losslessly, so quantizing it through
    /// its bucket's upper bound would manufacture error where none is
    /// necessary.
    pub fn quantile_ppm(&self, ppm: u32) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        if self.total == 1 {
            return self.min;
        }
        let total = u128::from(self.total);
        let rank_wide = (u128::from(ppm) * total).div_ceil(PPM_SCALE);
        let rank = rank_wide.clamp(1, total);
        let mut seen: u128 = 0;
        for (&bucket, &count) in &self.counts {
            seen += u128::from(count);
            if seen >= rank {
                return Some(upper_of_bucket(bucket));
            }
        }
        // Unreachable: `total > 0` means the counts sum to `total >= rank`.
        None
    }

    /// Median (500 000 ppm).
    pub fn p50(&self) -> Option<u64> {
        self.quantile_ppm(500_000)
    }

    /// 95th percentile (950 000 ppm).
    pub fn p95(&self) -> Option<u64> {
        self.quantile_ppm(950_000)
    }

    /// 99th percentile (990 000 ppm).
    pub fn p99(&self) -> Option<u64> {
        self.quantile_ppm(990_000)
    }

    /// Folds another histogram into this one (bucket-wise sum; min/max
    /// and mean stay exact because they aggregate exact per-sample data).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (&bucket, &count) in &other.counts {
            *self.counts.entry(bucket).or_insert(0) += count;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A clock guard for code outside the observability layer: started
/// enabled it snapshots `Instant::now()`, started disabled it never
/// touches the clock — the same quarantine discipline as
/// [`Span`](crate::Span), but for latencies that end in a different
/// scope than they begin (a served request's admission → response
/// interval, not a lexical region).
///
/// # Examples
///
/// ```
/// use nc_obs::Stopwatch;
///
/// let off = Stopwatch::disabled();
/// assert_eq!(off.elapsed_ns(), None); // no clock was read
///
/// let on = Stopwatch::start_if(true);
/// assert!(on.elapsed_ns().is_some());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Option<Instant>,
}

impl Stopwatch {
    /// Starts timing if `enabled` (conventionally
    /// [`Recorder::enabled`](crate::Recorder::enabled)); otherwise the
    /// watch is inert and costs nothing.
    pub fn start_if(enabled: bool) -> Self {
        Stopwatch {
            started: enabled.then(Instant::now),
        }
    }

    /// A watch that never reads the clock.
    pub fn disabled() -> Self {
        Stopwatch { started: None }
    }

    /// Whether the watch was started enabled.
    pub fn is_running(&self) -> bool {
        self.started.is_some()
    }

    /// Nanoseconds since the watch started, or `None` if it was never
    /// started (saturating at `u64::MAX` far beyond any real run).
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.started
            .map(|s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// Seconds since the watch started, or `None` if never started.
    pub fn elapsed_s(&self) -> Option<f64> {
        self.started.map(|s| s.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_substrate::check::check_cases;

    /// The sorted-reference quantile: sort the raw samples, pick the
    /// rank-`⌈ppm·n/10⁶⌉` element, quantize it through the shared bucket
    /// upper bound. The histogram must agree exactly.
    fn reference_quantile(samples: &[u64], ppm: u32) -> Option<u64> {
        if samples.is_empty() {
            return None;
        }
        if samples.len() == 1 {
            // Mirror of the histogram's exact single-sample rail.
            return Some(samples[0]);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = u128::try_from(sorted.len()).expect("len fits");
        let rank = (u128::from(ppm) * n).div_ceil(1_000_000).clamp(1, n);
        let index = usize::try_from(rank - 1).expect("rank fits");
        Some(LatencyHistogram::bucket_upper_bound(sorted[index]))
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean_ns(), None);
    }

    #[test]
    fn single_sample_is_every_quantile_exactly() {
        // One sample: every quantile is that sample, reported exactly —
        // not rounded up to its bucket boundary (129 must report 129,
        // not 130; u64::MAX must not overflow the rank arithmetic).
        for value in [0u64, 1, 127, 128, 129, 1_000, u64::MAX] {
            let mut h = LatencyHistogram::new();
            h.record(value);
            for ppm in [0, 1, 500_000, 950_000, 990_000, 1_000_000] {
                assert_eq!(h.quantile_ppm(ppm), Some(value), "{value} at {ppm}");
            }
            assert_eq!(h.min(), Some(value));
            assert_eq!(h.max(), Some(value));
            assert_eq!(h.mean_ns(), Some(value));
        }
    }

    #[test]
    fn two_samples_split_at_the_median_rank() {
        // The smallest histogram where bucket quantization is allowed to
        // show: rank ⌈0.5·2⌉ = 1 picks the low sample, p99 picks the
        // high one, each through its bucket upper bound.
        let mut h = LatencyHistogram::new();
        h.record(129);
        h.record(1_000);
        assert_eq!(h.count(), 2);
        assert_eq!(h.p50(), Some(LatencyHistogram::bucket_upper_bound(129)));
        assert_eq!(h.p99(), Some(LatencyHistogram::bucket_upper_bound(1_000)));
        assert_eq!(
            h.quantile_ppm(0),
            Some(LatencyHistogram::bucket_upper_bound(129))
        );
        assert_eq!(h.min(), Some(129));
        assert_eq!(h.max(), Some(1_000));
    }

    #[test]
    fn all_equal_samples_report_one_bucket_at_every_rank() {
        for n in [2u32, 3, 17] {
            let mut h = LatencyHistogram::new();
            for _ in 0..n {
                h.record(777);
            }
            let expected = LatencyHistogram::bucket_upper_bound(777);
            for ppm in [0, 1, 500_000, 990_000, 1_000_000] {
                assert_eq!(h.quantile_ppm(ppm), Some(expected), "n={n} at {ppm}");
            }
            assert_eq!((h.min(), h.max()), (Some(777), Some(777)));
        }
    }

    #[test]
    fn small_values_are_exact() {
        // Below 128 ns every bucket holds exactly one value, so the
        // histogram quantile equals the raw sorted quantile.
        let mut h = LatencyHistogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        assert_eq!(h.p50(), Some(63));
        assert_eq!(h.quantile_ppm(1_000_000), Some(127));
        assert_eq!(h.quantile_ppm(0), Some(0));
    }

    #[test]
    fn bucket_upper_bounds_bracket_their_values() {
        // Edge cases around every power-of-two boundary: the upper bound
        // is >= the value, in the same bucket, and bound+1 starts the
        // next bucket.
        for exp in 0..63u32 {
            for delta in [-1i64, 0, 1] {
                let v = (1i128 << exp) + i128::from(delta);
                let Ok(v) = u64::try_from(v) else { continue };
                let ub = LatencyHistogram::bucket_upper_bound(v);
                assert!(ub >= v, "upper bound {ub} < value {v}");
                assert_eq!(bucket_of(ub), bucket_of(v), "value {v}");
                if ub < u64::MAX {
                    assert_eq!(bucket_of(ub + 1), bucket_of(v) + 1, "value {v}");
                }
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // The reported value overestimates by at most 2^-SUB_BITS.
        check_cases(0x15708157, 256, |_, rng| {
            let v = rng.next_u64() >> (rng.next_u64() % 40);
            let ub = LatencyHistogram::bucket_upper_bound(v);
            assert!(ub >= v);
            let error = ub - v;
            // error < 2^(msb - SUB_BITS) <= v / 2^(SUB_BITS - 1)
            assert!(
                u128::from(error) * (1 << (SUB_BITS - 1)) <= u128::from(v).max(1),
                "value {v} bound {ub}"
            );
        });
    }

    #[test]
    fn quantiles_match_sorted_reference_on_seeded_samples() {
        check_cases(0xC0FFEE, 64, |case, rng| {
            let n = 1 + rng.next_index(400);
            // Mix magnitudes so samples cross many bucket blocks.
            let samples: Vec<u64> = (0..n)
                .map(|_| rng.next_u64() >> (rng.next_u64() % 48))
                .collect();
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            for ppm in [
                0u32, 1, 250_000, 500_000, 900_000, 950_000, 990_000, 999_999, 1_000_000,
            ] {
                assert_eq!(
                    h.quantile_ppm(ppm),
                    reference_quantile(&samples, ppm),
                    "case {case}: {n} samples at {ppm} ppm"
                );
            }
        });
    }

    #[test]
    fn duplicate_heavy_streams_stay_exact() {
        // Bucket-edge case: many samples collapsing into few buckets.
        check_cases(0xD0D0, 32, |case, rng| {
            let n = 1 + rng.next_index(200);
            let samples: Vec<u64> = (0..n).map(|_| 120 + rng.next_u64() % 16).collect();
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            for ppm in [500_000u32, 950_000, 990_000] {
                assert_eq!(
                    h.quantile_ppm(ppm),
                    reference_quantile(&samples, ppm),
                    "case {case}"
                );
            }
        });
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut union = LatencyHistogram::new();
        for (i, v) in [5u64, 900, 17, 88_000, 3, 5, 1 << 40].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v)
            } else {
                b.record(*v)
            }
            union.record(*v);
        }
        a.merge(&b);
        assert_eq!(a, union);
        // Merging an empty histogram is the identity.
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, union);
    }

    #[test]
    fn stopwatch_disabled_never_reads_the_clock() {
        let w = Stopwatch::disabled();
        assert!(!w.is_running());
        assert_eq!(w.elapsed_ns(), None);
        assert_eq!(w.elapsed_s(), None);
        assert!(!Stopwatch::start_if(false).is_running());
    }

    #[test]
    fn stopwatch_enabled_measures_something() {
        let w = Stopwatch::start_if(true);
        assert!(w.is_running());
        let ns = w.elapsed_ns().expect("running watch reports");
        assert!(w.elapsed_ns().expect("monotone") >= ns);
        assert!(w.elapsed_s().expect("seconds view") >= 0.0);
    }
}
