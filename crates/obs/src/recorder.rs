//! The [`Recorder`] trait, its no-op default, and the [`Span`] guard.

use std::time::{Duration, Instant};

/// Per-epoch training telemetry, the unit every trainer reports.
///
/// Fields that do not apply to a model family stay at their defaults
/// (`None` / `0`): an STDP epoch has no loss, a gradient epoch has no
/// spikes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochMetrics {
    /// Epoch index, from 0.
    pub epoch: usize,
    /// Training samples presented this epoch.
    pub samples: u64,
    /// Mean squared error over the epoch, for gradient learners.
    pub loss: Option<f64>,
    /// On-line training-set accuracy, where the trainer measures one.
    pub train_accuracy: Option<f64>,
    /// Synaptic weight updates applied this epoch.
    pub weight_updates: u64,
    /// Output spikes fired this epoch (spiking models only).
    pub spikes: u64,
}

/// The observability sink. Every method has an empty default body so a
/// recorder implements only what it aggregates; implementations must be
/// thread-safe because engine jobs report concurrently.
pub trait Recorder: Send + Sync {
    /// Whether this recorder aggregates anything. Instrumented code uses
    /// this to skip metric *computation* (not just reporting) — e.g.
    /// [`Span`] never reads the clock when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one completed timing of the named region. Repeated names
    /// aggregate.
    fn record_span(&self, name: &str, wall: Duration) {
        let _ = (name, wall);
    }

    /// Increments a named monotone counter.
    fn add(&self, counter: &str, delta: u64) {
        let _ = (counter, delta);
    }

    /// Feeds one value into a named observation series.
    fn observe(&self, series: &str, value: f64) {
        let _ = (series, value);
    }

    /// Records one epoch of training telemetry under a context label
    /// (conventionally the job or model name).
    fn record_epoch(&self, context: &str, metrics: &EpochMetrics) {
        let _ = (context, metrics);
    }

    /// Feeds one integer-nanosecond sample into a named latency
    /// histogram (aggregated as a
    /// [`LatencyHistogram`](crate::LatencyHistogram)). Callers outside
    /// the observability layer obtain `nanos` from a
    /// [`Stopwatch`](crate::Stopwatch) so disabled recorders never cause
    /// a clock read.
    fn record_latency(&self, hist: &str, nanos: u64) {
        let _ = (hist, nanos);
    }
}

/// The disabled recorder: [`Recorder::enabled`] is `false` and every
/// report is a no-op, so instrumented code costs nothing when nobody is
/// listening.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
}

/// The shared disabled recorder — the default argument for every
/// `*_observed` entry point's plain twin.
pub fn null() -> &'static NullRecorder {
    static NULL: NullRecorder = NullRecorder;
    &NULL
}

/// RAII wall-clock timing of a named region: reports to
/// [`Recorder::record_span`] on drop. Construction checks
/// [`Recorder::enabled`] once; a disabled span never touches the clock.
pub struct Span<'a> {
    recorder: &'a dyn Recorder,
    name: &'a str,
    started: Option<Instant>,
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("name", &self.name)
            .field("started", &self.started)
            .finish_non_exhaustive()
    }
}

impl<'a> Span<'a> {
    /// Starts timing `name` if the recorder is enabled.
    pub fn enter(recorder: &'a dyn Recorder, name: &'a str) -> Self {
        let started = recorder.enabled().then(Instant::now);
        Span {
            recorder,
            name,
            started,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            self.recorder.record_span(self.name, started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let rec = NullRecorder;
        assert!(!rec.enabled());
        rec.add("x", 1);
        rec.observe("y", 2.0);
        rec.record_span("z", Duration::from_millis(1));
        rec.record_epoch("m", &EpochMetrics::default());
    }

    #[test]
    fn disabled_span_never_reads_the_clock() {
        let span = Span::enter(null(), "region");
        assert!(span.started.is_none());
    }

    #[test]
    fn null_is_shared() {
        assert!(std::ptr::eq(null(), null()));
    }

    #[test]
    fn epoch_metrics_default_is_empty() {
        let m = EpochMetrics::default();
        assert_eq!(m.loss, None);
        assert_eq!(m.weight_updates, 0);
    }
}
