//! Procedural object-silhouette generator (MPEG-7 CE Shape-1 stand-in).
//!
//! The MPEG-7 benchmark is a set of binary object silhouettes. The paper
//! uses it (resampled to 28×28, 10 output classes) to validate its MNIST
//! conclusions on object recognition (§4.5). This generator produces ten
//! filled-silhouette classes with rotation/scale/translation jitter and
//! boundary noise.

use crate::image::{pt, rasterize_polygon, Jitter, Point};
use crate::{Dataset, Difficulty, Sample};
use nc_substrate::rng::SplitMix64;

/// Canvas side used by the shape generator (matches the paper's 28×28
/// MPEG-7 configuration).
pub const SIDE: usize = 28;
/// Number of silhouette classes.
pub const CLASSES: usize = 10;

/// Specification of a synthetic silhouette dataset.
///
/// # Examples
///
/// ```
/// use nc_dataset::shapes::ShapesSpec;
/// use nc_dataset::Difficulty;
///
/// let (train, test) = ShapesSpec {
///     train: 40,
///     test: 10,
///     seed: 2,
///     difficulty: Difficulty::default(),
/// }
/// .generate();
/// assert_eq!(train.input_dim(), 28 * 28);
/// assert_eq!(test.len(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapesSpec {
    /// Number of training samples.
    pub train: usize,
    /// Number of test samples.
    pub test: usize,
    /// Generator seed.
    pub seed: u64,
    /// Jitter/noise knobs.
    pub difficulty: Difficulty,
}

impl Default for ShapesSpec {
    /// 2 000 train / 500 test — the MPEG-7 set is small (1 400 images),
    /// so the default is of comparable scale.
    fn default() -> Self {
        ShapesSpec {
            train: 2_000,
            test: 500,
            seed: 0x5AAE_0007,
            difficulty: Difficulty::default(),
        }
    }
}

impl ShapesSpec {
    /// Generates the `(train, test)` datasets, class-balanced round-robin.
    pub fn generate(&self) -> (Dataset, Dataset) {
        let train = split(self.train, self.seed, 0x11, self.difficulty);
        let test = split(self.test, self.seed, 0x22, self.difficulty);
        (train, test)
    }
}

fn split(n: usize, seed: u64, stream: u64, difficulty: Difficulty) -> Dataset {
    let mut rng = SplitMix64::new(seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
    let samples: Vec<Sample> = (0..n)
        .map(|i| {
            let label = i % CLASSES;
            let img = render_shape(label, &mut rng, difficulty);
            Sample {
                pixels: img.into_pixels(),
                label,
            }
        })
        .collect();
    // nc-lint: allow(R5, reason = "generator emits fixed SIDE*SIDE geometry by construction")
    Dataset::from_samples(SIDE, SIDE, CLASSES, samples).expect("consistent geometry")
}

/// Renders one jittered silhouette.
///
/// # Panics
///
/// Panics if `class >= 10`.
pub fn render_shape(
    class: usize,
    rng: &mut SplitMix64,
    difficulty: Difficulty,
) -> crate::image::GreyImage {
    assert!(class < CLASSES, "class must be 0..=9");
    let base = polygon(class);
    // Boundary wobble: radial perturbation of each vertex.
    let wobble = 0.02 + 0.03 * difficulty.thickness_jitter;
    let poly: Vec<Point> = base
        .iter()
        .map(|&p| {
            pt(
                p.x + rng.next_range(-wobble, wobble),
                p.y + rng.next_range(-wobble, wobble),
            )
        })
        .collect();
    let jitter = Jitter::sample(
        rng,
        difficulty.max_shift,
        // Silhouettes tolerate (and MPEG-7 contains) large rotations.
        difficulty.max_rotation * 2.0,
        difficulty.scale_jitter,
    );
    let mut img = rasterize_polygon(SIDE, SIDE, &poly, jitter);
    img.add_noise(difficulty.noise, rng);
    img
}

fn regular(n: usize, cx: f64, cy: f64, r: f64, phase: f64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let theta = phase + std::f64::consts::TAU * i as f64 / n as f64;
            pt(cx + r * theta.cos(), cy + r * theta.sin())
        })
        .collect()
}

fn star(points: usize, cx: f64, cy: f64, r_outer: f64, r_inner: f64) -> Vec<Point> {
    let mut v = Vec::with_capacity(points * 2);
    for i in 0..points * 2 {
        let r = if i % 2 == 0 { r_outer } else { r_inner };
        let theta = -std::f64::consts::FRAC_PI_2 + std::f64::consts::PI * i as f64 / points as f64;
        v.push(pt(cx + r * theta.cos(), cy + r * theta.sin()));
    }
    v
}

/// The base polygon (unit-box coordinates) for each silhouette class:
/// disk, square, triangle, 5-star, cross, diamond, bar, L-bracket,
/// arrow, crescent-like notched disk.
pub fn polygon(class: usize) -> Vec<Point> {
    match class {
        0 => regular(16, 0.5, 0.5, 0.38, 0.0),
        1 => vec![
            pt(0.18, 0.18),
            pt(0.82, 0.18),
            pt(0.82, 0.82),
            pt(0.18, 0.82),
        ],
        2 => vec![pt(0.5, 0.10), pt(0.90, 0.85), pt(0.10, 0.85)],
        3 => star(5, 0.5, 0.52, 0.44, 0.18),
        4 => vec![
            pt(0.38, 0.08),
            pt(0.62, 0.08),
            pt(0.62, 0.38),
            pt(0.92, 0.38),
            pt(0.92, 0.62),
            pt(0.62, 0.62),
            pt(0.62, 0.92),
            pt(0.38, 0.92),
            pt(0.38, 0.62),
            pt(0.08, 0.62),
            pt(0.08, 0.38),
            pt(0.38, 0.38),
        ],
        5 => vec![pt(0.5, 0.06), pt(0.90, 0.5), pt(0.5, 0.94), pt(0.10, 0.5)],
        6 => vec![
            pt(0.10, 0.38),
            pt(0.90, 0.38),
            pt(0.90, 0.62),
            pt(0.10, 0.62),
        ],
        7 => vec![
            pt(0.15, 0.10),
            pt(0.42, 0.10),
            pt(0.42, 0.63),
            pt(0.90, 0.63),
            pt(0.90, 0.90),
            pt(0.15, 0.90),
        ],
        8 => vec![
            pt(0.08, 0.40),
            pt(0.55, 0.40),
            pt(0.55, 0.18),
            pt(0.94, 0.5),
            pt(0.55, 0.82),
            pt(0.55, 0.60),
            pt(0.08, 0.60),
        ],
        9 => {
            // A disk with a wedge notch (pac-man / crescent-like).
            let mut v = vec![pt(0.5, 0.5)];
            let n = 14;
            for i in 0..=n {
                let theta = 0.6 + (std::f64::consts::TAU - 1.2) * i as f64 / n as f64;
                v.push(pt(0.5 + 0.40 * theta.cos(), 0.5 + 0.40 * theta.sin()));
            }
            v
        }
        _ => unreachable!("callers mask class labels to 0..=9"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = ShapesSpec {
            train: 20,
            test: 5,
            seed: 9,
            difficulty: Difficulty::default(),
        };
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn all_classes_render_nonempty() {
        let mut rng = SplitMix64::new(4);
        for c in 0..CLASSES {
            let img = render_shape(c, &mut rng, Difficulty::none());
            let ink: usize = img.pixels().iter().filter(|&&p| p > 128).count();
            assert!(ink > 20, "class {c} rendered almost empty ({ink} px)");
        }
    }

    #[test]
    fn silhouettes_are_mostly_binary_without_noise() {
        let mut rng = SplitMix64::new(4);
        let img = render_shape(1, &mut rng, Difficulty::none());
        let intermediate = img.pixels().iter().filter(|&&p| p > 10 && p < 245).count();
        // Only the anti-aliased boundary may be intermediate.
        assert!(intermediate < img.pixels().len() / 4);
    }

    #[test]
    fn classes_are_balanced() {
        let (train, _) = ShapesSpec {
            train: 40,
            test: 0,
            seed: 6,
            difficulty: Difficulty::default(),
        }
        .generate();
        assert_eq!(train.class_counts(), vec![4; 10]);
    }

    #[test]
    #[should_panic(expected = "callers mask class labels to 0..=9")]
    fn polygon_rejects_out_of_range() {
        let _ = polygon(10);
    }
}
