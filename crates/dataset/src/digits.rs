//! Procedural handwritten-digit generator (MNIST stand-in).
//!
//! Each digit class has a stroke-template glyph (polylines in a normalized
//! box). A sample is rendered by jittering the template (per-vertex
//! wobble, affine jitter, stroke-thickness jitter), rasterizing with
//! anti-aliasing, blurring, and adding pixel noise — producing 28×28 8-bit
//! greyscale images with the same geometry and class structure as MNIST.
//!
//! See `DESIGN.md` §5 for why a synthetic stand-in is used and what it
//! preserves.

use crate::image::{pt, rasterize_strokes, Jitter, Point};
use crate::{Dataset, Difficulty, Sample};
use nc_substrate::rng::SplitMix64;

/// Canvas side used by the digit generator (matches MNIST).
pub const SIDE: usize = 28;
/// Number of digit classes.
pub const CLASSES: usize = 10;

/// Specification of a synthetic digit dataset.
///
/// # Examples
///
/// ```
/// use nc_dataset::digits::DigitsSpec;
/// use nc_dataset::Difficulty;
///
/// let (train, test) = DigitsSpec {
///     train: 50,
///     test: 10,
///     seed: 1,
///     difficulty: Difficulty::default(),
/// }
/// .generate();
/// assert_eq!(train.len(), 50);
/// assert_eq!(test.num_classes(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitsSpec {
    /// Number of training samples.
    pub train: usize,
    /// Number of test samples.
    pub test: usize,
    /// Generator seed; train and test streams are derived from it but
    /// disjoint.
    pub seed: u64,
    /// Jitter/noise knobs.
    pub difficulty: Difficulty,
}

impl Default for DigitsSpec {
    /// The default experiment scale: 6 000 train / 1 000 test (a 10×
    /// scale-down of the paper's full 60 000/10 000 MNIST protocol chosen
    /// so the whole table regenerates in minutes on a laptop; pass larger
    /// values to run at full paper scale).
    fn default() -> Self {
        DigitsSpec {
            train: 6_000,
            test: 1_000,
            seed: 0xD161_7350,
            difficulty: Difficulty::default(),
        }
    }
}

impl DigitsSpec {
    /// Generates the `(train, test)` datasets. Classes are balanced
    /// round-robin so every digit appears `n/10 ± 1` times.
    pub fn generate(&self) -> (Dataset, Dataset) {
        let train = generate_split(self.train, self.seed, 0x7EA1, self.difficulty);
        let test = generate_split(self.test, self.seed, 0x7E57, self.difficulty);
        (train, test)
    }
}

fn generate_split(n: usize, seed: u64, stream: u64, difficulty: Difficulty) -> Dataset {
    let mut rng = SplitMix64::new(seed ^ (stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    let samples: Vec<Sample> = (0..n)
        .map(|i| {
            let label = i % CLASSES;
            let img = render_digit(label, &mut rng, difficulty);
            Sample {
                pixels: img.into_pixels(),
                label,
            }
        })
        .collect();
    Dataset::from_samples(SIDE, SIDE, CLASSES, samples)
        // nc-lint: allow(R5, reason = "generator emits fixed SIDE*SIDE geometry by construction")
        .expect("generator emits consistent geometry")
}

/// Renders one jittered digit image.
///
/// # Panics
///
/// Panics if `digit >= 10`.
pub fn render_digit(
    digit: usize,
    rng: &mut SplitMix64,
    difficulty: Difficulty,
) -> crate::image::GreyImage {
    assert!(digit < CLASSES, "digit must be 0..=9");
    let template = glyph(digit);
    // Per-vertex wobble proportional to stroke jitter.
    let wobble = 0.03 + 0.04 * difficulty.thickness_jitter;
    let strokes: Vec<Vec<Point>> = template
        .iter()
        .map(|s| {
            s.iter()
                .map(|&p| {
                    pt(
                        p.x + rng.next_range(-wobble, wobble),
                        p.y + rng.next_range(-wobble, wobble),
                    )
                })
                .collect()
        })
        .collect();
    let jitter = Jitter::sample(
        rng,
        difficulty.max_shift,
        difficulty.max_rotation,
        difficulty.scale_jitter,
    );
    let thickness =
        2.2 * (1.0 + rng.next_range(-difficulty.thickness_jitter, difficulty.thickness_jitter));
    let mut img = rasterize_strokes(SIDE, SIDE, &strokes, thickness.max(0.8), jitter);
    img.blur3();
    img.add_noise(difficulty.noise, rng);
    img
}

/// Closed 12-gon approximating an ellipse centered at `(cx, cy)`.
fn ellipse(cx: f64, cy: f64, rx: f64, ry: f64) -> Vec<Point> {
    let n = 12;
    (0..=n)
        .map(|i| {
            let theta = std::f64::consts::TAU * i as f64 / n as f64;
            pt(cx + rx * theta.cos(), cy + ry * theta.sin())
        })
        .collect()
}

/// Open arc of an ellipse from `a0` to `a1` radians.
fn arc(cx: f64, cy: f64, rx: f64, ry: f64, a0: f64, a1: f64) -> Vec<Point> {
    let n = 8;
    (0..=n)
        .map(|i| {
            let theta = a0 + (a1 - a0) * i as f64 / n as f64;
            pt(cx + rx * theta.cos(), cy + ry * theta.sin())
        })
        .collect()
}

/// The stroke template for a digit, as polylines in the unit box
/// (x right, y down).
pub fn glyph(digit: usize) -> Vec<Vec<Point>> {
    use std::f64::consts::PI;
    match digit {
        0 => vec![ellipse(0.5, 0.5, 0.32, 0.45)],
        1 => vec![vec![pt(0.35, 0.25), pt(0.55, 0.05), pt(0.55, 0.95)]],
        2 => vec![
            // top arc, then diagonal to bottom-left, then bottom bar
            {
                let mut s = arc(0.5, 0.28, 0.30, 0.24, -PI, 0.0);
                s.push(pt(0.22, 0.95));
                s.push(pt(0.82, 0.95));
                s
            },
        ],
        3 => vec![
            arc(0.45, 0.27, 0.28, 0.23, -PI * 0.9, PI * 0.45),
            arc(0.45, 0.73, 0.30, 0.24, -PI * 0.45, PI * 0.9),
        ],
        4 => vec![
            vec![pt(0.62, 0.05), pt(0.18, 0.62), pt(0.85, 0.62)],
            vec![pt(0.62, 0.05), pt(0.62, 0.95)],
        ],
        5 => vec![{
            let mut s = vec![pt(0.78, 0.08), pt(0.28, 0.08), pt(0.25, 0.48)];
            s.extend(arc(0.47, 0.68, 0.28, 0.26, -PI * 0.6, PI * 0.75));
            s
        }],
        6 => vec![{
            let mut s = vec![pt(0.68, 0.06), pt(0.34, 0.45)];
            s.extend(ellipse(0.5, 0.68, 0.24, 0.26));
            s
        }],
        7 => vec![vec![pt(0.18, 0.08), pt(0.82, 0.08), pt(0.42, 0.95)]],
        8 => vec![
            ellipse(0.5, 0.29, 0.24, 0.22),
            ellipse(0.5, 0.72, 0.28, 0.25),
        ],
        9 => vec![{
            let mut s = ellipse(0.5, 0.32, 0.24, 0.26);
            s.push(pt(0.72, 0.40));
            s.push(pt(0.62, 0.95));
            s
        }],
        _ => unreachable!("callers mask digit labels to 0..=9"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = DigitsSpec {
            train: 20,
            test: 10,
            seed: 5,
            difficulty: Difficulty::default(),
        };
        let (a_train, a_test) = spec.generate();
        let (b_train, b_test) = spec.generate();
        assert_eq!(a_train, b_train);
        assert_eq!(a_test, b_test);
    }

    #[test]
    fn train_and_test_are_disjoint_streams() {
        let spec = DigitsSpec {
            train: 10,
            test: 10,
            seed: 5,
            difficulty: Difficulty::default(),
        };
        let (train, test) = spec.generate();
        // Same labels (round-robin) but different pixels.
        assert_ne!(train.samples()[0].pixels, test.samples()[0].pixels);
    }

    #[test]
    fn classes_are_balanced() {
        let spec = DigitsSpec {
            train: 100,
            test: 0,
            seed: 1,
            difficulty: Difficulty::default(),
        };
        let (train, _) = spec.generate();
        assert_eq!(train.class_counts(), vec![10; 10]);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            DigitsSpec {
                train: 5,
                test: 0,
                seed,
                difficulty: Difficulty::default(),
            }
            .generate()
            .0
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn digits_have_reasonable_ink_coverage() {
        // Sanity: strokes should cover a small but nonzero fraction of the
        // canvas, like MNIST (~13% mean luminance).
        let spec = DigitsSpec {
            train: 50,
            test: 0,
            seed: 3,
            difficulty: Difficulty::default(),
        };
        let (train, _) = spec.generate();
        let lum = train.mean_luminance();
        assert!(lum > 0.03 && lum < 0.40, "mean luminance = {lum}");
    }

    #[test]
    fn all_glyphs_render_nonempty() {
        let mut rng = SplitMix64::new(7);
        for d in 0..10 {
            let img = render_digit(d, &mut rng, Difficulty::none());
            assert!(
                img.pixels().iter().any(|&p| p > 128),
                "digit {d} rendered empty"
            );
        }
    }

    #[test]
    fn noiseless_same_class_samples_are_identical() {
        let mut rng_a = SplitMix64::new(11);
        let mut rng_b = SplitMix64::new(11);
        let a = render_digit(3, &mut rng_a, Difficulty::none());
        let b = render_digit(3, &mut rng_b, Difficulty::none());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "callers mask digit labels to 0..=9")]
    fn glyph_rejects_out_of_range() {
        let _ = glyph(10);
    }
}
