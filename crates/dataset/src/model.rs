//! The unified model interface every accelerator candidate implements.
//!
//! The paper compares five model variants (MLP+BP float and 8-bit
//! fixed-point, SNN+STDP through the LIF and SNNwot readouts, and the
//! SNN+BP hybrid) on identical data with identical scoring. This module
//! captures that contract as a trait so experiment drivers — notably the
//! parallel engine in `nc-core` — can treat every variant uniformly:
//! build, [`Model::fit`] on the training set, [`Model::evaluate`] on the
//! test set, report accuracy from the shared confusion matrix.
//!
//! The trait lives here (rather than in `nc-core`) because `nc-dataset`
//! is the lowest layer that knows both [`Dataset`] and
//! [`Confusion`](nc_substrate::stats::Confusion); the model crates
//! (`nc-mlp`, `nc-snn`) implement it without depending on each other.

use crate::Dataset;
use nc_faults::{FaultError, FaultPlan};
use nc_obs::Recorder;
use nc_substrate::stats::Confusion;

/// How much training compute a [`Model::fit`] call may spend.
///
/// One budget type serves every model family; each model reads the
/// fields that apply to it (gradient-based models read `epochs` and
/// `learning_rate`, STDP models read `stdp_epochs` and `stdp_delta`).
/// Drivers fill the fields per model — e.g. the experiment engine maps
/// its scale's MLP epoch count or SNN+BP epoch count into `epochs`
/// depending on which model the budget is for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitBudget {
    /// Passes over the training set for gradient-based learners
    /// (MLP+BP, SNN+BP).
    pub epochs: usize,
    /// Passes over the training set for STDP learners.
    pub stdp_epochs: usize,
    /// STDP weight-update magnitude (paper Table 1 uses ±1 at full
    /// presentation volume).
    pub stdp_delta: i16,
    /// Learning rate override for gradient-based learners; `None` keeps
    /// each trainer's paper default (η = 0.3 for the MLP, 0.5 for
    /// SNN+BP).
    pub learning_rate: Option<f64>,
}

impl Default for FitBudget {
    /// The paper's full-volume settings (Table 1).
    fn default() -> Self {
        FitBudget {
            epochs: 50,
            stdp_epochs: 20,
            stdp_delta: 1,
            learning_rate: None,
        }
    }
}

/// Why a [`Model::fit`] call could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The dataset's input dimensionality does not match the model's.
    GeometryMismatch {
        /// Input dimension the model was built for.
        expected: usize,
        /// Input dimension the dataset provides.
        got: usize,
    },
    /// The training set has no samples.
    EmptyDataset,
    /// The model instance cannot be trained — e.g. a deployment artifact
    /// (a quantized or timing-free network extracted from a trained
    /// master) that was not built with an `untrained` constructor.
    NotTrainable {
        /// The model's display name.
        model: &'static str,
        /// Human-readable explanation.
        reason: &'static str,
    },
    /// The model has no physical substrate for this fault kind — e.g. a
    /// stuck LFSR tap on the float MLP, which has no spike generators.
    FaultUnsupported {
        /// The model's display name.
        model: &'static str,
        /// The unsupported fault's stable name.
        fault: &'static str,
    },
    /// The fault plan itself was malformed (e.g. rate outside `[0, 1]`).
    InvalidFaultPlan {
        /// Explanation from the fault layer.
        reason: String,
    },
}

impl From<FaultError> for ModelError {
    fn from(err: FaultError) -> Self {
        ModelError::InvalidFaultPlan {
            reason: err.to_string(),
        }
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::GeometryMismatch { expected, got } => {
                write!(f, "dataset has {got} inputs, model expects {expected}")
            }
            ModelError::EmptyDataset => write!(f, "training set is empty"),
            ModelError::NotTrainable { model, reason } => {
                write!(f, "{model} cannot be trained: {reason}")
            }
            ModelError::FaultUnsupported { model, fault } => {
                write!(f, "{model} has no substrate for fault model {fault}")
            }
            ModelError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Presentation-seed base shared by every batch evaluation path: sample
/// `i` of a test set is presented with seed
/// `EVAL_PRESENTATION_SEED_BASE | i`, so single-sample
/// [`Model::predict`] calls can reproduce exactly what
/// [`Model::evaluate_batch`] (and the stochastic models' own `evaluate`
/// loops) saw.
pub const EVAL_PRESENTATION_SEED_BASE: u64 = 0xE7A1_0000;

/// The owned backing store of an [`EvalBatch`]: every sample's pixels
/// copied once into a single contiguous slab, plus the labels and
/// geometry. Built from a [`Dataset`] (whose samples each own their own
/// pixel vector) so batched kernels can consume one flat `&[u8]` with a
/// fixed stride instead of chasing a pointer per image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PixelSlab {
    pixels: Vec<u8>,
    labels: Vec<usize>,
    stride: usize,
    num_classes: usize,
}

impl PixelSlab {
    /// Copies `test` into contiguous storage. `stride` becomes the
    /// dataset's input dimension; samples are laid out back to back in
    /// dataset order.
    pub fn from_dataset(test: &Dataset) -> PixelSlab {
        let stride = test.input_dim();
        let mut pixels = Vec::with_capacity(stride * test.len());
        let mut labels = Vec::with_capacity(test.len());
        for s in test.iter() {
            pixels.extend_from_slice(&s.pixels);
            labels.push(s.label);
        }
        PixelSlab {
            pixels,
            labels,
            stride,
            num_classes: test.num_classes(),
        }
    }

    /// The batch view over the whole slab, with item `i` carrying the
    /// shared evaluation seed [`EVAL_PRESENTATION_SEED_BASE`]` | i`.
    pub fn batch(&self) -> EvalBatch<'_> {
        EvalBatch {
            pixels: &self.pixels,
            labels: &self.labels,
            seeds: None,
            stride: self.stride,
            num_classes: self.num_classes,
            first_index: 0,
        }
    }
}

/// The owned backing store of a *request* batch: pixels pushed one image
/// at a time (a serving admission queue's coalesced tile) rather than
/// copied wholesale from a [`Dataset`]. Unlike [`PixelSlab`], every item
/// carries an **explicit** presentation seed — a served request must
/// replay the exact seed its item had in the offline evaluation stream
/// (`EVAL_PRESENTATION_SEED_BASE | item_index`), which is generally not
/// its position in the coalesced batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestSlab {
    pixels: Vec<u8>,
    labels: Vec<usize>,
    seeds: Vec<u64>,
    stride: usize,
    num_classes: usize,
}

impl RequestSlab {
    /// An empty slab for images of `stride` pixels over `num_classes`
    /// label classes.
    pub fn new(stride: usize, num_classes: usize) -> RequestSlab {
        RequestSlab {
            pixels: Vec::new(),
            labels: Vec::new(),
            seeds: Vec::new(),
            stride,
            num_classes,
        }
    }

    /// Appends one image with its presentation seed and (possibly
    /// unknown, conventionally 0) ground-truth label, returning its
    /// position in the slab.
    ///
    /// # Errors
    ///
    /// [`ModelError::GeometryMismatch`] when `pixels.len()` is not the
    /// slab's stride.
    pub fn push(&mut self, pixels: &[u8], seed: u64, label: usize) -> Result<usize, ModelError> {
        if pixels.len() != self.stride {
            return Err(ModelError::GeometryMismatch {
                expected: self.stride,
                got: pixels.len(),
            });
        }
        self.pixels.extend_from_slice(pixels);
        self.seeds.push(seed);
        self.labels.push(label);
        Ok(self.seeds.len() - 1)
    }

    /// Number of images pushed.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether no image has been pushed.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// The batch view over the slab, with every item carrying the seed
    /// it was pushed with.
    pub fn batch(&self) -> EvalBatch<'_> {
        EvalBatch {
            pixels: &self.pixels,
            labels: &self.labels,
            seeds: Some(&self.seeds),
            stride: self.stride,
            num_classes: self.num_classes,
            first_index: 0,
        }
    }
}

/// A borrowed, contiguous view of evaluation work: `len()` images of
/// `stride()` pixels back to back in one slab, each with its label and
/// its presentation seed. This is the unit the batched kernel layer
/// consumes — one slab, one weight pass — and what
/// [`Model::predict_batch`]/[`Model::evaluate_batch`] take instead of a
/// `&Dataset`.
///
/// Seeds are positional by default: item `i` of a batch whose first item
/// is global index `f` is presented with seed
/// [`EVAL_PRESENTATION_SEED_BASE`]` | (f + i)`, so splitting a batch
/// into kernel-sized [`EvalBatch::tiles`] changes nothing about which
/// seed any image sees. A [`RequestSlab`]-built batch instead carries an
/// explicit seed per item (a coalesced serving batch holds items from
/// arbitrary stream positions); tiling slices the seed table alongside
/// the pixels, so the invariant — every image keeps its seed — holds on
/// both paths.
#[derive(Debug, Clone, Copy)]
pub struct EvalBatch<'a> {
    pixels: &'a [u8],
    labels: &'a [usize],
    seeds: Option<&'a [u64]>,
    stride: usize,
    num_classes: usize,
    first_index: usize,
}

impl<'a> EvalBatch<'a> {
    /// Number of images in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch holds no images.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Pixels per image (the dataset's input dimension).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of label classes (the confusion-matrix dimension).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The whole contiguous pixel slab, `len() · stride()` bytes.
    pub fn pixels(&self) -> &'a [u8] {
        self.pixels
    }

    /// Image `i`'s pixels.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn item(&self, i: usize) -> &'a [u8] {
        &self.pixels[i * self.stride..(i + 1) * self.stride]
    }

    /// Image `i`'s ground-truth label.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Image `i`'s presentation seed: the explicit per-item seed when
    /// the batch carries a seed table ([`RequestSlab`]), otherwise the
    /// positional convention.
    pub fn seed(&self, i: usize) -> u64 {
        match self.seeds {
            Some(seeds) => seeds[i],
            None => {
                EVAL_PRESENTATION_SEED_BASE
                    | u64::try_from(self.first_index + i).unwrap_or(u64::MAX)
            }
        }
    }

    /// Splits the batch into consecutive sub-batches of at most `tile`
    /// images each, preserving every item's seed and label.
    ///
    /// # Panics
    ///
    /// Panics if `tile == 0`.
    pub fn tiles(&self, tile: usize) -> impl Iterator<Item = EvalBatch<'a>> + '_ {
        assert!(tile > 0, "tile size must be positive");
        let stride = self.stride;
        let num_classes = self.num_classes;
        let first = self.first_index;
        let seeds = self.seeds;
        self.pixels
            .chunks(stride.max(1) * tile)
            .zip(self.labels.chunks(tile))
            .enumerate()
            .map(move |(k, (pixels, labels))| EvalBatch {
                pixels,
                labels,
                seeds: seeds.map(|s| &s[k * tile..k * tile + labels.len()]),
                stride,
                num_classes,
                first_index: first + k * tile,
            })
    }
}

/// A classifier that can be trained on a [`Dataset`] and scored on
/// another — the unit of work the experiment engine schedules.
///
/// `evaluate` and `predict` take `&mut self` because the temporal SNN
/// advances its presentation RNG while classifying and the hardware-path
/// models reuse internal scratch buffers; pure feed-forward models
/// simply ignore the mutability.
pub trait Model: Send {
    /// Display name, matching the paper's Table 3 row labels.
    fn name(&self) -> &'static str;

    /// Trains on `train` within `budget`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the dataset is empty, its geometry does
    /// not match the model, or the instance is a deployment artifact
    /// that cannot be retrained.
    fn fit(&mut self, train: &Dataset, budget: &FitBudget) -> Result<(), ModelError>;

    /// Like [`Model::fit`], reporting per-epoch training metrics (and
    /// any family-specific counters) to `recorder`. The default ignores
    /// the recorder, so implementing it is opt-in per model family; the
    /// experiment engine always calls this variant.
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::fit`].
    fn fit_observed(
        &mut self,
        train: &Dataset,
        budget: &FitBudget,
        recorder: &dyn Recorder,
    ) -> Result<(), ModelError> {
        let _ = recorder;
        self.fit(train, budget)
    }

    /// Scores on `test`, producing the shared confusion matrix.
    fn evaluate(&mut self, test: &Dataset) -> Confusion;

    /// Classifies one image. `presentation_seed` drives any
    /// per-presentation stochasticity (the temporal SNN's spike trains
    /// and readout tie-breaks); deterministic feed-forward models ignore
    /// it.
    ///
    /// # Panics
    ///
    /// Implementations panic if `pixels.len()` does not match the
    /// model's input width.
    fn predict(&mut self, pixels: &[u8], presentation_seed: u64) -> usize;

    /// Classifies every image of `batch` in order into `out` (cleared
    /// first, so a reused buffer allocates nothing once grown). Each
    /// image is presented with its [`EvalBatch::seed`], the same stream
    /// [`Model::evaluate_batch`] scores.
    ///
    /// The default drives [`Model::predict`] one image at a time, which
    /// keeps every family correct before it is ported; batched models
    /// override this to run the slab through kernel-sized tiles.
    fn predict_batch(&mut self, batch: &EvalBatch<'_>, out: &mut Vec<usize>) {
        out.clear();
        out.reserve(batch.len());
        for i in 0..batch.len() {
            out.push(self.predict(batch.item(i), batch.seed(i)));
        }
    }

    /// Scores `batch` through the batched prediction path, producing
    /// the shared confusion matrix. The default delegates to
    /// [`Model::predict_batch`], so overriding that single method is
    /// enough to batch both entry points; the experiment engine always
    /// scores through this one.
    fn evaluate_batch(&mut self, batch: &EvalBatch<'_>) -> Confusion {
        let mut predictions = Vec::new();
        self.predict_batch(batch, &mut predictions);
        let mut confusion = Confusion::new(batch.num_classes());
        for (i, &p) in predictions.iter().enumerate() {
            confusion.record(batch.label(i), p);
        }
        confusion
    }

    /// Injects a hardware fault into the model's deployed state
    /// (typically after [`Model::fit`], before [`Model::evaluate`]).
    /// Injection is deterministic: the same plan on the same trained
    /// state yields the same faulty model on any thread count.
    ///
    /// The default rejects every fault — models opt in per fault kind,
    /// because each fault targets a specific physical substrate (weight
    /// SRAM, neuron circuits, read ports, spike generators).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidFaultPlan`] when the plan's rate is outside
    /// `[0, 1]`, [`ModelError::FaultUnsupported`] when the model has no
    /// substrate for the plan's fault kind.
    fn inject(&mut self, plan: &FaultPlan) -> Result<(), ModelError> {
        plan.validate()?;
        Err(ModelError::FaultUnsupported {
            model: self.name(),
            fault: plan.model.name(),
        })
    }
}

/// Validates the common preconditions shared by every `fit`
/// implementation.
///
/// # Errors
///
/// Returns [`ModelError::EmptyDataset`] or
/// [`ModelError::GeometryMismatch`].
pub fn check_fit_inputs(train: &Dataset, expected_inputs: usize) -> Result<(), ModelError> {
    if train.is_empty() {
        return Err(ModelError::EmptyDataset);
    }
    if train.input_dim() != expected_inputs {
        return Err(ModelError::GeometryMismatch {
            expected: expected_inputs,
            got: train.input_dim(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sample;

    fn tiny_dataset() -> Dataset {
        Dataset::from_samples(
            2,
            2,
            2,
            vec![Sample {
                pixels: vec![0; 4],
                label: 1,
            }],
        )
        .unwrap()
    }

    #[test]
    fn check_rejects_empty() {
        let ds = Dataset::from_samples(2, 2, 2, vec![]).unwrap();
        assert_eq!(check_fit_inputs(&ds, 4), Err(ModelError::EmptyDataset));
    }

    #[test]
    fn check_rejects_geometry_mismatch() {
        assert_eq!(
            check_fit_inputs(&tiny_dataset(), 9),
            Err(ModelError::GeometryMismatch {
                expected: 9,
                got: 4
            })
        );
    }

    #[test]
    fn check_accepts_matching_geometry() {
        assert_eq!(check_fit_inputs(&tiny_dataset(), 4), Ok(()));
    }

    #[test]
    fn errors_display_is_nonempty() {
        for e in [
            ModelError::EmptyDataset,
            ModelError::GeometryMismatch {
                expected: 1,
                got: 2,
            },
            ModelError::NotTrainable {
                model: "x",
                reason: "y",
            },
            ModelError::FaultUnsupported {
                model: "x",
                fault: "stuck_at_0",
            },
            ModelError::InvalidFaultPlan {
                reason: "rate".to_string(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn batch_defaults_follow_the_shared_seed_convention() {
        struct SeedEcho {
            seen: Vec<u64>,
        }
        impl Model for SeedEcho {
            fn name(&self) -> &'static str {
                "seed-echo"
            }
            fn fit(&mut self, _: &Dataset, _: &FitBudget) -> Result<(), ModelError> {
                Ok(())
            }
            fn evaluate(&mut self, test: &Dataset) -> Confusion {
                self.evaluate_batch(&PixelSlab::from_dataset(test).batch())
            }
            fn predict(&mut self, _: &[u8], presentation_seed: u64) -> usize {
                self.seen.push(presentation_seed);
                0
            }
        }
        let ds = Dataset::from_samples(
            2,
            2,
            2,
            vec![
                Sample {
                    pixels: vec![0; 4],
                    label: 1,
                },
                Sample {
                    pixels: vec![255; 4],
                    label: 0,
                },
            ],
        )
        .unwrap();
        let mut model = SeedEcho { seen: Vec::new() };
        let slab = PixelSlab::from_dataset(&ds);
        let mut out = Vec::new();
        model.predict_batch(&slab.batch(), &mut out);
        assert_eq!(out, vec![0, 0]);
        let confusion = model.evaluate_batch(&slab.batch());
        assert_eq!(confusion.total(), 2);
        assert_eq!(
            model.seen,
            vec![
                EVAL_PRESENTATION_SEED_BASE,
                EVAL_PRESENTATION_SEED_BASE | 1,
                EVAL_PRESENTATION_SEED_BASE,
                EVAL_PRESENTATION_SEED_BASE | 1,
            ]
        );
    }

    #[test]
    fn slab_views_are_contiguous_and_tiles_preserve_seeds() {
        let ds = Dataset::from_samples(
            2,
            2,
            3,
            (0..5u8)
                .map(|i| Sample {
                    pixels: vec![i; 4],
                    label: usize::from(i) % 3,
                })
                .collect(),
        )
        .unwrap();
        let slab = PixelSlab::from_dataset(&ds);
        let batch = slab.batch();
        assert_eq!(batch.len(), 5);
        assert_eq!(batch.stride(), 4);
        assert_eq!(batch.num_classes(), 3);
        assert_eq!(batch.pixels().len(), 20);
        for i in 0..5 {
            assert_eq!(batch.item(i), &[u8::try_from(i).unwrap(); 4]);
            assert_eq!(batch.label(i), i % 3);
            assert_eq!(
                batch.seed(i),
                EVAL_PRESENTATION_SEED_BASE | u64::try_from(i).unwrap()
            );
        }
        // Tiling into twos: items keep their global seeds and labels.
        let tiles: Vec<_> = batch.tiles(2).collect();
        assert_eq!(
            tiles.iter().map(EvalBatch::len).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        assert_eq!(tiles[1].item(1), batch.item(3));
        assert_eq!(tiles[1].seed(1), batch.seed(3));
        assert_eq!(tiles[2].label(0), batch.label(4));
        assert_eq!(tiles[2].seed(0), batch.seed(4));
    }

    #[test]
    fn request_slab_carries_explicit_seeds_through_tiles() {
        let mut slab = RequestSlab::new(4, 3);
        assert!(slab.is_empty());
        // Items pushed out of stream order: seeds follow the item, not
        // the batch position.
        for (i, item) in [4u64, 0, 2, 3, 1].iter().enumerate() {
            let pos = slab
                .push(
                    &[u8::try_from(i).unwrap(); 4],
                    EVAL_PRESENTATION_SEED_BASE | item,
                    usize::try_from(*item).unwrap() % 3,
                )
                .unwrap();
            assert_eq!(pos, i);
        }
        assert_eq!(slab.len(), 5);
        let batch = slab.batch();
        assert_eq!(batch.len(), 5);
        assert_eq!(batch.stride(), 4);
        assert_eq!(batch.num_classes(), 3);
        assert_eq!(batch.seed(0), EVAL_PRESENTATION_SEED_BASE | 4);
        assert_eq!(batch.seed(4), EVAL_PRESENTATION_SEED_BASE | 1);
        assert_eq!(batch.item(2), &[2u8; 4]);
        assert_eq!(batch.label(3), 0);
        // Tiling slices the seed table alongside the pixels.
        let tiles: Vec<_> = batch.tiles(2).collect();
        assert_eq!(
            tiles.iter().map(EvalBatch::len).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        assert_eq!(tiles[1].seed(0), batch.seed(2));
        assert_eq!(tiles[1].seed(1), batch.seed(3));
        assert_eq!(tiles[2].seed(0), batch.seed(4));
        assert_eq!(tiles[2].item(0), batch.item(4));
    }

    #[test]
    fn request_slab_rejects_geometry_mismatch() {
        let mut slab = RequestSlab::new(4, 2);
        assert_eq!(
            slab.push(&[0; 3], 7, 0),
            Err(ModelError::GeometryMismatch {
                expected: 4,
                got: 3
            })
        );
        assert!(slab.is_empty());
    }

    #[test]
    fn fault_errors_convert_into_model_errors() {
        let err: ModelError = nc_faults::FaultError::BadRate(2.0).into();
        assert!(matches!(err, ModelError::InvalidFaultPlan { .. }));
        assert!(err.to_string().contains("invalid fault plan"));
    }

    #[test]
    fn default_inject_rejects_every_fault() {
        struct Stub;
        impl Model for Stub {
            fn name(&self) -> &'static str {
                "stub"
            }
            fn fit(&mut self, _: &Dataset, _: &FitBudget) -> Result<(), ModelError> {
                Ok(())
            }
            fn evaluate(&mut self, _: &Dataset) -> Confusion {
                Confusion::new(1)
            }
            fn predict(&mut self, _: &[u8], _: u64) -> usize {
                0
            }
        }
        let mut stub = Stub;
        let plan = FaultPlan::new(nc_faults::FaultModel::StuckAt0, 0.5, 1).expect("valid plan");
        assert_eq!(
            stub.inject(&plan),
            Err(ModelError::FaultUnsupported {
                model: "stub",
                fault: "stuck_at_0",
            })
        );
        let bad = FaultPlan {
            model: nc_faults::FaultModel::StuckAt0,
            rate: 7.0,
            seed: 0,
        };
        assert!(matches!(
            stub.inject(&bad),
            Err(ModelError::InvalidFaultPlan { .. })
        ));
    }
}
