//! Procedural spoken-digit feature generator (Spoken Arabic Digits
//! stand-in).
//!
//! The UCI Spoken Arabic Digits dataset consists of 13 MFCC coefficients
//! over time for utterances of the ten digits; the paper resamples each
//! utterance onto a fixed 13×13 time/cepstrum grid (its SAD networks are
//! `13x13-60-10` and `13x13-90`, §4.5). This generator synthesizes
//! class-conditional 13×13 "cepstrograms": each class has a smooth
//! prototype built from a few Gaussian bumps in time/coefficient space;
//! samples apply a random monotone time-warp, amplitude jitter and noise —
//! the same nuisance structure real speech has, which is why the paper's
//! SAD accuracies are markedly lower than its MNIST accuracies. The
//! generator reproduces that relative hardness via stronger warping than
//! the visual workloads.

use crate::image::GreyImage;
use crate::{Dataset, Difficulty, Sample};
use nc_substrate::fixed::sat_u8_trunc;
use nc_substrate::rng::SplitMix64;

/// Time frames (columns) in the resampled utterance.
pub const FRAMES: usize = 13;
/// Cepstral coefficients (rows).
pub const COEFFS: usize = 13;
/// Number of digit classes.
pub const CLASSES: usize = 10;

/// Specification of a synthetic spoken-digit dataset.
///
/// # Examples
///
/// ```
/// use nc_dataset::spoken::SpokenSpec;
/// use nc_dataset::Difficulty;
///
/// let (train, test) = SpokenSpec {
///     train: 30,
///     test: 10,
///     seed: 3,
///     difficulty: Difficulty::default(),
/// }
/// .generate();
/// assert_eq!(train.input_dim(), 13 * 13);
/// assert_eq!(train.num_classes(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpokenSpec {
    /// Number of training samples.
    pub train: usize,
    /// Number of test samples.
    pub test: usize,
    /// Generator seed.
    pub seed: u64,
    /// Jitter/noise knobs (`max_shift` maps to time-warp strength).
    pub difficulty: Difficulty,
}

impl Default for SpokenSpec {
    /// 6 600 train / 2 200 test mirrors the real SAD protocol
    /// (8 800 utterances, 75/25 split); scale down for quick runs.
    fn default() -> Self {
        SpokenSpec {
            train: 6_600,
            test: 2_200,
            seed: 0x5AD0_0D17,
            difficulty: Difficulty::default(),
        }
    }
}

impl SpokenSpec {
    /// Generates the `(train, test)` datasets, class-balanced round-robin.
    pub fn generate(&self) -> (Dataset, Dataset) {
        let train = split(self.train, self.seed, 0xA1, self.difficulty);
        let test = split(self.test, self.seed, 0xB2, self.difficulty);
        (train, test)
    }
}

fn split(n: usize, seed: u64, stream: u64, difficulty: Difficulty) -> Dataset {
    let mut rng = SplitMix64::new(seed ^ stream.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    let samples: Vec<Sample> = (0..n)
        .map(|i| {
            let label = i % CLASSES;
            let img = render_utterance(label, &mut rng, difficulty);
            Sample {
                pixels: img.into_pixels(),
                label,
            }
        })
        .collect();
    // nc-lint: allow(R5, reason = "generator emits fixed FRAMES*COEFFS geometry by construction")
    Dataset::from_samples(FRAMES, COEFFS, CLASSES, samples).expect("consistent geometry")
}

/// One Gaussian bump in (time, coefficient) space.
#[derive(Debug, Clone, Copy)]
struct Bump {
    t: f64,
    c: f64,
    sigma_t: f64,
    sigma_c: f64,
    amp: f64,
}

/// The class prototype: a deterministic set of bumps derived from the
/// class index (so prototypes are stable across runs and documented by
/// construction rather than data files).
fn prototype(class: usize) -> Vec<Bump> {
    /// Base seed of the per-class prototype streams; xor-folded with the
    /// class index so each class gets an independent, stable stream.
    const PROTOTYPE_SEED: u64 = 0x0515_0AD5;
    /// Per-class stride (the SplitMix64 golden-gamma constant) spreading
    /// adjacent class indices across the seed space.
    const CLASS_STRIDE: u64 = 0x2545_F491_4F6C_DD1D;
    let mut rng = SplitMix64::new(PROTOTYPE_SEED ^ (class as u64).wrapping_mul(CLASS_STRIDE));
    let bumps = 3 + class % 3; // 3..5 formant-like trajectories
    (0..bumps)
        .map(|_| Bump {
            t: rng.next_range(0.1, 0.9),
            c: rng.next_range(0.1, 0.9),
            sigma_t: rng.next_range(0.10, 0.25),
            sigma_c: rng.next_range(0.06, 0.16),
            amp: rng.next_range(0.6, 1.0),
        })
        .collect()
}

/// Renders one jittered utterance patch.
///
/// # Panics
///
/// Panics if `class >= 10`.
pub fn render_utterance(class: usize, rng: &mut SplitMix64, difficulty: Difficulty) -> GreyImage {
    assert!(class < CLASSES, "class must be 0..=9");
    let proto = prototype(class);
    // Monotone time warp: t' = t + w·sin(π t); |w| < 1/π keeps it monotone.
    let warp = rng.next_range(-1.0, 1.0) * (0.05 + 0.05 * difficulty.max_shift.min(3.0) / 3.0);
    let amp_jitter = 1.0 + rng.next_range(-difficulty.scale_jitter, difficulty.scale_jitter);
    let coeff_shift = rng.next_range(-difficulty.max_shift, difficulty.max_shift) / COEFFS as f64;
    let mut img = GreyImage::new(FRAMES, COEFFS);
    for col in 0..FRAMES {
        let t_raw = (col as f64 + 0.5) / FRAMES as f64;
        let t = t_raw + warp * (std::f64::consts::PI * t_raw).sin();
        for row in 0..COEFFS {
            let c = (row as f64 + 0.5) / COEFFS as f64 + coeff_shift;
            let mut v = 0.0;
            for b in &proto {
                let dt = (t - b.t) / b.sigma_t;
                let dc = (c - b.c) / b.sigma_c;
                v += b.amp * (-0.5 * (dt * dt + dc * dc)).exp();
            }
            img.set(
                col,
                row,
                sat_u8_trunc((v * amp_jitter).clamp(0.0, 1.0) * 255.0),
            );
        }
    }
    img.add_noise(difficulty.noise * 1.5, rng);
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SpokenSpec {
            train: 20,
            test: 10,
            seed: 77,
            difficulty: Difficulty::default(),
        };
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn geometry_matches_paper_sad_config() {
        let (train, _) = SpokenSpec {
            train: 10,
            test: 0,
            seed: 1,
            difficulty: Difficulty::default(),
        }
        .generate();
        assert_eq!(train.width(), 13);
        assert_eq!(train.height(), 13);
        assert_eq!(train.input_dim(), 169);
    }

    #[test]
    fn prototypes_differ_between_classes() {
        let mut rng_a = SplitMix64::new(1);
        let mut rng_b = SplitMix64::new(1);
        let a = render_utterance(0, &mut rng_a, Difficulty::none());
        let b = render_utterance(1, &mut rng_b, Difficulty::none());
        assert_ne!(a, b);
    }

    #[test]
    fn noiseless_rendering_is_class_stable() {
        let mut rng_a = SplitMix64::new(1);
        let mut rng_b = SplitMix64::new(1);
        assert_eq!(
            render_utterance(4, &mut rng_a, Difficulty::none()),
            render_utterance(4, &mut rng_b, Difficulty::none())
        );
    }

    #[test]
    fn utterances_have_energy() {
        let mut rng = SplitMix64::new(2);
        for c in 0..CLASSES {
            let img = render_utterance(c, &mut rng, Difficulty::default());
            assert!(
                img.pixels().iter().map(|&p| u32::from(p)).sum::<u32>() > 500,
                "class {c} nearly silent"
            );
        }
    }

    #[test]
    #[should_panic(expected = "class must be 0..=9")]
    fn rejects_out_of_range_class() {
        let mut rng = SplitMix64::new(0);
        let _ = render_utterance(10, &mut rng, Difficulty::none());
    }
}
