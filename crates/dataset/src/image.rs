//! Greyscale raster images and the stroke/silhouette rasterizer shared by
//! the synthetic generators.
//!
//! Images are stored as row-major `u8` luminance, exactly the 8-bit
//! greyscale format the accelerators consume ("the inputs are usually
//! n-bit values (8-bit values in our case for the pixel luminance)",
//! paper §2.1).

use nc_substrate::fixed::{sat_u8_round, sat_u8_trunc};
use nc_substrate::rng::SplitMix64;

/// A row-major 8-bit greyscale image.
///
/// # Examples
///
/// ```
/// use nc_dataset::image::GreyImage;
/// let mut img = GreyImage::new(4, 4);
/// img.set(1, 2, 200);
/// assert_eq!(img.get(1, 2), 200);
/// assert_eq!(img.pixels().len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GreyImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GreyImage {
    /// Creates an all-black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        GreyImage {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Luminance at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets the luminance at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// The flattened row-major pixel buffer.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Consumes the image, returning the pixel buffer.
    pub fn into_pixels(self) -> Vec<u8> {
        self.pixels
    }

    /// Adds uniform noise of amplitude `amp` (in `[0,1]` luminance units)
    /// to every pixel, clamping at the 8-bit rails.
    pub fn add_noise(&mut self, amp: f64, rng: &mut SplitMix64) {
        if amp <= 0.0 {
            return;
        }
        for p in &mut self.pixels {
            let delta = rng.next_range(-amp, amp) * 255.0;
            *p = sat_u8_trunc(f64::from(*p) + delta);
        }
    }

    /// 3×3 box blur, used to soften rasterized strokes the way optics and
    /// anti-aliased scans soften MNIST digits.
    pub fn blur3(&mut self) {
        let mut out = vec![0u8; self.pixels.len()];
        for y in 0..self.height {
            for x in 0..self.width {
                let mut sum = 0u32;
                let mut n = 0u32;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let neighbor = (
                            usize::try_from(x as i64 + dx),
                            usize::try_from(y as i64 + dy),
                        );
                        let (Ok(nx), Ok(ny)) = neighbor else { continue };
                        if nx < self.width && ny < self.height {
                            sum += u32::from(self.pixels[ny * self.width + nx]);
                            n += 1;
                        }
                    }
                }
                out[y * self.width + x] = u8::try_from(sum / n).unwrap_or(u8::MAX);
            }
        }
        self.pixels = out;
    }

    /// ASCII-art rendering for debugging and the examples (darker pixels
    /// map to denser glyphs).
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut s = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let lum = usize::from(self.get(x, y));
                let idx = lum * (RAMP.len() - 1) / 255;
                s.push(char::from(RAMP[idx]));
            }
            s.push('\n');
        }
        s
    }
}

/// A 2-D point in normalized glyph coordinates (`[0,1]²`, origin top-left).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Horizontal coordinate, 0 = left.
    pub x: f64,
    /// Vertical coordinate, 0 = top.
    pub y: f64,
}

/// Shorthand constructor for [`Point`].
pub const fn pt(x: f64, y: f64) -> Point {
    Point { x, y }
}

/// An affine jitter transform applied to glyph coordinates before
/// rasterization: rotate about the glyph center, scale, then translate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jitter {
    /// Rotation angle in radians.
    pub rotation: f64,
    /// Isotropic scale factor.
    pub scale: f64,
    /// Translation in pixels (applied after mapping to pixel space).
    pub shift_x: f64,
    /// Translation in pixels.
    pub shift_y: f64,
}

impl Default for Jitter {
    fn default() -> Self {
        Jitter {
            rotation: 0.0,
            scale: 1.0,
            shift_x: 0.0,
            shift_y: 0.0,
        }
    }
}

impl Jitter {
    /// Samples a jitter uniformly within the bounds of a difficulty spec.
    pub fn sample(
        rng: &mut SplitMix64,
        max_shift: f64,
        max_rotation: f64,
        scale_jitter: f64,
    ) -> Self {
        Jitter {
            rotation: rng.next_range(-max_rotation, max_rotation),
            scale: 1.0 + rng.next_range(-scale_jitter, scale_jitter),
            shift_x: rng.next_range(-max_shift, max_shift),
            shift_y: rng.next_range(-max_shift, max_shift),
        }
    }

    fn apply(&self, p: Point, width: f64, height: f64) -> Point {
        // Rotate and scale about the glyph center in normalized space.
        let cx = 0.5;
        let cy = 0.5;
        let dx = (p.x - cx) * self.scale;
        let dy = (p.y - cy) * self.scale;
        let (sin, cos) = self.rotation.sin_cos();
        let rx = cx + dx * cos - dy * sin;
        let ry = cy + dx * sin + dy * cos;
        // Map into pixel space with a small margin, then translate.
        let margin = 0.12;
        Point {
            x: (margin + rx * (1.0 - 2.0 * margin)) * width + self.shift_x,
            y: (margin + ry * (1.0 - 2.0 * margin)) * height + self.shift_y,
        }
    }
}

fn dist_to_segment(px: f64, py: f64, a: Point, b: Point) -> f64 {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len2 = abx * abx + aby * aby;
    let t = if len2 <= f64::EPSILON {
        0.0
    } else {
        (((px - a.x) * abx + (py - a.y) * aby) / len2).clamp(0.0, 1.0)
    };
    let qx = a.x + t * abx;
    let qy = a.y + t * aby;
    ((px - qx).powi(2) + (py - qy).powi(2)).sqrt()
}

/// Rasterizes a set of polylines (in normalized glyph coordinates) into an
/// image, with anti-aliased strokes of the given thickness (in pixels).
///
/// Luminance falls off linearly over one pixel at the stroke boundary,
/// which mimics the anti-aliasing of scanned handwriting.
pub fn rasterize_strokes(
    width: usize,
    height: usize,
    strokes: &[Vec<Point>],
    thickness: f64,
    jitter: Jitter,
) -> GreyImage {
    let mut img = GreyImage::new(width, height);
    let w = width as f64;
    let h = height as f64;
    let mapped: Vec<Vec<Point>> = strokes
        .iter()
        .map(|s| s.iter().map(|&p| jitter.apply(p, w, h)).collect())
        .collect();
    let half = thickness / 2.0;
    for y in 0..height {
        for x in 0..width {
            let px = x as f64 + 0.5;
            let py = y as f64 + 0.5;
            let mut best = f64::INFINITY;
            for stroke in &mapped {
                for pair in stroke.windows(2) {
                    best = best.min(dist_to_segment(px, py, pair[0], pair[1]));
                }
                if stroke.len() == 1 {
                    best = best.min(dist_to_segment(px, py, stroke[0], stroke[0]));
                }
            }
            // 1-pixel anti-aliasing ramp outside the stroke core.
            let lum = if best <= half {
                1.0
            } else if best <= half + 1.0 {
                1.0 - (best - half)
            } else {
                0.0
            };
            img.set(x, y, sat_u8_round(lum * 255.0));
        }
    }
    img
}

/// Rasterizes a filled polygon (in normalized glyph coordinates) into an
/// image, used by the MPEG-7-like silhouette generator. Coverage is
/// estimated with 2×2 supersampling per pixel.
pub fn rasterize_polygon(
    width: usize,
    height: usize,
    polygon: &[Point],
    jitter: Jitter,
) -> GreyImage {
    let mut img = GreyImage::new(width, height);
    if polygon.len() < 3 {
        return img;
    }
    let w = width as f64;
    let h = height as f64;
    let poly: Vec<Point> = polygon.iter().map(|&p| jitter.apply(p, w, h)).collect();
    let inside = |px: f64, py: f64| -> bool {
        // Even-odd ray casting.
        let mut crossings = 0;
        for i in 0..poly.len() {
            let a = poly[i];
            let b = poly[(i + 1) % poly.len()];
            if (a.y > py) != (b.y > py) {
                let t = (py - a.y) / (b.y - a.y);
                if px < a.x + t * (b.x - a.x) {
                    crossings += 1;
                }
            }
        }
        crossings % 2 == 1
    };
    for y in 0..height {
        for x in 0..width {
            let mut cover = 0u32;
            for (sx, sy) in [(0.25, 0.25), (0.75, 0.25), (0.25, 0.75), (0.75, 0.75)] {
                if inside(x as f64 + sx, y as f64 + sy) {
                    cover += 1;
                }
            }
            img.set(x, y, u8::try_from(cover * 255 / 4).unwrap_or(u8::MAX));
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_get_set_round_trip() {
        let mut img = GreyImage::new(3, 2);
        img.set(2, 1, 42);
        assert_eq!(img.get(2, 1), 42);
        assert_eq!(img.get(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn image_get_panics_out_of_bounds() {
        let img = GreyImage::new(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    fn blur_preserves_flat_images() {
        let mut img = GreyImage::new(5, 5);
        for y in 0..5 {
            for x in 0..5 {
                img.set(x, y, 100);
            }
        }
        img.blur3();
        for y in 0..5 {
            for x in 0..5 {
                assert_eq!(img.get(x, y), 100);
            }
        }
    }

    #[test]
    fn noise_respects_rails() {
        let mut rng = SplitMix64::new(9);
        let mut img = GreyImage::new(8, 8);
        img.add_noise(1.0, &mut rng);
        // All pixels stay valid u8 by construction; just check some moved.
        assert!(img.pixels().iter().any(|&p| p > 0));
    }

    #[test]
    fn stroke_rasterizer_marks_the_line() {
        let strokes = vec![vec![pt(0.0, 0.5), pt(1.0, 0.5)]];
        let img = rasterize_strokes(16, 16, &strokes, 1.5, Jitter::default());
        // The horizontal centerline should be bright, the corners dark.
        assert!(img.get(8, 8) > 200);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(15, 15), 0);
    }

    #[test]
    fn polygon_rasterizer_fills_interior() {
        let square = vec![pt(0.2, 0.2), pt(0.8, 0.2), pt(0.8, 0.8), pt(0.2, 0.8)];
        let img = rasterize_polygon(20, 20, &square, Jitter::default());
        assert_eq!(img.get(10, 10), 255);
        assert_eq!(img.get(0, 0), 0);
    }

    #[test]
    fn degenerate_polygon_renders_black() {
        let img = rasterize_polygon(8, 8, &[pt(0.5, 0.5)], Jitter::default());
        assert!(img.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    fn jitter_translation_moves_content() {
        let strokes = vec![vec![pt(0.5, 0.0), pt(0.5, 1.0)]];
        let base = rasterize_strokes(16, 16, &strokes, 1.5, Jitter::default());
        let shifted = rasterize_strokes(
            16,
            16,
            &strokes,
            1.5,
            Jitter {
                shift_x: 4.0,
                ..Jitter::default()
            },
        );
        assert_ne!(base.pixels(), shifted.pixels());
    }

    #[test]
    fn ascii_art_has_one_row_per_line() {
        let img = GreyImage::new(4, 3);
        let art = img.to_ascii();
        assert_eq!(art.lines().count(), 3);
        assert!(art.lines().all(|l| l.len() == 4));
    }
}
