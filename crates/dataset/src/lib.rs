//! # nc-dataset
//!
//! Synthetic workload generators standing in for the three benchmarks the
//! paper evaluates (MNIST handwritten digits, MPEG-7 CE Shape-1 Part-B
//! silhouettes, and the Spoken Arabic Digits UCI dataset).
//!
//! The reproduction environment has no dataset files and no network access
//! to fetch them, so — per the substitution rule in `DESIGN.md` §5 — this
//! crate generates deterministic procedural stand-ins with the same tensor
//! shapes, class counts and train/test protocol:
//!
//! * [`digits`] — 28×28 8-bit greyscale stroke-rendered digits, 10 classes
//!   (MNIST stand-in; drives Tables 3/4/7 and Figures 6/8/14).
//! * [`shapes`] — 28×28 binary-ish object silhouettes, 10 classes (MPEG-7
//!   stand-in; drives §4.5).
//! * [`spoken`] — 13×13 cepstral-like time/frequency patches, 10 classes
//!   (Spoken Arabic Digits stand-in; drives §4.5).
//!
//! All generators take a seed and a [`Difficulty`]; the same
//! `(spec, seed)` always yields the same dataset, so every experiment in
//! the repository is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use nc_dataset::{digits, Difficulty};
//!
//! let spec = digits::DigitsSpec {
//!     train: 100,
//!     test: 20,
//!     seed: 7,
//!     difficulty: Difficulty::default(),
//! };
//! let (train, test) = spec.generate();
//! assert_eq!(train.len(), 100);
//! assert_eq!(test.len(), 20);
//! assert_eq!(train.input_dim(), 28 * 28);
//! assert_eq!(train.num_classes(), 10);
//! ```

pub mod digits;
pub mod image;
pub mod model;
pub mod shapes;
pub mod spoken;

pub use image::GreyImage;
pub use model::{EvalBatch, FitBudget, Model, ModelError, PixelSlab, RequestSlab};

/// One labeled example: a flattened 8-bit image plus its class label.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sample {
    /// Row-major 8-bit pixel luminances (the accelerator's input format).
    pub pixels: Vec<u8>,
    /// Class label in `0..num_classes`.
    pub label: usize,
}

impl Sample {
    /// Pixel luminances rescaled to `[0, 1]` for the floating-point model.
    pub fn pixels_unit(&self) -> Vec<f64> {
        self.pixels.iter().map(|&p| f64::from(p) / 255.0).collect()
    }
}

/// A labeled dataset with fixed input geometry.
///
/// # Examples
///
/// ```
/// use nc_dataset::{Dataset, Sample};
/// let ds = Dataset::from_samples(4, 4, 2, vec![
///     Sample { pixels: vec![0; 16], label: 0 },
///     Sample { pixels: vec![255; 16], label: 1 },
/// ]).unwrap();
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.input_dim(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    width: usize,
    height: usize,
    num_classes: usize,
    samples: Vec<Sample>,
}

/// Error building a [`Dataset`] from raw samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A sample's pixel count does not match `width * height`.
    WrongPixelCount {
        /// Index of the offending sample.
        index: usize,
        /// Expected pixel count.
        expected: usize,
        /// Observed pixel count.
        got: usize,
    },
    /// A sample's label is `>= num_classes`.
    LabelOutOfRange {
        /// Index of the offending sample.
        index: usize,
        /// The offending label.
        label: usize,
        /// Number of classes in the dataset.
        num_classes: usize,
    },
    /// `width`, `height` or `num_classes` was zero.
    EmptyGeometry,
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::WrongPixelCount {
                index,
                expected,
                got,
            } => {
                write!(f, "sample {index} has {got} pixels, expected {expected}")
            }
            DatasetError::LabelOutOfRange {
                index,
                label,
                num_classes,
            } => {
                write!(
                    f,
                    "sample {index} has label {label}, expected < {num_classes}"
                )
            }
            DatasetError::EmptyGeometry => {
                write!(f, "width, height and num_classes must be nonzero")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds a dataset, validating every sample against the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] if the geometry is empty, any sample has
    /// the wrong pixel count, or any label is out of range.
    pub fn from_samples(
        width: usize,
        height: usize,
        num_classes: usize,
        samples: Vec<Sample>,
    ) -> Result<Self, DatasetError> {
        if width == 0 || height == 0 || num_classes == 0 {
            return Err(DatasetError::EmptyGeometry);
        }
        let expected = width * height;
        for (index, s) in samples.iter().enumerate() {
            if s.pixels.len() != expected {
                return Err(DatasetError::WrongPixelCount {
                    index,
                    expected,
                    got: s.pixels.len(),
                });
            }
            if s.label >= num_classes {
                return Err(DatasetError::LabelOutOfRange {
                    index,
                    label: s.label,
                    num_classes,
                });
            }
        }
        Ok(Dataset {
            width,
            height,
            num_classes,
            samples,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Flattened input dimensionality (`width * height`).
    pub fn input_dim(&self) -> usize {
        self.width * self.height
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples, in order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Returns a new dataset with each sample's pixel buffer transformed
    /// in place by `f` (called with the sample index). The closure
    /// receives a fixed-size `&mut [u8]`, so it can corrupt luminances
    /// but cannot change the pixel count, label, or geometry — the
    /// result is valid by construction and no re-validation is needed.
    pub fn map_pixels(&self, mut f: impl FnMut(usize, &mut [u8])) -> Dataset {
        let mut samples = self.samples.clone();
        for (index, sample) in samples.iter_mut().enumerate() {
            f(index, &mut sample.pixels);
        }
        Dataset {
            width: self.width,
            height: self.height,
            num_classes: self.num_classes,
            samples,
        }
    }

    /// Returns the first `n` samples as a new dataset (all of them if
    /// `n >= len`), used to scale experiments down for fast tests.
    pub fn take(&self, n: usize) -> Dataset {
        Dataset {
            width: self.width,
            height: self.height,
            num_classes: self.num_classes,
            samples: self.samples[..n.min(self.samples.len())].to_vec(),
        }
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for s in &self.samples {
            counts[s.label] += 1;
        }
        counts
    }

    /// Mean luminance over every pixel of every sample, in `[0, 1]` —
    /// a quick sanity statistic for generator tests.
    pub fn mean_luminance(&self) -> f64 {
        let mut sum = 0.0f64;
        let mut n = 0u64;
        for s in &self.samples {
            for &p in &s.pixels {
                sum += f64::from(p);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64 / 255.0
        }
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// Generator difficulty knobs shared by all three synthetic workloads.
///
/// The defaults produce a task on which the paper's qualitative accuracy
/// structure (MLP > SNN+BP > SNN+STDP > SNNwot, plateaus vs #neurons)
/// reproduces; raising the jitters makes every model worse but preserves
/// the ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Difficulty {
    /// Maximum random translation, in pixels.
    pub max_shift: f64,
    /// Maximum random rotation, in radians.
    pub max_rotation: f64,
    /// Scale jitter: each sample is scaled by `1 ± scale_jitter`.
    pub scale_jitter: f64,
    /// Additive uniform pixel noise amplitude, in `[0, 1]` luminance units.
    pub noise: f64,
    /// Stroke thickness jitter fraction (digits/shapes only).
    pub thickness_jitter: f64,
}

impl Default for Difficulty {
    fn default() -> Self {
        Difficulty {
            max_shift: 1.5,
            max_rotation: 0.20,
            scale_jitter: 0.10,
            noise: 0.06,
            thickness_jitter: 0.25,
        }
    }
}

impl Difficulty {
    /// A no-jitter configuration (every sample of a class is identical);
    /// useful for unit tests that need perfectly separable data.
    pub fn none() -> Self {
        Difficulty {
            max_shift: 0.0,
            max_rotation: 0.0,
            scale_jitter: 0.0,
            noise: 0.0,
            thickness_jitter: 0.0,
        }
    }

    /// A harder configuration used by robustness experiments.
    pub fn hard() -> Self {
        Difficulty {
            max_shift: 2.5,
            max_rotation: 0.35,
            scale_jitter: 0.18,
            noise: 0.12,
            thickness_jitter: 0.4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_rejects_bad_pixel_count() {
        let err = Dataset::from_samples(
            2,
            2,
            2,
            vec![Sample {
                pixels: vec![0; 3],
                label: 0,
            }],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DatasetError::WrongPixelCount {
                expected: 4,
                got: 3,
                ..
            }
        ));
    }

    #[test]
    fn dataset_rejects_bad_label() {
        let err = Dataset::from_samples(
            1,
            1,
            2,
            vec![Sample {
                pixels: vec![0],
                label: 5,
            }],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DatasetError::LabelOutOfRange { label: 5, .. }
        ));
    }

    #[test]
    fn dataset_rejects_empty_geometry() {
        assert_eq!(
            Dataset::from_samples(0, 4, 2, vec![]).unwrap_err(),
            DatasetError::EmptyGeometry
        );
    }

    #[test]
    fn take_truncates_and_clamps() {
        let ds = Dataset::from_samples(
            1,
            1,
            1,
            (0..5)
                .map(|_| Sample {
                    pixels: vec![1],
                    label: 0,
                })
                .collect(),
        )
        .unwrap();
        assert_eq!(ds.take(3).len(), 3);
        assert_eq!(ds.take(100).len(), 5);
    }

    #[test]
    fn error_display_is_nonempty() {
        let e = DatasetError::EmptyGeometry;
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn map_pixels_preserves_geometry_and_labels() {
        let ds = Dataset::from_samples(
            2,
            2,
            3,
            vec![
                Sample {
                    pixels: vec![10; 4],
                    label: 2,
                },
                Sample {
                    pixels: vec![20; 4],
                    label: 1,
                },
            ],
        )
        .unwrap();
        let mapped = ds.map_pixels(|index, pixels| {
            for p in pixels.iter_mut() {
                *p = p.saturating_add(u8::try_from(index).unwrap_or(u8::MAX));
            }
        });
        assert_eq!(mapped.width(), 2);
        assert_eq!(mapped.height(), 2);
        assert_eq!(mapped.num_classes(), 3);
        assert_eq!(mapped.samples()[0].pixels, vec![10; 4]);
        assert_eq!(mapped.samples()[1].pixels, vec![21; 4]);
        assert_eq!(mapped.samples()[0].label, 2);
        assert_eq!(mapped.samples()[1].label, 1);
        // Source is untouched.
        assert_eq!(ds.samples()[1].pixels, vec![20; 4]);
    }
}
