//! Randomized invariant tests for the synthetic workload generators.
//!
//! Formerly proptest-based; converted to a deterministic std-only harness
//! (seeded [`SplitMix64`] case generation) so the workspace builds and
//! tests fully offline.

use nc_dataset::{digits, shapes, spoken, Dataset, Difficulty, Sample};
use nc_substrate::rng::SplitMix64;

fn random_difficulty(rng: &mut SplitMix64) -> Difficulty {
    Difficulty {
        max_shift: rng.next_range(0.0, 3.0),
        max_rotation: rng.next_range(0.0, 0.4),
        scale_jitter: rng.next_range(0.0, 0.2),
        noise: rng.next_range(0.0, 0.15),
        thickness_jitter: rng.next_range(0.0, 0.5),
    }
}

#[test]
fn digit_generation_is_structurally_valid() {
    let mut rng = SplitMix64::new(0xDA1);
    for case in 0..24 {
        let n = rng.next_below(40) as usize;
        let seed = rng.next_u64();
        let difficulty = random_difficulty(&mut rng);
        let (train, test) = digits::DigitsSpec {
            train: n,
            test: n / 2,
            seed,
            difficulty,
        }
        .generate();
        assert_eq!(train.len(), n, "case {case}");
        assert_eq!(test.len(), n / 2, "case {case}");
        assert_eq!(train.input_dim(), 784, "case {case}");
        for s in train.iter().chain(test.iter()) {
            assert_eq!(s.pixels.len(), 784, "case {case}");
            assert!(s.label < 10, "case {case}");
        }
    }
}

#[test]
fn generation_is_a_pure_function_of_the_spec() {
    let mut rng = SplitMix64::new(0xDA2);
    for case in 0..12 {
        let spec = shapes::ShapesSpec {
            train: 12,
            test: 6,
            seed: rng.next_u64(),
            difficulty: random_difficulty(&mut rng),
        };
        assert_eq!(spec.generate(), spec.generate(), "case {case}");
    }
}

#[test]
fn spoken_patches_are_class_balanced() {
    let mut rng = SplitMix64::new(0xDA3);
    for case in 0..24 {
        let n10 = 1 + rng.next_below(5) as usize;
        let n = n10 * 10;
        let (train, _) = spoken::SpokenSpec {
            train: n,
            test: 0,
            seed: rng.next_u64(),
            difficulty: Difficulty::default(),
        }
        .generate();
        assert_eq!(train.class_counts(), vec![n10; 10], "case {case}");
    }
}

#[test]
fn every_digit_class_renders_nonempty_under_any_difficulty() {
    let mut rng = SplitMix64::new(0xDA4);
    for case in 0..24 {
        let digit = rng.next_below(10) as usize;
        let seed = rng.next_u64();
        let difficulty = random_difficulty(&mut rng);
        let mut render_rng = SplitMix64::new(seed);
        let img = digits::render_digit(digit, &mut render_rng, difficulty);
        let ink: usize = img.pixels().iter().filter(|&&p| p > 64).count();
        assert!(ink > 5, "case {case}: digit {digit} rendered almost empty");
    }
}

#[test]
fn take_is_a_prefix() {
    let mut rng = SplitMix64::new(0xDA5);
    for case in 0..24 {
        let n = rng.next_below(30) as usize;
        let k = rng.next_below(40) as usize;
        let samples: Vec<Sample> = (0..n)
            .map(|i| Sample {
                pixels: vec![i as u8],
                label: 0,
            })
            .collect();
        let ds = Dataset::from_samples(1, 1, 1, samples.clone()).unwrap();
        let taken = ds.take(k);
        assert_eq!(taken.len(), n.min(k), "case {case}");
        assert_eq!(taken.samples(), &samples[..n.min(k)], "case {case}");
    }
}

#[test]
fn mean_luminance_is_a_valid_fraction() {
    let mut rng = SplitMix64::new(0xDA6);
    for case in 0..12 {
        let (train, _) = shapes::ShapesSpec {
            train: 10,
            test: 0,
            seed: rng.next_u64(),
            difficulty: Difficulty::default(),
        }
        .generate();
        let lum = train.mean_luminance();
        assert!((0.0..=1.0).contains(&lum), "case {case}: {lum}");
    }
}
