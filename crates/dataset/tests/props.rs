//! Property-based tests for the synthetic workload generators.

use nc_dataset::{digits, shapes, spoken, Dataset, Difficulty, Sample};
use proptest::prelude::*;

fn arb_difficulty() -> impl Strategy<Value = Difficulty> {
    (
        0.0f64..3.0,
        0.0f64..0.4,
        0.0f64..0.2,
        0.0f64..0.15,
        0.0f64..0.5,
    )
        .prop_map(|(max_shift, max_rotation, scale_jitter, noise, thickness_jitter)| {
            Difficulty {
                max_shift,
                max_rotation,
                scale_jitter,
                noise,
                thickness_jitter,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn digit_generation_is_structurally_valid(
        n in 0usize..40,
        seed in any::<u64>(),
        difficulty in arb_difficulty(),
    ) {
        let (train, test) = digits::DigitsSpec { train: n, test: n / 2, seed, difficulty }.generate();
        prop_assert_eq!(train.len(), n);
        prop_assert_eq!(test.len(), n / 2);
        prop_assert_eq!(train.input_dim(), 784);
        for s in train.iter().chain(test.iter()) {
            prop_assert_eq!(s.pixels.len(), 784);
            prop_assert!(s.label < 10);
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_spec(
        seed in any::<u64>(),
        difficulty in arb_difficulty(),
    ) {
        let spec = shapes::ShapesSpec { train: 12, test: 6, seed, difficulty };
        prop_assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn spoken_patches_are_class_balanced(n10 in 1usize..6, seed in any::<u64>()) {
        let n = n10 * 10;
        let (train, _) = spoken::SpokenSpec {
            train: n, test: 0, seed, difficulty: Difficulty::default(),
        }.generate();
        prop_assert_eq!(train.class_counts(), vec![n10; 10]);
    }

    #[test]
    fn every_digit_class_renders_nonempty_under_any_difficulty(
        digit in 0usize..10,
        seed in any::<u64>(),
        difficulty in arb_difficulty(),
    ) {
        let mut rng = nc_substrate::rng::SplitMix64::new(seed);
        let img = digits::render_digit(digit, &mut rng, difficulty);
        let ink: usize = img.pixels().iter().filter(|&&p| p > 64).count();
        prop_assert!(ink > 5, "digit {digit} rendered almost empty");
    }

    #[test]
    fn take_is_a_prefix(n in 0usize..30, k in 0usize..40) {
        let samples: Vec<Sample> = (0..n)
            .map(|i| Sample { pixels: vec![i as u8], label: 0 })
            .collect();
        let ds = Dataset::from_samples(1, 1, 1, samples.clone()).unwrap();
        let taken = ds.take(k);
        prop_assert_eq!(taken.len(), n.min(k));
        prop_assert_eq!(taken.samples(), &samples[..n.min(k)]);
    }

    #[test]
    fn mean_luminance_is_a_valid_fraction(seed in any::<u64>()) {
        let (train, _) = shapes::ShapesSpec {
            train: 10, test: 0, seed, difficulty: Difficulty::default(),
        }.generate();
        let lum = train.mean_luminance();
        prop_assert!((0.0..=1.0).contains(&lum));
    }
}
