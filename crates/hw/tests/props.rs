//! Property-based tests for the hardware cost model and datapath
//! simulators: structural invariants that must hold for *any* network
//! geometry, not just the paper's.

use nc_hw::expanded::{ExpandedMlp, ExpandedSnn, SnnVariant};
use nc_hw::folded::{FoldedMlp, FoldedSnnWot, FoldedSnnWt};
use nc_hw::sim::{FoldedMlpSim, WotDatapathSim};
use nc_hw::sram::BankConfig;
use nc_mlp::{Activation, Mlp, QuantizedMlp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reports_are_internally_consistent(
        inputs in 1usize..1000,
        neurons in 1usize..400,
        ni in 1usize..32,
    ) {
        for report in [
            FoldedSnnWot::new(inputs, neurons, ni).report(),
            FoldedSnnWt::new(inputs, neurons, ni).report(),
            FoldedMlp::new(&[inputs, neurons, 10], ni).report(),
        ] {
            prop_assert!(report.total_area_mm2 > 0.0);
            prop_assert!((report.total_area_mm2
                - (report.logic_area_mm2 + report.sram_area_mm2)).abs() < 1e-9);
            prop_assert!(report.clock_ns > 0.0);
            prop_assert!(report.cycles_per_image > 0);
            prop_assert!(report.energy_per_image_j > 0.0);
            prop_assert!(report.power_w() > 0.0);
        }
    }

    #[test]
    fn more_lanes_is_bigger_but_faster(
        inputs in 32usize..1000,
        neurons in 10usize..300,
        ni in 1usize..8,
    ) {
        let small = FoldedSnnWot::new(inputs, neurons, ni).report();
        let big = FoldedSnnWot::new(inputs, neurons, ni * 2).report();
        prop_assert!(big.logic_area_mm2 > small.logic_area_mm2);
        prop_assert!(big.cycles_per_image <= small.cycles_per_image);
    }

    #[test]
    fn bank_capacity_covers_all_weights(
        neurons in 1usize..500,
        inputs in 1usize..2000,
        ni in 1usize..64,
    ) {
        let cfg = BankConfig::for_layer(neurons, inputs, ni);
        let capacity_bits = cfg.banks as u64 * cfg.depth as u64 * 128;
        let needed_bits = neurons as u64 * inputs as u64 * 8;
        prop_assert!(capacity_bits >= needed_bits,
            "banks {} x depth {} cannot hold {} weights", cfg.banks, cfg.depth,
            neurons * inputs);
    }

    #[test]
    fn folded_cycles_match_the_closed_forms(
        inputs in 1usize..2000,
        neurons in 1usize..100,
        ni in 1usize..64,
    ) {
        let wot = FoldedSnnWot::new(inputs, neurons, ni);
        prop_assert_eq!(wot.cycles_per_image(), inputs.div_ceil(ni) as u64 + 7);
        let wt = FoldedSnnWt::new(inputs, neurons, ni);
        prop_assert_eq!(wt.cycles_per_image(), (inputs.div_ceil(ni) as u64 + 7) * 500);
        let mlp = FoldedMlp::new(&[inputs, neurons, 10], ni);
        prop_assert_eq!(
            mlp.cycles_per_image(),
            inputs.div_ceil(ni) as u64 + 1 + neurons.div_ceil(ni) as u64 + 1
        );
    }

    #[test]
    fn expanded_inventory_counts_scale_with_topology(
        inputs in 2usize..500,
        hidden in 1usize..200,
        outputs in 1usize..20,
    ) {
        let mlp = ExpandedMlp::new(&[inputs, hidden, outputs]);
        let inv = mlp.inventory();
        prop_assert_eq!(inv[0].count, hidden);
        prop_assert_eq!(inv[1].count, outputs);
        prop_assert_eq!(inv[2].count, inputs * hidden + hidden * outputs + hidden + outputs);
    }

    #[test]
    fn expanded_snn_area_grows_monotonically(
        inputs in 2usize..500,
        neurons in 1usize..200,
    ) {
        let base = ExpandedSnn::new(SnnVariant::Wot, inputs, neurons).report();
        let wider = ExpandedSnn::new(SnnVariant::Wot, inputs + 1, neurons).report();
        let taller = ExpandedSnn::new(SnnVariant::Wot, inputs, neurons + 1).report();
        prop_assert!(wider.total_area_mm2 >= base.total_area_mm2);
        prop_assert!(taller.total_area_mm2 >= base.total_area_mm2);
    }

    #[test]
    fn folded_mlp_sim_is_ni_invariant(
        seed in any::<u64>(),
        pixels in proptest::collection::vec(any::<u8>(), 20),
        ni_a in 1usize..20,
        ni_b in 1usize..20,
    ) {
        // The chunking factor is a scheduling choice; it must never
        // change the functional result.
        let mlp = Mlp::new(&[20, 7, 4], Activation::sigmoid(), seed).unwrap();
        let q = QuantizedMlp::from_mlp(&mlp);
        let a = FoldedMlpSim::new(&q, ni_a).run(&pixels);
        let b = FoldedMlpSim::new(&q, ni_b).run(&pixels);
        prop_assert_eq!(a.winner, b.winner);
    }

    #[test]
    fn wot_sim_is_ni_invariant(
        weights in proptest::collection::vec(any::<u8>(), 30),
        pixels in proptest::collection::vec(any::<u8>(), 10),
        ni_a in 1usize..12,
        ni_b in 1usize..12,
    ) {
        let a = WotDatapathSim::new(&weights, 10, 3, ni_a).run(&pixels);
        let b = WotDatapathSim::new(&weights, 10, 3, ni_b).run(&pixels);
        prop_assert_eq!(a.winner, b.winner);
    }
}
