//! Randomized invariant tests for the hardware cost model and datapath
//! simulators: structural invariants that must hold for *any* network
//! geometry, not just the paper's.
//!
//! Formerly proptest-based; converted to a deterministic std-only harness
//! (seeded [`SplitMix64`] case generation) so the workspace builds and
//! tests fully offline.

use nc_hw::expanded::{ExpandedMlp, ExpandedSnn, SnnVariant};
use nc_hw::folded::{FoldedMlp, FoldedSnnWot, FoldedSnnWt};
use nc_hw::sim::{FoldedMlpSim, WotDatapathSim};
use nc_hw::sram::BankConfig;
use nc_mlp::{Activation, Mlp, QuantizedMlp};
use nc_substrate::rng::SplitMix64;

const CASES: u64 = 48;

fn random_bytes(rng: &mut SplitMix64, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.next_u64() as u8).collect()
}

#[test]
fn reports_are_internally_consistent() {
    let mut rng = SplitMix64::new(0x4101);
    for case in 0..CASES {
        let inputs = 1 + rng.next_below(999) as usize;
        let neurons = 1 + rng.next_below(399) as usize;
        let ni = 1 + rng.next_below(31) as usize;
        for report in [
            FoldedSnnWot::new(inputs, neurons, ni).report(),
            FoldedSnnWt::new(inputs, neurons, ni).report(),
            FoldedMlp::new(&[inputs, neurons, 10], ni).report(),
        ] {
            let ctx = format!("case {case}: inputs {inputs} neurons {neurons} ni {ni}");
            assert!(report.total_area_mm2 > 0.0, "{ctx}");
            assert!(
                (report.total_area_mm2 - (report.logic_area_mm2 + report.sram_area_mm2)).abs()
                    < 1e-9,
                "{ctx}"
            );
            assert!(report.clock_ns > 0.0, "{ctx}");
            assert!(report.cycles_per_image > 0, "{ctx}");
            assert!(report.energy_per_image_j > 0.0, "{ctx}");
            assert!(report.power_w() > 0.0, "{ctx}");
        }
    }
}

#[test]
fn more_lanes_is_bigger_but_faster() {
    let mut rng = SplitMix64::new(0x4102);
    for case in 0..CASES {
        let inputs = 32 + rng.next_below(968) as usize;
        let neurons = 10 + rng.next_below(290) as usize;
        let ni = 1 + rng.next_below(7) as usize;
        let small = FoldedSnnWot::new(inputs, neurons, ni).report();
        let big = FoldedSnnWot::new(inputs, neurons, ni * 2).report();
        assert!(big.logic_area_mm2 > small.logic_area_mm2, "case {case}");
        assert!(
            big.cycles_per_image <= small.cycles_per_image,
            "case {case}"
        );
    }
}

#[test]
fn bank_capacity_covers_all_weights() {
    let mut rng = SplitMix64::new(0x4103);
    for case in 0..CASES {
        let neurons = 1 + rng.next_below(499) as usize;
        let inputs = 1 + rng.next_below(1999) as usize;
        let ni = 1 + rng.next_below(63) as usize;
        let cfg = BankConfig::for_layer(neurons, inputs, ni);
        let capacity_bits = cfg.banks as u64 * cfg.depth as u64 * 128;
        let needed_bits = neurons as u64 * inputs as u64 * 8;
        assert!(
            capacity_bits >= needed_bits,
            "case {case}: banks {} x depth {} cannot hold {} weights",
            cfg.banks,
            cfg.depth,
            neurons * inputs
        );
    }
}

#[test]
fn folded_cycles_match_the_closed_forms() {
    let mut rng = SplitMix64::new(0x4104);
    for case in 0..CASES {
        let inputs = 1 + rng.next_below(1999) as usize;
        let neurons = 1 + rng.next_below(99) as usize;
        let ni = 1 + rng.next_below(63) as usize;
        let wot = FoldedSnnWot::new(inputs, neurons, ni);
        assert_eq!(
            wot.cycles_per_image(),
            inputs.div_ceil(ni) as u64 + 7,
            "case {case}"
        );
        let wt = FoldedSnnWt::new(inputs, neurons, ni);
        assert_eq!(
            wt.cycles_per_image(),
            (inputs.div_ceil(ni) as u64 + 7) * 500,
            "case {case}"
        );
        let mlp = FoldedMlp::new(&[inputs, neurons, 10], ni);
        assert_eq!(
            mlp.cycles_per_image(),
            inputs.div_ceil(ni) as u64 + 1 + neurons.div_ceil(ni) as u64 + 1,
            "case {case}"
        );
    }
}

#[test]
fn expanded_inventory_counts_scale_with_topology() {
    let mut rng = SplitMix64::new(0x4105);
    for case in 0..CASES {
        let inputs = 2 + rng.next_below(498) as usize;
        let hidden = 1 + rng.next_below(199) as usize;
        let outputs = 1 + rng.next_below(19) as usize;
        let mlp = ExpandedMlp::new(&[inputs, hidden, outputs]);
        let inv = mlp.inventory();
        assert_eq!(inv[0].count, hidden, "case {case}");
        assert_eq!(inv[1].count, outputs, "case {case}");
        assert_eq!(
            inv[2].count,
            inputs * hidden + hidden * outputs + hidden + outputs,
            "case {case}"
        );
    }
}

#[test]
fn expanded_snn_area_grows_monotonically() {
    let mut rng = SplitMix64::new(0x4106);
    for case in 0..CASES {
        let inputs = 2 + rng.next_below(498) as usize;
        let neurons = 1 + rng.next_below(199) as usize;
        let base = ExpandedSnn::new(SnnVariant::Wot, inputs, neurons).report();
        let wider = ExpandedSnn::new(SnnVariant::Wot, inputs + 1, neurons).report();
        let taller = ExpandedSnn::new(SnnVariant::Wot, inputs, neurons + 1).report();
        assert!(wider.total_area_mm2 >= base.total_area_mm2, "case {case}");
        assert!(taller.total_area_mm2 >= base.total_area_mm2, "case {case}");
    }
}

#[test]
fn folded_mlp_sim_is_ni_invariant() {
    // The chunking factor is a scheduling choice; it must never change
    // the functional result.
    let mut rng = SplitMix64::new(0x4107);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let pixels = random_bytes(&mut rng, 20);
        let ni_a = 1 + rng.next_below(19) as usize;
        let ni_b = 1 + rng.next_below(19) as usize;
        let mlp = Mlp::new(&[20, 7, 4], Activation::sigmoid(), seed).unwrap();
        let q = QuantizedMlp::from_mlp(&mlp);
        let a = FoldedMlpSim::new(&q, ni_a).run(&pixels);
        let b = FoldedMlpSim::new(&q, ni_b).run(&pixels);
        assert_eq!(a.winner, b.winner, "case {case}: ni {ni_a} vs {ni_b}");
    }
}

#[test]
fn wot_sim_is_ni_invariant() {
    let mut rng = SplitMix64::new(0x4108);
    for case in 0..CASES {
        let weights = random_bytes(&mut rng, 30);
        let pixels = random_bytes(&mut rng, 10);
        let ni_a = 1 + rng.next_below(11) as usize;
        let ni_b = 1 + rng.next_below(11) as usize;
        let a = WotDatapathSim::new(&weights, 10, 3, ni_a).run(&pixels);
        let b = WotDatapathSim::new(&weights, 10, 3, ni_b).run(&pixels);
        assert_eq!(a.winner, b.winner, "case {case}: ni {ni_a} vs {ni_b}");
    }
}
