//! Mesh acceptance tests: the partition / place / route pipeline must
//! reproduce the single-core reference event loop spike-for-spike on a
//! healthy fabric, for every coding scheme and grid size, must unlock
//! networks larger than one core can hold, and must degrade
//! deterministically under fabric faults.

use nc_faults::{FaultModel, FaultPlan};
use nc_hw::mesh::{
    partition_snn, place_greedy, place_linear, Fabric, Grid, MeshSnn, MAX_CLUSTER_NEURONS,
};
use nc_snn::{CodingScheme, SnnNetwork, SnnParams};

const ALL_CODINGS: [CodingScheme; 4] = [
    CodingScheme::PoissonRate,
    CodingScheme::GaussianRate,
    CodingScheme::RankOrder,
    CodingScheme::TimeToFirstSpike,
];

/// A small network with thresholds low enough that presentations fire
/// many times — the inhibition/undo machinery gets real exercise.
fn test_net(inputs: usize, neurons: usize, coding: CodingScheme, seed: u64) -> SnnNetwork {
    let mut params = SnnParams::for_neurons(neurons);
    params.initial_threshold = 600.0;
    SnnNetwork::with_coding(inputs, 10, params, coding, seed)
}

/// A deterministic non-uniform test image.
fn test_pixels(inputs: usize, salt: u64) -> Vec<u8> {
    (0..inputs)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(2654435761)
                .wrapping_add(salt.wrapping_mul(97));
            u8::try_from((x >> 3) & 0xFF).unwrap()
        })
        .collect()
}

#[test]
fn mesh_is_bit_exact_vs_reference_for_all_codings_and_grids() {
    for coding in ALL_CODINGS {
        let mut net = test_net(64, 30, coding, 7);
        for grid in [Grid::new(1, 1), Grid::new(2, 2), Grid::new(4, 4)] {
            let mut mesh = MeshSnn::compile(&net, grid);
            for pseed in [0u64, 1, 2, 0xABCD] {
                let pixels = test_pixels(64, pseed);
                let reference = net.present(&pixels, pseed);
                let routed = mesh.present(&pixels, pseed);
                assert_eq!(
                    routed.winner, reference.winner,
                    "{coding:?} {grid:?} p{pseed}"
                );
                assert_eq!(
                    routed.fires, reference.fires,
                    "{coding:?} {grid:?} p{pseed}"
                );
                // Potentials to the last bit: the distributed decay and
                // undo path must replay the reference arithmetic exactly.
                assert_eq!(
                    routed.potentials, reference.potentials,
                    "{coding:?} {grid:?} p{pseed}"
                );
                assert_eq!(
                    routed.readout,
                    reference.readout(),
                    "{coding:?} {grid:?} p{pseed}"
                );
            }
        }
    }
}

#[test]
fn mesh_presentations_do_fire_and_bill_the_fabric() {
    // Guard against the bit-exactness test passing vacuously on
    // silent no-spike presentations.
    let mut net = test_net(64, 30, CodingScheme::PoissonRate, 7);
    let mut mesh = MeshSnn::compile(&net, Grid::new(2, 2));
    let pixels = test_pixels(64, 1);
    let reference = net.present(&pixels, 1);
    assert!(!reference.fires.is_empty(), "test network never fired");
    let routed = mesh.present(&pixels, 1);
    assert!(routed.cost.packets > 0);
    assert_eq!(routed.cost.dropped_packets, 0);
    assert!(
        routed.cost.hops > 0,
        "multi-core spikes must traverse links"
    );
    assert!(routed.cost.sram_rows > 0 && routed.cost.neuron_updates > 0);
    assert!(routed.cost.energy_uj() > 0.0);
    assert!(
        routed.cost.delivery_ok(),
        "tiny net must meet the tick deadline"
    );
    assert!(mesh.area_mm2() > 0.0);
    assert_eq!(mesh.used_cores(), 4);
}

#[test]
fn mesh_unlocks_networks_beyond_one_core() {
    // 320 neurons exceed the 256-neuron core: impossible on a 1x1 grid,
    // bit-exact on a 4x4.
    let mut net = test_net(32, 320, CodingScheme::GaussianRate, 11);
    let mut mesh = MeshSnn::compile(&net, Grid::new(4, 4));
    assert!(mesh.partition().num_clusters() > 1);
    assert!(mesh
        .partition()
        .clusters()
        .iter()
        .all(|c| c.len() <= MAX_CLUSTER_NEURONS));
    let pixels = test_pixels(32, 5);
    let reference = net.present(&pixels, 3);
    let routed = mesh.present(&pixels, 3);
    assert_eq!(routed.winner, reference.winner);
    assert_eq!(routed.fires, reference.fires);
    assert_eq!(routed.potentials, reference.potentials);
}

#[test]
#[should_panic(expected = "cannot fit")]
fn oversized_networks_are_rejected_on_one_core() {
    let net = test_net(8, 320, CodingScheme::PoissonRate, 11);
    let _ = MeshSnn::compile(&net, Grid::new(1, 1));
}

#[test]
fn routed_trace_is_placement_invariant() {
    let net = test_net(64, 24, CodingScheme::PoissonRate, 9);
    let grid = Grid::new(2, 2);
    let partition = partition_snn(&net, grid.cores());
    let greedy = place_greedy(&partition, grid);
    let linear = place_linear(&partition, grid);
    let mut mesh_a = MeshSnn::compiled(&net, partition.clone(), greedy, Fabric::healthy(grid));
    let mut mesh_b = MeshSnn::compiled(&net, partition, linear, Fabric::healthy(grid));
    let pixels = test_pixels(64, 2);
    let (pa, trace_a) = mesh_a.present_traced(&pixels, 4);
    let (pb, trace_b) = mesh_b.present_traced(&pixels, 4);
    assert!(!trace_a.is_empty());
    assert!(trace_a.contains("F "), "trace should contain output spikes");
    // The logical spike schedule is a property of the partition, not of
    // where its clusters physically sit.
    assert_eq!(trace_a, trace_b);
    assert_eq!(pa.winner, pb.winner);
    assert_eq!(pa.fires, pb.fires);
    assert_eq!(pa.potentials, pb.potentials);
}

#[test]
fn zero_rate_fabric_plans_are_healthy() {
    let mut net = test_net(64, 30, CodingScheme::PoissonRate, 7);
    let plan = FaultPlan::new(FaultModel::DeadLink, 0.0, 5).unwrap_or_else(|_| unreachable!());
    let mut mesh = MeshSnn::compile_faulty(&net, Grid::new(2, 2), &plan);
    let pixels = test_pixels(64, 3);
    let reference = net.present(&pixels, 6);
    let routed = mesh.present(&pixels, 6);
    assert_eq!(routed.fires, reference.fires);
    assert_eq!(routed.potentials, reference.potentials);
    assert_eq!(routed.cost.dropped_packets, 0);
}

#[test]
fn fabric_faults_degrade_deterministically() {
    let net = test_net(64, 30, CodingScheme::PoissonRate, 7);
    let pixels = test_pixels(64, 8);
    for model in [FaultModel::DeadLink, FaultModel::DeadRouter] {
        let plan = FaultPlan::new(model, 0.4, 21).unwrap_or_else(|_| unreachable!());
        let mut a = MeshSnn::compile_faulty(&net, Grid::new(4, 4), &plan);
        let mut b = MeshSnn::compile_faulty(&net, Grid::new(4, 4), &plan);
        let pa = a.present(&pixels, 2);
        let pb = b.present(&pixels, 2);
        assert_eq!(pa, pb, "{model:?} not deterministic");
        assert!(
            pa.cost.dropped_packets > 0,
            "{model:?} at 40% should drop packets on a 4x4 grid"
        );
    }
}

#[test]
fn saturated_dead_links_isolate_the_ingress_core() {
    // With every link dead only the injector core (which hosts the
    // grid-center cluster on a 2x2: core 0) still hears the input.
    let net = test_net(64, 30, CodingScheme::PoissonRate, 7);
    let plan = FaultPlan::new(FaultModel::DeadLink, 1.0, 2).unwrap_or_else(|_| unreachable!());
    let mut mesh = MeshSnn::compile_faulty(&net, Grid::new(2, 2), &plan);
    let pixels = test_pixels(64, 4);
    let p = mesh.present(&pixels, 9);
    assert!(p.cost.dropped_packets > 0);
    assert_eq!(p.cost.hops, 0, "all first hops are dead");
    // Only neurons hosted on core 0 can ever fire.
    let locals: &[usize] = {
        let cluster = (0..mesh.partition().num_clusters())
            .find(|&c| mesh.placement().core_of(c) == 0)
            .unwrap_or(0);
        &mesh.partition().clusters()[cluster]
    };
    for &(_, j) in &p.fires {
        assert!(locals.contains(&j), "neuron {j} fired without input");
    }
}
