//! The GPU reference model (paper §4.3.3, Table 8).
//!
//! The paper runs CUBLAS (`sgemv`) implementations of the two most
//! efficient accelerator workloads on an NVIDIA K20M and reports the
//! accelerators' speedups and energy benefits. It attributes the large
//! gaps to "the time to fetch data from global memory to the
//! computational operators, the lack of reuse for the target operations,
//! and the small size of the data structures (100 to 300 neurons, 784
//! inputs)".
//!
//! We model exactly those effects: a fixed host/driver overhead per
//! inference (input transfer + synchronization), a per-kernel-launch
//! cost, and a memory-bound `sgemv` term (the weight matrix is streamed
//! from global memory with no reuse at batch size 1). The two free
//! constants are calibrated so the paper's Table 8 reference points are
//! reproduced (MLP ≈ 82 µs, SNN ≈ 58 µs per image — back-solved from the
//! published speedups and the accelerator times); the bandwidth and
//! board-power figures are the K20M datasheet values.

/// An analytical model of single-image NN inference on a 2013-class GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Fixed per-inference overhead (host→device input copy, final
    /// device→host result copy, stream synchronization), µs.
    pub fixed_overhead_us: f64,
    /// Per-kernel launch latency, µs.
    pub launch_us: f64,
    /// Global-memory bandwidth, GB/s (K20M: 208 GB/s).
    pub bandwidth_gb_s: f64,
    /// Effective dynamic power during these tiny kernels, W. The K20M
    /// board TDP is 225 W; small un-batched sgemv kernels draw far less —
    /// 60 W reproduces the paper's energy-benefit column.
    pub power_w: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            fixed_overhead_us: 30.0,
            launch_us: 25.0,
            bandwidth_gb_s: 208.0,
            power_w: 60.0,
        }
    }
}

/// A GPU workload: the layer shapes executed as one `sgemv` per layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GpuWorkload {
    /// `(rows, cols)` of each `sgemv` (one per layer).
    pub layers: Vec<(usize, usize)>,
}

impl GpuWorkload {
    /// The MLP workload (two layers: 784×100 and 100×10).
    pub fn mlp(sizes: &[usize]) -> Self {
        GpuWorkload {
            layers: sizes.windows(2).map(|w| (w[1], w[0])).collect(),
        }
    }

    /// The SNN workload (one layer plus the argmax fused in).
    pub fn snn(inputs: usize, neurons: usize) -> Self {
        GpuWorkload {
            layers: vec![(neurons, inputs)],
        }
    }

    /// Total weight bytes streamed (fp32, no reuse at batch 1).
    pub fn bytes(&self) -> usize {
        self.layers.iter().map(|&(r, c)| r * c * 4).sum()
    }
}

impl GpuModel {
    /// Time to run one inference, µs.
    pub fn time_per_image_us(&self, w: &GpuWorkload) -> f64 {
        let mem_us = w.bytes() as f64 / (self.bandwidth_gb_s * 1e9) * 1e6;
        self.fixed_overhead_us + self.launch_us * w.layers.len() as f64 + mem_us
    }

    /// Energy per inference, joules.
    pub fn energy_per_image_j(&self, w: &GpuWorkload) -> f64 {
        self.time_per_image_us(w) * 1e-6 * self.power_w
    }

    /// Speedup of an accelerator taking `accel_time_ns` per image.
    pub fn speedup_over(&self, w: &GpuWorkload, accel_time_ns: f64) -> f64 {
        self.time_per_image_us(w) * 1000.0 / accel_time_ns
    }

    /// Energy benefit of an accelerator spending `accel_energy_j` per
    /// image.
    pub fn energy_benefit_over(&self, w: &GpuWorkload, accel_energy_j: f64) -> f64 {
        self.energy_per_image_j(w) / accel_energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expanded::{ExpandedMlp, ExpandedSnn, SnnVariant};
    use crate::folded::{FoldedMlp, FoldedSnnWot};

    #[test]
    fn calibration_reproduces_back_solved_gpu_times() {
        let gpu = GpuModel::default();
        let mlp = gpu.time_per_image_us(&GpuWorkload::mlp(&[784, 100, 10]));
        let snn = gpu.time_per_image_us(&GpuWorkload::snn(784, 300));
        // Back-solved from Table 8: ≈ 82 µs (MLP) and ≈ 58 µs (SNN).
        assert!((mlp - 82.0).abs() < 4.0, "mlp {mlp}");
        assert!((snn - 58.0).abs() < 4.0, "snn {snn}");
    }

    #[test]
    fn mlp_speedups_match_table_8_shape() {
        let gpu = GpuModel::default();
        let w = GpuWorkload::mlp(&[784, 100, 10]);
        // ni = 1: paper 40.44; ni = 16: paper 626; expanded: 5409.
        let s1 = gpu.speedup_over(
            &w,
            FoldedMlp::new(&[784, 100, 10], 1)
                .report()
                .time_per_image_ns(),
        );
        let s16 = gpu.speedup_over(
            &w,
            FoldedMlp::new(&[784, 100, 10], 16)
                .report()
                .time_per_image_ns(),
        );
        let se = gpu.speedup_over(
            &w,
            ExpandedMlp::new(&[784, 100, 10])
                .report()
                .time_per_image_ns(),
        );
        assert!(s1 > 30.0 && s1 < 55.0, "{s1}");
        assert!(s16 > 480.0 && s16 < 800.0, "{s16}");
        assert!(se > 4000.0 && se < 7000.0, "{se}");
    }

    #[test]
    fn snnwot_speedups_match_table_8_shape() {
        let gpu = GpuModel::default();
        let w = GpuWorkload::snn(784, 300);
        // ni = 1: paper 59.10; ni = 16: 543; expanded: 6086.
        let s1 = gpu.speedup_over(
            &w,
            FoldedSnnWot::new(784, 300, 1).report().time_per_image_ns(),
        );
        let s16 = gpu.speedup_over(
            &w,
            FoldedSnnWot::new(784, 300, 16).report().time_per_image_ns(),
        );
        let se = gpu.speedup_over(
            &w,
            ExpandedSnn::new(SnnVariant::Wot, 784, 300)
                .report()
                .time_per_image_ns(),
        );
        assert!(s1 > 45.0 && s1 < 75.0, "{s1}");
        assert!(s16 > 420.0 && s16 < 700.0, "{s16}");
        assert!(se > 4500.0 && se < 7500.0, "{se}");
    }

    #[test]
    fn snnwt_barely_beats_the_gpu_when_folded() {
        // Table 8: SNNwt speedups are 0.12 (ni=1), 1.14 (ni=16), 44.6
        // (expanded) — the 500-cycle emulation eats the advantage.
        let gpu = GpuModel::default();
        let w = GpuWorkload::snn(784, 300);
        let wt1 = crate::folded::FoldedSnnWt::new(784, 300, 1).report();
        let s1 = gpu.speedup_over(&w, wt1.time_per_image_ns());
        assert!(s1 < 0.2, "{s1}");
        let wt16 = crate::folded::FoldedSnnWt::new(784, 300, 16).report();
        let s16 = gpu.speedup_over(&w, wt16.time_per_image_ns());
        assert!(s16 > 0.8 && s16 < 1.6, "{s16}");
    }

    #[test]
    fn energy_benefits_are_orders_of_magnitude() {
        // Table 8: MLP energy benefits 12,743–79,151; SNNwot 2,800–31,542.
        let gpu = GpuModel::default();
        let w = GpuWorkload::mlp(&[784, 100, 10]);
        let b1 = gpu.energy_benefit_over(
            &w,
            FoldedMlp::new(&[784, 100, 10], 1)
                .report()
                .energy_per_image_j,
        );
        assert!(b1 > 8_000.0 && b1 < 20_000.0, "{b1}");
        let wsnn = GpuWorkload::snn(784, 300);
        let bs = gpu.energy_benefit_over(
            &wsnn,
            FoldedSnnWot::new(784, 300, 1).report().energy_per_image_j,
        );
        assert!(bs > 2_000.0 && bs < 5_000.0, "{bs}");
    }

    #[test]
    fn bytes_counts_all_layers() {
        let w = GpuWorkload::mlp(&[784, 100, 10]);
        assert_eq!(w.bytes(), (784 * 100 + 100 * 10) * 4);
    }
}
