//! The SNN accelerator with online STDP learning (paper §4.4, Figure 12,
//! Table 9).
//!
//! "The neuron-level STDP circuit manages several information through a
//! simple finite-state machine … it records the time elapsed since the
//! last output spike … manages a refractory counter and an inhibitory
//! counter … In order to implement LTP and LTD, a neuron also keeps an
//! internal counter which is reset every time it fires." Homeostasis
//! adds one per-neuron firing counter plus a single shared epoch counter.
//!
//! The paper's punchline: the online-learning core's total area is only
//! 1.34x (ni = 16) to 1.93x (ni = 1) that of the inference-only SNNwt,
//! the cycle time rises no more than 7%, and energy 1.02x-1.50x — "the
//! hardware overhead of implementing STDP is quite small".

use crate::folded::FoldedSnnWt;
use crate::report::HwReport;
use crate::sram::BankConfig;
use crate::tech::{
    clock_period_ns, datapath_energy_per_cycle_pj, max_tree, DesignKind, GAUSSIAN_RNG_AREA,
};

/// Per-neuron STDP/homeostasis circuit area, µm², base part: the
/// refractory, inhibition, time-since-fire and homeostasis counters,
/// their comparators, the threshold register, and the piecewise-linear
/// leak unit (Figure 13). Calibrated residual of Table 9's ni = 1 point
/// over the SNNwt neuron.
const STDP_NEURON_BASE: f64 = 6_316.0;

/// Per-lane STDP area, µm²: the per-lane LTP window check and the ±1
/// weight increment/decrement adder with write-back mux (calibrated
/// slope of Table 9).
const STDP_LANE_AREA: f64 = 584.0;

/// An SNNwt core extended with online STDP + homeostasis learning.
///
/// # Examples
///
/// ```
/// use nc_hw::online::OnlineSnn;
///
/// let core = OnlineSnn::new(784, 300, 16);
/// let with_learning = core.report();
/// let inference_only = core.inference_core().report();
/// let ratio = with_learning.total_area_mm2 / inference_only.total_area_mm2;
/// assert!(ratio > 1.1 && ratio < 2.2, "area overhead {ratio}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineSnn {
    inputs: usize,
    neurons: usize,
    ni: usize,
}

impl OnlineSnn {
    /// Creates the design.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(inputs: usize, neurons: usize, ni: usize) -> Self {
        assert!(inputs > 0 && neurons > 0 && ni > 0, "empty design");
        OnlineSnn {
            inputs,
            neurons,
            ni,
        }
    }

    /// The matching inference-only SNNwt core (the Table 7 baseline the
    /// Table 9 overheads are quoted against).
    pub fn inference_core(&self) -> FoldedSnnWt {
        FoldedSnnWt::new(self.inputs, self.neurons, self.ni)
    }

    /// Per-neuron area including the STDP circuitry, µm².
    pub fn neuron_area_um2(&self) -> f64 {
        self.inference_core().neuron_area_um2() + STDP_NEURON_BASE + STDP_LANE_AREA * self.ni as f64
    }

    /// SRAM configuration (same banks; STDP writes back through the same
    /// ports during the LTP/LTD phase).
    pub fn sram(&self) -> BankConfig {
        BankConfig::for_layer(self.neurons, self.inputs, self.ni)
    }

    /// Cycles per image presentation (identical to the inference core:
    /// learning happens in the shadow of the 1 ms emulation steps).
    pub fn cycles_per_image(&self) -> u64 {
        self.inference_core().cycles_per_image()
    }

    /// The full report (Table 9).
    pub fn report(&self) -> HwReport {
        let logic = (self.neuron_area_um2() * self.neurons as f64
            + max_tree(self.neurons).1
            + GAUSSIAN_RNG_AREA * self.ni as f64)
            / 1e6;
        let sram_cfg = self.sram();
        let cycles = self.cycles_per_image();
        let per_cycle_pj = sram_cfg.read_all_pj()
            + datapath_energy_per_cycle_pj(DesignKind::SnnOnline, self.ni, self.neurons);
        HwReport {
            logic_area_mm2: logic,
            sram_area_mm2: sram_cfg.area_mm2(),
            total_area_mm2: logic + sram_cfg.area_mm2(),
            clock_ns: clock_period_ns(DesignKind::SnnOnline, self.ni),
            cycles_per_image: cycles,
            energy_per_image_j: cycles as f64 * per_cycle_pj * 1e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 9 anchors: (ni, logic mm², total mm², delay ns, energy mJ).
    const T9: [(usize, f64, f64, f64, f64); 4] = [
        (1, 2.55, 4.92, 1.23, 0.71),
        (4, 3.33, 7.10, 1.48, 0.37),
        (8, 4.26, 10.70, 1.81, 0.32),
        (16, 6.44, 19.06, 1.88, 0.33),
    ];

    #[test]
    fn tracks_table_9() {
        for (ni, logic, total, delay, energy_mj) in T9 {
            let r = OnlineSnn::new(784, 300, ni).report();
            assert!(
                (r.logic_area_mm2 - logic).abs() / logic < 0.15,
                "ni={ni} logic {} vs {logic}",
                r.logic_area_mm2
            );
            assert!(
                (r.total_area_mm2 - total).abs() / total < 0.15,
                "ni={ni} total {} vs {total}",
                r.total_area_mm2
            );
            assert!((r.clock_ns - delay).abs() < 0.02, "ni={ni} delay");
            let got_mj = r.energy_per_image_j * 1e3;
            assert!(
                (got_mj - energy_mj).abs() / energy_mj < 0.15,
                "ni={ni} energy {got_mj} vs {energy_mj}"
            );
        }
    }

    #[test]
    fn stdp_overhead_matches_paper_claims() {
        // §4.4.1: total area 1.34x (ni=16) to 1.93x (ni=1); cycle time
        // +≤7%; energy 1.02x to 1.50x.
        for (ni, lo_a, hi_a, lo_e, hi_e) in
            [(1, 1.7, 2.2, 1.25, 1.75), (16, 1.15, 1.55, 0.95, 1.25)]
        {
            let on = OnlineSnn::new(784, 300, ni).report();
            let off = FoldedSnnWt::new(784, 300, ni).report();
            let area_ratio = on.total_area_mm2 / off.total_area_mm2;
            let energy_ratio = on.energy_per_image_j / off.energy_per_image_j;
            let delay_ratio = on.clock_ns / off.clock_ns;
            assert!(
                area_ratio > lo_a && area_ratio < hi_a,
                "ni={ni} area ratio {area_ratio}"
            );
            assert!(
                energy_ratio > lo_e && energy_ratio < hi_e,
                "ni={ni} energy ratio {energy_ratio}"
            );
            assert!(delay_ratio < 1.08, "ni={ni} delay ratio {delay_ratio}");
        }
    }

    #[test]
    fn learning_does_not_change_cycle_count() {
        let on = OnlineSnn::new(784, 300, 4);
        assert_eq!(
            on.cycles_per_image(),
            on.inference_core().cycles_per_image()
        );
    }

    #[test]
    #[should_panic(expected = "empty design")]
    fn zero_inputs_rejected() {
        let _ = OnlineSnn::new(0, 300, 1);
    }
}
