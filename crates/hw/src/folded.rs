//! Spatially folded designs (paper §4.3, Table 7).
//!
//! Folding time-shares hardware: each hardware neuron accepts only `ni`
//! inputs per cycle and accumulates partial sums chunk by chunk, with
//! weights streamed from SRAM banks (Figures 10/11). The paper keeps one
//! hardware neuron per logical neuron and folds the *inputs* only, which
//! is the convention here too.
//!
//! The per-neuron datapath areas below decompose the Table 7
//! "Area (no SRAM)" columns into structural terms (multipliers/adders per
//! lane, sigmoid/accumulator/register overheads); the residual constants
//! are calibrated so the four published `ni` points are reproduced within
//! ~12% (asserted by the tests).

use crate::report::HwReport;
use crate::sram::BankConfig;
use crate::tech::{
    adder_tree_area, clock_period_ns, datapath_energy_per_cycle_pj, max_tree, DesignKind,
    GAUSSIAN_RNG_AREA, MLP_TREE_ADDER_AREA, MULT8_AREA, REG8_AREA, SIGMOID_UNIT_AREA,
};

/// A folded MLP accelerator (Table 7's `MLP (28x28-100-10)` block).
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedMlp {
    sizes: Vec<usize>,
    ni: usize,
}

impl FoldedMlp {
    /// Creates the design for a topology (input width first) with `ni`
    /// inputs per hardware neuron per cycle.
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer than two layers, any layer is
    /// zero-width, or `ni == 0`.
    pub fn new(sizes: &[usize], ni: usize) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        assert!(sizes.iter().all(|&s| s > 0), "zero-width layer");
        assert!(ni > 0, "ni must be positive");
        FoldedMlp {
            sizes: sizes.to_vec(),
            ni,
        }
    }

    /// Inputs per neuron per cycle.
    pub fn ni(&self) -> usize {
        self.ni
    }

    /// Total hardware neurons (one per logical neuron).
    pub fn num_neurons(&self) -> usize {
        self.sizes[1..].iter().sum()
    }

    /// Area of one folded MLP neuron in µm² (Figure 11): `ni`
    /// multipliers, an `ni`-input adder tree, the accumulation adder,
    /// the sigmoid interpolation unit, and the input/weight/output
    /// registers.
    pub fn neuron_area_um2(&self) -> f64 {
        let ni = self.ni as f64;
        MULT8_AREA * ni
            + adder_tree_area(self.ni, MLP_TREE_ADDER_AREA)
            + MLP_TREE_ADDER_AREA // accumulation adder
            + SIGMOID_UNIT_AREA
            + REG8_AREA * (2.0 * ni + 4.0) // input + weight buffers, acc, out
    }

    /// SRAM configuration, one group of banks per layer.
    pub fn sram(&self) -> Vec<BankConfig> {
        self.sizes
            .windows(2)
            .map(|w| BankConfig::for_layer(w[1], w[0], self.ni))
            .collect()
    }

    /// Cycles per image: `Σ ceil(fan_in/ni)` plus one activation cycle
    /// per layer (paper: 223/113/57 cycles at ni = 4/8/16; our formula
    /// gives 223/113/58 — the ≤4-cycle discrepancy at the extremes is
    /// documented in `EXPERIMENTS.md`).
    pub fn cycles_per_image(&self) -> u64 {
        self.sizes
            .windows(2)
            .map(|w| w[0].div_ceil(self.ni) as u64 + 1)
            .sum()
    }

    /// The full report.
    pub fn report(&self) -> HwReport {
        let logic = self.neuron_area_um2() * self.num_neurons() as f64 / 1e6;
        let sram_cfgs = self.sram();
        let sram: f64 = sram_cfgs.iter().map(BankConfig::area_mm2).sum();
        let sram_pj_per_cycle: f64 = sram_cfgs.iter().map(BankConfig::read_all_pj).sum();
        let datapath_pj =
            datapath_energy_per_cycle_pj(DesignKind::Mlp, self.ni, self.num_neurons());
        let cycles = self.cycles_per_image();
        HwReport {
            logic_area_mm2: logic,
            sram_area_mm2: sram,
            total_area_mm2: logic + sram,
            clock_ns: clock_period_ns(DesignKind::Mlp, self.ni),
            cycles_per_image: cycles,
            energy_per_image_j: cycles as f64 * (sram_pj_per_cycle + datapath_pj) * 1e-12,
        }
    }
}

/// A folded SNNwot accelerator (Table 7's `SNNwot` block).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldedSnnWot {
    inputs: usize,
    neurons: usize,
    ni: usize,
}

/// Pipeline latency of the SNNwot datapath beyond the input streaming:
/// spike-count conversion, Wallace-tree accumulation and the two-level
/// max readout (Table 7: cycles = ⌈784/ni⌉ + 7 reproduces 791/203/105/56
/// exactly).
pub const SNNWOT_PIPELINE_LATENCY: u64 = 7;

/// Residual per-neuron control/readout area of the folded SNNwot neuron,
/// µm² (calibrated from Table 7's ni = 1 point; includes the max-tree
/// share, the accumulator and the converter ladder share). Public within
/// the crate so the ablations split lane/base area consistently.
pub(crate) const SNNWOT_NEURON_BASE: f64 = 2_700.0;

/// Per-lane area of the SNNwot neuron: 4 shift/add stages on the 12-bit
/// product path plus lane registers, µm² (calibrated slope of Table 7).
const SNNWOT_LANE_AREA: f64 = 4.0 * 113.7 + 2.0 * REG8_AREA + 110.0;

impl FoldedSnnWot {
    /// Creates the design.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(inputs: usize, neurons: usize, ni: usize) -> Self {
        assert!(inputs > 0 && neurons > 0 && ni > 0, "empty design");
        FoldedSnnWot {
            inputs,
            neurons,
            ni,
        }
    }

    /// Inputs per neuron per cycle.
    pub fn ni(&self) -> usize {
        self.ni
    }

    /// Area of one folded SNNwot neuron in µm².
    pub fn neuron_area_um2(&self) -> f64 {
        SNNWOT_LANE_AREA * self.ni as f64 + SNNWOT_NEURON_BASE
    }

    /// SRAM configuration.
    pub fn sram(&self) -> BankConfig {
        BankConfig::for_layer(self.neurons, self.inputs, self.ni)
    }

    /// Cycles per image: input streaming plus the fixed pipeline latency.
    pub fn cycles_per_image(&self) -> u64 {
        self.inputs.div_ceil(self.ni) as u64 + SNNWOT_PIPELINE_LATENCY
    }

    /// The full report.
    pub fn report(&self) -> HwReport {
        let logic = (self.neuron_area_um2() * self.neurons as f64 + max_tree(self.neurons).1) / 1e6;
        let sram_cfg = self.sram();
        let cycles = self.cycles_per_image();
        let per_cycle_pj = sram_cfg.read_all_pj()
            + datapath_energy_per_cycle_pj(DesignKind::SnnWot, self.ni, self.neurons);
        HwReport {
            logic_area_mm2: logic,
            sram_area_mm2: sram_cfg.area_mm2(),
            total_area_mm2: logic + sram_cfg.area_mm2(),
            clock_ns: clock_period_ns(DesignKind::SnnWot, self.ni),
            cycles_per_image: cycles,
            energy_per_image_j: cycles as f64 * per_cycle_pj * 1e-12,
        }
    }
}

/// A folded SNNwt accelerator (Table 7's `SNNwt` block): same folding,
/// but the full `Tperiod`-millisecond presentation must be emulated cycle
/// by cycle (1 cycle = 1 ms), multiplying the cycle count by 500.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldedSnnWt {
    inputs: usize,
    neurons: usize,
    ni: usize,
    t_period: u64,
}

/// Residual per-neuron area of the folded SNNwt neuron, µm² (Table 7
/// calibration: the ni = 1 point).
const SNNWT_NEURON_BASE: f64 = 1_320.0;

/// Per-lane area: an 8-bit adder plus lane registers, µm².
const SNNWT_LANE_AREA: f64 = 77.7 + 2.0 * REG8_AREA + 100.0;

impl FoldedSnnWt {
    /// Creates the design with the paper's 500 ms presentation window.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(inputs: usize, neurons: usize, ni: usize) -> Self {
        assert!(inputs > 0 && neurons > 0 && ni > 0, "empty design");
        FoldedSnnWt {
            inputs,
            neurons,
            ni,
            t_period: 500,
        }
    }

    /// Inputs per neuron per cycle.
    pub fn ni(&self) -> usize {
        self.ni
    }

    /// Emulated presentation length in ms (= emulation steps).
    pub fn t_period(&self) -> u64 {
        self.t_period
    }

    /// Area of one folded SNNwt neuron in µm².
    pub fn neuron_area_um2(&self) -> f64 {
        SNNWT_LANE_AREA * self.ni as f64 + SNNWT_NEURON_BASE
    }

    /// SRAM configuration.
    pub fn sram(&self) -> BankConfig {
        BankConfig::for_layer(self.neurons, self.inputs, self.ni)
    }

    /// Cycles per image: `⌈inputs/ni⌉ × Tperiod` (Table 7: "791*500" …).
    pub fn cycles_per_image(&self) -> u64 {
        (self.inputs.div_ceil(self.ni) as u64 + SNNWOT_PIPELINE_LATENCY) * self.t_period
    }

    /// The full report. The `ni` interval generators (shared across
    /// neurons) add their RNG area.
    pub fn report(&self) -> HwReport {
        // No max tree: the SNNwt readout is first-to-fire (threshold
        // comparators live in the per-neuron base area).
        let logic = (self.neuron_area_um2() * self.neurons as f64
            + GAUSSIAN_RNG_AREA * self.ni as f64)
            / 1e6;
        let sram_cfg = self.sram();
        let cycles = self.cycles_per_image();
        let per_cycle_pj = sram_cfg.read_all_pj()
            + datapath_energy_per_cycle_pj(DesignKind::SnnWt, self.ni, self.neurons);
        HwReport {
            logic_area_mm2: logic,
            sram_area_mm2: sram_cfg.area_mm2(),
            total_area_mm2: logic + sram_cfg.area_mm2(),
            clock_ns: clock_period_ns(DesignKind::SnnWt, self.ni),
            cycles_per_image: cycles,
            energy_per_image_j: cycles as f64 * per_cycle_pj * 1e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 7 anchors: (ni, logic mm², total mm², energy µJ, cycles).
    const MLP_T7: [(usize, f64, f64, f64, u64); 4] = [
        (1, 0.29, 1.05, 0.38, 882),
        (4, 0.62, 1.91, 0.29, 223),
        (8, 1.02, 3.26, 0.30, 113),
        (16, 1.88, 6.36, 0.29, 57),
    ];
    const SNNWOT_T7: [(usize, f64, f64, f64, u64); 4] = [
        (1, 1.11, 3.17, 1.03, 791),
        (4, 1.89, 5.34, 0.68, 203),
        (8, 2.79, 8.91, 0.67, 105),
        (16, 4.10, 16.33, 0.70, 56),
    ];
    const SNNWT_T7: [(usize, f64, f64, f64, u64); 4] = [
        (1, 0.48, 2.56, 471.58, 791 * 500),
        (4, 0.84, 4.36, 315.33, 203 * 500),
        (8, 1.19, 7.45, 307.09, 105 * 500),
        (16, 1.74, 14.25, 325.69, 56 * 500),
    ];

    fn close(got: f64, expect: f64, tol: f64, what: &str) {
        assert!(
            (got - expect).abs() / expect < tol,
            "{what}: got {got}, paper {expect}"
        );
    }

    #[test]
    fn mlp_tracks_table_7() {
        for (ni, logic, total, energy, cycles) in MLP_T7 {
            let r = FoldedMlp::new(&[784, 100, 10], ni).report();
            close(r.logic_area_mm2, logic, 0.15, &format!("mlp ni={ni} logic"));
            close(r.total_area_mm2, total, 0.15, &format!("mlp ni={ni} total"));
            close(r.energy_uj(), energy, 0.15, &format!("mlp ni={ni} energy"));
            assert!(
                (r.cycles_per_image as i64 - cycles as i64).abs() <= 4,
                "mlp ni={ni} cycles {} vs {cycles}",
                r.cycles_per_image
            );
        }
    }

    #[test]
    fn snnwot_tracks_table_7() {
        for (ni, logic, total, energy, cycles) in SNNWOT_T7 {
            let r = FoldedSnnWot::new(784, 300, ni).report();
            close(r.logic_area_mm2, logic, 0.15, &format!("wot ni={ni} logic"));
            close(r.total_area_mm2, total, 0.15, &format!("wot ni={ni} total"));
            close(r.energy_uj(), energy, 0.15, &format!("wot ni={ni} energy"));
            assert_eq!(r.cycles_per_image, cycles, "wot ni={ni} cycles");
        }
    }

    #[test]
    fn snnwt_tracks_table_7() {
        for (ni, logic, total, energy, cycles) in SNNWT_T7 {
            let r = FoldedSnnWt::new(784, 300, ni).report();
            close(r.logic_area_mm2, logic, 0.15, &format!("wt ni={ni} logic"));
            close(r.total_area_mm2, total, 0.15, &format!("wt ni={ni} total"));
            close(r.energy_uj(), energy, 0.15, &format!("wt ni={ni} energy"));
            assert_eq!(r.cycles_per_image, cycles, "wt ni={ni} cycles");
        }
    }

    #[test]
    fn folded_mlp_beats_folded_snnwot_on_area_and_energy() {
        // §4.3.3: "the area of a folded MLP is 2.57x lower than that of a
        // folded SNNwot" (ni = 16) and "2.41x more energy efficient".
        let mlp = FoldedMlp::new(&[784, 100, 10], 16).report();
        let wot = FoldedSnnWot::new(784, 300, 16).report();
        let area_ratio = wot.total_area_mm2 / mlp.total_area_mm2;
        let energy_ratio = wot.energy_per_image_j / mlp.energy_per_image_j;
        assert!(area_ratio > 2.0 && area_ratio < 3.2, "area {area_ratio}");
        assert!(
            energy_ratio > 1.8 && energy_ratio < 3.2,
            "energy {energy_ratio}"
        );
    }

    #[test]
    fn snnwt_is_not_time_competitive() {
        // §4.3.2: SNNwt needs ~500x the cycles of SNNwot.
        let wot = FoldedSnnWot::new(784, 300, 16).report();
        let wt = FoldedSnnWt::new(784, 300, 16).report();
        assert_eq!(wt.cycles_per_image, wot.cycles_per_image * 500);
    }

    #[test]
    fn folding_shrinks_area_as_the_paper_reports() {
        // §4.3.1: ni=16 is "38.84x smaller than the expanded design",
        // ni=4 "117.76x smaller" (logic areas).
        let expanded = crate::expanded::ExpandedMlp::new(&[784, 100, 10])
            .report()
            .logic_area_mm2;
        let f16 = FoldedMlp::new(&[784, 100, 10], 16).report().logic_area_mm2;
        let f4 = FoldedMlp::new(&[784, 100, 10], 4).report().logic_area_mm2;
        let r16 = expanded / f16;
        let r4 = expanded / f4;
        assert!(r16 > 30.0 && r16 < 50.0, "{r16}");
        assert!(r4 > 90.0 && r4 < 145.0, "{r4}");
    }

    #[test]
    fn cycles_match_paper_formulas() {
        assert_eq!(FoldedSnnWot::new(784, 300, 1).cycles_per_image(), 791);
        assert_eq!(FoldedSnnWot::new(784, 300, 16).cycles_per_image(), 56);
        assert_eq!(FoldedMlp::new(&[784, 100, 10], 4).cycles_per_image(), 223);
        assert_eq!(FoldedMlp::new(&[784, 100, 10], 8).cycles_per_image(), 113);
    }

    #[test]
    #[should_panic(expected = "ni must be positive")]
    fn zero_ni_rejected() {
        let _ = FoldedMlp::new(&[4, 2], 0);
    }
}
