//! XY dimension-ordered routing fabric with static fault masks.
//!
//! Every core owns one router with four outbound links (E/W/S/N). A
//! spike packet from core A to core B follows the unique XY route —
//! all of the x distance first, then the y distance — so the path, its
//! hop count, and its link occupancy are pure functions of the two
//! endpoints. [`Fabric`] precomputes every pairwise route once, applies
//! the dead-link / dead-router masks drawn from an `nc-faults` plan,
//! and the simulator then does constant-time lookups on the hot path.
//!
//! Fault semantics: a packet stops at the first dead link (that link is
//! not traversed) or at the first dead router it enters (the link into
//! it *is* traversed and billed). A core whose own router is dead can
//! neither send nor receive over the fabric; core-local delivery
//! (`from == to`) never touches the fabric and always succeeds.

use crate::mesh::place::Grid;
use nc_faults::{dead_link_mask, dead_router_mask, FaultPlan};

/// Outbound links per router: one per mesh direction.
pub const PORTS_PER_ROUTER: usize = 4;

/// Mesh link directions. `South` is `y + 1` (row-major ids grow
/// downward), matching [`Grid`] geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `x + 1`.
    East,
    /// `x - 1`.
    West,
    /// `y + 1`.
    South,
    /// `y - 1`.
    North,
}

impl Direction {
    /// Stable port index of the direction, `0..4`.
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::South => 2,
            Direction::North => 3,
        }
    }
}

/// Global id of a router's outbound link in the given direction.
pub fn link_id(core: usize, dir: Direction) -> usize {
    core * PORTS_PER_ROUTER + dir.index()
}

/// The XY route from `from` to `to` as `(direction, next_core)` steps:
/// the full x offset first, then the full y offset.
///
/// # Panics
///
/// Panics if either core is outside the grid.
pub fn xy_steps(grid: Grid, from: usize, to: usize) -> Vec<(Direction, usize)> {
    let (fx, fy) = grid.xy(from);
    let (tx, ty) = grid.xy(to);
    let mut steps = Vec::with_capacity(fx.abs_diff(tx) + fy.abs_diff(ty));
    let (mut x, mut y) = (fx, fy);
    while x != tx {
        let dir = if tx > x {
            Direction::East
        } else {
            Direction::West
        };
        x = if tx > x { x + 1 } else { x - 1 };
        steps.push((dir, grid.core_at(x, y)));
    }
    while y != ty {
        let dir = if ty > y {
            Direction::South
        } else {
            Direction::North
        };
        y = if ty > y { y + 1 } else { y - 1 };
        steps.push((dir, grid.core_at(x, y)));
    }
    steps
}

/// One precomputed source→destination route under the active masks.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Route {
    /// Link ids actually traversed: the whole path when delivered,
    /// otherwise the live prefix up to the fault.
    links: Vec<usize>,
    delivered: bool,
}

/// The routing fabric: per-core fault masks plus every pairwise route.
#[derive(Debug, Clone, PartialEq)]
pub struct Fabric {
    grid: Grid,
    dead_links: Vec<bool>,
    dead_routers: Vec<bool>,
    routes: Vec<Route>,
}

impl Fabric {
    /// A fault-free fabric over `grid`.
    pub fn healthy(grid: Grid) -> Fabric {
        Fabric::build(
            grid,
            vec![false; grid.cores() * PORTS_PER_ROUTER],
            vec![false; grid.cores()],
        )
    }

    /// A fabric with dead links and routers drawn from `plan`. Each core
    /// draws from its own salted site stream (`plan.for_site(core)`), so
    /// the defect pattern of core `c` is independent of the grid size
    /// and of every other core — the same per-site convention the
    /// memory fault models use.
    pub fn with_plan(grid: Grid, plan: &FaultPlan) -> Fabric {
        let cores = grid.cores();
        let mut dead_links = Vec::with_capacity(cores * PORTS_PER_ROUTER);
        let mut dead_routers = Vec::with_capacity(cores);
        for core in 0..cores {
            let site = plan.for_site(u64::try_from(core).unwrap_or(u64::MAX));
            dead_links.extend(dead_link_mask(PORTS_PER_ROUTER, &site));
            dead_routers.push(dead_router_mask(1, &site)[0]);
        }
        Fabric::build(grid, dead_links, dead_routers)
    }

    fn build(grid: Grid, dead_links: Vec<bool>, dead_routers: Vec<bool>) -> Fabric {
        let cores = grid.cores();
        let mut routes = Vec::with_capacity(cores * cores);
        for from in 0..cores {
            for to in 0..cores {
                routes.push(walk(grid, &dead_links, &dead_routers, from, to));
            }
        }
        Fabric {
            grid,
            dead_links,
            dead_routers,
            routes,
        }
    }

    /// The grid routed over.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Whether a packet from `from` reaches `to`.
    ///
    /// # Panics
    ///
    /// Panics if either core is outside the grid.
    pub fn delivered(&self, from: usize, to: usize) -> bool {
        self.routes[from * self.grid.cores() + to].delivered
    }

    /// Link ids a packet from `from` to `to` traverses before delivery
    /// or loss — each one costs hop energy and link occupancy.
    ///
    /// # Panics
    ///
    /// Panics if either core is outside the grid.
    pub fn links(&self, from: usize, to: usize) -> &[usize] {
        &self.routes[from * self.grid.cores() + to].links
    }

    /// Whether the outbound link `link` is dead.
    pub fn is_dead_link(&self, link: usize) -> bool {
        self.dead_links[link]
    }

    /// Whether `core`'s router is dead.
    pub fn is_dead_router(&self, core: usize) -> bool {
        self.dead_routers[core]
    }

    /// Number of dead outbound links.
    pub fn dead_link_count(&self) -> usize {
        self.dead_links.iter().filter(|&&d| d).count()
    }

    /// Number of dead routers.
    pub fn dead_router_count(&self) -> usize {
        self.dead_routers.iter().filter(|&&d| d).count()
    }
}

fn walk(grid: Grid, dead_links: &[bool], dead_routers: &[bool], from: usize, to: usize) -> Route {
    if from == to {
        // Core-local delivery bypasses the fabric entirely.
        return Route {
            links: Vec::new(),
            delivered: true,
        };
    }
    let mut links = Vec::new();
    if dead_routers[from] {
        return Route {
            links,
            delivered: false,
        };
    }
    let mut cur = from;
    for (dir, next) in xy_steps(grid, from, to) {
        let link = link_id(cur, dir);
        if dead_links[link] {
            return Route {
                links,
                delivered: false,
            };
        }
        links.push(link);
        cur = next;
        if dead_routers[cur] {
            return Route {
                links,
                delivered: false,
            };
        }
    }
    Route {
        links,
        delivered: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_faults::FaultModel;

    #[test]
    fn xy_routes_go_x_first_then_y() {
        let g = Grid::new(4, 4);
        let steps = xy_steps(g, 0, 15);
        let dirs: Vec<Direction> = steps.iter().map(|&(d, _)| d).collect();
        assert_eq!(
            dirs,
            vec![
                Direction::East,
                Direction::East,
                Direction::East,
                Direction::South,
                Direction::South,
                Direction::South,
            ]
        );
        assert_eq!(steps.last().map(|&(_, c)| c), Some(15));
        // Reverse route is W,W,W then N,N,N through distinct links.
        let back = xy_steps(g, 15, 0);
        assert_eq!(back.len(), 6);
        assert_eq!(back[0].0, Direction::West);
        assert_eq!(back[5].0, Direction::North);
    }

    #[test]
    fn healthy_fabric_delivers_everywhere_at_manhattan_cost() {
        let g = Grid::new(4, 3);
        let fabric = Fabric::healthy(g);
        for from in 0..g.cores() {
            for to in 0..g.cores() {
                assert!(fabric.delivered(from, to));
                assert_eq!(fabric.links(from, to).len(), g.manhattan(from, to));
            }
        }
        assert_eq!(fabric.dead_link_count(), 0);
        assert_eq!(fabric.dead_router_count(), 0);
    }

    #[test]
    fn saturated_dead_links_sever_everything_but_local_delivery() {
        let g = Grid::new(3, 3);
        let plan = FaultPlan::new(FaultModel::DeadLink, 1.0, 9).unwrap_or_else(|_| unreachable!());
        let fabric = Fabric::with_plan(g, &plan);
        assert_eq!(fabric.dead_link_count(), g.cores() * PORTS_PER_ROUTER);
        assert_eq!(fabric.dead_router_count(), 0);
        for from in 0..g.cores() {
            for to in 0..g.cores() {
                assert_eq!(fabric.delivered(from, to), from == to);
                assert!(fabric.links(from, to).is_empty()); // first hop already dead
            }
        }
    }

    #[test]
    fn dead_routers_bill_the_link_into_the_corpse() {
        let g = Grid::new(3, 1);
        let plan =
            FaultPlan::new(FaultModel::DeadRouter, 1.0, 9).unwrap_or_else(|_| unreachable!());
        let fabric = Fabric::with_plan(g, &plan);
        assert_eq!(fabric.dead_router_count(), 3);
        // Local delivery still works even on a dead-router core.
        assert!(fabric.delivered(1, 1));
        // A dead source router sends nothing and bills nothing.
        assert!(!fabric.delivered(0, 2));
        assert!(fabric.links(0, 2).is_empty());
    }

    #[test]
    fn fabric_masks_are_deterministic_and_model_gated() {
        let g = Grid::new(4, 4);
        let plan = FaultPlan::new(FaultModel::DeadLink, 0.3, 77).unwrap_or_else(|_| unreachable!());
        let a = Fabric::with_plan(g, &plan);
        let b = Fabric::with_plan(g, &plan);
        assert_eq!(a, b);
        assert!(a.dead_link_count() > 0);
        // A non-fabric model leaves the fabric healthy.
        let stuck =
            FaultPlan::new(FaultModel::StuckAt0, 0.3, 77).unwrap_or_else(|_| unreachable!());
        let clean = Fabric::with_plan(g, &stuck);
        assert_eq!(clean.dead_link_count(), 0);
        assert_eq!(clean.dead_router_count(), 0);
        // Per-core site streams: masks for core 0 are grid-size invariant.
        let small = Fabric::with_plan(Grid::new(2, 2), &plan);
        for link in 0..PORTS_PER_ROUTER {
            assert_eq!(small.is_dead_link(link), a.is_dead_link(link));
        }
    }
}
