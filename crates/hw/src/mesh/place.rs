//! Cluster placement onto a W×H core grid.
//!
//! The placer's objective is the router's cost: total traffic-weighted
//! Manhattan distance, which under XY dimension-ordered routing is
//! exactly the hop count the fabric will pay. Placement is greedy and
//! deterministic — clusters in descending traffic order, each onto the
//! free core minimizing its weighted distance to everything already
//! placed, every tie broken by index.

use crate::mesh::partition::Partition;

/// A W×H grid of cores, row-major core ids (`core = y * width + x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Cores per row.
    pub width: usize,
    /// Rows.
    pub height: usize,
}

impl Grid {
    /// Builds a grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Grid {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        Grid { width, height }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.width * self.height
    }

    /// `(x, y)` of a core id.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn xy(&self, core: usize) -> (usize, usize) {
        assert!(core < self.cores(), "core {core} outside the grid");
        (core % self.width, core / self.width)
    }

    /// Core id at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid.
    pub fn core_at(&self, x: usize, y: usize) -> usize {
        assert!(
            x < self.width && y < self.height,
            "({x},{y}) outside the grid"
        );
        y * self.width + x
    }

    /// Manhattan distance between two cores — the XY-routed hop count.
    ///
    /// # Panics
    ///
    /// Panics if either core is out of range.
    pub fn manhattan(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.xy(a);
        let (bx, by) = self.xy(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }
}

/// A mapping of every cluster to a distinct core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    grid: Grid,
    core_of_cluster: Vec<usize>,
}

impl Placement {
    /// The grid placed onto.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// The core hosting `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn core_of(&self, cluster: usize) -> usize {
        self.core_of_cluster[cluster]
    }

    /// Number of placed clusters.
    pub fn num_clusters(&self) -> usize {
        self.core_of_cluster.len()
    }

    /// Total traffic-weighted Manhattan distance — the placement cost
    /// the greedy placer minimizes, and the expected per-spike hop bill.
    pub fn cost(&self, partition: &Partition) -> u64 {
        let k = self.core_of_cluster.len();
        let mut cost = 0u64;
        for a in 0..k {
            for b in (a + 1)..k {
                let hops = self
                    .grid
                    .manhattan(self.core_of_cluster[a], self.core_of_cluster[b]);
                cost = cost.wrapping_add(partition.traffic(a, b).wrapping_mul(hops_u64(hops)));
            }
        }
        cost
    }

    fn validate(partition: &Partition, grid: Grid) {
        assert!(
            partition.num_clusters() <= grid.cores(),
            "{} clusters cannot be placed on a {}x{} grid",
            partition.num_clusters(),
            grid.width,
            grid.height
        );
    }
}

fn hops_u64(hops: usize) -> u64 {
    u64::try_from(hops).unwrap_or(u64::MAX)
}

/// Greedy traffic-weighted placement: clusters in descending total
/// traffic (ties by id); the heaviest cluster takes the central core,
/// every next cluster the free core with the least traffic-weighted
/// distance to the already-placed set (ties by core id).
///
/// # Panics
///
/// Panics if the partition has more clusters than the grid has cores.
pub fn place_greedy(partition: &Partition, grid: Grid) -> Placement {
    Placement::validate(partition, grid);
    let k = partition.num_clusters();
    let mut totals: Vec<u64> = (0..k)
        .map(|a| (0..k).map(|b| partition.traffic(a, b)).sum())
        .collect();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_unstable_by_key(|&c| (std::cmp::Reverse(totals[c]), c));
    totals.clear();

    let mut core_of_cluster = vec![usize::MAX; k];
    let mut free = vec![true; grid.cores()];
    let center = grid.core_at((grid.width - 1) / 2, (grid.height - 1) / 2);
    for (rank, &cluster) in order.iter().enumerate() {
        let mut best: Option<(u64, usize)> = None; // (cost, core)
        for (core, &is_free) in free.iter().enumerate() {
            if !is_free {
                continue;
            }
            let cost = if rank == 0 {
                // Seed at the center: distance to the centroid stands in
                // for distance to the not-yet-placed rest.
                hops_u64(grid.manhattan(core, center))
            } else {
                order[..rank]
                    .iter()
                    .map(|&placed| {
                        partition
                            .traffic(cluster, placed)
                            .wrapping_mul(hops_u64(grid.manhattan(core, core_of_cluster[placed])))
                    })
                    .sum()
            };
            let better = best.is_none_or(|(bc, bk)| cost < bc || (cost == bc && core < bk));
            if better {
                best = Some((cost, core));
            }
        }
        let (_, core) = best.map_or((0, 0), |b| b);
        core_of_cluster[cluster] = core;
        free[core] = false;
    }
    Placement {
        grid,
        core_of_cluster,
    }
}

/// The identity placement: cluster `c` on core `c`, row-major. The
/// second deterministic placement the determinism tests compare against
/// [`place_greedy`] — same partition, different physical routes, same
/// logical spike schedule.
///
/// # Panics
///
/// Panics if the partition has more clusters than the grid has cores.
pub fn place_linear(partition: &Partition, grid: Grid) -> Placement {
    Placement::validate(partition, grid);
    Placement {
        grid,
        core_of_cluster: (0..partition.num_clusters()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::partition::partition_units;

    #[test]
    fn grid_geometry_round_trips() {
        let g = Grid::new(4, 3);
        assert_eq!(g.cores(), 12);
        assert_eq!(g.xy(0), (0, 0));
        assert_eq!(g.xy(5), (1, 1));
        assert_eq!(g.core_at(3, 2), 11);
        assert_eq!(g.manhattan(0, 11), 5);
        assert_eq!(g.manhattan(5, 5), 0);
    }

    #[test]
    fn linear_placement_is_the_identity() {
        let p = partition_units(40, 4);
        let placement = place_linear(&p, Grid::new(2, 2));
        assert_eq!(placement.num_clusters(), 4);
        for c in 0..4 {
            assert_eq!(placement.core_of(c), c);
        }
        assert_eq!(placement.cost(&p), 0); // unit partitions carry no traffic
    }

    #[test]
    fn greedy_places_every_cluster_on_a_distinct_core() {
        let p = partition_units(100, 9);
        let placement = place_greedy(&p, Grid::new(3, 3));
        let mut used = [false; 9];
        for c in 0..placement.num_clusters() {
            let core = placement.core_of(c);
            assert!(!used[core], "core {core} used twice");
            used[core] = true;
        }
        // Deterministic across calls.
        assert_eq!(placement, place_greedy(&p, Grid::new(3, 3)));
    }

    #[test]
    #[should_panic(expected = "cannot be placed")]
    fn too_small_grids_are_rejected() {
        let p = partition_units(100, 9);
        let _ = place_greedy(&p, Grid::new(2, 2));
    }
}
