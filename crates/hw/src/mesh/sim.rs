//! The many-core mesh event simulator.
//!
//! [`MeshSnn`] runs a compiled (partitioned + placed) WTA SNN over the
//! routing fabric and is, on a healthy fabric, **bit-exact** against
//! the single-core reference event loop (`nc_snn::network`): the same
//! spikes at the same milliseconds, the same final potentials to the
//! last bit, the same tie-broken readout. The per-hop/per-read/per-
//! update work is tallied into a [`MeshCost`] as a side effect.
//!
//! # How bit-exactness survives distribution
//!
//! The reference loop scans all neurons in ascending id order per input
//! event; the first neuron to cross threshold fires, and every *later*
//! neuron in that same scan is already inhibited and therefore skipped
//! — its membrane never absorbs the event. A mesh core only sees its
//! own neurons, so each core instead applies the event to its locals
//! *tentatively* (recording an undo entry per touched neuron), stops at
//! its first local threshold crossing, and nominates that neuron. The
//! event's true firing neuron is the minimum nominated global id — the
//! same neuron the reference scan would have reached first. Commit then
//! replays the reference semantics exactly:
//!
//! * neurons with ids **below** the firer were updated by the reference
//!   scan before the fire — every core keeps those tentative updates;
//! * neurons with ids **above** the firer were gated by the fresh
//!   inhibition — every core reverts those tentative updates from its
//!   undo log (entries are pushed in ascending local order, so the
//!   revert is a tail pop).
//!
//! Per-core event skipping mirrors the reference's `skip_until` window:
//! the firing core can respond again at `t + min(Trefrac, Tinhibit)`,
//! a purely-inhibited core not before `t + Tinhibit`; both bounds are
//! exact, so skipped scans are provably no-ops. All of this requires at
//! most one fire per event, which holds whenever `Tinhibit >= 1` (the
//! compiler asserts it).
//!
//! Under fabric faults the lockstep degrades *deterministically*: a
//! core that never receives the input packet does not integrate it, a
//! core that misses an inhibition packet keeps its tentative updates
//! and may fire in the same event (a cascade resolved in ascending
//! neuron order), exactly as a real mesh would misbehave.

use std::fmt::Write as _;

use crate::mesh::partition::{partition_snn, Partition};
use crate::mesh::place::{place_greedy, Grid, Placement};
use crate::mesh::route::{Fabric, PORTS_PER_ROUTER};
use crate::mesh::{
    HOP_ENERGY_PJ, LINK_CYCLES_PER_TICK, NEURON_AREA_UM2, NEURON_UPDATE_PJ, ROUTER_AREA_UM2,
};
use crate::sram::{bank_area_um2, bank_read_energy_pj};
use nc_faults::FaultPlan;
use nc_snn::network::decay_with_lut;
use nc_snn::{tie_broken_readout, CodingScheme, SnnNetwork, SnnParams};

/// Synaptic SRAM bank depth (rows per bank), the TrueNorth-style core
/// geometry shared with [`crate::truenorth`].
const BANK_DEPTH: usize = 784;

/// 8-bit weights per 128-bit SRAM row.
const WEIGHTS_PER_ROW: usize = 16;

/// Work and traffic tallies for one presentation (or, via
/// [`MeshCost::absorb`], an aggregate of many).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeshCost {
    /// Spike packets injected into the fabric (input multicasts plus
    /// inhibition multicasts; core-local deliveries included).
    pub packets: u64,
    /// Packets that died on a dead link or dead router.
    pub dropped_packets: u64,
    /// Router-to-router link traversals actually performed.
    pub hops: u64,
    /// Worst per-link load inside any one 1 ms tick.
    pub peak_link_load: u64,
    /// Synaptic SRAM row reads (one weight-column burst per delivered,
    /// non-skipped core event).
    pub sram_rows: u64,
    /// LIF membrane updates, speculative ones included — reverted work
    /// still burned energy.
    pub neuron_updates: u64,
}

impl MeshCost {
    /// Dynamic energy of the tallied work in µJ: hops at
    /// [`HOP_ENERGY_PJ`], SRAM rows at the 65 nm bank read cost, and
    /// membrane updates at [`NEURON_UPDATE_PJ`].
    pub fn energy_uj(&self) -> f64 {
        (self.hops as f64 * HOP_ENERGY_PJ
            + self.sram_rows as f64 * bank_read_energy_pj(BANK_DEPTH)
            + self.neuron_updates as f64 * NEURON_UPDATE_PJ)
            * 1e-6
    }

    /// Whether every link stayed within its per-tick cycle budget
    /// ([`LINK_CYCLES_PER_TICK`]) — i.e. worst-case delivery still lands
    /// inside the biological tick.
    pub fn delivery_ok(&self) -> bool {
        self.peak_link_load <= LINK_CYCLES_PER_TICK
    }

    /// Folds another tally into this one (sums, except the peak link
    /// load which takes the max).
    pub fn absorb(&mut self, other: &MeshCost) {
        self.packets = self.packets.wrapping_add(other.packets);
        self.dropped_packets = self.dropped_packets.wrapping_add(other.dropped_packets);
        self.hops = self.hops.wrapping_add(other.hops);
        self.peak_link_load = self.peak_link_load.max(other.peak_link_load);
        self.sram_rows = self.sram_rows.wrapping_add(other.sram_rows);
        self.neuron_updates = self.neuron_updates.wrapping_add(other.neuron_updates);
    }
}

/// Outcome of presenting one image to the mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshPresentation {
    /// First neuron to fire (global id), if any.
    pub winner: Option<usize>,
    /// Readout neuron: the winner, else highest potential with seeded
    /// tie-breaking — the reference readout, bit for bit.
    pub readout: usize,
    /// Predicted class label (`labels[readout]`, unlabeled → 0).
    pub label: usize,
    /// Every output spike as `(time_ms, global neuron)`.
    pub fires: Vec<(u32, usize)>,
    /// Final membrane potentials in global neuron order.
    pub potentials: Vec<f64>,
    /// Work and traffic of this presentation.
    pub cost: MeshCost,
}

/// One neuron's pre-update state, recorded so a core can revert the
/// tentative updates an inhibition packet retroactively gates.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Undo {
    slot: usize,
    potential: f64,
    last_update: u32,
}

/// One simulated core: its slice of the network plus scratch state.
#[derive(Debug, Clone, PartialEq)]
struct CoreNode {
    /// Hosted neurons, ascending global ids; slot `s` is `locals[s]`.
    locals: Vec<usize>,
    /// Weight columns, `wcols[input * locals.len() + slot]`.
    wcols: Vec<u8>,
    thresholds: Vec<f64>,
    potentials: Vec<f64>,
    last_update: Vec<u32>,
    refractory_until: Vec<u32>,
    inhibited_until: Vec<u32>,
    /// First ms at which any local can respond again (see module doc).
    skip_until: u32,
    /// Tentative updates of the current event, ascending slot order.
    undo: Vec<Undo>,
    /// Whether the current event's input packet reached this core.
    delivered_event: bool,
    /// Whether an inhibition for the current event reached this core
    /// (kills this core's own nomination).
    inhibited_event: bool,
}

impl CoreNode {
    fn empty() -> CoreNode {
        CoreNode {
            locals: Vec::new(),
            wcols: Vec::new(),
            thresholds: Vec::new(),
            potentials: Vec::new(),
            last_update: Vec::new(),
            refractory_until: Vec::new(),
            inhibited_until: Vec::new(),
            skip_until: 0,
            undo: Vec::new(),
            delivered_event: false,
            inhibited_event: false,
        }
    }

    fn host(locals: Vec<usize>, wcols: Vec<u8>, thresholds: Vec<f64>) -> CoreNode {
        let n = locals.len();
        CoreNode {
            locals,
            wcols,
            thresholds,
            potentials: vec![0.0; n],
            last_update: vec![0; n],
            refractory_until: vec![0; n],
            inhibited_until: vec![0; n],
            skip_until: 0,
            undo: Vec::new(),
            delivered_event: false,
            inhibited_event: false,
        }
    }

    fn reset(&mut self) {
        self.potentials.fill(0.0);
        self.last_update.fill(0);
        self.refractory_until.fill(0);
        self.inhibited_until.fill(0);
        self.skip_until = 0;
        self.undo.clear();
        self.delivered_event = false;
        self.inhibited_event = false;
    }

    /// Applies one input event tentatively to every un-gated local, in
    /// ascending slot order, stopping at (and nominating) the first
    /// threshold crossing. The reference per-neuron arithmetic, verbatim.
    fn scan(&mut self, input: usize, t: u32, lut: &[f64], cost: &mut MeshCost) -> Option<usize> {
        let ln = self.locals.len();
        // One burst read of the event's weight column.
        cost.sram_rows = cost
            .sram_rows
            .wrapping_add(count_u64(ln.div_ceil(WEIGHTS_PER_ROW)));
        let col = input * ln;
        for slot in 0..ln {
            if t < self.refractory_until[slot] || t < self.inhibited_until[slot] {
                continue;
            }
            self.undo.push(Undo {
                slot,
                potential: self.potentials[slot],
                last_update: self.last_update[slot],
            });
            let dt = u64::from(t - self.last_update[slot]);
            if dt > 0 {
                self.potentials[slot] = decay_with_lut(lut, self.potentials[slot], dt);
            }
            self.last_update[slot] = t;
            self.potentials[slot] += f64::from(self.wcols[col + slot]);
            cost.neuron_updates = cost.neuron_updates.wrapping_add(1);
            if self.potentials[slot] >= self.thresholds[slot] {
                return Some(self.locals[slot]);
            }
        }
        None
    }

    /// Commits a fire of local neuron `j` at `t`: locals above `j`
    /// un-integrate the event (they were gated in the reference scan),
    /// the firer resets and turns refractory, everyone else inhibits.
    fn commit_fire(&mut self, j: usize, t: u32, t_refrac: u32, t_inhibit: u32) {
        let slot = match self.locals.binary_search(&j) {
            Ok(s) => s,
            Err(_) => return, // not hosted here; nothing to commit
        };
        self.revert_from(slot + 1);
        self.potentials[slot] = 0.0;
        self.refractory_until[slot] = t + t_refrac;
        for (k, inh) in self.inhibited_until.iter_mut().enumerate() {
            if k != slot {
                *inh = (*inh).max(t + t_inhibit);
            }
        }
        self.skip_until = self.skip_until.max(t + t_refrac.min(t_inhibit));
        self.inhibited_event = true;
    }

    /// Handles an inhibition packet: global neuron `j` fired at `t`.
    /// Locals above `j` un-integrate the current event; all locals are
    /// inhibited. Safe to receive repeatedly (cascades under faults):
    /// reverts and window extensions are idempotent.
    fn receive_inhibition(&mut self, j: usize, t: u32, t_inhibit: u32) {
        // Revert from the first slot whose global id exceeds `j`.
        let first_above = self.locals.partition_point(|&g| g <= j);
        self.revert_from(first_above);
        for inh in self.inhibited_until.iter_mut() {
            *inh = (*inh).max(t + t_inhibit);
        }
        self.skip_until = self.skip_until.max(t + t_inhibit);
        self.inhibited_event = true;
    }

    /// Pops undo entries with `slot >= first_reverted`, restoring their
    /// state. Entries are pushed in ascending slot order, so this is
    /// the tail of the log.
    fn revert_from(&mut self, first_reverted: usize) {
        while let Some(&u) = self.undo.last() {
            if u.slot >= first_reverted {
                self.potentials[u.slot] = u.potential;
                self.last_update[u.slot] = u.last_update;
                self.undo.pop();
            } else {
                break;
            }
        }
    }
}

fn count_u64(x: usize) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

/// Sends one packet, billing hops and per-tick link occupancy along the
/// live path prefix. Returns whether the packet arrived.
fn route_packet(
    fabric: &Fabric,
    link_load: &mut [u64],
    touched_links: &mut Vec<usize>,
    from: usize,
    to: usize,
    cost: &mut MeshCost,
) -> bool {
    cost.packets = cost.packets.wrapping_add(1);
    for &link in fabric.links(from, to) {
        if link_load[link] == 0 {
            touched_links.push(link);
        }
        link_load[link] += 1;
        cost.hops = cost.hops.wrapping_add(1);
    }
    let delivered = fabric.delivered(from, to);
    if !delivered {
        cost.dropped_packets = cost.dropped_packets.wrapping_add(1);
    }
    delivered
}

/// Closes the current 1 ms tick: folds per-link loads into the peak and
/// clears them for the next tick.
fn flush_tick(link_load: &mut [u64], touched_links: &mut Vec<usize>, cost: &mut MeshCost) {
    for &link in touched_links.iter() {
        cost.peak_link_load = cost.peak_link_load.max(link_load[link]);
        link_load[link] = 0;
    }
    touched_links.clear();
}

/// A trained SNN compiled onto a many-core mesh: partitioned, placed,
/// and simulated over the routing fabric.
#[derive(Debug, Clone)]
pub struct MeshSnn {
    grid: Grid,
    partition: Partition,
    placement: Placement,
    fabric: Fabric,
    coding: CodingScheme,
    params: SnnParams,
    decay_lut: Vec<f64>,
    labels: Vec<Option<usize>>,
    /// `presentation_stream_seed(0)`; the mixing is affine in the
    /// presentation seed, so stream `p` is `base.wrapping_add(p)`.
    stream_base: u64,
    inputs: usize,
    cores: Vec<CoreNode>,
    /// Cores hosting at least one neuron, ascending.
    used: Vec<usize>,
    /// Off-chip ingress: input spikes enter the fabric at core 0.
    injector: usize,
    // Reused presentation scratch.
    candidates: Vec<(usize, usize)>,
    link_load: Vec<u64>,
    touched_links: Vec<usize>,
}

impl MeshSnn {
    /// Compiles `net` onto `grid` with the default pipeline: affinity
    /// partitioning, greedy traffic-weighted placement, healthy fabric.
    ///
    /// # Panics
    ///
    /// Panics if the network cannot fit (`neurons > cores * 256`) or if
    /// `Tinhibit`/`Trefrac` are zero (see [`MeshSnn::compiled`]).
    pub fn compile(net: &SnnNetwork, grid: Grid) -> MeshSnn {
        let partition = partition_snn(net, grid.cores());
        let placement = place_greedy(&partition, grid);
        MeshSnn::compiled(net, partition, placement, Fabric::healthy(grid))
    }

    /// Like [`MeshSnn::compile`], but with dead links and routers drawn
    /// from `plan` (non-fabric fault models leave the fabric healthy).
    ///
    /// # Panics
    ///
    /// As [`MeshSnn::compile`].
    pub fn compile_faulty(net: &SnnNetwork, grid: Grid, plan: &FaultPlan) -> MeshSnn {
        let partition = partition_snn(net, grid.cores());
        let placement = place_greedy(&partition, grid);
        MeshSnn::compiled(net, partition, placement, Fabric::with_plan(grid, plan))
    }

    /// Assembles a mesh from explicit pipeline stages — the seam the
    /// placement-invariance tests use.
    ///
    /// # Panics
    ///
    /// Panics on geometry mismatches between the stages, or if
    /// `Tinhibit` or `Trefrac` is zero (the one-fire-per-event
    /// invariant the distributed commit protocol rests on).
    pub fn compiled(
        net: &SnnNetwork,
        partition: Partition,
        placement: Placement,
        fabric: Fabric,
    ) -> MeshSnn {
        let params = *net.params();
        assert!(
            params.t_inhibit >= 1 && params.t_refrac >= 1,
            "mesh simulation requires Tinhibit >= 1 and Trefrac >= 1"
        );
        assert_eq!(
            partition.neurons(),
            params.neurons,
            "partition does not cover the network"
        );
        assert_eq!(
            placement.num_clusters(),
            partition.num_clusters(),
            "placement does not cover the partition"
        );
        assert_eq!(
            placement.grid(),
            fabric.grid(),
            "placement and fabric grids differ"
        );
        let grid = fabric.grid();
        let inputs = net.inputs();
        let weights = net.weights();
        let thresholds = net.thresholds();

        let mut cores: Vec<CoreNode> = (0..grid.cores()).map(|_| CoreNode::empty()).collect();
        for (cluster, members) in partition.clusters().iter().enumerate() {
            let ln = members.len();
            let mut wcols = vec![0u8; inputs * ln];
            for input in 0..inputs {
                for (slot, &g) in members.iter().enumerate() {
                    wcols[input * ln + slot] = weights[g * inputs + input];
                }
            }
            let ths = members.iter().map(|&g| thresholds[g]).collect();
            cores[placement.core_of(cluster)] = CoreNode::host(members.clone(), wcols, ths);
        }
        let used: Vec<usize> = (0..grid.cores())
            .filter(|&c| !cores[c].locals.is_empty())
            .collect();

        /// Presentation seed whose stream is the affine base point.
        const STREAM_ORIGIN: u64 = 0;
        /// Arbitrary probe offset for the affinity self-check below.
        const AFFINITY_PROBE: u64 = 0x1234_5678;
        let stream_base = net.presentation_stream_seed(STREAM_ORIGIN);
        // The per-presentation reconstruction below relies on the stream
        // mixing being affine in the presentation seed.
        assert_eq!(
            net.presentation_stream_seed(AFFINITY_PROBE),
            stream_base.wrapping_add(AFFINITY_PROBE),
            "presentation stream mixing is no longer affine"
        );

        let link_load = vec![0u64; grid.cores() * PORTS_PER_ROUTER];
        MeshSnn {
            grid,
            partition,
            placement,
            fabric,
            coding: net.coding(),
            params,
            decay_lut: net.decay_lut().to_vec(),
            labels: net.labels().to_vec(),
            stream_base,
            inputs,
            cores,
            used,
            injector: 0,
            candidates: Vec::new(),
            link_load,
            touched_links: Vec::new(),
        }
    }

    /// The mesh grid.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// The compiled partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The compiled placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The routing fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Number of cores hosting neurons.
    pub fn used_cores(&self) -> usize {
        self.used.len()
    }

    /// Silicon area of the whole mesh in mm²: every core pays the
    /// router share; used cores add their synaptic SRAM banks and LIF
    /// circuits — the TrueNorth core cost model, per core.
    pub fn area_mm2(&self) -> f64 {
        let mut um2 = 0.0;
        for core in &self.cores {
            um2 += ROUTER_AREA_UM2;
            let ln = core.locals.len();
            if ln == 0 {
                continue;
            }
            let bits = ln * self.inputs * 8;
            let banks = bits.div_ceil(128).div_ceil(BANK_DEPTH).max(1);
            um2 += banks as f64 * bank_area_um2(BANK_DEPTH) + ln as f64 * NEURON_AREA_UM2;
        }
        um2 / 1e6
    }

    /// Presents one image without learning.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len()` differs from the network's input count.
    pub fn present(&mut self, pixels: &[u8], presentation_seed: u64) -> MeshPresentation {
        self.present_inner(pixels, presentation_seed, None)
    }

    /// Presents one image and also returns the routed-spike trace: one
    /// `E <t> <input>` line per injected input event and one
    /// `F <t> <neuron>` line per output spike. The trace is *logical* —
    /// physical hops live in the cost counters — so on a healthy fabric
    /// it is byte-identical across placements of the same partition and
    /// across engine thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len()` differs from the network's input count.
    pub fn present_traced(
        &mut self,
        pixels: &[u8],
        presentation_seed: u64,
    ) -> (MeshPresentation, String) {
        let mut trace = String::new();
        let p = self.present_inner(pixels, presentation_seed, Some(&mut trace));
        (p, trace)
    }

    /// Predicted class label for one image — bit-compatible with the
    /// reference `SnnNetwork::predict`.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len()` differs from the network's input count.
    pub fn predict(&mut self, pixels: &[u8], presentation_seed: u64) -> usize {
        self.present_inner(pixels, presentation_seed, None).label
    }

    fn present_inner(
        &mut self,
        pixels: &[u8],
        presentation_seed: u64,
        mut trace: Option<&mut String>,
    ) -> MeshPresentation {
        assert_eq!(
            pixels.len(),
            self.inputs,
            "pixel count {} does not match inputs {}",
            pixels.len(),
            self.inputs
        );
        let seed = self.stream_base.wrapping_add(presentation_seed);
        let events = self.coding.encode(pixels, &self.params, seed);
        let t_refrac = self.params.t_refrac;
        let t_inhibit = self.params.t_inhibit;
        let n = self.params.neurons;
        let injector = self.injector;
        let MeshSnn {
            cores,
            used,
            fabric,
            candidates,
            link_load,
            touched_links,
            decay_lut,
            labels,
            ..
        } = self;
        for &c in used.iter() {
            cores[c].reset();
        }
        link_load.fill(0);
        touched_links.clear();

        let mut cost = MeshCost::default();
        let mut winner: Option<usize> = None;
        let mut fires: Vec<(u32, usize)> = Vec::new();
        let mut cur_t: Option<u32> = None;

        for ev in &events {
            let (t, input) = (ev.t, ev.input);
            if cur_t != Some(t) {
                flush_tick(link_load, touched_links, &mut cost);
                cur_t = Some(t);
            }
            if let Some(tr) = trace.as_deref_mut() {
                let _ = writeln!(tr, "E {t} {input}");
            }
            // Input multicast: ingress router to every populated core.
            for &c in used.iter() {
                let delivered =
                    route_packet(fabric, link_load, touched_links, injector, c, &mut cost);
                let core = &mut cores[c];
                core.delivered_event = delivered;
                core.inhibited_event = false;
                core.undo.clear();
            }
            // Tentative local integration; each core nominates at most
            // one firing candidate.
            candidates.clear();
            for &c in used.iter() {
                let core = &mut cores[c];
                if !core.delivered_event || t < core.skip_until {
                    continue;
                }
                if let Some(global) = core.scan(input, t, decay_lut, &mut cost) {
                    candidates.push((global, c));
                }
            }
            // Resolve in ascending global order — the reference scan
            // order. On a healthy fabric the first fire inhibits every
            // other candidate; a missed inhibition packet lets the next
            // candidate cascade, deterministically.
            candidates.sort_unstable();
            for &(j, cj) in candidates.iter() {
                if cores[cj].inhibited_event {
                    continue;
                }
                fires.push((t, j));
                if winner.is_none() {
                    winner = Some(j);
                }
                if let Some(tr) = trace.as_deref_mut() {
                    let _ = writeln!(tr, "F {t} {j}");
                }
                cores[cj].commit_fire(j, t, t_refrac, t_inhibit);
                for &c2 in used.iter() {
                    if c2 == cj {
                        continue;
                    }
                    let delivered =
                        route_packet(fabric, link_load, touched_links, cj, c2, &mut cost);
                    if delivered {
                        cores[c2].receive_inhibition(j, t, t_inhibit);
                    }
                }
            }
        }
        flush_tick(link_load, touched_links, &mut cost);

        let mut potentials = vec![0.0f64; n];
        for &c in used.iter() {
            let core = &cores[c];
            for (slot, &g) in core.locals.iter().enumerate() {
                potentials[g] = core.potentials[slot];
            }
        }
        let readout = tie_broken_readout(winner, &potentials, seed);
        let label = labels[readout].unwrap_or(0);
        MeshPresentation {
            winner,
            readout,
            label,
            fires,
            potentials,
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undo_reverts_only_slots_above_the_keeper() {
        let mut core = CoreNode::host(
            vec![3, 7, 9],
            vec![10, 20, 30], // one input column
            vec![1e9, 1e9, 1e9],
        );
        let lut = vec![1.0; 501];
        let mut cost = MeshCost::default();
        assert_eq!(core.scan(0, 5, &lut, &mut cost), None);
        assert_eq!(core.potentials, vec![10.0, 20.0, 30.0]);
        assert_eq!(cost.neuron_updates, 3);
        // Local neuron 7 (slot 1) fires at t=5.
        core.commit_fire(7, 5, 20, 5);
        // Slot 2 reverted, slot 1 reset to 0, slot 0 kept.
        assert_eq!(core.potentials, vec![10.0, 0.0, 0.0]);
        assert_eq!(core.last_update, vec![5, 5, 0]);
        assert_eq!(core.refractory_until, vec![0, 25, 0]);
        assert_eq!(core.inhibited_until, vec![10, 0, 10]);
        assert_eq!(core.skip_until, 10);
        assert!(core.inhibited_event);
    }

    #[test]
    fn inhibition_reverts_locals_above_the_firer_and_gates_all() {
        let mut core = CoreNode::host(vec![2, 8], vec![5, 7], vec![1e9, 1e9]);
        let lut = vec![1.0; 501];
        let mut cost = MeshCost::default();
        assert_eq!(core.scan(0, 3, &lut, &mut cost), None);
        assert_eq!(core.potentials, vec![5.0, 7.0]);
        // Global neuron 4 fired at t=3: local 8 un-integrates, local 2 keeps.
        core.receive_inhibition(4, 3, 5);
        assert_eq!(core.potentials, vec![5.0, 0.0]);
        assert_eq!(core.last_update, vec![3, 0]);
        assert_eq!(core.inhibited_until, vec![8, 8]);
        assert_eq!(core.skip_until, 8);
        // Receiving the same inhibition again is a no-op.
        core.receive_inhibition(4, 3, 5);
        assert_eq!(core.potentials, vec![5.0, 0.0]);
    }

    #[test]
    fn cost_energy_and_delivery_accounting() {
        let mut a = MeshCost {
            packets: 10,
            dropped_packets: 1,
            hops: 100,
            peak_link_load: 900,
            sram_rows: 50,
            neuron_updates: 200,
        };
        assert!(a.delivery_ok());
        let b = MeshCost {
            peak_link_load: 1200,
            ..MeshCost::default()
        };
        a.absorb(&b);
        assert_eq!(a.peak_link_load, 1200);
        assert!(!a.delivery_ok());
        assert_eq!(a.packets, 10);
        assert!(a.energy_uj() > 0.0);
        assert_eq!(MeshCost::default().energy_uj(), 0.0);
    }
}
