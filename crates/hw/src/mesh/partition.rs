//! Greedy cut-minimizing partitioner over the synapse affinity graph.
//!
//! Two WTA neurons interact through shared inputs (their lateral
//! inhibition is all-to-all and cheap to multicast, but correlated
//! firing — and therefore correlated traffic — follows receptive-field
//! overlap). The affinity of neurons `j` and `k` is the overlap of
//! their weight rows, `Σ_i min(w[j][i], w[k][i])`: the same quantity
//! STDP maximizes inside a learned feature cluster. The partitioner
//! packs high-affinity neurons onto the same core so the placer has
//! less traffic to route.

use nc_snn::SnnNetwork;

/// Hard per-core capacity: one core holds at most 256 neurons, the
/// TrueNorth core geometry ([`crate::truenorth`]).
pub const MAX_CLUSTER_NEURONS: usize = 256;

/// A partition of `n` neurons into clusters of bounded size, plus the
/// inter-cluster affinity ("traffic") matrix the placer consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Members of each cluster, ascending global neuron ids.
    clusters: Vec<Vec<usize>>,
    /// Cluster id of every neuron.
    cluster_of: Vec<usize>,
    /// Symmetric cluster-to-cluster affinity, row-major
    /// `[cluster][cluster]`; the diagonal is zero.
    traffic: Vec<u64>,
}

impl Partition {
    /// Number of clusters (placeable units).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of partitioned neurons.
    pub fn neurons(&self) -> usize {
        self.cluster_of.len()
    }

    /// Members of every cluster, each ascending by global neuron id.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// The cluster holding `neuron`.
    ///
    /// # Panics
    ///
    /// Panics if `neuron` is out of range.
    pub fn cluster_of(&self, neuron: usize) -> usize {
        self.cluster_of[neuron]
    }

    /// Affinity mass between two clusters (zero on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if either cluster id is out of range.
    pub fn traffic(&self, a: usize, b: usize) -> u64 {
        assert!(a < self.clusters.len() && b < self.clusters.len());
        self.traffic[a * self.clusters.len() + b]
    }

    /// Total affinity mass crossing cluster boundaries — the quantity
    /// the greedy assignment minimizes.
    pub fn cut_weight(&self) -> u64 {
        let k = self.clusters.len();
        let mut cut = 0u64;
        for a in 0..k {
            for b in (a + 1)..k {
                cut = cut.wrapping_add(self.traffic[a * k + b]);
            }
        }
        cut
    }

    /// Builds the cluster lists and traffic matrix from an assignment.
    fn from_assignment(cluster_of: Vec<usize>, num_clusters: usize, affinity: &[u64]) -> Partition {
        let n = cluster_of.len();
        let mut clusters = vec![Vec::new(); num_clusters];
        for (j, &c) in cluster_of.iter().enumerate() {
            clusters[c].push(j); // ascending j => ascending members
        }
        let mut traffic = vec![0u64; num_clusters * num_clusters];
        if !affinity.is_empty() {
            for j in 0..n {
                for k in (j + 1)..n {
                    let (a, b) = (cluster_of[j], cluster_of[k]);
                    if a != b {
                        let w = affinity[j * n + k];
                        traffic[a * num_clusters + b] =
                            traffic[a * num_clusters + b].wrapping_add(w);
                        traffic[b * num_clusters + a] =
                            traffic[b * num_clusters + a].wrapping_add(w);
                    }
                }
            }
        }
        Partition {
            clusters,
            cluster_of,
            traffic,
        }
    }
}

/// Splits a trained SNN into at most `targets` clusters by greedy cut
/// minimization: neurons are visited in descending affinity degree and
/// each joins the non-full cluster it has the most affinity mass with
/// (ties: the emptier cluster, then the lower cluster id). Capacity is
/// `min(256, ceil(n / targets))`, so clusters stay balanced enough for
/// a placer to spread them.
///
/// Deterministic: the affinity graph is a pure function of the weights
/// and every tie-break is by index.
///
/// # Panics
///
/// Panics if `targets == 0` or the network cannot fit (more neurons
/// than `targets * 256`).
pub fn partition_snn(net: &SnnNetwork, targets: usize) -> Partition {
    let n = net.params().neurons;
    let inputs = net.inputs();
    let weights = net.weights();
    let affinity = affinity_matrix(weights, n, inputs);
    partition_affinity(&affinity, n, targets)
}

/// Partitions `neurons` featureless units (a folded MLP layer: no
/// lateral synapses, so every cut is equal and the minimal-cut greedy
/// degenerates to balanced contiguous blocks) into at most `targets`
/// clusters. The resulting [`Partition`] carries a zero traffic matrix.
///
/// # Panics
///
/// Panics if `targets == 0`, `neurons == 0`, or the units cannot fit.
pub fn partition_units(neurons: usize, targets: usize) -> Partition {
    assert!(targets > 0, "need at least one target cluster");
    assert!(neurons > 0, "need at least one unit");
    let cap = capacity(neurons, targets);
    let num_clusters = neurons.div_ceil(cap);
    let cluster_of: Vec<usize> = (0..neurons).map(|j| j / cap).collect();
    Partition::from_assignment(cluster_of, num_clusters, &[])
}

/// The per-cluster capacity for `n` neurons over `targets` clusters.
fn capacity(n: usize, targets: usize) -> usize {
    MAX_CLUSTER_NEURONS.min(n.div_ceil(targets)).max(1)
}

/// Pairwise receptive-field overlap, row-major `n × n` (diagonal zero).
fn affinity_matrix(weights: &[u8], n: usize, inputs: usize) -> Vec<u64> {
    let mut affinity = vec![0u64; n * n];
    for j in 0..n {
        let row_j = &weights[j * inputs..(j + 1) * inputs];
        for k in (j + 1)..n {
            let row_k = &weights[k * inputs..(k + 1) * inputs];
            let mut overlap = 0u64;
            for (&wj, &wk) in row_j.iter().zip(row_k) {
                overlap += u64::from(wj.min(wk));
            }
            affinity[j * n + k] = overlap;
            affinity[k * n + j] = overlap;
        }
    }
    affinity
}

/// The greedy assignment over a precomputed affinity matrix.
fn partition_affinity(affinity: &[u64], n: usize, targets: usize) -> Partition {
    assert!(targets > 0, "need at least one target cluster");
    assert!(n > 0, "need at least one neuron");
    assert!(
        n <= targets * MAX_CLUSTER_NEURONS,
        "{n} neurons cannot fit on {targets} cores of {MAX_CLUSTER_NEURONS}"
    );
    let cap = capacity(n, targets);

    // Descending affinity degree, ties by ascending index: the most
    // connected neurons seed the clusters their neighbours then join.
    let degree: Vec<u64> = (0..n)
        .map(|j| affinity[j * n..(j + 1) * n].iter().sum())
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&j| (std::cmp::Reverse(degree[j]), j));

    let mut cluster_of = vec![usize::MAX; n];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); targets];
    for &j in &order {
        let mut best: Option<(u64, usize, usize)> = None; // (gain, len, cluster)
        for (c, cluster) in members.iter().enumerate() {
            if cluster.len() >= cap {
                continue;
            }
            let gain: u64 = cluster.iter().map(|&m| affinity[j * n + m]).sum();
            let candidate = (gain, cluster.len(), c);
            let better = match best {
                None => true,
                Some((bg, bl, bc)) => {
                    gain > bg || (gain == bg && (candidate.1 < bl || (candidate.1 == bl && c < bc)))
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        // Capacity * targets >= n, so a non-full cluster always exists.
        let (_, _, c) = best.map_or((0, 0, 0), |b| b);
        cluster_of[j] = c;
        members[c].push(j);
    }

    // Drop empty clusters (possible when targets > ceil(n / cap)),
    // renumbering survivors in first-use order.
    let mut remap = vec![usize::MAX; targets];
    let mut next = 0usize;
    for c in members
        .iter()
        .enumerate()
        .filter(|(_, m)| !m.is_empty())
        .map(|(c, _)| c)
    {
        remap[c] = next;
        next += 1;
    }
    for c in cluster_of.iter_mut() {
        *c = remap[*c];
    }
    Partition::from_assignment(cluster_of, next, affinity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_split_into_balanced_contiguous_blocks() {
        let p = partition_units(10, 4);
        assert_eq!(p.num_clusters(), 4);
        assert_eq!(p.clusters()[0], vec![0, 1, 2]);
        assert_eq!(p.clusters()[3], vec![9]);
        assert_eq!(p.cluster_of(5), 1);
        assert_eq!(p.cut_weight(), 0);
    }

    #[test]
    fn unit_partition_respects_the_core_capacity() {
        let p = partition_units(600, 3);
        assert_eq!(p.num_clusters(), 3);
        assert!(p.clusters().iter().all(|c| c.len() <= MAX_CLUSTER_NEURONS));
        assert_eq!(p.neurons(), 600);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversubscribed_grids_are_rejected() {
        let affinity = vec![0u64; 600 * 600];
        let _ = partition_affinity(&affinity, 600, 2);
    }

    #[test]
    fn greedy_groups_overlapping_rows_together() {
        // Neurons 0/1 share a receptive field, 2/3 share a disjoint one:
        // the two-cluster cut must separate the pairs.
        let weights = [
            200, 200, 0, 0, //
            180, 190, 0, 0, //
            0, 0, 210, 200, //
            0, 0, 190, 205, //
        ];
        let affinity = affinity_matrix(&weights, 4, 4);
        let p = partition_affinity(&affinity, 4, 2);
        assert_eq!(p.num_clusters(), 2);
        assert_eq!(p.cluster_of(0), p.cluster_of(1));
        assert_eq!(p.cluster_of(2), p.cluster_of(3));
        assert_ne!(p.cluster_of(0), p.cluster_of(2));
        assert_eq!(p.cut_weight(), 0);
        assert!(p.traffic(0, 1) == 0 && p.traffic(1, 0) == 0);
    }

    #[test]
    fn partition_is_deterministic() {
        let weights: Vec<u8> = (0..16 * 9).map(|i| ((i * 37) % 251) as u8).collect();
        let a1 = affinity_matrix(&weights, 16, 9);
        let p1 = partition_affinity(&a1, 16, 4);
        let p2 = partition_affinity(&a1, 16, 4);
        assert_eq!(p1, p2);
        assert_eq!(p1.neurons(), 16);
        // Every neuron appears exactly once across clusters.
        let mut seen = [false; 16];
        for cluster in p1.clusters() {
            for &j in cluster {
                assert!(!seen[j], "neuron {j} assigned twice");
                seen[j] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
